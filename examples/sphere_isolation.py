#!/usr/bin/env python3
"""Replay spheres under multiprogramming — Capo's core abstraction.

Records a 4-thread radix sort (the replay sphere) while two unrecorded
background processes hammer the same machine. The background changes the
sphere's schedule (preemptions, core availability) — and none of that
matters: the sphere's logs capture its execution completely, so replay
reproduces its memory region, its output, and its exit codes byte-exact,
with the background processes nowhere in the recording.

Run:  python examples/sphere_isolation.py
"""

from repro import KernelBuilder, session, workloads


def background(data_base: int, iters: int) -> object:
    b = KernelBuilder(data_base=data_base)
    b.word("acc", 0)
    b.asciz("noise", "[background noise]")
    b.label("main")
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[acc]")
        b.ins("mul", "r7", "r7", 3)
        b.ins("add", "r7", "r7", "r6")
        b.ins("store", "[acc]", "r7")
        with b.if_equal("r6", iters // 2):
            b.ins("push", "r6")
            b.write(1, "noise", 18)
            b.ins("pop", "r6")
    b.exit(0)
    return b.build(f"bg@{data_base:#x}")


def main() -> None:
    program, inputs = workloads.build("radix", threads=4)
    backgrounds = [background(0x100000, 4000), background(0x180000, 6000)]

    print("recording a 4-thread radix sort with 2 background processes...")
    outcome = session.record(program, seed=11, input_files=inputs,
                             background_programs=backgrounds)
    stats = outcome.kernel_stats
    print(f"  machine retired {outcome.instructions:,} instructions total; "
          f"{stats['preemptions']} preemptions, "
          f"{stats['context_switches']} context switches")
    sphere_instr = sum(c.icount for c in outcome.recording.chunks)
    print(f"  sphere: {sphere_instr:,} instructions in "
          f"{len(outcome.recording.chunks):,} chunks, "
          f"{len(outcome.recording.events)} input events")
    print(f"  whole-run stdout: {len(outcome.outputs['stdout'])} bytes "
          f"(includes background noise)")
    print(f"  sphere stdout:    "
          f"{len(outcome.sphere_outputs.get('stdout', b''))} bytes")

    replayed = session.replay_recording(outcome.recording)
    report = session.verify(outcome, replayed)
    print(f"\n{report.summary()}")
    assert report.ok
    print("the background processes left no trace in the recording: "
          f"threads in the chunk log = "
          f"{sorted({c.rthread for c in outcome.recording.chunks})}, "
          f"sphere threads = {sorted(outcome.sphere_exit_codes)}")


if __name__ == "__main__":
    main()
