#!/usr/bin/env python3
"""Deterministic debugging of a rare atomicity bug — the RnR use case.

A bank with per-account spinlocks transfers money between accounts. The
buggy transfer path takes the two locks one at a time and releases the
source lock before locking the destination — so a concurrent audit
(which sums all balances under the locks) can observe money "in flight"
and report a corrupted total. The bug only fires on unlucky
interleavings.

The script hunts seeds until a recording catches the bug, saves the
recording to disk, then replays it several times: every replay reproduces
the exact corrupted audit — the failure is now deterministic and can be
studied from the chunk log (which shows the audit's chunks interleaving
the transfer's).

Run:  python examples/debug_data_race.py
"""

import tempfile
from pathlib import Path

from repro import KernelBuilder, session
from repro.capo.recording import Recording

ACCOUNTS = 4
TRANSFERS = 30
AUDITS = 25
INITIAL = 1000


def build_program():
    b = KernelBuilder()
    b.word("balances", *([INITIAL] * ACCOUNTS))
    b.word("locks", *([0] * ACCOUNTS))
    b.word("bad_audits", 0)
    b.word("done", 0)
    b.space("stacks", 2 * 4096)
    b.space("out", 4)

    def lock(index_reg, scratch="r12"):
        acquire = b.fresh("acq")
        spin = b.fresh("spin")
        got = b.fresh("got")
        b.ins("shl", "r4", index_reg, 2)
        b.label(acquire)
        b.ins("mov", scratch, 1)
        b.ins("xchg", "[locks + r4]", scratch)
        b.ins("test", scratch, scratch)
        b.ins("je", got)
        b.label(spin)
        b.ins("pause")
        b.ins("load", scratch, "[locks + r4]")
        b.ins("test", scratch, scratch)
        b.ins("jne", spin)
        b.ins("jmp", acquire)
        b.label(got)

    def unlock(index_reg):
        b.ins("shl", "r4", index_reg, 2)
        b.ins("store", "[locks + r4]", 0)

    b.label("main")
    b.ins("mov", "r9", "stacks")
    b.ins("add", "r9", "r9", 2 * 4096 - 16)
    b.spawn("auditor", "r9", 1)
    # -- transfer thread (buggy: drops source lock before taking dest) -----
    with b.for_range("r14", 0, TRANSFERS):
        b.ins("mod", "r10", "r14", ACCOUNTS)          # src account
        b.ins("add", "r11", "r10", 1)
        b.ins("mod", "r11", "r11", ACCOUNTS)          # dst account
        lock("r10")
        b.ins("load", "r7", "[balances + r10*4]")
        b.ins("sub", "r7", "r7", 10)                  # withdraw
        b.ins("store", "[balances + r10*4]", "r7")
        unlock("r10")                                 # BUG: money in flight
        lock("r11")
        b.ins("load", "r7", "[balances + r11*4]")
        b.ins("add", "r7", "r7", 10)                  # deposit
        b.ins("store", "[balances + r11*4]", "r7")
        unlock("r11")
    join = b.label("join")
    b.ins("pause")
    b.ins("load", "r7", "[done]")
    b.ins("test", "r7", "r7")
    b.ins("je", join)
    b.ins("load", "r7", "[bad_audits]")
    b.ins("store", "[out]", "r7")
    b.write(1, "out", 4)
    b.exit(0)

    # -- auditor: sums balances under all locks ------------------------------
    b.label("auditor")
    with b.for_range("r14", 0, AUDITS):
        b.ins("mov", "r8", 0)                          # running total
        with b.for_range("r6", 0, ACCOUNTS):
            lock("r6")
            b.ins("load", "r7", "[balances + r6*4]")
            b.ins("add", "r8", "r8", "r7")
            unlock("r6")
        with b.if_not_equal("r8", ACCOUNTS * INITIAL):
            b.ins("load", "r7", "[bad_audits]")
            b.ins("add", "r7", "r7", 1)
            b.ins("store", "[bad_audits]", "r7")
    b.ins("store", "[done]", 1)
    b.exit(0)
    return b.build("bank")


def bad_audits_of(outcome_outputs) -> int:
    return int.from_bytes(outcome_outputs["stdout"][:4], "little")


def main() -> None:
    program = build_program()

    print("hunting for an interleaving that corrupts an audit...")
    failing = None
    for seed in range(200):
        outcome = session.record(program, seed=seed)
        count = bad_audits_of(outcome.outputs)
        if count > 0:
            failing = (seed, outcome, count)
            break
    assert failing is not None, "no failing interleaving in 200 seeds"
    seed, outcome, count = failing
    print(f"  seed {seed}: {count} corrupted audit(s) observed")

    with tempfile.TemporaryDirectory() as tmp:
        rec_dir = Path(tmp) / "bank-bug"
        outcome.recording.save(rec_dir)
        print(f"  recording saved to {rec_dir} "
              f"({outcome.recording.total_log_bytes():,} log bytes)")

        loaded = Recording.load(rec_dir)
        print("\nreplaying the failing run five times:")
        for attempt in range(5):
            replayed = session.replay_recording(loaded)
            replay_count = bad_audits_of(replayed.outputs)
            report = session.verify(outcome, replayed)
            print(f"  replay {attempt + 1}: {replay_count} corrupted "
                  f"audit(s), verification {'ok' if report.ok else 'FAILED'}")
            assert report.ok and replay_count == count

    # the chunk log shows WHY: the auditor's chunks interleave the
    # transfer's between the two lock regions
    transfers = [c for c in outcome.recording.chunks if c.rthread == 1]
    audits = [c for c in outcome.recording.chunks if c.rthread == 2]
    print(f"\nchunk log: transfer thread cut into {len(transfers)} chunks, "
          f"auditor into {len(audits)} — every conflict the auditor won "
          f"mid-transfer is ordered in the log, which is what makes the "
          f"bug replay deterministically.")


if __name__ == "__main__":
    main()
