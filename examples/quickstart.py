#!/usr/bin/env python3
"""Quickstart: record a racy program, inspect the logs, replay, verify.

Builds a four-thread program in which every thread hammers one shared
counter with atomic increments and one shared cache line with plain
(racy) read-modify-writes, records it with the full Capo3 stack, pokes
around the chunk and input logs, then replays the run from the logs alone
and verifies it reproduced the execution bit-for-bit.

Run:  python examples/quickstart.py
"""

from repro import KernelBuilder, session
from repro.analysis.chunks import chunk_size_stats, termination_breakdown


THREADS = 4
ITERS = 400


def build_program():
    b = KernelBuilder()
    b.word("atomic_total", 0)
    b.word("racy_total", 0)
    b.word("done", 0)
    b.space("stacks", THREADS * 4096)
    b.asciz("msg", "counts written\n")
    b.space("out", 8)

    b.label("main")
    for tid in range(1, THREADS):
        b.ins("mov", "r9", "stacks")
        b.ins("add", "r9", "r9", (tid + 1) * 4096 - 16)
        b.spawn("worker", "r9", tid)
    b.ins("mov", "rdi", 0)
    b.ins("call", "body")
    join = b.label("join")
    b.ins("pause")
    b.ins("load", "r7", "[done]")
    b.ins("cmp", "r7", THREADS - 1)
    b.ins("jne", join)
    # write both totals to stdout
    b.ins("load", "r7", "[atomic_total]")
    b.ins("store", "[out]", "r7")
    b.ins("load", "r7", "[racy_total]")
    b.ins("store", "[out + 4]", "r7")
    b.write(1, "out", 8)
    b.exit(0)

    b.label("worker")
    b.ins("call", "body")
    b.ins("mov", "r12", 1)
    b.ins("xadd", "[done]", "r12")
    b.exit(0)

    b.label("body")
    with b.for_range("r6", 0, ITERS):
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[atomic_total]", "r7")      # race-free increment
        b.ins("load", "r8", "[racy_total]")        # racy increment: loads
        b.ins("add", "r8", "r8", 1)                # can interleave and
        b.ins("store", "[racy_total]", "r8")       # drop updates
    b.ins("ret")
    return b.build("quickstart")


def main() -> None:
    program = build_program()
    print(f"program: {len(program)} instructions, "
          f"{len(program.data)} data bytes")

    outcome = session.record(program, seed=2026)
    recording = outcome.recording
    out = outcome.outputs["stdout"]
    atomic_total = int.from_bytes(out[0:4], "little")
    racy_total = int.from_bytes(out[4:8], "little")

    print(f"\nrecorded {outcome.instructions:,} instructions "
          f"on {len(recording.rthreads())} threads")
    print(f"  atomic counter: {atomic_total}  "
          f"(exact: {THREADS * ITERS})")
    print(f"  racy counter:   {racy_total}  "
          f"({THREADS * ITERS - racy_total} updates lost to the race)")

    stats = chunk_size_stats(recording.chunks)
    print(f"\nchunk log: {stats.count} chunks, "
          f"mean {stats.mean:.1f} instructions, "
          f"{recording.chunk_log_bytes():,} B raw / "
          f"{recording.chunk_log_compressed_bytes():,} B compressed")
    print("termination causes:")
    for reason, fraction in termination_breakdown(recording.chunks).items():
        print(f"  {reason:10s} {100 * fraction:5.1f}%")
    print(f"input log: {len(recording.events)} events, "
          f"{recording.input_log_bytes()} B")

    replayed = session.replay_recording(recording)
    report = session.verify(outcome, replayed)
    print(f"\n{report.summary()}")
    replay_out = replayed.outputs["stdout"]
    print("replay reproduced the racy counter exactly:",
          int.from_bytes(replay_out[4:8], "little"), "==", racy_total)
    assert report.ok


if __name__ == "__main__":
    main()
