#!/usr/bin/env python3
"""Race forensics on the bank bug: from "the audit is corrupted" to
"these two chunks raced on this word".

Builds on ``debug_data_race.py``: the same buggy bank (per-account
spinlocks, a transfer path that releases the source lock while money is
in flight) is recorded, then handed to the forensics pipeline instead of
being eyeballed:

1. ``analyze_recording`` shadow-replays the recording, classifies every
   atomically-accessed word (the locks, the harness futex word) as
   synchronization, and reports the access pairs no happens-before path
   orders — here, the plain ``done``/``bad_audits`` traffic the bank
   forgot to protect.
2. Each race arrives with both chunks, threads and PCs plus a
   ``quickrec inspect --at`` command that seeks straight to the racing
   chunk.
3. The schedule + race markers are exported as a Chrome trace that opens
   in Perfetto (https://ui.perfetto.dev).

Run:  python examples/race_forensics.py
"""

import json
import tempfile
from pathlib import Path
from repro import session
from repro.forensics import analyze_recording, export_trace, \
    render_race_report
from repro.telemetry.tracer import validate_trace


def main() -> None:
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from debug_data_race import build_program

    program = build_program()
    print("recording the buggy bank...")
    outcome = session.record(program, seed=0)
    recording = outcome.recording
    print(f"  {len(recording.chunks)} chunks, "
          f"{len(recording.events)} input events")

    with tempfile.TemporaryDirectory() as tmp:
        rec_dir = Path(tmp) / "bank"
        recording.save(rec_dir)

        print("\nrunning race forensics (two shadowed replay passes)...")
        report, graph = analyze_recording(recording, directory=str(rec_dir))
        print(render_race_report(report))

        # The per-account locks and the spinlock words must have been
        # recognized as synchronization, not reported as races.
        locks = recording.program.symbol("locks")
        racy_words = set(report.racy_words)
        assert not any(locks <= word < locks + 16 for word in racy_words), \
            "lock words must never be reported as races"
        # The unprotected done flag is a true data race and must be found.
        done = recording.program.symbol("done")
        assert done in racy_words, "the unsynchronized done flag races"

        trace_path = Path(tmp) / "bank_races.json"
        tracer = export_trace(recording, report=report, graph=graph)
        tracer.save(trace_path)
        document = json.loads(trace_path.read_text())
        assert validate_trace(document) == []
        print(f"\nPerfetto trace written to {trace_path} "
              f"({len(tracer)} events) — load it at ui.perfetto.dev")

        report_path = Path(tmp) / "bank_report.json"
        report_path.write_text(json.dumps(report.as_dict(), indent=2))
        print(f"structured report written to {report_path}")

    print("\nthe same analysis is available as:  quickrec analyze "
          "<recording-dir> --json report.json --trace trace.json")


if __name__ == "__main__":
    main()
