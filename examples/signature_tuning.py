#!/usr/bin/env python3
"""Tune the MRR's Bloom signatures and watch chunks change shape.

Sweeps signature width on a large-footprint workload (ocean) with a long
scheduling quantum so chunks are free to grow: narrow signatures saturate
and alias (false conflicts), cutting chunks early and inflating the chunk
log; every configuration still replays exactly, because Bloom filters
never false-negative.

Run:  python examples/signature_tuning.py
"""

from repro import session, workloads
from repro.analysis.chunks import chunk_size_stats, termination_breakdown
from repro.analysis.report import render_table
from repro.config import KernelConfig, MRRConfig, SimConfig
from repro.mrr.chunk import Reason


def main() -> None:
    program, inputs = workloads.build("ocean", scale=3)
    rows = []
    for bits in (32, 64, 128, 256, 512, 1024):
        config = SimConfig(
            mrr=MRRConfig(signature_bits=bits),
            kernel=KernelConfig(quantum_instructions=20_000),
        )
        outcome, _replayed, report = session.record_and_replay(
            program, seed=3, config=config, input_files=inputs)
        assert report.ok, f"{bits}-bit run failed to replay!"
        recording = outcome.recording
        stats = chunk_size_stats(recording.chunks)
        breakdown = termination_breakdown(recording.chunks)
        conflicts = sum(breakdown.get(r, 0.0) for r in Reason.CONFLICTS)
        rows.append((bits, stats.count, stats.mean,
                     100 * conflicts,
                     100 * breakdown.get(Reason.SATURATION, 0.0),
                     recording.chunk_log_compressed_bytes()))
        print(f"  {bits:>5}-bit signatures: {stats.count} chunks, "
              f"replay verified")

    print()
    print(render_table(
        ("sig bits", "chunks", "mean chunk", "conflict cut %",
         "saturation cut %", "log bytes"),
        rows, title="Bloom signature width vs chunking (ocean)"))
    print("\nnarrow filters alias and saturate -> more, smaller chunks and "
          "a bigger log; correctness is unaffected because a Bloom filter "
          "only ever errs toward extra terminations.")


if __name__ == "__main__":
    main()
