#!/usr/bin/env python3
"""Time-travel debugging: find the exact chunk where an invariant breaks.

A three-thread program maintains the invariant ``ledger == 100 * entries``
but one update path is non-atomic. We record a run where the final state
violates the invariant, then use the ReplayInspector as a deterministic
debugger:

1. binary-search-free: replay forward checking the invariant after every
   chunk until it first breaks;
2. zoom in on the interleaving window around the guilty chunk;
3. rewind (fresh inspector), stop one chunk earlier, and dump both
   threads' registers and upcoming code — the state a developer would
   inspect at the moment the bug fires.

Run:  python examples/time_travel_debug.py
"""

from repro import KernelBuilder, session
from repro.analysis.timeline import interleaving_window, render_timeline
from repro.replay.inspect import ReplayInspector

UPDATES = 40


def build_program():
    b = KernelBuilder()
    b.word("ledger", 0)
    b.word("entries", 0)
    b.space("stacks", 2 * 4096)
    b.label("main")
    for tid in (1, 2):
        b.ins("mov", "r9", "stacks")
        b.ins("add", "r9", "r9", tid * 4096 - 16)
        b.spawn("worker", "r9", tid)
    b.ins("mov", "rdi", 0)
    b.ins("call", "body")
    wait = b.label("wait")
    b.ins("pause")
    b.ins("load", "r7", "[entries]")
    b.ins("cmp", "r7", 3 * UPDATES)
    b.ins("jne", wait)
    b.exit(0)
    b.label("worker")
    b.ins("call", "body")
    b.exit(0)
    # BUG: ledger += 100 and entries += 1 are two non-atomic racy updates
    b.label("body")
    with b.for_range("r6", 0, UPDATES):
        b.ins("load", "r7", "[ledger]")
        b.ins("add", "r7", "r7", 100)
        b.ins("store", "[ledger]", "r7")
        b.ins("mov", "r8", 1)
        b.ins("xadd", "[entries]", "r8")
    b.ins("ret")
    return b.build("ledger")


def invariant_broken(inspector: ReplayInspector) -> bool:
    # Each iteration commits ledger += 100 strictly before entries += 1
    # (the xadd fences the store out), so in a correct run
    # ledger >= 100 * entries at every chunk boundary. Falling behind
    # means a ledger update was lost to the race.
    return (inspector.read_word("ledger")
            < 100 * inspector.read_word("entries"))


def main() -> None:
    program = build_program()
    outcome = None
    for seed in range(100):
        candidate = session.record(program, seed=seed)
        probe = ReplayInspector(candidate.recording)
        probe.run_to_end()
        if invariant_broken(probe):
            outcome = candidate
            print(f"seed {seed}: final ledger="
                  f"{probe.read_word('ledger')} but entries="
                  f"{probe.read_word('entries')} — invariant broken, "
                  f"recording captured")
            break
    assert outcome is not None, "no failing run found"

    recording = outcome.recording
    print("\ninterleaving timeline of the failing run:")
    print(render_timeline(recording.chunks, width=64))

    # 1) replay forward until the invariant first breaks
    inspector = ReplayInspector(recording)
    guilty_index = None
    while not inspector.finished:
        inspector.step(1)
        if invariant_broken(inspector):
            guilty_index = inspector.position - 1
            break
    chunk = recording.chunks and sorted(
        recording.chunks, key=lambda c: c.sort_key)[guilty_index]
    print(f"\ninvariant first broken after chunk #{guilty_index} "
          f"(t{chunk.rthread}, ts={chunk.timestamp}, {chunk.reason}): "
          f"ledger={inspector.read_word('ledger')}, "
          f"entries={inspector.read_word('entries')}")

    # 2) zoom in on the schedule around it
    print("\nschedule window:")
    print(interleaving_window(recording.chunks, guilty_index, radius=4))

    # 3) rewind to just before the guilty chunk and inspect thread state
    rewound = ReplayInspector(recording)
    rewound.run_to_index(guilty_index)
    print(f"\nrewound to chunk #{guilty_index}; "
          f"ledger={rewound.read_word('ledger')}, "
          f"entries={rewound.read_word('entries')} (still consistent)")
    victim = chunk.rthread
    view = rewound.thread_view(victim)
    print(f"t{victim} about to run: pc={view.pc}, r7={view.regs[7]} "
          f"(the stale ledger value it will store)")
    print(rewound.disassemble_at(victim, window=2))
    print("\nthe stale add/store pair is about to overwrite another "
          "thread's deposit — deterministically, on every replay.")


if __name__ == "__main__":
    main()
