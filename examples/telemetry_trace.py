#!/usr/bin/env python3
"""Telemetry: trace and measure a recorded run from the inside.

Opts a SPLASH-style workload into the telemetry subsystem via the
``SimConfig.telemetry`` knob, records it, replays it with the *same*
telemetry value (so record- and replay-side metrics land in one
snapshot), prints the metrics tables, and exports a Chrome trace-event
JSON file — drag it into https://ui.perfetto.dev to see chunk spans per
R-thread, syscall/futex instants, CBUF drains and per-core cycle tracks.

Run:  python examples/telemetry_trace.py [trace.json]
"""

import dataclasses
import sys

from repro import DEFAULT_CONFIG, TelemetryConfig, session, workloads
from repro.analysis.report import render_metrics

WORKLOAD = "fft"


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/quickrec-trace.json"
    config = dataclasses.replace(
        DEFAULT_CONFIG, telemetry=TelemetryConfig(enabled=True, sampling=16))

    program, inputs = workloads.build(WORKLOAD)
    outcome = session.record(program, seed=7, config=config,
                             input_files=inputs)
    telemetry = outcome.telemetry
    session.replay_recording(outcome.recording, telemetry=telemetry)

    print(render_metrics(telemetry.snapshot()))
    snap = telemetry.snapshot()
    chunks = snap["mrr.chunks_total"]
    fps = snap.get("mrr.bloom_false_positives", 0)
    print(f"\n{WORKLOAD}: {chunks} chunks, "
          f"{snap['capo.input_events']} input events, "
          f"{fps} Bloom false positives, "
          f"{snap['replay.pending_store_stalls']} replay store stalls")

    telemetry.tracer.save(trace_path)
    print(f"trace with {len(telemetry.tracer)} events written to "
          f"{trace_path} — open it in Perfetto")


if __name__ == "__main__":
    main()
