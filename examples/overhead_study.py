#!/usr/bin/env python3
"""Reproduce the paper's headline: recording hardware is ~free, the
software stack costs ~13% — and show where the software cycles go.

Runs every SPLASH-style workload in three configurations under identical
interleavings (native / MRR hardware only / full Capo3 stack) and prints
the overhead figure plus the software breakdown.

Run:  python examples/overhead_study.py [scale]
"""

import statistics
import sys

from repro import workloads
from repro.analysis.report import render_table
from repro.perf.overhead import measure_overhead


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    results = []
    for name in workloads.splash_names():
        program, inputs = workloads.build(name, scale=scale)
        print(f"measuring {name} ...")
        results.append(measure_overhead(program, seed=7, name=name,
                                        input_files=inputs))

    rows = [(r.name, r.native.instructions, 100 * r.hw_overhead,
             100 * r.full_overhead) for r in results]
    hw_avg = statistics.mean(r.hw_overhead for r in results)
    full_avg = statistics.mean(r.full_overhead for r in results)
    rows.append(("average", "", 100 * hw_avg, 100 * full_avg))
    print()
    print(render_table(
        ("workload", "instructions", "hw-only ovh %", "full stack ovh %"),
        rows, title=f"recording overhead (scale={scale}, "
                    "identical interleavings)"))

    breakdown_rows = []
    for r in results:
        b = r.software_breakdown()
        breakdown_rows.append((
            r.name,
            100 * b["syscall_interposition"],
            100 * b["input_logging"],
            100 * b["cbuf_drain"],
            100 * b["ctx_switch_flush"],
        ))
    print()
    print(render_table(
        ("workload", "interpose %", "input log %", "cbuf drain %",
         "ctx flush %"),
        breakdown_rows, title="software overhead breakdown "
                              "(% of native cycles)"))

    print(f"\npaper's shape: hardware negligible (measured "
          f"{100 * hw_avg:.1f}%), software stack low double digits "
          f"(measured {100 * full_avg:.1f}%), dominated by kernel-crossing "
          f"work — interposition plus input logging.")


if __name__ == "__main__":
    main()
