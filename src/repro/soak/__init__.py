"""Differential soak testing: the correctness campaign behind every
"bit-identical" claim.

The paper's guarantee is that the logs capture *all* nondeterminism; this
subsystem turns that into a continuously-testable property. A campaign
fans random racy programs (:mod:`repro.workloads.fuzz`) across worker
processes, runs each seed through a lattice of implementation variants
(decode cache, snoop filter, compression, telemetry, store-buffer and
scheduler shapes), and fails on any divergence between variants that must
agree bit-for-bit — then delta-debugs failing seeds down to minimal
reproducers and writes triage artifacts.

See ``docs/TESTING.md`` for the campaign semantics and the lattice.
"""

from .campaign import (
    CampaignReport,
    SeedVerdict,
    SoakOptions,
    run_campaign,
    run_case,
    run_seed,
)
from .differential import INJECTABLE, SeedFailure, outcome_digest
from .shrink import ShrinkResult, ddmin, shrink_case
from .triage import (
    load_artifact,
    repro_command,
    rerun_artifact,
    write_artifact,
)
from .variants import BASELINE, Variant, matrix_variants

__all__ = [
    "BASELINE",
    "CampaignReport",
    "INJECTABLE",
    "SeedFailure",
    "SeedVerdict",
    "ShrinkResult",
    "SoakOptions",
    "Variant",
    "ddmin",
    "load_artifact",
    "matrix_variants",
    "outcome_digest",
    "repro_command",
    "rerun_artifact",
    "run_campaign",
    "run_case",
    "run_seed",
    "shrink_case",
    "write_artifact",
]
