"""Triage artifacts: a failing seed, packaged for a human.

One JSON file per failing seed, carrying the divergence report, the
original and minimized cases (ops, config, scheduler inputs) and a
copy-pasteable repro command. Artifacts re-run locally with::

    quickrec fuzz --from-artifact soak-artifacts/seed-123.json

which replays the *minimized* case (falling back to the original when the
campaign ran without ``--shrink``) through the same differential checks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..config import SimConfig
from ..errors import LogFormatError
from ..workloads.fuzz import FuzzCase
from .campaign import SeedVerdict, SoakOptions, run_case
from .differential import SeedFailure

FORMAT = "quickrec-soak-triage"
VERSION = 1


def repro_command(seed: int, options: SoakOptions) -> str:
    """The one-liner that reproduces the failure from its seed."""
    parts = [f"quickrec fuzz --count 1 --base-seed {seed} --jobs 1"]
    if options.matrix:
        parts.append("--matrix")
    if options.shrink:
        parts.append("--shrink")
    if options.inject is not None:
        parts.append(f"--inject {options.inject}")
    return " ".join(parts)


def _case_to_dict(case: FuzzCase) -> dict[str, Any]:
    return {
        "seed": case.seed,
        "threads_ops": [[list(op) for op in ops]
                        for ops in case.threads_ops],
        "repeats": case.repeats,
        "config": case.config.to_dict(),
        "run_seed": case.run_seed,
        "policy": case.policy,
    }


def _case_from_dict(data: dict[str, Any]) -> FuzzCase:
    return FuzzCase(
        seed=data["seed"],
        threads_ops=[[tuple(op) for op in ops]
                     for ops in data["threads_ops"]],
        repeats=data["repeats"],
        config=SimConfig.from_dict(data["config"]),
        run_seed=data["run_seed"],
        policy=data["policy"],
    )


def _forensic_report(case: FuzzCase) -> dict[str, Any]:
    """Race forensics for the failing case: re-record it and analyze the
    recording. Scoped to the window the shrinker kept when the case was
    minimized (the whole log otherwise)."""
    from .. import session
    from ..forensics import analyze_recording

    outcome = session.record(case.build(), seed=case.run_seed,
                             policy=case.policy, config=case.config)
    report, _graph = analyze_recording(outcome.recording)
    return report.as_dict()


def _flight_bundle(directory: Path, verdict: SeedVerdict,
                   options: SoakOptions) -> Path:
    """Re-record the failing case under a flight ring and package the
    retained window as a crash bundle — the soak-oracle-divergence
    capture trigger. Uses the minimized case when the shrinker kept one."""
    import dataclasses

    from .. import session
    from ..flight import write_crash_bundle
    from ..workloads.fuzz import generate_case

    case = (verdict.shrunk.case if verdict.shrunk is not None
            else generate_case(verdict.seed))
    config = dataclasses.replace(
        case.config,
        capo=dataclasses.replace(case.config.capo,
                                 flight_window=options.flight_window))
    outcome = session.record(case.build(), seed=case.run_seed,
                             policy=case.policy, config=config)
    headlines = "; ".join(failure.headline()
                          for failure in verdict.failures)
    reproducer = None
    if verdict.shrunk is not None:
        reproducer = {
            "case": _case_to_dict(verdict.shrunk.case),
            "ops_before": verdict.shrunk.ops_before,
            "ops_after": verdict.shrunk.ops_after,
            "evals": verdict.shrunk.evals,
        }
    return write_crash_bundle(
        directory / f"seed-{verdict.seed}-flight", outcome.recording,
        trigger=f"soak-oracle divergence: {headlines}",
        repro=repro_command(verdict.seed, options),
        reproducer=reproducer)


def write_artifact(directory: str | Path, verdict: SeedVerdict,
                   options: SoakOptions, forensics: bool = True) -> Path:
    """Write ``seed-<N>.json`` for a failing verdict; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    from ..workloads.fuzz import generate_case

    artifact: dict[str, Any] = {
        "format": FORMAT,
        "version": VERSION,
        "seed": verdict.seed,
        "options": {
            "matrix": options.matrix,
            "shrink": options.shrink,
            "inject": options.inject,
        },
        "repro": repro_command(verdict.seed, options),
        "failures": [{"kind": f.kind, "variant": f.variant,
                      "detail": f.detail} for f in verdict.failures],
        "case": _case_to_dict(generate_case(verdict.seed)),
        "minimized": None,
        "shrink": None,
    }
    if verdict.shrunk is not None:
        artifact["minimized"] = _case_to_dict(verdict.shrunk.case)
        artifact["shrink"] = {
            "ops_before": verdict.shrunk.ops_before,
            "ops_after": verdict.shrunk.ops_after,
            "evals": verdict.shrunk.evals,
            "exhausted": verdict.shrunk.exhausted,
        }
    if forensics:
        # The forensic report is best-effort context: an analyzer crash
        # (e.g. on a divergence-inducing case) must never lose the artifact.
        case = (verdict.shrunk.case if verdict.shrunk is not None
                else generate_case(verdict.seed))
        try:
            artifact["forensics"] = _forensic_report(case)
        except Exception as exc:  # noqa: BLE001 -- capture, don't fail triage
            artifact["forensics"] = None
            artifact["forensics_error"] = f"{type(exc).__name__}: {exc}"
    if options.flight_window > 0:
        # Same best-effort contract: a capture failure is recorded in the
        # artifact but never loses the triage itself.
        try:
            bundle = _flight_bundle(directory, verdict, options)
            artifact["flight_bundle"] = bundle.name
        except Exception as exc:  # noqa: BLE001
            artifact["flight_bundle"] = None
            artifact["flight_error"] = f"{type(exc).__name__}: {exc}"
    path = directory / f"seed-{verdict.seed}.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    path = Path(path)
    try:
        artifact = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise LogFormatError(f"no triage artifact at {path}") from exc
    except json.JSONDecodeError as exc:
        raise LogFormatError(f"{path} is not valid JSON: {exc}") from exc
    if artifact.get("format") != FORMAT:
        raise LogFormatError(f"{path} is not a soak triage artifact")
    return artifact


def rerun_artifact(path: str | Path) -> tuple[list[SeedFailure], str]:
    """Re-run an artifact's case (minimized when present) through the
    differential checks it originally failed. Returns the fresh failures
    and which case ("minimized" or "original") ran."""
    artifact = load_artifact(path)
    which = "minimized" if artifact.get("minimized") else "original"
    case = _case_from_dict(artifact["minimized"] or artifact["case"])
    recorded = artifact.get("options", {})
    options = SoakOptions(matrix=bool(recorded.get("matrix")),
                          inject=recorded.get("inject"))
    return run_case(case, options), which
