"""Delta-debugging minimizer for failing fuzz cases.

Given a failing :class:`~repro.workloads.fuzz.FuzzCase` and a predicate
("does this case still fail?"), the shrinker reduces, in order:

1. whole threads (always keeping at least one),
2. each surviving thread's op list, via classic ddmin,
3. the loop ``repeats`` count down to 1,
4. config knobs (cores, store-buffer shape, quantum, policy, run seed)
   toward their simplest values,

and finishes with a second ddmin pass, since a simpler config often
unlocks further op removal. Every candidate evaluation is a full
differential run, so the work is bounded by ``max_evals``; results are
memoized, and the best (last failing) case is returned even when the
budget runs out.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..config import KernelConfig, StoreBufferConfig
from ..workloads.fuzz import FuzzCase


class _BudgetExhausted(Exception):
    """Internal: the evaluation budget ran out mid-reduction."""


class _Evaluator:
    """Memoizing, budgeted wrapper around the failure predicate."""

    def __init__(self, fails: Callable[[FuzzCase], bool], max_evals: int):
        self._fails = fails
        self._budget = max_evals
        self._cache: dict[str, bool] = {}
        self.evals = 0

    @staticmethod
    def _key(case: FuzzCase) -> str:
        return json.dumps([case.threads_ops, case.repeats,
                           case.config.to_dict(), case.run_seed,
                           case.policy], sort_keys=True)

    def __call__(self, case: FuzzCase) -> bool:
        key = self._key(case)
        if key in self._cache:
            return self._cache[key]
        if self.evals >= self._budget:
            raise _BudgetExhausted
        self.evals += 1
        result = bool(self._fails(case))
        self._cache[key] = result
        return result


def _split(items: Sequence, pieces: int) -> list[list]:
    """``items`` in ``pieces`` contiguous, non-empty chunks."""
    pieces = min(pieces, len(items))
    size, extra = divmod(len(items), pieces)
    out, start = [], 0
    for index in range(pieces):
        end = start + size + (1 if index < extra else 0)
        out.append(list(items[start:end]))
        start = end
    return out


def ddmin(items: list, fails: Callable[[list], bool]) -> list:
    """Classic ddmin: the smallest sublist of ``items`` (under chunk
    removal) for which ``fails`` still holds. ``items`` must fail."""
    if fails([]):
        return []
    granularity = 2
    while len(items) >= 2:
        chunks = _split(items, granularity)
        for index in range(len(chunks)):
            candidate = [op for chunk_index, chunk in enumerate(chunks)
                         if chunk_index != index for op in chunk]
            if fails(candidate):
                items = candidate
                granularity = max(2, granularity - 1)
                break
        else:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


@dataclass
class ShrinkResult:
    """A minimized failing case, plus how much work it took."""

    case: FuzzCase
    ops_before: int
    ops_after: int
    evals: int
    exhausted: bool = False


def _shrink_threads(case: FuzzCase, fails) -> FuzzCase:
    index = 0
    while len(case.threads_ops) > 1 and index < len(case.threads_ops):
        candidate = replace(case, threads_ops=[
            ops for tid, ops in enumerate(case.threads_ops) if tid != index])
        if fails(candidate):
            case = candidate
        else:
            index += 1
    return case


def _shrink_ops(case: FuzzCase, fails) -> FuzzCase:
    for index in range(len(case.threads_ops)):
        def fails_with(ops: list, _index=index) -> bool:
            threads_ops = list(case.threads_ops)
            threads_ops[_index] = ops
            return fails(replace(case, threads_ops=threads_ops))

        minimized = ddmin(list(case.threads_ops[index]), fails_with)
        threads_ops = list(case.threads_ops)
        threads_ops[index] = minimized
        case = replace(case, threads_ops=threads_ops)
    return case


def _shrink_config(case: FuzzCase, fails) -> FuzzCase:
    """Try each knob's simplest value, keeping whatever still fails."""
    if case.repeats > 1:
        candidate = replace(case, repeats=1)
        if fails(candidate):
            case = candidate
    machine = case.config.machine
    for cores in (1, 2):
        if cores < machine.num_cores:
            config = dataclasses.replace(
                case.config,
                machine=dataclasses.replace(machine, num_cores=cores))
            candidate = replace(case, config=config)
            if fails(candidate):
                case = candidate
                break
    simple_sb = StoreBufferConfig(entries=1, drain_period=1)
    if case.config.machine.store_buffer != simple_sb:
        config = dataclasses.replace(
            case.config, machine=dataclasses.replace(
                case.config.machine, store_buffer=simple_sb))
        candidate = replace(case, config=config)
        if fails(candidate):
            case = candidate
    simple_kernel = KernelConfig(quantum_instructions=100)
    if case.config.kernel != simple_kernel:
        config = dataclasses.replace(case.config, kernel=simple_kernel)
        candidate = replace(case, config=config)
        if fails(candidate):
            case = candidate
    if case.policy != "rr":
        candidate = replace(case, policy="rr")
        if fails(candidate):
            case = candidate
    if case.run_seed != 0:
        candidate = replace(case, run_seed=0)
        if fails(candidate):
            case = candidate
    return case


def shrink_case(case: FuzzCase, fails: Callable[[FuzzCase], bool],
                max_evals: int = 200) -> ShrinkResult:
    """Minimize a failing ``case``; ``fails`` must hold for it."""
    evaluator = _Evaluator(fails, max_evals)
    ops_before = case.op_count()
    best = case
    exhausted = False
    try:
        best = _shrink_threads(best, evaluator)
        best = _shrink_ops(best, evaluator)
        best = _shrink_config(best, evaluator)
        best = _shrink_ops(best, evaluator)
    except _BudgetExhausted:
        exhausted = True
    return ShrinkResult(case=best, ops_before=ops_before,
                        ops_after=best.op_count(), evals=evaluator.evals,
                        exhausted=exhausted)
