"""The config lattice: implementation variants a seed is run across.

Variants come in two strengths:

- **bit-identical** variants toggle mechanisms that are documented as
  observationally free — the decode cache, presence-based snoop
  filtering, the directory coherence fabric, telemetry, chunk-log
  compression-on-save. A run under any of
  these must produce exactly the baseline's digest (memory image, chunk
  log, input log, outputs, exit codes, cycle and unit counts). A variant
  may carve out named fingerprint components via ``identical_except`` —
  batched input logging, for instance, changes only cycle accounting.
- **self-verifying** variants change real machine/kernel shape
  (store-buffer depth and drain cadence, scheduler quantum), so they
  legitimately execute a different interleaving. For those the oracle is
  the recorder's own contract: record → replay → verify must pass.

Every variant's recording is additionally round-tripped through
``Recording`` save/load and ``compress_chunks``/``decompress_chunks`` by
the differential runner.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..config import SimConfig


@dataclass(frozen=True)
class Variant:
    """One point of the lattice. ``None`` overrides keep the case's value."""

    name: str
    decode_cache: bool = True
    snoop_filter: bool = True
    #: Coherence fabric override (``"directory"`` swaps the snooping bus
    #: for the exact-sharer directory; None keeps the case's fabric).
    #: Documented observationally free — directory runs are bit-identical.
    coherence: str | None = None
    telemetry: bool | None = None
    compress_chunk_log: bool | None = None
    store_buffer_entries: int | None = None
    store_buffer_drain: int | None = None
    quantum: int | None = None
    #: Embed a replay-state checkpoint every K chunk positions after
    #: recording (0 = off) and replay through the checkpoint-interval
    #: path, restoring every checkpoint and verifying every seam.
    #: Checkpoints are built post-hoc from the logs, so the recorded
    #: outcome itself stays bit-identical to the baseline's.
    checkpoint_every: int = 0
    #: Batch input logging in per-thread buffers of this many events
    #: (None keeps the case's setting; 0 = per-event). Batching changes
    #: only cycle accounting, never the logs — pair with
    #: ``identical_except=("cycles",)``.
    input_batch_events: int | None = None
    #: Serialize the recording bundle with this input/chunk log format
    #: version (None keeps the case's). Serialization happens at save
    #: time, so the outcome is fully bit-identical; the save/load
    #: round-trip is what exercises the codec.
    log_version: int | None = None
    #: Must this variant's outcome digest equal the baseline's?
    bit_identical: bool = True
    #: Fingerprint components allowed to differ for a bit-identical
    #: variant (e.g. ``("cycles",)`` for accounting-only changes).
    identical_except: tuple[str, ...] = ()

    def apply(self, config: SimConfig) -> SimConfig:
        """The case config with this variant's overrides folded in."""
        machine = config.machine
        if (self.store_buffer_entries is not None
                or self.store_buffer_drain is not None):
            store_buffer = machine.store_buffer
            if self.store_buffer_entries is not None:
                store_buffer = dataclasses.replace(
                    store_buffer, entries=self.store_buffer_entries)
            if self.store_buffer_drain is not None:
                store_buffer = dataclasses.replace(
                    store_buffer, drain_period=self.store_buffer_drain)
            machine = dataclasses.replace(machine, store_buffer=store_buffer)
        if self.coherence is not None:
            machine = dataclasses.replace(machine, coherence=self.coherence)
        kernel = config.kernel
        if self.quantum is not None:
            kernel = dataclasses.replace(
                kernel, quantum_instructions=self.quantum)
        capo = config.capo
        if self.compress_chunk_log is not None:
            capo = dataclasses.replace(
                capo, compress_chunk_log=self.compress_chunk_log)
        if self.input_batch_events is not None:
            capo = dataclasses.replace(
                capo, input_batch_events=self.input_batch_events)
        if self.log_version is not None:
            capo = dataclasses.replace(capo,
                                       input_log_version=self.log_version,
                                       chunk_log_version=self.log_version)
        telemetry = config.telemetry
        if self.telemetry is not None:
            telemetry = dataclasses.replace(telemetry, enabled=self.telemetry)
        return dataclasses.replace(config, machine=machine, kernel=kernel,
                                   capo=capo, telemetry=telemetry)


BASELINE = Variant("baseline")

#: The fixed lattice a ``--matrix`` campaign runs besides the baseline.
MATRIX_VARIANTS: tuple[Variant, ...] = (
    Variant("decode-off", decode_cache=False),
    Variant("snoop-filter-off", snoop_filter=False),
    Variant("directory", coherence="directory"),
    Variant("directory-checkpointed", coherence="directory",
            checkpoint_every=8),
    Variant("telemetry-on", telemetry=True),
    Variant("zlib-off", compress_chunk_log=False),
    Variant("checkpointed", checkpoint_every=8),
    Variant("log-v2", log_version=2),
    Variant("log-batched", input_batch_events=64,
            identical_except=("cycles",)),
    Variant("sb-shallow", store_buffer_entries=1, store_buffer_drain=1,
            bit_identical=False),
    Variant("sb-deep", store_buffer_entries=16, store_buffer_drain=33,
            bit_identical=False),
    Variant("quantum-tight", quantum=97, bit_identical=False),
)


def matrix_variants() -> tuple[Variant, ...]:
    return MATRIX_VARIANTS


def variant_by_name(name: str) -> Variant:
    if name == BASELINE.name:
        return BASELINE
    for variant in MATRIX_VARIANTS:
        if variant.name == name:
            return variant
    raise KeyError(f"unknown soak variant {name!r}")
