"""Per-seed differential checking: one case, many variants, one verdict.

For each :class:`~repro.workloads.fuzz.FuzzCase` this module runs the
baseline plus (with the matrix on) every lattice variant, and collects
:class:`SeedFailure` records for:

- ``exception``  — a run raised instead of completing;
- ``verify``     — record → replay → verify diverged for some variant;
- ``divergence`` — a bit-identical variant's outcome fingerprint differs
  from the baseline's (the differential oracle proper);
- ``roundtrip``  — a recording failed to survive ``Recording`` save/load
  or ``compress_chunks``/``decompress_chunks``.

Fault injection (``inject=``) perturbs the op list of one variant's
program, simulating a miscompiled decode closure or a snoop filter that
drops a conflict: the end-to-end self-test that the oracle, the shrinker
and the triage pipeline actually catch real divergences.
"""

from __future__ import annotations

import hashlib
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path

from .. import session
from ..capo.input_log import encode_events
from ..capo.recording import CHUNKS_COMPRESSED_NAME, CHUNKS_NAME, Recording
from ..errors import ReproError
from ..machine import bus as _bus
from ..machine import core as _core
from ..mrr.compression import compress_chunks, decompress_chunks
from ..mrr.logfmt import encode_chunks
from ..workloads.fuzz import FuzzCase, build_program
from .variants import BASELINE, Variant, matrix_variants

#: Faults the campaign can inject (``quickrec fuzz --inject``), mapping to
#: the variant whose program gets perturbed.
INJECTABLE = ("decode-cache", "snoop-filter")
_INJECT_TARGET = {
    "decode-cache": "decode-off",
    "snoop-filter": "snoop-filter-off",
}


@dataclass
class SeedFailure:
    """One failed check for one seed."""

    kind: str
    variant: str
    detail: str

    def headline(self) -> str:
        first = self.detail.splitlines()[0] if self.detail else ""
        return f"[{self.kind}] variant {self.variant}: {first}"


def outcome_fingerprint(outcome) -> dict[str, str]:
    """Every observable of a recorded run, hashed per component so a
    divergence report can say *what* disagreed, not just that something
    did."""
    recording = outcome.recording
    outputs = hashlib.sha256()
    for name in sorted(outcome.outputs):
        outputs.update(name.encode())
        outputs.update(b"\x00")
        outputs.update(outcome.outputs[name])
        outputs.update(b"\x00")
    return {
        "memory": outcome.final_memory_digest,
        "chunk_log": hashlib.sha256(
            encode_chunks(recording.chunks)).hexdigest(),
        "input_log": hashlib.sha256(
            encode_events(recording.events)).hexdigest(),
        "outputs": outputs.hexdigest(),
        "exit_codes": repr(sorted(outcome.exit_codes.items())),
        "cycles": str(outcome.total_cycles),
        "units": str(outcome.units),
    }


def outcome_digest(outcome) -> str:
    """One hash over the full fingerprint: equal iff bit-identical."""
    fingerprint = outcome_fingerprint(outcome)
    h = hashlib.sha256()
    for key in sorted(fingerprint):
        h.update(key.encode())
        h.update(b"\x00")
        h.update(fingerprint[key].encode())
        h.update(b"\x00")
    return h.hexdigest()


def _injected_ops(case: FuzzCase) -> list[list[tuple]]:
    """The case's ops with a one-instruction perturbation on thread 0 —
    the accumulator lands in ``results``, so the final memory image (and
    with it the digest) is guaranteed to diverge."""
    return [[*case.threads_ops[0], ("alu", "add", 1)], *case.threads_ops[1:]]


def run_variant(case: FuzzCase, variant: Variant, inject: str | None = None):
    """Record, replay and verify ``case`` under ``variant``.

    Returns ``(outcome, verification_report)``; exceptions propagate to
    the caller, which records them as ``exception`` failures.
    """
    ops = case.threads_ops
    if inject is not None and _INJECT_TARGET.get(inject) == variant.name:
        ops = _injected_ops(case)
    program = build_program(ops, repeats=case.repeats)
    config = variant.apply(case.config)
    saved = (_core.DECODE_CACHE_DEFAULT, _bus.SNOOP_FILTER_DEFAULT)
    _core.DECODE_CACHE_DEFAULT = variant.decode_cache
    _bus.SNOOP_FILTER_DEFAULT = variant.snoop_filter
    try:
        if variant.checkpoint_every:
            # Checkpointed path: embed checkpoints post-hoc, then replay
            # interval by interval — restoring every checkpoint and
            # verifying every seam digest — before the usual verification.
            from ..replay.parallel import replay_parallel
            outcome = session.record(program, seed=case.run_seed,
                                     policy=case.policy, config=config)
            session.add_checkpoints(outcome.recording,
                                    variant.checkpoint_every)
            replayed, _report = replay_parallel(
                recording=outcome.recording, jobs=1)
            report = session.verify(outcome, replayed)
        else:
            outcome, _replayed, report = session.record_and_replay(
                program, seed=case.run_seed, policy=case.policy,
                config=config)
    finally:
        _core.DECODE_CACHE_DEFAULT, _bus.SNOOP_FILTER_DEFAULT = saved
    return outcome, report


def _roundtrip_failures(recording: Recording,
                        variant_name: str) -> list[SeedFailure]:
    """Log-format durability: the recording must survive both compression
    flavours and a full save/load — including the compressed-only load
    path a bundle with no raw chunk log takes."""
    failures: list[SeedFailure] = []
    chunks_sorted = sorted(recording.chunks, key=lambda c: c.sort_key)

    for use_zlib in (True, False):
        label = f"compress_chunks(use_zlib={use_zlib})"
        try:
            back = decompress_chunks(
                compress_chunks(recording.chunks, use_zlib=use_zlib))
        except ReproError as exc:
            failures.append(SeedFailure(
                "roundtrip", variant_name, f"{label}: {exc}"))
            continue
        if back != chunks_sorted:
            failures.append(SeedFailure(
                "roundtrip", variant_name,
                f"{label}: entries changed across the round trip"))

    try:
        with tempfile.TemporaryDirectory(prefix="qr-soak-") as tmp:
            recording.save(tmp)
            loaded = Recording.load(tmp)
            checks = (
                ("chunks", loaded.chunks == recording.chunks),
                ("events", loaded.events == recording.events),
                ("config",
                 loaded.config.to_dict() == recording.config.to_dict()),
                ("metadata", loaded.metadata == recording.metadata),
                ("checkpoints",
                 loaded.checkpoints == recording.checkpoints),
            )
            for what, equal in checks:
                if not equal:
                    failures.append(SeedFailure(
                        "roundtrip", variant_name,
                        f"save/load: {what} changed across the round trip"))
            if (Path(tmp) / CHUNKS_COMPRESSED_NAME).exists():
                (Path(tmp) / CHUNKS_NAME).unlink()
                reloaded = Recording.load(tmp)
                if reloaded.chunks != chunks_sorted:
                    failures.append(SeedFailure(
                        "roundtrip", variant_name,
                        "save/load via compressed chunk log: entries "
                        "changed across the round trip"))
    except ReproError as exc:
        failures.append(SeedFailure(
            "roundtrip", variant_name, f"save/load: {exc}"))
    return failures


def run_case_checks(case: FuzzCase, matrix: bool = False,
                    inject: str | None = None) -> list[SeedFailure]:
    """All differential checks for one case; empty list means the seed
    passed."""
    failures: list[SeedFailure] = []
    variants = (BASELINE, *matrix_variants()) if matrix else (BASELINE,)
    base_fingerprint: dict[str, str] | None = None
    for variant in variants:
        try:
            outcome, report = run_variant(case, variant, inject=inject)
        except Exception as exc:  # noqa: BLE001 - the campaign reports
            failures.append(SeedFailure(
                "exception", variant.name,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
            continue
        if not report.ok:
            failures.append(SeedFailure(
                "verify", variant.name, report.summary()))
        fingerprint = outcome_fingerprint(outcome)
        if variant is BASELINE:
            base_fingerprint = fingerprint
        elif variant.bit_identical and base_fingerprint is not None:
            differing = sorted(key for key in fingerprint
                               if fingerprint[key] != base_fingerprint[key]
                               and key not in variant.identical_except)
            if differing:
                failures.append(SeedFailure(
                    "divergence", variant.name,
                    "not bit-identical to baseline; differing components: "
                    + ", ".join(differing)))
        failures.extend(_roundtrip_failures(outcome.recording, variant.name))
    return failures
