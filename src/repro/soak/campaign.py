"""The parallel campaign runner.

A campaign maps seeds onto fully-deterministic verdicts: each seed's
result depends only on ``(seed, options)``, never on worker count or
scheduling, so ``--jobs 1`` and ``--jobs 8`` produce identical reports
(the property the determinism tests pin). Fan-out follows the
``benchmarks/runner.py`` pool pattern: one process per worker, results
streamed back in seed order; ``jobs=1`` runs serially in-process, which
is what the test suite uses.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable

from ..telemetry import NULL_TELEMETRY, Telemetry
from ..workloads.fuzz import FuzzCase, generate_case
from .differential import INJECTABLE, SeedFailure, run_case_checks
from .shrink import ShrinkResult, shrink_case


@dataclass(frozen=True)
class SoakOptions:
    """Everything that parameterizes a campaign besides the seed range.

    ``inject`` perturbs one variant's program (see
    :data:`~repro.soak.differential.INJECTABLE`) — the harness's own
    end-to-end self-test; it requires ``matrix`` since the perturbed
    variant only runs there.

    ``flight_window`` > 0 makes triage re-record each failing seed under
    an N-epoch flight ring and package the window as a crash bundle
    beside the artifact (the soak-oracle-divergence capture trigger).
    """

    matrix: bool = False
    shrink: bool = False
    inject: str | None = None
    max_shrink_evals: int = 200
    flight_window: int = 0

    def __post_init__(self) -> None:
        if self.inject is not None and self.inject not in INJECTABLE:
            raise ValueError(
                f"unknown injection {self.inject!r}; choose from "
                f"{INJECTABLE}")
        if self.flight_window < 0:
            raise ValueError("flight_window must be >= 0")


@dataclass
class SeedVerdict:
    """One seed's full differential outcome."""

    seed: int
    failures: list[SeedFailure] = field(default_factory=list)
    shrunk: ShrinkResult | None = None

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CampaignReport:
    """Aggregate of a campaign; ``verdicts`` is ordered by seed."""

    runs: int = 0
    verified: int = 0
    verdicts: list[SeedVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verified == self.runs and all(
            verdict.ok for verdict in self.verdicts)

    @property
    def failing(self) -> list[SeedVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]


def run_case(case: FuzzCase, options: SoakOptions) -> list[SeedFailure]:
    """All differential checks for one explicit case."""
    return run_case_checks(case, matrix=options.matrix,
                           inject=options.inject)


def run_seed(seed: int, options: SoakOptions) -> SeedVerdict:
    """Generate the seed's case, run every check, shrink on failure."""
    case = generate_case(seed)
    failures = run_case(case, options)
    verdict = SeedVerdict(seed=seed, failures=failures)
    if failures and options.shrink:
        verdict.shrunk = shrink_case(
            case, lambda candidate: bool(run_case(candidate, options)),
            max_evals=options.max_shrink_evals)
    return verdict


def _worker(job: tuple[int, SoakOptions]) -> SeedVerdict:
    seed, options = job
    return run_seed(seed, options)


def run_campaign(count: int, base_seed: int = 0, jobs: int = 1,
                 options: SoakOptions | None = None,
                 telemetry: Telemetry | None = None,
                 progress: Callable[[SeedVerdict], None] | None = None,
                 ) -> CampaignReport:
    """Run ``count`` seeds starting at ``base_seed`` across ``jobs``
    worker processes. ``progress`` (if given) sees each verdict as it
    lands, in seed order."""
    options = options or SoakOptions()
    telemetry = telemetry or NULL_TELEMETRY
    seeds = range(base_seed, base_seed + count)
    report = CampaignReport()

    if telemetry.enabled:
        telemetry.tracer.instant(
            "soak.campaign.start", cat="soak",
            args={"count": count, "base_seed": base_seed, "jobs": jobs,
                  "matrix": options.matrix, "shrink": options.shrink})
        telemetry.metrics.gauge("soak.jobs").set(jobs)

    def consume(verdict: SeedVerdict) -> None:
        report.runs += 1
        report.verdicts.append(verdict)
        if verdict.ok:
            report.verified += 1
        if telemetry.enabled:
            metrics = telemetry.metrics
            metrics.counter("soak.seeds").inc()
            if not verdict.ok:
                metrics.counter("soak.failed_seeds").inc()
                for failure in verdict.failures:
                    metrics.counter(f"soak.failures.{failure.kind}").inc()
                telemetry.tracer.instant(
                    "soak.seed.failed", cat="soak",
                    args={"seed": verdict.seed,
                          "failures": [f.headline()
                                       for f in verdict.failures]})
            if verdict.shrunk is not None:
                metrics.counter("soak.shrink_evals").inc(
                    verdict.shrunk.evals)
                metrics.histogram("soak.shrunk_ops").observe(
                    verdict.shrunk.ops_after)
        if progress is not None:
            progress(verdict)

    if jobs <= 1 or count <= 1:
        for seed in seeds:
            consume(run_seed(seed, options))
    else:
        pool_size = min(jobs, count)
        with multiprocessing.Pool(processes=pool_size) as pool:
            for verdict in pool.imap(
                    _worker, [(seed, options) for seed in seeds]):
                consume(verdict)

    if telemetry.enabled:
        telemetry.tracer.instant(
            "soak.campaign.end", cat="soak",
            args={"runs": report.runs, "verified": report.verified})
    return report
