"""Happens-before data-race detection over a replayed recording.

Two shadowed replay passes over a chunk window (the whole recording, or a
checkpoint-bounded ``[start, until)`` interval seeked via
:func:`~repro.replay.checkpoint.replayer_at`):

1. **Sync scan** — find the synchronization vocabulary: every word ever
   touched by an atomic instruction (plus futex words) is a *sync word*,
   and the argument registers of each trapped syscall are captured (the
   input log stores return values only; replay regenerates arguments, so
   this is where futex addresses and kill targets come from).
2. **Detection** — a FastTrack-style vector-clock pass at *access*
   granularity. Each thread carries a clock; every access to a sync word
   acts as an acquire+release on that word (join the word's clock, store
   a copy, then advance the accessor's own component so later accesses
   are distinguishable from the published prefix — this is what orders a
   spinlock's plain-store release against the next xchg acquire). Kernel
   synchronization (spawn, futex wake->wait, signal delivery) publishes
   and joins through per-event channels at the chunk boundaries where
   the replayer applies those events. Plain accesses to data bytes are
   checked against per-byte shadow cells (last write + last reads); a
   conflicting pair no clock ordered is a data race.

Sync words are excluded from race candidates: atomics are
synchronization, and the plain loads of a test-and-test-and-set spin
loop or a release store are part of the protocol, not application data.
Addresses synchronized *only* by raw ordered plain stores (Dekker-style
flags) are reported — at this layer they are data races, exactly as a
C11 analysis would classify them.

Access-granularity clocks matter: the chunk-level HB graph
(:mod:`repro.forensics.hb`) over-orders whenever one chunk contains both
data accesses and a lock handoff, so the detector keeps its own clocks
and the graph serves queries, rendering and export.

Window scoping is exact for in-window pairs: every HB path between two
in-window accesses lies entirely inside the window (all edges point
forward in replay order), so a windowed pass reports the same races as a
full pass restricted to pairs whose chunks both fall in the window. The
one caveat is the sync vocabulary itself, which is discovered from the
window — an address used atomically only *outside* the window is treated
as data within it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analysis.chunks import ScheduledChunk, iter_schedule, per_thread_chunks
from ..capo.events import EV_SYSCALL
from ..capo.recording import Recording
from ..kernel.syscalls import SYS_FUTEX_WAIT, SYS_FUTEX_WAKE
from ..replay.checkpoint import replayer_at
from .hb import SyncLink, pair_kernel_sync
from .render import symbolize
from .shadow import AccessSink, ShadowPort

WORD_MASK = ~3
# Intra-chunk clock headroom: a chunk's own-component epochs run from
# thread_index << SUB_BITS, advancing once per sync access — far below
# any chunk's possible sync-operation count.
SUB_BITS = 24

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Access:
    """One side of a race, in every coordinate system a human needs."""

    chunk_index: int   # global chunk-schedule position (inspect --at)
    rthread: int       # R-thread == recorded core context
    pc: int
    kind: str          # "read" or "write"
    timestamp: int     # the chunk's global (Lamport) timestamp

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass(frozen=True)
class Race:
    """A conflicting, HB-concurrent access pair (first = earlier in the
    observed schedule — the direction the recording happened to run)."""

    address: int       # lowest racing byte
    word: int          # containing aligned word (dedup granularity)
    symbol: str | None
    first: Access
    second: Access

    def as_dict(self) -> dict:
        return {
            "address": self.address,
            "word": self.word,
            "symbol": self.symbol,
            "first": self.first.as_dict(),
            "second": self.second.as_dict(),
        }


@dataclass
class RaceReport:
    """Everything ``quickrec analyze`` reports (JSON via :meth:`as_dict`)."""

    program: str
    directory: str | None
    window: tuple[int, int]
    total_chunks: int
    races: list[Race]
    sync_words: list[int]
    stats: dict
    anomalies: list[str] = field(default_factory=list)
    dropped_races: int = 0
    hb: dict | None = None
    # Captured trap arguments (kernel seq -> the four argument registers),
    # reusable for a precise HB graph; not serialized.
    syscall_args: dict = field(default_factory=dict, repr=False)

    @property
    def racy_words(self) -> dict[int, int]:
        """Races per aligned word address."""
        counts: dict[int, int] = {}
        for race in self.races:
            counts[race.word] = counts.get(race.word, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> dict:
        return {
            "format": "quickrec-race-report",
            "version": 1,
            "program": self.program,
            "directory": self.directory,
            "window": {"start": self.window[0], "until": self.window[1]},
            "total_chunks": self.total_chunks,
            "stats": dict(self.stats),
            "sync_words": [hex(word) for word in self.sync_words],
            "races": [race.as_dict() for race in self.races],
            "dropped_races": self.dropped_races,
            "anomalies": list(self.anomalies),
            "hb": self.hb,
        }


# -- shadowed replay driver ---------------------------------------------------


def _replay_window(recording: Recording, schedule: list[ScheduledChunk],
                   start: int, until: int, sink,
                   on_boundary: Callable | None = None) -> None:
    """Step chunks ``[start, until)`` with every thread's port shadowed.

    ``sink.begin_chunk(scheduled)`` runs before each chunk;
    ``on_boundary(scheduled, consumed_events, ctx)`` after it, with the
    input events that step consumed (boundary syscalls and pre-chunk
    signal deliveries) — at which point the thread's argument registers
    still hold the trap's arguments (event application only rewrites the
    return register).
    """
    replayer = replayer_at(recording, start)
    replayer.port_wrapper = (
        lambda rthread, engine, port: ShadowPort(port, engine, rthread, sink))
    for ctx in replayer.threads.values():
        ctx.port = ShadowPort(ctx.port, ctx.engine, ctx.rthread, sink)
    events_of: dict[int, list] = {}
    for event in recording.events:
        events_of.setdefault(event.rthread, []).append(event)
    cursors: dict[int, int] = {}

    def sync_cursors() -> None:
        for rthread, ctx in replayer.threads.items():
            if rthread not in cursors:
                cursors[rthread] = (len(events_of.get(rthread, ()))
                                    - len(ctx.events))

    sync_cursors()
    while replayer.position < until:
        scheduled = schedule[replayer.position]
        sink.begin_chunk(scheduled)
        if replayer.step_chunk() is None:
            break
        sync_cursors()
        rthread = scheduled.chunk.rthread
        ctx = replayer.threads[rthread]
        consumed_to = len(events_of.get(rthread, ())) - len(ctx.events)
        consumed = events_of.get(rthread, [])[cursors[rthread]:consumed_to]
        cursors[rthread] = consumed_to
        if on_boundary is not None:
            on_boundary(scheduled, consumed, ctx)


class _SyncScan(AccessSink):
    """Pass 1: atomic-word discovery (race checks need the full set up
    front — a lock word's plain release store may replay before its first
    atomic acquire enters the window)."""

    def __init__(self) -> None:
        self.sync_words: set[int] = set()
        self.accesses = 0

    def begin_chunk(self, scheduled: ScheduledChunk) -> None:
        pass

    def on_access(self, rthread: int, pc: int, addr: int, size: int,
                  is_write: bool, is_atomic: bool) -> None:
        self.accesses += 1
        if is_atomic:
            self.sync_words.add(addr & WORD_MASK)


class _Detector(AccessSink):
    """Pass 2: the vector-clock race detector."""

    def __init__(self, sync_words: set[int],
                 joins: dict[tuple[int, int], list[int]],
                 publishes: dict[tuple[int, int], list[int]],
                 max_races_per_address: int):
        self.sync_words = sync_words
        self.joins = joins
        self.publishes = publishes
        self.max_per_address = max_races_per_address
        self.clocks: dict[int, dict[int, int]] = {}
        self.sync_clocks: dict[int, dict[int, int]] = {}
        self.channels: dict[int, dict[int, int]] = {}
        # byte addr -> [write_info, write_rthread, write_epoch,
        #               {reader_rthread: (epoch, info)}]
        self.cells: dict[int, list] = {}
        # raw races: (byte, earlier_info, later_info)
        self.found: list[tuple[int, tuple, tuple]] = []
        self.seen: set[tuple[int, int, int]] = set()
        self.per_word: dict[int, int] = {}
        self.dropped = 0
        self.accesses = 0
        self.current: ScheduledChunk | None = None

    # -- chunk lifecycle ----------------------------------------------------

    def begin_chunk(self, scheduled: ScheduledChunk) -> None:
        self.current = scheduled
        rthread = scheduled.chunk.rthread
        clock = self.clocks.setdefault(rthread, {})
        # Epochs encode (thread chunk ordinal, sync ops so far) so a
        # publish mid-chunk never covers the chunk's later accesses.
        clock[rthread] = scheduled.thread_index << SUB_BITS
        for seq in self.joins.get((rthread, scheduled.thread_index), ()):
            self._merge(clock, self.channels.get(seq))

    def end_chunk(self, scheduled: ScheduledChunk) -> None:
        rthread = scheduled.chunk.rthread
        clock = self.clocks[rthread]
        for seq in self.publishes.get((rthread, scheduled.thread_index), ()):
            self.channels[seq] = dict(clock)
            clock[rthread] += 1

    @staticmethod
    def _merge(clock: dict[int, int], other: dict[int, int] | None) -> None:
        if not other:
            return
        for rthread, epoch in other.items():
            if clock.get(rthread, -1) < epoch:
                clock[rthread] = epoch

    # -- accesses -----------------------------------------------------------

    def on_access(self, rthread: int, pc: int, addr: int, size: int,
                  is_write: bool, is_atomic: bool) -> None:
        self.accesses += 1
        clock = self.clocks[rthread]
        word = addr & WORD_MASK
        if is_atomic or word in self.sync_words:
            # Acquire + release on the sync word, then bump the accessor's
            # own component so post-release accesses outrank the publish.
            self._merge(clock, self.sync_clocks.get(word))
            self.sync_clocks[word] = dict(clock)
            clock[rthread] += 1
            return
        own = clock[rthread]
        scheduled = self.current
        info = (scheduled.index, rthread, pc,
                WRITE if is_write else READ, scheduled.chunk.timestamp)
        for byte in range(addr, addr + size):
            cell = self.cells.get(byte)
            if cell is None:
                self.cells[byte] = [info if is_write else None, rthread,
                                    own, {} if is_write
                                    else {rthread: (own, info)}]
                continue
            w_info, w_thread, w_epoch, readers = cell
            if w_info is not None and w_thread != rthread \
                    and clock.get(w_thread, -1) < w_epoch:
                self._report(byte, w_info, info)
            if is_write:
                for r_thread, (r_epoch, r_info) in readers.items():
                    if r_thread != rthread \
                            and clock.get(r_thread, -1) < r_epoch:
                        self._report(byte, r_info, info)
                cell[0], cell[1], cell[2] = info, rthread, own
                cell[3] = {}
            else:
                readers[rthread] = (own, info)

    def _report(self, byte: int, earlier: tuple, later: tuple) -> None:
        word = byte & WORD_MASK
        key = (word, earlier[0], later[0])
        if key in self.seen:
            return
        self.seen.add(key)
        if self.per_word.get(word, 0) >= self.max_per_address:
            self.dropped += 1
            return
        self.per_word[word] = self.per_word.get(word, 0) + 1
        self.found.append((byte, earlier, later))


# -- public API ---------------------------------------------------------------


def _capture_args(syscall_args: dict[int, tuple]) -> Callable:
    def on_boundary(scheduled, consumed, ctx) -> None:
        for event in consumed:
            if event.kind == EV_SYSCALL:
                regs = ctx.engine.regs
                syscall_args[event.seq] = (int(regs[1]), int(regs[2]),
                                           int(regs[3]), int(regs[4]))
    return on_boundary


def _futex_words(recording: Recording,
                 syscall_args: dict[int, tuple]) -> set[int]:
    words = set()
    for event in recording.events:
        if event.kind == EV_SYSCALL and event.sysno in (SYS_FUTEX_WAIT,
                                                        SYS_FUTEX_WAKE):
            args = syscall_args.get(event.seq)
            if args is not None:
                words.add(args[0] & WORD_MASK)
    return words


def _link_tables(links: list[SyncLink]) -> tuple[dict, dict]:
    joins: dict[tuple[int, int], list[int]] = {}
    publishes: dict[tuple[int, int], list[int]] = {}
    for link in links:
        publishes.setdefault(link.src, []).append(link.seq)
        joins.setdefault(link.dst, []).append(link.seq)
    return joins, publishes


def _access_of(info: tuple) -> Access:
    return Access(chunk_index=info[0], rthread=info[1], pc=info[2],
                  kind=info[3], timestamp=info[4])


def detect_races(recording: Recording, start: int = 0,
                 until: int | None = None, directory: str | None = None,
                 max_races_per_address: int = 16) -> RaceReport:
    """Shadow-replay a chunk window and report its data races."""
    schedule = iter_schedule(recording.chunks)
    total = len(schedule)
    start = max(0, start)
    until = total if until is None else max(start, min(until, total))

    scan = _SyncScan()
    syscall_args: dict[int, tuple] = {}
    _replay_window(recording, schedule, start, until, scan,
                   on_boundary=_capture_args(syscall_args))
    sync_words = scan.sync_words | _futex_words(recording, syscall_args)

    links = pair_kernel_sync(recording.events, syscall_args)
    joins, publishes = _link_tables(links)
    detector = _Detector(sync_words, joins, publishes, max_races_per_address)
    _replay_window(
        recording, schedule, start, until, detector,
        on_boundary=lambda scheduled, consumed, ctx:
            detector.end_chunk(scheduled))

    races = []
    for byte, earlier, later in sorted(detector.found):
        races.append(Race(
            address=byte, word=byte & WORD_MASK,
            symbol=symbolize(recording.program, byte),
            first=_access_of(earlier), second=_access_of(later)))
    window_chunks = [sc.chunk for sc in schedule[start:until]]
    stats = {
        "chunks_replayed": until - start,
        "accesses": detector.accesses,
        "shadow_bytes": len(detector.cells),
        "sync_words": len(sync_words),
        "sync_links": {kind: sum(1 for link in links if link.kind == kind)
                       for kind in sorted({link.kind for link in links})},
        "threads": per_thread_chunks(window_chunks),
    }
    return RaceReport(
        program=recording.program.name, directory=directory,
        window=(start, until), total_chunks=total, races=races,
        sync_words=sorted(sync_words), stats=stats,
        dropped_races=detector.dropped, syscall_args=syscall_args)


def analyze_recording(recording: Recording, start: int = 0,
                      until: int | None = None,
                      directory: str | None = None,
                      max_races_per_address: int = 16):
    """The full forensic pipeline: race detection plus a precise HB graph
    (built with the captured syscall arguments). Returns
    ``(report, graph)`` with the graph's summary embedded in the report.
    """
    from .hb import build_hb_graph

    report = detect_races(recording, start=start, until=until,
                          directory=directory,
                          max_races_per_address=max_races_per_address)
    graph = build_hb_graph(recording.chunks, recording.events,
                           report.syscall_args)
    summary = graph.as_dict()
    summary.pop("sync_edges")  # coordinates live in the races themselves
    report.hb = summary
    report.anomalies.extend(graph.anomalies)
    return report, graph
