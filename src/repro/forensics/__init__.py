"""Race forensics: happens-before analysis of recorded executions.

The chunk log totally orders inter-thread communication, which makes a
recording *inspectable*: this package rebuilds the happens-before
relation the recorded program actually established (program order plus
kernel synchronization plus atomic-word chains), replays the recording
while shadowing every memory access, and reports the conflicting access
pairs that no synchronization ordered — true data races, each with the
two chunks, R-threads (the recorded core contexts), PCs and a
copy-pasteable ``quickrec inspect --at`` repro command.

Entry points:

- :func:`analyze_recording` — the full pipeline behind ``quickrec
  analyze`` (HB graph + shadow replay + race report);
- :func:`detect_races` — just the detector, optionally scoped to a
  checkpoint-bounded ``[start, until)`` chunk window;
- :func:`build_hb_graph` — the chunk-granularity HB graph alone;
- :func:`export_trace` — Chrome trace-event export of the schedule and
  the races (opens directly in Perfetto).
"""

from .hb import (  # noqa: F401
    EDGE_FUTEX,
    EDGE_PROGRAM,
    EDGE_SIGNAL,
    EDGE_SPAWN,
    HBGraph,
    SyncLink,
    build_hb_graph,
    pair_kernel_sync,
)
from .perfetto import export_trace  # noqa: F401
from .races import (  # noqa: F401
    Access,
    Race,
    RaceReport,
    analyze_recording,
    detect_races,
)
from .render import render_race_report, symbolize  # noqa: F401
from .shadow import ShadowPort  # noqa: F401
