"""Perfetto / Chrome trace-event export of a recorded schedule.

Reuses :class:`repro.telemetry.tracer.Tracer` so the analyze trace is
byte-compatible with the simulator's own telemetry traces and loads in
Perfetto or ``chrome://tracing`` unchanged. The time axis is the
recording's global (Lamport) timestamp — one trace microsecond per
timestamp tick; rows are R-threads.

Emitted tracks:

- per R-thread, one ``X`` span per chunk (``chunk:<reason>``) lasting
  until the thread's next chunk (timestamps are strictly increasing per
  thread, so spans never overlap);
- per race, an instant (``i``) marker on each participating thread at
  that access's chunk timestamp, carrying the address/symbol and the
  partner's coordinates;
- a ``races`` counter track accumulating detected races over trace time;
- thread-name metadata rows.
"""

from __future__ import annotations

from ..analysis.chunks import iter_schedule
from ..capo.recording import Recording
from ..telemetry.tracer import Tracer


class _Clock:
    """A settable clock for the tracer: trace time is recording time."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def __call__(self) -> int:
        return self.value


def export_trace(recording: Recording, report=None, graph=None,
                 start: int = 0, until: int | None = None) -> Tracer:
    """Build a trace of the chunk schedule (optionally annotated with a
    race report and HB graph) and return the :class:`Tracer`."""
    schedule = iter_schedule(recording.chunks)
    total = len(schedule)
    start = max(0, start)
    until = total if until is None else max(start, min(until, total))
    window = schedule[start:until]

    clock = _Clock()
    tracer = Tracer(pid=0, clock=clock)
    for rthread in sorted({sc.chunk.rthread for sc in window}):
        tracer.thread_name(rthread, f"rthread {rthread}")

    # Next chunk timestamp per thread bounds each span's duration.
    next_ts: dict[int, list[int]] = {}
    for scheduled in reversed(window):
        next_ts.setdefault(scheduled.chunk.rthread, []).append(
            scheduled.chunk.timestamp)
    cursor = {rthread: len(stack) - 1 for rthread, stack in next_ts.items()}

    sync_dsts = {}
    if graph is not None:
        for edge in graph.sync_edges:
            sync_dsts.setdefault(edge.dst, []).append(edge.kind)

    for scheduled in window:
        chunk = scheduled.chunk
        stack = next_ts[chunk.rthread]
        index = cursor[chunk.rthread]
        cursor[chunk.rthread] = index - 1
        end = stack[index - 1] if index > 0 else chunk.timestamp + 1
        clock.value = chunk.timestamp
        span_start = tracer.now()
        clock.value = max(end, chunk.timestamp + 1)
        args = {
            "chunk": scheduled.index,
            "thread_chunk": scheduled.thread_index,
            "icount": chunk.icount,
            "memops": chunk.memops,
            "rsw": chunk.rsw,
        }
        kinds = sync_dsts.get(scheduled.index)
        if kinds:
            args["sync_in"] = ",".join(kinds)
        tracer.complete(f"chunk:{chunk.reason}", span_start, cat="forensics",
                        tid=chunk.rthread, args=args)

    if report is not None:
        count = 0
        for number, race in enumerate(report.races, start=1):
            where = race.symbol or hex(race.address)
            for access, other in ((race.first, race.second),
                                  (race.second, race.first)):
                clock.value = access.timestamp
                tracer.instant(
                    f"race:{where}", cat="race", tid=access.rthread,
                    args={"race": number, "kind": access.kind,
                          "address": hex(race.address),
                          "partner_chunk": other.chunk_index,
                          "partner_thread": other.rthread})
            count += 1
            clock.value = max(race.first.timestamp, race.second.timestamp)
            tracer.counter("races", {"detected": count}, cat="race")
    return tracer
