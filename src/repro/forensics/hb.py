"""The happens-before graph of a recorded execution, at chunk granularity.

Nodes are the chunks in replay-schedule order (see
:func:`repro.analysis.chunks.iter_schedule`). Edges come in two layers:

- **program** — each chunk to its thread's next chunk;
- **sync** — kernel synchronization recovered from the input log:
  ``spawn`` (the parent's SYS_SPAWN chunk to the child's first chunk),
  ``futex`` (a FUTEX_WAKE chunk to each wait it unblocked — waits are
  paired FIFO per futex word in kernel-sequence order, exactly how the
  kernel's own FutexTable dequeues), and ``signal`` (the sender's
  SYS_KILL chunk to the chunk boundary where the receiver's handler ran).

The recording's global timestamps additionally give an *observed* total
order (the schedule itself); that order is deliberately **not** part of
the HB relation — it reflects one interleaving the hardware happened to
record, not an ordering the program enforced. Race detection asks
precisely for pairs the observed order serialized but nothing else did.
RSW only defers a trailing store's visibility to its chunk's boundary
commit; it never reorders across chunks, so it needs no extra edges.

Every edge points forward in schedule order (futex waits log their event
at block time, so a wake's sequence number is always greater than the
waits it satisfies) — the graph is acyclic by construction, which the
property suite checks. A vector-clock layer (highest thread-chunk
ordinal of each R-thread that happens-before a node) answers
``ordered``/``concurrent`` queries in O(threads).

Syscall arguments are not logged (replay regenerates them), so precise
futex-word and signal-target pairing needs the ``syscall_args`` map the
shadow replay captures (kernel seq -> the four argument registers at the
trap). Without it the builder falls back to a conservative single-queue
pairing, which over-orders but never under-orders a single-futex program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..analysis.chunks import ScheduledChunk, iter_schedule
from ..capo.events import EV_SIGNAL, EV_SYSCALL, InputEvent
from ..capo.recording import Recording
from ..kernel.syscalls import (
    SYS_FUTEX_WAIT,
    SYS_FUTEX_WAKE,
    SYS_KILL,
    SYS_SPAWN,
)
from ..mrr.chunk import ChunkEntry

EDGE_PROGRAM = "program"
EDGE_SPAWN = "spawn"
EDGE_FUTEX = "futex"
EDGE_SIGNAL = "signal"
SYNC_EDGE_KINDS = (EDGE_SPAWN, EDGE_FUTEX, EDGE_SIGNAL)

WORD_MASK = ~3


@dataclass(frozen=True)
class SyncLink:
    """One kernel-mediated happens-before edge, in thread coordinates.

    ``src`` and ``dst`` are ``(rthread, thread_index)`` pairs: the edge
    runs from the *end* of the source chunk (where the publishing syscall
    trapped) to the *start* of the destination chunk (where the effect
    became visible). ``seq`` is the kernel sequence number of the
    publishing event — unique per link source, so it doubles as the
    channel id for the detector's vector clocks.
    """

    kind: str
    src: tuple[int, int]
    dst: tuple[int, int]
    seq: int
    detail: str = ""


def _syscall_chunk(event: InputEvent) -> tuple[int, int]:
    """The (rthread, thread_index) of the chunk a syscall event ended.

    ``chunk_seq`` is the thread's chunk count when the event was logged;
    the syscall terminated the chunk just closed, per-thread ordinal
    ``chunk_seq - 1``.
    """
    return (event.rthread, max(0, event.chunk_seq - 1))


def pair_kernel_sync(events: Sequence[InputEvent],
                     syscall_args: Mapping[int, tuple] | None = None,
                     ) -> list[SyncLink]:
    """Recover spawn/futex/signal happens-before links from the input log."""
    links: list[SyncLink] = []
    precise = syscall_args is not None
    args_of = syscall_args or {}
    # Blocked futex waits, FIFO per futex word (or one shared queue in
    # conservative mode), in the order they parked — kernel seq order.
    wait_queues: dict[int | None, list[InputEvent]] = {}
    # Successful kills, FIFO per (target, signo) or one shared queue.
    kill_queues: dict[tuple | None, list[InputEvent]] = {}

    def futex_key(event: InputEvent) -> int | None:
        if not precise:
            return None
        args = args_of.get(event.seq)
        return args[0] & WORD_MASK if args else None

    for event in sorted(events, key=lambda event: event.seq):
        if event.kind == EV_SYSCALL and event.sysno == SYS_SPAWN:
            links.append(SyncLink(EDGE_SPAWN, _syscall_chunk(event),
                                  (event.value, 0), event.seq,
                                  f"spawn t{event.value}"))
        elif event.kind == EV_SYSCALL and event.sysno == SYS_FUTEX_WAIT:
            # Return value 0 means the wait parked and was later woken
            # (an immediate value mismatch completes with EAGAIN). The
            # event is logged at block time, so its seq precedes its
            # waker's.
            if event.value == 0:
                wait_queues.setdefault(futex_key(event), []).append(event)
        elif event.kind == EV_SYSCALL and event.sysno == SYS_FUTEX_WAKE:
            queue = wait_queues.get(futex_key(event), [])
            woken = min(event.value, len(queue))
            for wait in queue[:woken]:
                # The woken thread resumes in its next chunk: per-thread
                # ordinal chunk_seq (the wait ended chunk chunk_seq - 1).
                links.append(SyncLink(
                    EDGE_FUTEX, _syscall_chunk(event),
                    (wait.rthread, wait.chunk_seq), event.seq,
                    f"wake t{wait.rthread}"))
            del queue[:woken]
        elif event.kind == EV_SYSCALL and event.sysno == SYS_KILL:
            if event.value == 0:  # delivered (nonzero is ESRCH etc.)
                if precise:
                    args = args_of.get(event.seq)
                    key = (args[0], args[1]) if args else None
                else:
                    key = None
                kill_queues.setdefault(key, []).append(event)
        elif event.kind == EV_SIGNAL:
            key = (event.rthread, event.value) if precise else None
            queue = kill_queues.get(key, [])
            # Match the earliest unmatched kill that precedes delivery.
            for index, kill in enumerate(queue):
                if kill.seq < event.seq:
                    links.append(SyncLink(
                        EDGE_SIGNAL, _syscall_chunk(kill),
                        (event.rthread, event.chunk_seq), kill.seq,
                        f"signal {event.value} -> t{event.rthread}"))
                    del queue[index]
                    break
    return links


@dataclass(frozen=True)
class HBEdge:
    """One graph edge in schedule coordinates (``src`` before ``dst``)."""

    src: int
    dst: int
    kind: str
    detail: str = ""


@dataclass
class HBGraph:
    """Happens-before over a chunk schedule, with a vector-clock layer."""

    schedule: list[ScheduledChunk]
    sync_edges: list[HBEdge]
    # Links whose endpoints fell outside the schedule (or would point
    # backwards — impossible for a well-formed log, but surfaced rather
    # than silently dropped).
    anomalies: list[str] = field(default_factory=list)
    _clocks: list[dict[int, int]] = field(default_factory=list, repr=False)
    _position: dict[tuple[int, int], int] = field(default_factory=dict,
                                                  repr=False)

    def __post_init__(self) -> None:
        self._position = {
            (scheduled.chunk.rthread, scheduled.thread_index): scheduled.index
            for scheduled in self.schedule}
        incoming: dict[int, list[int]] = {}
        for edge in self.sync_edges:
            incoming.setdefault(edge.dst, []).append(edge.src)
        last_of_thread: dict[int, dict[int, int]] = {}
        for scheduled in self.schedule:
            rthread = scheduled.chunk.rthread
            clock = dict(last_of_thread.get(rthread, {}))
            clock[rthread] = scheduled.thread_index
            for src in incoming.get(scheduled.index, ()):
                for thread, ordinal in self._clocks[src].items():
                    if clock.get(thread, -1) < ordinal:
                        clock[thread] = ordinal
            self._clocks.append(clock)
            last_of_thread[rthread] = clock

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.schedule)

    def position(self, rthread: int, thread_index: int) -> int | None:
        """Schedule index of a thread-coordinate node, if present."""
        return self._position.get((rthread, thread_index))

    def clock(self, index: int) -> dict[int, int]:
        """The node's vector clock: per R-thread, the highest thread-chunk
        ordinal that happens-before (or is) this node."""
        return dict(self._clocks[index])

    def ordered(self, a: int, b: int) -> bool:
        """True iff chunk ``a`` happens-before chunk ``b`` (strictly)."""
        if a == b:
            return False
        if a > b:
            return False  # all edges point forward in the schedule
        node = self.schedule[a]
        return (self._clocks[b].get(node.chunk.rthread, -1)
                >= node.thread_index)

    def concurrent(self, a: int, b: int) -> bool:
        return a != b and not self.ordered(a, b) and not self.ordered(b, a)

    def program_edges(self) -> list[HBEdge]:
        previous: dict[int, int] = {}
        edges = []
        for scheduled in self.schedule:
            rthread = scheduled.chunk.rthread
            if rthread in previous:
                edges.append(HBEdge(previous[rthread], scheduled.index,
                                    EDGE_PROGRAM))
            previous[rthread] = scheduled.index
        return edges

    def edges(self) -> list[HBEdge]:
        return self.program_edges() + list(self.sync_edges)

    def edge_counts(self) -> dict[str, int]:
        counts = {EDGE_PROGRAM: len(self.program_edges())}
        for edge in self.sync_edges:
            counts[edge.kind] = counts.get(edge.kind, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "nodes": len(self.schedule),
            "edges": self.edge_counts(),
            "sync_edges": [{"src": edge.src, "dst": edge.dst,
                            "kind": edge.kind, "detail": edge.detail}
                           for edge in self.sync_edges],
            "anomalies": list(self.anomalies),
        }


def build_hb_graph(chunks: Sequence[ChunkEntry],
                   events: Sequence[InputEvent] = (),
                   syscall_args: Mapping[int, tuple] | None = None,
                   ) -> HBGraph:
    """Build the HB graph of a chunk log (+ input log for sync edges)."""
    schedule = iter_schedule(chunks)
    position = {(sc.chunk.rthread, sc.thread_index): sc.index
                for sc in schedule}
    sync_edges: list[HBEdge] = []
    anomalies: list[str] = []
    for link in pair_kernel_sync(events, syscall_args):
        src = position.get(link.src)
        dst = position.get(link.dst)
        if src is None or dst is None:
            anomalies.append(f"{link.kind} link {link.src}->{link.dst} "
                             "outside the chunk log")
            continue
        if src >= dst:
            anomalies.append(f"{link.kind} link would point backwards "
                             f"({src} -> {dst})")
            continue
        sync_edges.append(HBEdge(src, dst, link.kind, link.detail))
    return HBGraph(schedule, sync_edges, anomalies)


def graph_for(recording: Recording,
              syscall_args: Mapping[int, tuple] | None = None) -> HBGraph:
    """The HB graph of a full recording."""
    return build_hb_graph(recording.chunks, recording.events, syscall_args)
