"""Human-readable rendering of race reports.

The text report leads with the verdict (race count), then one block per
race: the symbolized address, both accesses in chunk/thread/PC
coordinates, and a copy-pasteable ``quickrec inspect --at`` command that
lands the replayer exactly at the racing chunk for register/memory
inspection.
"""

from __future__ import annotations

from ..analysis.report import render_kv, render_table
from ..isa.program import Program

# A data symbol "covers" addresses up to this far past its base when no
# closer symbol follows (arrays are registered by their base word).
SYMBOL_SPAN = 4096


def symbolize(program: Program, addr: int) -> str | None:
    """``name+offset`` for the nearest data symbol at or below ``addr``."""
    best_name, best_base = None, None
    for name, base in program.symbols.items():
        if base <= addr and (best_base is None or base > best_base):
            best_name, best_base = name, base
    if best_name is None or addr - best_base >= SYMBOL_SPAN:
        return None
    offset = addr - best_base
    return best_name if offset == 0 else f"{best_name}+{offset}"


def _access_lines(label: str, access, directory: str | None) -> list[str]:
    lines = [f"  {label}: {access.kind:<5s} chunk {access.chunk_index} "
             f"t{access.rthread} pc={access.pc} ts={access.timestamp}"]
    if directory:
        lines.append(f"         quickrec inspect {directory} "
                     f"--at {access.chunk_index}")
    return lines


def render_race_report(report) -> str:
    """Render a :class:`~repro.forensics.races.RaceReport` as text."""
    header = {
        "program": report.program,
        "window": f"[{report.window[0]}, {report.window[1]}) "
                  f"of {report.total_chunks} chunks",
        "accesses shadowed": report.stats.get("accesses", 0),
        "sync words": len(report.sync_words),
        "data races": len(report.races),
    }
    if report.dropped_races:
        header["dropped (per-word cap)"] = report.dropped_races
    parts = [render_kv(header, title="race forensics")]

    if report.hb:
        edges = report.hb.get("edges", {})
        rows = [(kind, count) for kind, count in sorted(edges.items())]
        parts.append(render_table(("hb edge kind", "count"), rows,
                                  title="happens-before graph"))

    if not report.races:
        parts.append("no data races detected")
    for number, race in enumerate(report.races, start=1):
        where = race.symbol or "?"
        lines = [f"race #{number}: {where} (addr {hex(race.address)})"]
        lines += _access_lines("first ", race.first, report.directory)
        lines += _access_lines("second", race.second, report.directory)
        parts.append("\n".join(lines))

    if report.anomalies:
        parts.append("anomalies:\n" + "\n".join(
            f"  - {anomaly}" for anomaly in report.anomalies))
    return "\n\n".join(parts)
