"""Shadow memory port: observe every replayed access without touching it.

The replayer gives each thread's engine a :class:`~repro.replay.pending.
ReplayPort`; the detector wraps it with a :class:`ShadowPort` that
reports ``(pc, addr, size, write?, atomic?)`` to a sink and forwards the
operation unchanged. ``engine.pc`` still points at the executing
instruction when its memory operations run, so the report carries the
access's program counter.

Instrumentation covers exactly the accesses the *program* makes (loads,
stores, atomics, ``rep`` string ops, stack traffic). Kernel-mediated
copies — read()/write() payload movement applied at chunk boundaries —
bypass the port by design: the input log already totally orders them, so
they cannot race.
"""

from __future__ import annotations


class AccessSink:
    """Interface the detector implements; a no-op base for light passes."""

    def on_access(self, rthread: int, pc: int, addr: int, size: int,
                  is_write: bool, is_atomic: bool) -> None:
        raise NotImplementedError


class ShadowPort:
    """Memory-port decorator: report to the sink, then forward."""

    __slots__ = ("_inner", "_engine", "_rthread", "_sink")

    def __init__(self, inner, engine, rthread: int, sink: AccessSink):
        self._inner = inner
        self._engine = engine
        self._rthread = rthread
        self._sink = sink

    def load(self, addr: int, size: int) -> int:
        self._sink.on_access(self._rthread, self._engine.pc, addr, size,
                             False, False)
        return self._inner.load(addr, size)

    def store(self, addr: int, size: int, value: int) -> None:
        self._sink.on_access(self._rthread, self._engine.pc, addr, size,
                             True, False)
        self._inner.store(addr, size, value)

    def fence(self) -> None:
        self._inner.fence()

    def atomic_load(self, addr: int, size: int) -> int:
        self._sink.on_access(self._rthread, self._engine.pc, addr, size,
                             False, True)
        return self._inner.atomic_load(addr, size)

    def atomic_store(self, addr: int, size: int, value: int) -> None:
        self._sink.on_access(self._rthread, self._engine.pc, addr, size,
                             True, True)
        self._inner.atomic_store(addr, size, value)
