"""Fixed-width table rendering for bench output.

The benchmarks print paper-shaped tables; this keeps them consistent and
readable in pytest output without pulling in a dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row in formatted:
        out.append(line(row))
    return "\n".join(out)


def render_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value block."""
    width = max((len(key) for key in pairs), default=0)
    out = []
    if title:
        out.append(title)
    for key, value in pairs.items():
        out.append(f"  {key.ljust(width)}  {_format_cell(value)}")
    return "\n".join(out)
