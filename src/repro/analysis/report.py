"""Fixed-width table rendering for bench output.

The benchmarks print paper-shaped tables; this keeps them consistent and
readable in pytest output without pulling in a dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row in formatted:
        out.append(line(row))
    return "\n".join(out)


def render_metrics(snapshot: dict[str, Any]) -> str:
    """Render a telemetry metrics snapshot (see ``quickrec stats``).

    Scalars (counters, gauges) become one table; histograms, whose
    snapshot values are summary dicts, become a second table with
    distribution columns.
    """
    scalars = [(name, value) for name, value in snapshot.items()
               if not isinstance(value, dict)]
    histograms = [(name, value) for name, value in snapshot.items()
                  if isinstance(value, dict)]
    parts = []
    if scalars:
        parts.append(render_table(("metric", "value"), scalars,
                                  title="counters and gauges"))
    if histograms:
        rows = [(name, h["count"], h["mean"], h["p50"], h["p90"], h["max"])
                for name, h in histograms]
        parts.append(render_table(
            ("histogram", "count", "mean", "p50", "p90", "max"), rows,
            title="distributions (p50/p90 within a power of two)"))
    return "\n\n".join(parts) if parts else "no metrics recorded"


def render_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value block."""
    width = max((len(key) for key in pairs), default=0)
    out = []
    if title:
        out.append(title)
    for key, value in pairs.items():
        out.append(f"  {key.ljust(width)}  {_format_cell(value)}")
    return "\n".join(out)
