"""Log analysis: the measurements behind the evaluation figures."""

from .chunks import (
    chunk_size_stats,
    rsw_stats,
    size_cdf,
    termination_breakdown,
)
from .logs import LogRates, log_rates
from .report import render_kv, render_table
from .timeline import interleaving_window, render_recording_timeline, render_timeline

__all__ = [
    "chunk_size_stats",
    "rsw_stats",
    "size_cdf",
    "termination_breakdown",
    "LogRates",
    "log_rates",
    "render_kv",
    "render_table",
    "interleaving_window",
    "render_recording_timeline",
    "render_timeline",
]
