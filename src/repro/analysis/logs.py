"""Log-size and log-rate metrics (the F3 figure).

The paper's headline: memory-log generation is "insignificant". We report
bytes per kilo-instruction for the chunk log (raw and compressed) and the
input log, plus an absolute MB/s figure computed at the QuickIA core
frequency (the FPGA Pentium cores ran at 60 MHz; the *relative* numbers
are frequency-independent).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..capo.recording import Recording
from ..session import RunOutcome

QUICKIA_CORE_HZ = 60_000_000


@dataclass(frozen=True)
class LogRates:
    """Log production of one recorded run."""

    name: str
    instructions: int
    cycles: int
    chunk_entries: int
    chunk_bytes_raw: int
    chunk_bytes_compressed: int
    input_events: int
    input_bytes: int
    # v2 (columnar) sizes of the same logs; 0 for rates computed before the
    # v2 codecs existed.
    chunk_bytes_v2: int = 0
    input_bytes_v2: int = 0

    @property
    def chunk_bytes_per_kiloinstruction(self) -> float:
        return 1000.0 * self.chunk_bytes_raw / max(1, self.instructions)

    @property
    def chunk_compressed_per_kiloinstruction(self) -> float:
        return 1000.0 * self.chunk_bytes_compressed / max(1, self.instructions)

    @property
    def input_bytes_per_kiloinstruction(self) -> float:
        return 1000.0 * self.input_bytes / max(1, self.instructions)

    @property
    def input_compression_ratio(self) -> float:
        """v1-over-v2 input-log size ratio (>1 means v2 is smaller)."""
        return self.input_bytes / max(1, self.input_bytes_v2)

    @property
    def chunk_compression_ratio(self) -> float:
        """v1-over-v2 chunk-log size ratio (>1 means v2 is smaller)."""
        return self.chunk_bytes_raw / max(1, self.chunk_bytes_v2)

    @property
    def total_bytes(self) -> int:
        return self.chunk_bytes_raw + self.input_bytes

    def mbytes_per_second(self, core_hz: int = QUICKIA_CORE_HZ,
                          cores: int = 4) -> float:
        """Aggregate log bandwidth at a nominal core frequency.

        ``cycles`` is summed across cores, so wall time is cycles divided
        by (cores * frequency).
        """
        seconds = self.cycles / (core_hz * cores)
        if seconds <= 0:
            return 0.0
        return self.total_bytes / seconds / 1e6

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "instructions": self.instructions,
            "chunk_entries": self.chunk_entries,
            "chunk_B_per_ki": self.chunk_bytes_per_kiloinstruction,
            "chunk_comp_B_per_ki": self.chunk_compressed_per_kiloinstruction,
            "input_B_per_ki": self.input_bytes_per_kiloinstruction,
            "total_bytes": self.total_bytes,
            "chunk_bytes_v2": self.chunk_bytes_v2,
            "input_bytes_v2": self.input_bytes_v2,
        }


def log_rates(outcome: RunOutcome, name: str | None = None) -> LogRates:
    """Compute log rates from a MODE_FULL run outcome."""
    recording = outcome.recording
    if recording is None:
        raise ValueError("log_rates needs a full-stack recording run")
    return LogRates(
        name=name or recording.program.name,
        instructions=outcome.instructions,
        cycles=outcome.total_cycles,
        chunk_entries=len(recording.chunks),
        chunk_bytes_raw=recording.chunk_log_bytes(),
        chunk_bytes_compressed=recording.chunk_log_compressed_bytes(),
        input_events=len(recording.events),
        input_bytes=recording.input_log_bytes(),
        chunk_bytes_v2=recording.chunk_log_bytes(version=2),
        input_bytes_v2=recording.input_log_bytes(version=2),
    )


def input_bytes_by_kind(recording: Recording) -> dict[str, int]:
    """Input-log payload attribution (which event kinds carry the bytes)."""
    sizes: Counter[str] = Counter()
    for event in recording.events:
        # approximate per-event fixed cost + payload
        sizes[event.kind] += 8 + event.payload_bytes
    return dict(sorted(sizes.items()))
