"""Text timelines of a recording's thread interleaving.

Renders the chunk schedule as one row per R-thread over a bucketed
timestamp axis — the at-a-glance view of who ran when and why chunks were
cut, which is how an engineer reads a recording before stepping it with
the inspector.

Bucket glyphs (dominant termination cause in the bucket):

    C  conflict (RAW/WAR/WAW)        s  syscall / nondet trap
    #  size cap / signature saturation
    p  preemption                    x  thread exit
    .  no chunk of this thread ended here
"""

from __future__ import annotations

from ..capo.recording import Recording
from ..mrr.chunk import ChunkEntry, Reason
from .chunks import bucket_index, iter_schedule, timestamp_bounds

_GLYPHS = {
    Reason.RAW: "C",
    Reason.WAR: "C",
    Reason.WAW: "C",
    Reason.SIZE: "#",
    Reason.SATURATION: "#",
    Reason.SYSCALL: "s",
    Reason.NONDET: "s",
    Reason.PREEMPT: "p",
    Reason.EXIT: "x",
}

# Render priority when several causes land in one bucket.
_PRIORITY = {"x": 5, "s": 4, "#": 3, "p": 2, "C": 1, ".": 0}


def render_timeline(chunks: list[ChunkEntry], width: int = 72) -> str:
    """Render a bucketed per-thread timeline of a chunk log."""
    if not chunks:
        return "(empty chunk log)"
    if width < 8:
        raise ValueError("timeline width must be at least 8 columns")
    first, last = timestamp_bounds(chunks)
    span = max(1, last - first + 1)
    rthreads = sorted({chunk.rthread for chunk in chunks})

    rows = {rthread: ["."] * width for rthread in rthreads}
    for chunk in chunks:
        bucket = bucket_index(chunk.timestamp, first, span, width)
        glyph = _GLYPHS[chunk.reason]
        current = rows[chunk.rthread][bucket]
        if _PRIORITY[glyph] > _PRIORITY[current]:
            rows[chunk.rthread][bucket] = glyph

    header = (f"timestamps {first}..{last}  "
              f"({len(chunks)} chunks, {span // width or 1} ts/column)")
    lines = [header]
    for rthread in rthreads:
        count = sum(1 for chunk in chunks if chunk.rthread == rthread)
        lines.append(f"  t{rthread:<3d} |{''.join(rows[rthread])}| "
                     f"{count} chunks")
    lines.append("  key: C conflict  s syscall/nondet  # size/saturation  "
                 "p preempt  x exit")
    return "\n".join(lines)


def render_recording_timeline(recording: Recording, width: int = 72) -> str:
    return render_timeline(recording.chunks, width=width)


def interleaving_window(chunks: list[ChunkEntry], center_index: int,
                        radius: int = 5) -> str:
    """A detailed listing of the schedule around one chunk (for zooming in
    on what the timeline shows)."""
    schedule = iter_schedule(chunks)
    lines = []
    lo = max(0, center_index - radius)
    hi = min(len(schedule), center_index + radius + 1)
    for scheduled in schedule[lo:hi]:
        chunk = scheduled.chunk
        marker = "->" if scheduled.index == center_index else "  "
        lines.append(
            f"{marker} [{scheduled.index:5d}] ts={chunk.timestamp:<8d} "
            f"t{chunk.rthread} {chunk.reason:<10s} "
            f"icount={chunk.icount:<6d} rsw={chunk.rsw}")
    return "\n".join(lines)
