"""Chunk-log statistics: sizes, termination reasons, RSW occupancy.

These drive the F4 (chunk sizes), F5 (termination breakdown) and F6 (RSW)
figures. All functions take a plain sequence of
:class:`~repro.mrr.chunk.ChunkEntry`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..mrr.chunk import ChunkEntry, Reason


@dataclass(frozen=True)
class ScheduledChunk:
    """One chunk placed in the global replay schedule.

    ``index`` is the chunk-schedule position (what ``inspect --at`` and
    checkpoints address); ``thread_index`` is the chunk's ordinal within
    its own R-thread (what input events' ``chunk_seq`` counts).
    """

    index: int
    thread_index: int
    chunk: ChunkEntry


def iter_schedule(chunks: Sequence[ChunkEntry]) -> list[ScheduledChunk]:
    """The chunk log in replay order, with both coordinate systems.

    This is the single chunk-walk used by the timeline renderer, the
    happens-before builder and the race detector; the ordering matches
    :func:`repro.replay.schedule.build_schedule` exactly (sorted by
    ``(timestamp, rthread)``).
    """
    ordered = sorted(chunks, key=lambda chunk: chunk.sort_key)
    counters: Counter[int] = Counter()
    out = []
    for index, chunk in enumerate(ordered):
        out.append(ScheduledChunk(index, counters[chunk.rthread], chunk))
        counters[chunk.rthread] += 1
    return out


def timestamp_bounds(chunks: Sequence[ChunkEntry]) -> tuple[int, int]:
    """(first, last) chunk timestamp of a non-empty log."""
    first = min(chunk.timestamp for chunk in chunks)
    last = max(chunk.timestamp for chunk in chunks)
    return first, last


def bucket_index(timestamp: int, first: int, span: int, width: int) -> int:
    """Map a timestamp onto a ``width``-column axis starting at ``first``."""
    return min(width - 1, (timestamp - first) * width // max(1, span))


@dataclass(frozen=True)
class ChunkSizeStats:
    count: int
    total_instructions: int
    mean: float
    median: int
    p90: int
    p99: int
    maximum: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def chunk_size_stats(chunks: Sequence[ChunkEntry]) -> ChunkSizeStats:
    """Distribution statistics over chunk instruction counts."""
    if not chunks:
        return ChunkSizeStats(0, 0, 0.0, 0, 0, 0, 0)
    sizes = sorted(chunk.icount for chunk in chunks)
    count = len(sizes)

    def pct(fraction: float) -> int:
        return sizes[min(count - 1, int(fraction * count))]

    return ChunkSizeStats(
        count=count,
        total_instructions=sum(sizes),
        mean=sum(sizes) / count,
        median=pct(0.50),
        p90=pct(0.90),
        p99=pct(0.99),
        maximum=sizes[-1],
    )


def size_cdf(chunks: Sequence[ChunkEntry],
             points: Sequence[int] = (1, 10, 100, 1000, 10_000, 100_000),
             ) -> list[tuple[int, float]]:
    """CDF samples: fraction of chunks with icount <= each point."""
    if not chunks:
        return [(point, 0.0) for point in points]
    sizes = sorted(chunk.icount for chunk in chunks)
    count = len(sizes)
    out = []
    index = 0
    for point in sorted(points):
        while index < count and sizes[index] <= point:
            index += 1
        out.append((point, index / count))
    return out


def termination_breakdown(chunks: Sequence[ChunkEntry],
                          group_conflicts: bool = False) -> dict[str, float]:
    """Fraction of chunks ended by each reason (sums to 1)."""
    if not chunks:
        return {}
    counts = Counter(chunk.reason for chunk in chunks)
    if group_conflicts:
        merged = Counter()
        for reason, value in counts.items():
            merged["conflict" if reason in Reason.CONFLICTS else reason] += value
        counts = merged
    total = sum(counts.values())
    return {reason: value / total for reason, value in sorted(counts.items())}


@dataclass(frozen=True)
class RSWStats:
    chunks: int
    nonzero: int
    fraction_nonzero: float
    mean_nonzero: float
    maximum: int
    histogram: dict[int, int]

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["histogram"] = dict(self.histogram)
        return out


def rsw_stats(chunks: Sequence[ChunkEntry]) -> RSWStats:
    """Reordered-store-window occupancy across a chunk log."""
    histogram = Counter(chunk.rsw for chunk in chunks)
    nonzero = [chunk.rsw for chunk in chunks if chunk.rsw > 0]
    return RSWStats(
        chunks=len(chunks),
        nonzero=len(nonzero),
        fraction_nonzero=len(nonzero) / len(chunks) if chunks else 0.0,
        mean_nonzero=sum(nonzero) / len(nonzero) if nonzero else 0.0,
        maximum=max(nonzero, default=0),
        histogram=dict(sorted(histogram.items())),
    )


def per_thread_chunks(chunks: Sequence[ChunkEntry]) -> dict[int, int]:
    return dict(sorted(Counter(chunk.rthread for chunk in chunks).items()))
