"""Command-line interface: ``quickrec`` (or ``python -m repro``).

Subcommands::

    quickrec list                         # available workloads
    quickrec record fft -o /tmp/rec       # record a workload to disk
    quickrec record fft --trace t.json    # ... with a Perfetto-loadable trace
    quickrec record fft -o /tmp/rec --checkpoint-every 64   # + checkpoints
    quickrec stats fft                    # record + replay, metrics tables
    quickrec replay /tmp/rec              # replay + verify a saved recording
    quickrec replay /tmp/rec --jobs 4     # parallel interval replay
    quickrec replay /tmp/rec --until 100  # O(interval) seek to a position
    quickrec inspect /tmp/rec --at 100    # thread states at a position
    quickrec roundtrip fft radix          # record, replay, verify in memory
    quickrec overhead fft --seed 3        # native / hw / full cycle compare
    quickrec info /tmp/rec                # recording summary (--json too)
    quickrec timeline /tmp/rec            # per-thread interleaving timeline
    quickrec analyze /tmp/rec             # HB graph + data-race forensics
    quickrec analyze /tmp/rec --at 40 --until 120 --trace races.json
    quickrec debug /tmp/rec --watch counter   # replay until a word changes
    quickrec bench-all --quick            # simulation-rate perf trajectory

Exit codes: 0 success, 1 library error (:class:`~repro.errors.ReproError`
or a failed verification), 2 usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from . import __version__, session, workloads
from .analysis import chunks as chunk_analysis
from .perf import bench
from .analysis.report import render_kv, render_metrics, render_table
from .capo.recording import FLIGHT_META_KEY, Recording
from .config import (
    COHERENCE_MODELS,
    DEFAULT_CONFIG,
    LOG_VERSIONS,
    SimConfig,
    TelemetryConfig,
)
from .errors import ReproError

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=None,
                        help="thread count (default: workload default)")
    parser.add_argument("--scale", type=int, default=1,
                        help="problem-size multiplier")
    parser.add_argument("--seed", type=int, default=0,
                        help="interleaving seed")
    parser.add_argument("--policy", default="random",
                        choices=("random", "rr", "bursty"))


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [(w.name, w.category, w.default_threads, w.description)
            for _name, w in sorted(workloads.REGISTRY.items())]
    print(render_table(("name", "kind", "threads", "description"), rows,
                       title="available workloads"))
    return 0


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--coherence", default=None,
                        choices=COHERENCE_MODELS,
                        help="coherence fabric (default: snoop; directory "
                             "is bit-identical and notifies only sharers)")
    parser.add_argument("--cores", type=int, default=None, metavar="N",
                        help="machine core count (default: config default)")


def _machine_overrides(args: argparse.Namespace,
                       config: SimConfig) -> SimConfig:
    """Fold --coherence/--cores into ``config``."""
    machine = config.machine
    if getattr(args, "coherence", None) is not None:
        machine = dataclasses.replace(machine, coherence=args.coherence)
    if getattr(args, "cores", None) is not None:
        machine = dataclasses.replace(machine, num_cores=args.cores)
    if machine is not config.machine:
        config = dataclasses.replace(config, machine=machine)
    return config


def _add_flight_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight-window", type=int, default=0, metavar="N",
                        help="flight-recorder mode: retain only the last N "
                             "epochs of chunk/input state in a bounded ring "
                             "(0 = unbounded recording)")
    parser.add_argument("--flight-epoch", type=int, default=None, metavar="K",
                        help="chunks per flight epoch (default: "
                             f"{DEFAULT_CONFIG.capo.flight_epoch_chunks})")


def _flight_overrides(args: argparse.Namespace,
                      config: SimConfig) -> SimConfig:
    """Fold --flight-window/--flight-epoch into ``config.capo``."""
    capo = config.capo
    if getattr(args, "flight_window", 0):
        capo = dataclasses.replace(capo, flight_window=args.flight_window)
    if getattr(args, "flight_epoch", None) is not None:
        capo = dataclasses.replace(capo,
                                   flight_epoch_chunks=args.flight_epoch)
    if capo is not config.capo:
        config = dataclasses.replace(config, capo=capo)
    return config


def _traced_config(args: argparse.Namespace) -> SimConfig:
    """The default config with telemetry switched on."""
    return dataclasses.replace(
        DEFAULT_CONFIG,
        telemetry=TelemetryConfig(enabled=True, sampling=args.sampling))


def _flight_trigger(args: argparse.Namespace, outcome) -> str | None:
    """Why a crash bundle should be captured, or None."""
    from .flight import detect_fault
    if getattr(args, "flight_capture", False):
        return "explicit capture (--flight-capture)"
    return detect_fault(outcome)


def _record_repro(args: argparse.Namespace) -> str:
    """The copy-pasteable command that reproduces this recording run."""
    parts = [f"quickrec record {args.workload} --seed {args.seed}",
             f"--policy {args.policy}", f"--scale {args.scale}"]
    if args.threads is not None:
        parts.append(f"--threads {args.threads}")
    if getattr(args, "flight_window", 0):
        parts.append(f"--flight-window {args.flight_window}")
    if getattr(args, "flight_epoch", None) is not None:
        parts.append(f"--flight-epoch {args.flight_epoch}")
    return " ".join(parts)


def _cmd_record(args: argparse.Namespace) -> int:
    program, inputs = workloads.build(args.workload, threads=args.threads,
                                      scale=args.scale)
    config = _traced_config(args) if args.trace else DEFAULT_CONFIG
    if args.log_version != 1 or args.batch:
        config = dataclasses.replace(
            config,
            capo=dataclasses.replace(config.capo,
                                     input_log_version=args.log_version,
                                     chunk_log_version=args.log_version,
                                     input_batch_events=args.batch))
    config = _flight_overrides(args, _machine_overrides(args, config))
    outcome = session.record(program, seed=args.seed, policy=args.policy,
                             input_files=inputs, config=config)
    recording = outcome.recording
    rows = {
        "workload": args.workload,
        "instructions": outcome.instructions,
        "chunks": len(recording.chunks),
        "input events": len(recording.events),
        "chunk log bytes": recording.chunk_log_bytes(),
        "input log bytes": recording.input_log_bytes(),
        "cycles": outcome.total_cycles,
    }
    if config.machine.coherence == "directory":
        bus = outcome.machine_stats["bus"]
        rows["coherence"] = "directory"
        rows["notifies sent"] = bus["notifies_sent"]
        rows["notifies saved vs broadcast"] = bus["notifies_saved"]
        sharers = bus["sharer_hist"]
        rows["sharer set sizes"] = ", ".join(
            f"{size}:{count}" for size, count in sorted(sharers.items()))
    if args.checkpoint_every:
        session.add_checkpoints(recording, args.checkpoint_every,
                                telemetry=outcome.telemetry)
        rows["checkpoints"] = len(recording.checkpoints)
        rows["checkpoint section bytes"] = recording.checkpoint_log_bytes()
    flight = recording.metadata.get(FLIGHT_META_KEY)
    if flight is not None:
        rows["flight window"] = (f"{flight['window']} epochs x "
                                 f"{flight['epoch_chunks']} chunks")
        rows["flight evictions"] = flight["evictions"]
        rows["window chunks / recorded"] = (f"{len(recording.chunks)} / "
                                            f"{flight['chunks_seen']}")
        rows["window events / recorded"] = (f"{len(recording.events)} / "
                                            f"{flight['events_seen']}")
    print(render_kv(rows, title="recorded"))
    if args.out:
        recording.save(args.out)
        print(f"saved to {args.out}")
    trigger = _flight_trigger(args, outcome)
    if flight is not None and trigger is not None:
        from .flight import write_crash_bundle
        bundle_dir = (f"{args.out}-crash" if args.out
                      else f"{args.workload}-crash")
        repro = _record_repro(args)
        bundle = write_crash_bundle(bundle_dir, recording, trigger=trigger,
                                    repro=repro)
        manifest = json.loads((bundle / "crash.json").read_text())
        replay = manifest.get("replay")
        verdict = ("(replay failed)" if replay is None
                   else "yes" if replay["ok"] else "DIVERGED")
        races = manifest.get("races")
        print(render_kv({
            "trigger": trigger,
            "replays to fault": verdict,
            "races in window": "(analyzer failed)" if races is None
                               else races,
            "bundle": str(bundle),
        }, title="crash capture"))
    elif trigger is not None:
        print(f"note: {trigger}; rerun with --flight-window to capture "
              "a crash bundle")
    if args.trace:
        outcome.telemetry.tracer.save(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(outcome.telemetry.tracer)} events; open in Perfetto)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    program, inputs = workloads.build(args.workload, threads=args.threads,
                                      scale=args.scale)
    outcome = session.record(program, seed=args.seed, policy=args.policy,
                             input_files=inputs,
                             config=_flight_overrides(
                                 args, _machine_overrides(
                                     args, _traced_config(args))))
    telemetry = outcome.telemetry
    if not args.no_replay:
        session.replay_recording(outcome.recording, telemetry=telemetry)
    if args.json:
        print(json.dumps(telemetry.snapshot(), indent=2, sort_keys=True))
        return 0
    print(render_metrics(telemetry.snapshot()))
    if args.trace:
        telemetry.tracer.save(args.trace)
        print(f"\ntrace written to {args.trace} "
              f"({len(telemetry.tracer)} events; open in Perfetto)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    recording = Recording.load(args.directory)
    if args.until is not None:
        from .replay.checkpoint import capture_state, replayer_at, \
            state_digest
        replayer = replayer_at(recording, args.until)
        nearest = recording.nearest_checkpoint(args.until)
        base = nearest.position if nearest else 0
        print(render_kv({
            "position": replayer.position,
            "restored from checkpoint":
                base if base else "(none: replayed prefix)",
            "chunks stepped": replayer.position - base,
            "state digest": state_digest(capture_state(replayer)),
        }, title=f"seek to chunk {args.until}"))
        return 0
    if args.jobs > 1:
        from .replay.parallel import replay_parallel
        result, report = replay_parallel(
            recording=recording, directory=args.directory, jobs=args.jobs)
    else:
        result, report = session.replay_recording(recording), None
    meta = recording.metadata
    ok = True
    if "final_memory_digest" in meta:
        from .replay.verify import verify_replay
        outputs = {name: bytes.fromhex(data)
                   for name, data in meta.get("outputs_hex", {}).items()}
        exit_codes = {int(tid): code
                      for tid, code in meta.get("exit_codes", {}).items()}
        verification = verify_replay(meta["final_memory_digest"], outputs,
                                     exit_codes, result)
        print(verification.summary())
        ok = verification.ok
    else:
        print("replayed (no verification metadata in bundle)")
    rows = {
        "chunks replayed": result.stats.chunks,
        "units executed": result.stats.units,
        "events applied": result.stats.events,
        "result digest": result.digest(),
    }
    if report is not None:
        rows["jobs"] = report.jobs
        rows["intervals"] = len(report.intervals)
        rows["seams verified"] = report.seams_verified
        rows["parallel wall s"] = round(report.wall_s, 4)
        rows["speedup bound"] = round(report.speedup_bound, 2)
    print(render_kv(rows))
    return 0 if ok else 1


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    failures = 0
    for name in args.workloads:
        program, inputs = workloads.build(name, threads=args.threads,
                                          scale=args.scale)
        outcome, _replayed, report = session.record_and_replay(
            program, seed=args.seed, policy=args.policy, input_files=inputs)
        status = "ok" if report.ok else "DIVERGED"
        print(f"{name:12s} {status}  instr={outcome.instructions:,} "
              f"chunks={len(outcome.recording.chunks):,}")
        if not report.ok:
            failures += 1
            print("  " + report.summary())
    return 1 if failures else 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from .perf.overhead import measure_overhead
    rows = []
    for name in args.workloads:
        program, inputs = workloads.build(name, threads=args.threads,
                                          scale=args.scale)
        result = measure_overhead(program, seed=args.seed, policy=args.policy,
                                  input_files=inputs, name=name,
                                  batch_events=args.batch or None)
        row = [name, result.native.total_cycles,
               100 * result.hw_overhead, 100 * result.full_overhead]
        if args.batch:
            row.append(100 * result.batched_overhead)
        rows.append(tuple(row))
    headers = ["workload", "native cycles", "hw ovh %", "full ovh %"]
    if args.batch:
        headers.append(f"batched({args.batch}) %")
    print(render_table(
        tuple(headers), rows,
        title="recording overhead (cycles, identical interleavings)"))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    recording = Recording.load(args.directory)
    stats = chunk_analysis.chunk_size_stats(recording.chunks)
    breakdown = chunk_analysis.termination_breakdown(recording.chunks,
                                                     group_conflicts=True)
    summary = {
        "program": recording.program.name,
        "rthreads": len(recording.rthreads()),
        "chunks": stats.count,
        "mean chunk (instr)": stats.mean,
        "p90 chunk": stats.p90,
        "chunk log bytes": recording.chunk_log_bytes(),
        "compressed bytes": recording.chunk_log_compressed_bytes(),
        "input events": len(recording.events),
        "input log bytes": recording.input_log_bytes(),
        "checkpoints": len(recording.checkpoints),
        "checkpoint section bytes": recording.checkpoint_log_bytes(),
    }
    if args.json:
        print(json.dumps({"summary": summary,
                          "terminations": dict(breakdown)},
                         indent=2, sort_keys=True))
        return 0
    print(render_kv(summary, title=f"recording at {args.directory}"))
    print(render_table(("reason", "fraction"),
                       [(reason, frac) for reason, frac in breakdown.items()],
                       title="chunk terminations"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_timeline
    from .forensics import analyze_recording, export_trace, render_race_report

    recording = Recording.load(args.directory)
    report, graph = analyze_recording(
        recording, start=args.at, until=args.until,
        directory=args.directory, max_races_per_address=args.max_races)
    print(render_race_report(report))
    start, until = report.window
    window_chunks = [sc.chunk for sc in graph.schedule[start:until]]
    if window_chunks:
        print()
        print(render_timeline(window_chunks, width=args.width))
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(report.as_dict(), indent=2))
        print(f"\njson report written to {args.json}")
    if args.trace:
        tracer = export_trace(recording, report=report, graph=graph,
                              start=start, until=until)
        tracer.save(args.trace)
        print(f"trace written to {args.trace} "
              f"({len(tracer)} events; open in Perfetto)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from .replay.checkpoint import replayer_at

    recording = Recording.load(args.directory)
    position = args.at if args.at is not None else len(recording.chunks)
    replayer = replayer_at(recording, position)
    nearest = recording.nearest_checkpoint(position)
    base = nearest.position if nearest else 0
    print(render_kv({
        "position": f"{replayer.position}/{len(recording.chunks)}",
        "embedded checkpoints": len(recording.checkpoints),
        "restored from": f"checkpoint at {base}" if base
                         else "start (no earlier checkpoint)",
        "chunks stepped": replayer.position - base,
    }, title=f"replay state at chunk {position}"))
    print("\nthread states:")
    for rthread in sorted(replayer.threads):
        ctx = replayer.threads[rthread]
        status = "exited" if ctx.finished else f"pc={ctx.engine.pc}"
        print(f"  t{rthread}: {status}, retired={ctx.engine.retired:,}, "
              f"chunks={ctx.completed_chunks}, "
              f"withheld stores={len(ctx.withheld)}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .analysis.timeline import render_recording_timeline

    recording = Recording.load(args.directory)
    print(render_recording_timeline(recording, width=args.width))
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    from .analysis.timeline import interleaving_window
    from .replay.inspect import ReplayInspector

    recording = Recording.load(args.directory)
    inspector = ReplayInspector(recording)
    if args.watch is not None:
        hit = inspector.watch_word(inspector.resolve(args.watch, args.index))
        if hit is None:
            print(f"{args.watch}[{args.index}] never changes; "
                  f"replayed {inspector.position} chunks")
            return 0
        print(f"{args.watch}[{args.index}] changed "
              f"{hit.old_value} -> {hit.new_value} in chunk "
              f"#{hit.chunk_index} (t{hit.chunk.rthread}, "
              f"ts={hit.chunk.timestamp}, {hit.chunk.reason})")
        print("\nschedule around the change:")
        print(interleaving_window(recording.chunks, hit.chunk_index))
    elif args.until_chunk is not None:
        inspector.run_to_index(args.until_chunk)
        print(f"stopped at chunk {inspector.position}/"
              f"{inspector.total_chunks}")
    else:
        inspector.run_to_end()
        print(f"replayed all {inspector.total_chunks} chunks")

    print("\nthread states:")
    for rthread in inspector.threads():
        view = inspector.thread_view(rthread)
        status = "exited" if view.finished else f"pc={view.pc}"
        print(f"  t{rthread}: {status}, retired={view.retired:,}, "
              f"chunks={view.completed_chunks}, "
              f"withheld stores={view.withheld_stores}")
    if not inspector.finished and inspector.threads():
        rthread = inspector.next_chunk().rthread
        print(f"\nnext chunk belongs to t{rthread}; code around its pc:")
        print(inspector.disassemble_at(rthread))
    return 0


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .soak import (
        SoakOptions,
        repro_command,
        rerun_artifact,
        run_campaign,
        write_artifact,
    )
    from .telemetry import Telemetry

    if args.from_artifact:
        failures, which = rerun_artifact(args.from_artifact)
        if not failures:
            print(f"{which} case no longer fails")
            return 0
        print(f"{which} case still fails ({len(failures)} checks):")
        for failure in failures:
            print("  " + failure.headline())
        return 1

    if args.inject and not args.matrix:
        print("error: --inject needs --matrix (the perturbed variant only "
              "runs there)", file=sys.stderr)
        return EXIT_USAGE
    if args.flight and not args.artifacts:
        print("error: --flight needs --artifacts (the crash bundle is "
              "written next to the triage artifact)", file=sys.stderr)
        return EXIT_USAGE

    options = SoakOptions(matrix=args.matrix, shrink=args.shrink,
                          inject=args.inject,
                          max_shrink_evals=args.max_shrink_evals,
                          flight_window=args.flight)
    telemetry = Telemetry(enabled=True) if args.trace else None
    report = run_campaign(args.count, base_seed=args.base_seed,
                          jobs=args.jobs, options=options,
                          telemetry=telemetry)

    mode = "matrix differential" if args.matrix else "record/replay/verify"
    print(f"fuzz ({mode}, jobs={args.jobs}): "
          f"{report.verified}/{report.runs} seeds verified")
    for verdict in report.failing:
        print(f"\nseed {verdict.seed}: {len(verdict.failures)} failed "
              "check(s)")
        for failure in verdict.failures:
            print(f"  [{failure.kind}] variant {failure.variant}:")
            print(_indent(failure.detail))
        if verdict.shrunk is not None:
            shrunk = verdict.shrunk
            print(f"  shrunk: {shrunk.ops_before} -> {shrunk.ops_after} ops "
                  f"in {shrunk.evals} evaluations")
        print(f"  repro: {repro_command(verdict.seed, options)}")
        if args.artifacts:
            path = write_artifact(args.artifacts, verdict, options)
            print(f"  triage artifact: {path}")
            bundle = path.parent / f"seed-{verdict.seed}-flight"
            if bundle.is_dir():
                print(f"  flight crash bundle: {bundle}")
    if args.trace:
        telemetry.tracer.save(args.trace)
        print(f"trace written to {args.trace}")
    return 0 if report.ok else 1


def _cmd_bench_all(args: argparse.Namespace) -> int:
    return bench.run(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quickrec",
        description="QuickRec reproduction: record and replay multithreaded "
                    "programs on a simulated multicore IA machine.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads").set_defaults(fn=_cmd_list)

    p_record = sub.add_parser("record", help="record one workload")
    p_record.add_argument("workload")
    p_record.add_argument("-o", "--out", default=None,
                          help="directory to save the recording bundle")
    p_record.add_argument("--trace", default=None, metavar="PATH",
                          help="write a Chrome trace-event JSON file "
                               "(open in Perfetto / chrome://tracing)")
    p_record.add_argument("--sampling", type=int, default=64,
                          help="telemetry sampling period for per-step "
                               "machine events (default 64)")
    p_record.add_argument("--checkpoint-every", type=int, default=0,
                          metavar="K",
                          help="embed a replay-state checkpoint every K "
                               "chunk-schedule positions (0 = off); "
                               "enables parallel replay and fast seek")
    p_record.add_argument("--log-version", type=int, default=1,
                          choices=LOG_VERSIONS, metavar="V",
                          help="input/chunk log serialization version "
                               "(1 = row-packed, 2 = columnar; default 1)")
    p_record.add_argument("--batch", type=int, default=0, metavar="N",
                          help="batch input logging in per-thread buffers "
                               "of N events (0 = per-event; logs are "
                               "bit-identical either way)")
    p_record.add_argument("--flight-capture", action="store_true",
                          help="with --flight-window: write a crash bundle "
                               "even when the run looks clean (explicit "
                               "trigger)")
    _add_workload_args(p_record)
    _add_machine_args(p_record)
    _add_flight_args(p_record)
    p_record.set_defaults(fn=_cmd_record)

    p_stats = sub.add_parser(
        "stats", help="record (and replay) a workload with telemetry on, "
                      "then render the metrics snapshot")
    p_stats.add_argument("workload")
    p_stats.add_argument("--trace", default=None, metavar="PATH",
                         help="also write the Chrome trace-event JSON file")
    p_stats.add_argument("--sampling", type=int, default=64,
                         help="telemetry sampling period (default 64)")
    p_stats.add_argument("--no-replay", action="store_true",
                         help="skip the replay pass (record-side metrics only)")
    p_stats.add_argument("--json", action="store_true",
                         help="print the metrics snapshot as JSON instead "
                              "of tables")
    _add_workload_args(p_stats)
    _add_machine_args(p_stats)
    _add_flight_args(p_stats)
    p_stats.set_defaults(fn=_cmd_stats)

    p_replay = sub.add_parser("replay", help="replay a saved recording")
    p_replay.add_argument("directory")
    p_replay.add_argument("--jobs", type=int, default=1,
                          help="replay checkpoint intervals across N worker "
                               "processes (needs embedded checkpoints; "
                               "output is identical at any job count)")
    p_replay.add_argument("--until", type=int, default=None, metavar="CHUNK",
                          help="seek to a chunk position (O(interval) with "
                               "embedded checkpoints) instead of replaying "
                               "to the end")
    p_replay.set_defaults(fn=_cmd_replay)

    p_round = sub.add_parser("roundtrip",
                             help="record+replay+verify workloads in memory")
    p_round.add_argument("workloads", nargs="+")
    _add_workload_args(p_round)
    p_round.set_defaults(fn=_cmd_roundtrip)

    p_ovh = sub.add_parser("overhead", help="native/hw/full cycle comparison")
    p_ovh.add_argument("workloads", nargs="+")
    p_ovh.add_argument("--batch", type=int, default=0, metavar="N",
                       help="also measure a full-stack run with input "
                            "logging batched N events per flush")
    _add_workload_args(p_ovh)
    p_ovh.set_defaults(fn=_cmd_overhead)

    p_info = sub.add_parser("info", help="summarize a saved recording")
    p_info.add_argument("directory")
    p_info.add_argument("--json", action="store_true",
                        help="print the summary as JSON instead of tables")
    p_info.set_defaults(fn=_cmd_info)

    p_analyze = sub.add_parser(
        "analyze", help="race forensics: replay with shadowed memory, "
                        "report HB-concurrent conflicting accesses")
    p_analyze.add_argument("directory")
    p_analyze.add_argument("--at", type=int, default=0, metavar="CHUNK",
                           help="window start (chunk-schedule position; "
                                "seeks via embedded checkpoints)")
    p_analyze.add_argument("--until", type=int, default=None, metavar="CHUNK",
                           help="window end, exclusive (default: end of log)")
    p_analyze.add_argument("--json", default=None, metavar="PATH",
                           help="also write the structured report as JSON")
    p_analyze.add_argument("--trace", default=None, metavar="PATH",
                           help="also write a Chrome trace-event JSON file "
                                "of the schedule with race markers "
                                "(open in Perfetto)")
    p_analyze.add_argument("--width", type=int, default=72,
                           help="timeline width in columns (default 72)")
    p_analyze.add_argument("--max-races", type=int, default=16,
                           metavar="N",
                           help="cap reported races per word (default 16)")
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_inspect = sub.add_parser(
        "inspect", help="thread states at a chunk position (O(interval) "
                        "seek via embedded checkpoints)")
    p_inspect.add_argument("directory")
    p_inspect.add_argument("--at", type=int, default=None, metavar="CHUNK",
                           help="chunk-schedule position (default: end)")
    p_inspect.set_defaults(fn=_cmd_inspect)

    p_timeline = sub.add_parser("timeline",
                                help="per-thread interleaving timeline")
    p_timeline.add_argument("directory")
    p_timeline.add_argument("--width", type=int, default=72)
    p_timeline.set_defaults(fn=_cmd_timeline)

    p_debug = sub.add_parser(
        "debug", help="step a recording: watch a word or stop at a chunk")
    p_debug.add_argument("directory")
    p_debug.add_argument("--watch", default=None,
                         help="data symbol (or address) to watch for change")
    p_debug.add_argument("--index", type=int, default=0,
                         help="word index within the watched symbol")
    p_debug.add_argument("--until-chunk", type=int, default=None,
                         help="replay until this chunk index")
    p_debug.set_defaults(fn=_cmd_debug)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential soak: random racy programs across a "
                     "config lattice, with failure shrinking")
    p_fuzz.add_argument("--count", type=int, default=20)
    p_fuzz.add_argument("--base-seed", type=int, default=0)
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = in-process); "
                             "verdicts are identical at any job count")
    p_fuzz.add_argument("--matrix", action="store_true",
                        help="run each seed across the implementation-"
                             "variant lattice and fail on any divergence")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="delta-debug failing seeds to minimal "
                             "reproducers")
    p_fuzz.add_argument("--max-shrink-evals", type=int, default=200,
                        help="evaluation budget per shrink (default 200)")
    p_fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write a triage artifact per failing seed")
    p_fuzz.add_argument("--flight", type=int, default=0, metavar="N",
                        help="with --artifacts: re-record each failing seed "
                             "under an N-epoch flight ring and write a "
                             "crash bundle beside its artifact")
    p_fuzz.add_argument("--from-artifact", default=None, metavar="PATH",
                        help="re-run a triage artifact's (minimized) case "
                             "instead of a campaign")
    p_fuzz.add_argument("--inject", default=None,
                        choices=("decode-cache", "snoop-filter"),
                        help="fault-inject one variant (harness self-test; "
                             "needs --matrix)")
    p_fuzz.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace of the campaign")
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_bench = sub.add_parser(
        "bench-all", help="simulation-rate benchmarks with a perf "
                          "trajectory (appends to BENCH_simrate.json)")
    bench.add_args(p_bench)
    p_bench.set_defaults(fn=_cmd_bench_all)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits itself: 0 for --help/--version, 2 for usage errors.
        code = exc.code
        return code if isinstance(code, int) else EXIT_USAGE
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
