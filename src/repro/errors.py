"""Exception hierarchy for the QuickRec reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MachineFault(ReproError):
    """Raised when a core faults (bad memory access, illegal instruction)."""

    def __init__(self, message: str, core_id: int | None = None, pc: int | None = None):
        self.core_id = core_id
        self.pc = pc
        where = ""
        if core_id is not None:
            where += f" core={core_id}"
        if pc is not None:
            where += f" pc={pc:#x}"
        super().__init__(message + where)


class MemoryAccessError(MachineFault):
    """Raised on out-of-range or misaligned physical memory access."""


class IllegalInstructionError(MachineFault):
    """Raised when a core decodes an unknown or malformed instruction."""


class KernelError(ReproError):
    """Raised on invalid OS-model operations (bad syscall, dead task, ...)."""


class RecordingError(ReproError):
    """Raised when recording cannot proceed (sphere misuse, CBUF misuse)."""


class LogFormatError(ReproError):
    """Raised when a serialized log cannot be decoded."""


class ReplayDivergenceError(ReproError):
    """Raised when replay observably diverges from the recorded execution.

    Divergence means the logs were insufficient or the replayer is wrong;
    it always indicates a bug, never a benign condition.
    """

    def __init__(self, message: str, rthread: int | None = None, icount: int | None = None):
        self.rthread = rthread
        self.icount = icount
        where = ""
        if rthread is not None:
            where += f" rthread={rthread}"
        if icount is not None:
            where += f" icount={icount}"
        super().__init__(message + where)


class ConfigError(ReproError):
    """Raised when a configuration value is out of its legal range."""


class WorkloadError(ReproError):
    """Raised when a workload is misconfigured or unknown."""
