"""The process-facing telemetry facade.

One :class:`Telemetry` value bundles a :class:`~repro.telemetry.tracer.Tracer`
and a :class:`~repro.telemetry.metrics.MetricsRegistry` and travels with a
run: the session builds it from ``SimConfig.telemetry`` and hands it to the
machine, the RSM, the kernel and the replayer.

The disabled path is the contract that matters: every instrumentation site
guards with ``if telemetry.enabled:`` — a single attribute load — so a run
with telemetry off executes the same instructions, charges the same cycles
and produces bit-identical digests as a build without the subsystem. The
shared :data:`NULL_TELEMETRY` singleton is what every component defaults
to; it is never mutated.

Diagnostics that are *messages* rather than events (mode completions,
finalize summaries) go through stdlib logging under the ``repro.*``
namespace via :func:`get_logger`; the root ``repro`` logger carries a
``NullHandler`` so the library stays silent unless the application opts
in.
"""

from __future__ import annotations

import logging

from .metrics import MetricsRegistry
from .tracer import Tracer

logging.getLogger("repro").addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A library logger under the ``repro.`` namespace."""
    return logging.getLogger(f"repro.{name}")


class Telemetry:
    """Tracer + metrics + the enabled flag, as one value."""

    def __init__(self, enabled: bool = True, sampling: int = 1):
        self.enabled = enabled
        self.sampling = max(1, sampling)
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    @classmethod
    def from_config(cls, config) -> "Telemetry":
        """Build from a :class:`~repro.config.TelemetryConfig`; a disabled
        config yields the shared no-op singleton."""
        if not config.enabled:
            return NULL_TELEMETRY
        return cls(enabled=True, sampling=config.sampling)

    def snapshot(self) -> dict:
        """The metrics registry as plain values (see ``quickrec stats``)."""
        return self.metrics.snapshot()


#: Shared no-op instance: ``enabled`` is False and nothing ever writes to
#: its tracer or registry (instrumentation sites must guard on
#: ``telemetry.enabled`` before touching either).
NULL_TELEMETRY = Telemetry(enabled=False)
