"""Metric primitives: counters, gauges, histograms, and their registry.

Metrics are cheap, process-local aggregates meant to be read once at the
end of a run (``quickrec stats``) or sampled into the trace. The design
constraints, in order:

1. *Zero influence on execution* — metrics never touch machine state,
   never charge cycles, and are updated only from observation hooks.
2. *Cheap when hot* — ``Counter.inc`` is one attribute add; histograms
   bucket by bit length instead of storing samples.
3. *Stable names* — dotted ``layer.metric`` names (``mrr.chunks_total``)
   so snapshots group naturally by subsystem.
"""

from __future__ import annotations

from typing import Any


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins scalar (sizes, occupancies, totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A power-of-two bucketed distribution of non-negative values.

    Buckets are keyed by ``int(value).bit_length()`` so observation is a
    dict increment, not a sample append — the distribution stays bounded
    no matter how many chunks a run produces. Fractional values in
    ``[0, 1)`` (e.g. signature saturation) should be scaled by the caller
    before observation (we record occupancy as a percentage).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated percentile: the upper bound of the bucket that the
        requested rank falls in (exact to within a factor of two)."""
        if not self.count:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return float((1 << bucket) - 1) if bucket else 0.0
        return float(self.max or 0)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min or 0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "max": self.max or 0,
        }


class MetricsRegistry:
    """Named metric store: get-or-create handles, one flat namespace."""

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, Any]:
        """All metrics as plain values: counters/gauges to scalars,
        histograms to their summary dicts, sorted by name."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out
