"""Structured tracing in the Chrome trace-event JSON format.

The tracer accumulates span (``X``), instant (``i``), counter (``C``) and
metadata (``M``) events and exports them as a ``{"traceEvents": [...]}``
document loadable in Perfetto or ``chrome://tracing``.

Timestamps come from a pluggable ``clock`` callable. The simulator wires
it to the machine's global step counter, so trace time is *simulated*
time: one trace microsecond per machine step, which is exactly the axis
the paper's figures are drawn against. Without a clock the tracer falls
back to an internal monotone counter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"
PH_METADATA = "M"

VALID_PHASES = (PH_BEGIN, PH_END, PH_COMPLETE, PH_INSTANT, PH_COUNTER,
                PH_METADATA)


class Tracer:
    """Append-only event buffer with Chrome trace-event export."""

    def __init__(self, pid: int = 0,
                 clock: Callable[[], int] | None = None):
        self.pid = pid
        self.clock = clock
        self.events: list[dict[str, Any]] = []
        self._ticks = 0

    def now(self) -> int:
        if self.clock is not None:
            return self.clock()
        self._ticks += 1
        return self._ticks

    def __len__(self) -> int:
        return len(self.events)

    # -- emission -----------------------------------------------------------

    def _emit(self, name: str, ph: str, cat: str, tid: int,
              args: dict[str, Any] | None, **extra: Any) -> None:
        event: dict[str, Any] = {
            "name": name,
            "ph": ph,
            "ts": self.now(),
            "pid": self.pid,
            "tid": tid,
            "cat": cat,
        }
        if args:
            event["args"] = args
        event.update(extra)
        self.events.append(event)

    def instant(self, name: str, cat: str = "", tid: int = 0,
                args: dict[str, Any] | None = None) -> None:
        """A point event (``ph: i``, thread scope)."""
        self._emit(name, PH_INSTANT, cat, tid, args, s="t")

    def complete(self, name: str, start: int, cat: str = "", tid: int = 0,
                 args: dict[str, Any] | None = None) -> None:
        """A span (``ph: X``) from ``start`` (a prior :meth:`now` reading)
        to the current clock."""
        now = self.now()
        event: dict[str, Any] = {
            "name": name,
            "ph": PH_COMPLETE,
            "ts": start,
            "dur": max(0, now - start),
            "pid": self.pid,
            "tid": tid,
            "cat": cat,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, values: dict[str, float], cat: str = "",
                tid: int = 0) -> None:
        """A counter track sample (``ph: C``); each key becomes a series."""
        self._emit(name, PH_COUNTER, cat, tid, dict(values))

    def thread_name(self, tid: int, name: str) -> None:
        """Metadata event naming a ``tid`` track in the viewer."""
        event = {
            "name": "thread_name",
            "ph": PH_METADATA,
            "ts": 0,
            "pid": self.pid,
            "tid": tid,
            "cat": "__metadata",
            "args": {"name": name},
        }
        self.events.append(event)

    # -- export -------------------------------------------------------------

    def export(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "quickrec"},
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.export()))
        return path

    def categories(self) -> set[str]:
        """Distinct non-metadata event categories present in the trace."""
        return {event["cat"] for event in self.events
                if event.get("cat") and event["cat"] != "__metadata"}


def validate_trace(document: dict[str, Any]) -> list[str]:
    """Check a parsed trace document against the Chrome trace-event shape.

    Returns a list of problems (empty means valid). Used by the test
    suite and by ``quickrec stats --trace`` as a self-check.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative int")
        if ph == PH_COMPLETE:
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph == PH_COUNTER and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: C event needs args values")
    return problems
