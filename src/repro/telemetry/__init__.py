"""Telemetry: structured tracing and metrics for the record/replay stack.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and how to open
exported traces in Perfetto.
"""

from .core import NULL_TELEMETRY, Telemetry, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Tracer, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "Telemetry",
    "Tracer",
    "get_logger",
    "validate_trace",
]
