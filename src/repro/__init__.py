"""QuickRec reproduction: hardware-assisted record and replay, in simulation.

A faithful functional reproduction of *QuickRec: prototyping an Intel
architecture extension for record and replay of multithreaded programs*
(Pokam et al., ISCA 2013): a multicore TSO machine with MESI coherence,
per-core Memory Race Recorder hardware (chunking with Bloom signatures and
Lamport timestamps), the Capo3 replay-sphere software stack over a
miniature OS, and a replayer that re-executes runs from the logs alone.

Quickstart::

    from repro import KernelBuilder, session

    b = KernelBuilder()
    b.word("counter", 0)
    b.label("main")
    ...
    program = b.build("demo")
    outcome, replayed, report = session.record_and_replay(program, seed=42)
    assert report.ok
"""

from .config import (
    CacheConfig,
    CapoConfig,
    DEFAULT_CONFIG,
    KernelConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
    TelemetryConfig,
    TsoMode,
)
from .errors import (
    AssemblerError,
    ConfigError,
    IllegalInstructionError,
    KernelError,
    LogFormatError,
    MachineFault,
    MemoryAccessError,
    RecordingError,
    ReplayDivergenceError,
    ReproError,
    WorkloadError,
)
from .isa import KernelBuilder, Program, assemble
from .capo.recording import Recording
from .telemetry import NULL_TELEMETRY, Telemetry
from .session import (
    MODE_FULL,
    MODE_HW,
    MODE_OFF,
    RunOutcome,
    record,
    record_and_replay,
    replay_recording,
    simulate,
    verify,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CapoConfig",
    "DEFAULT_CONFIG",
    "KernelConfig",
    "MachineConfig",
    "MRRConfig",
    "SimConfig",
    "StoreBufferConfig",
    "TelemetryConfig",
    "TsoMode",
    "AssemblerError",
    "ConfigError",
    "IllegalInstructionError",
    "KernelError",
    "LogFormatError",
    "MachineFault",
    "MemoryAccessError",
    "RecordingError",
    "ReplayDivergenceError",
    "ReproError",
    "WorkloadError",
    "KernelBuilder",
    "Program",
    "assemble",
    "Recording",
    "NULL_TELEMETRY",
    "Telemetry",
    "MODE_FULL",
    "MODE_HW",
    "MODE_OFF",
    "RunOutcome",
    "record",
    "record_and_replay",
    "replay_recording",
    "simulate",
    "verify",
    "__version__",
]
