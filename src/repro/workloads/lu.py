"""lu — dense elimination with interleaved row ownership.

Integer Gaussian elimination over an N x N matrix: step ``k`` eliminates
column ``k`` from rows ``k+1..N-1``; rows are owned round-robin
(``row % threads``), so every step all threads read the shared pivot row
while writing their own rows — the producer/consumer sharing of SPLASH-2
LU. A barrier separates steps. Pivots are forced odd (``| 1``) so the
integer division is always defined; the arithmetic is nonsense as algebra
but the access pattern is exact.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_N = 20


def _build_lu(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    n = _BASE_N + 4 * (scale - 1)
    h = WorkloadHarness(threads, "lu")
    b = h.b
    b.words("a", data.words(seed=23, count=n * n, modulus=10_000))
    h.emit_main(epilogue=lambda: h.emit_checksum_write("a", n * n, stride_words=3))

    b.label("body")
    b.ins("mov", "r11", "rdi")          # tid
    b.ins("mov", "r14", 0)              # k
    k_loop = b.fresh("lu_k")
    k_done = b.fresh("lu_kdone")
    b.label(k_loop)
    b.ins("cmp", "r14", n - 1)
    b.ins("jge", k_done)
    # pivot = a[k][k] | 1
    b.ins("mov", "r10", "r14")
    b.ins("mul", "r10", "r10", n)
    b.ins("add", "r10", "r10", "r14")   # k*n + k
    b.ins("load", "r10", "[a + r10*4]")
    b.ins("or", "r10", "r10", 1)        # pivot, nonzero
    # rows k+1 .. n-1, mine if row % threads == tid
    b.ins("add", "r6", "r14", 1)        # row
    row_loop = b.fresh("lu_row")
    row_done = b.fresh("lu_rowdone")
    row_skip = b.fresh("lu_rowskip")
    b.label(row_loop)
    b.ins("cmp", "r6", n)
    b.ins("jge", row_done)
    b.ins("mod", "r7", "r6", threads)
    b.ins("cmp", "r7", "r11")
    b.ins("jne", row_skip)
    # factor = a[row][k] / pivot
    b.ins("mov", "r8", "r6")
    b.ins("mul", "r8", "r8", n)         # row*n
    b.ins("add", "r7", "r8", "r14")     # row*n + k
    b.ins("load", "r9", "[a + r7*4]")
    b.ins("div", "r9", "r9", "r10")     # factor
    # a[row][j] -= factor * a[k][j]  for j in k..n-1
    b.ins("mov", "r5", "r14")           # j
    col_loop = b.fresh("lu_col")
    col_done = b.fresh("lu_coldone")
    b.label(col_loop)
    b.ins("cmp", "r5", n)
    b.ins("jge", col_done)
    b.ins("mov", "r7", "r14")
    b.ins("mul", "r7", "r7", n)
    b.ins("add", "r7", "r7", "r5")      # k*n + j
    b.ins("load", "r4", "[a + r7*4]")
    b.ins("mul", "r4", "r4", "r9")
    b.ins("add", "r7", "r8", "r5")      # row*n + j
    b.ins("load", "r2", "[a + r7*4]")
    b.ins("sub", "r2", "r2", "r4")
    b.ins("store", "[a + r7*4]", "r2")
    b.ins("add", "r5", "r5", 1)
    b.ins("jmp", col_loop)
    b.label(col_done)
    b.label(row_skip)
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", row_loop)
    b.label(row_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", k_loop)
    b.label(k_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("lu", "pivot-row elimination, round-robin row ownership",
                  "splash", _build_lu))
