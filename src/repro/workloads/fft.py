"""fft — barrier-separated butterfly stages.

An in-place integer butterfly network over ``N`` words (the communication
skeleton of SPLASH-2 FFT): log2(N) stages, each pairing element ``i`` with
``i + 2^stage``; add/subtract replace the twiddle multiply. Elements are
block-partitioned, so every stage past log2(N/threads) communicates across
thread boundaries. Input data arrives through the VFS (logged
copy-to-user), matching how the real benchmark reads its input set.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_N = 256


def _build_fft(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    n = _BASE_N << (scale - 1)
    stages = n.bit_length() - 1
    block = n // threads
    h = WorkloadHarness(threads, "fft")
    b = h.b
    b.asciz("in_path", "fft.in")
    b.space("x", n * 4)
    inputs = {"fft.in": data.words_to_bytes(
        data.words(seed=11, count=n, modulus=1 << 16))}

    def prologue():
        h.emit_read_file("r10", "in_path", "x", n * 4)

    h.emit_main(prologue=prologue,
                epilogue=lambda: h.emit_checksum_write("x", n))

    b.label("body")
    b.ins("mov", "r11", "rdi")          # tid
    b.ins("mov", "r2", "r11")
    b.ins("mul", "r2", "r2", block)     # start
    b.ins("add", "r3", "r2", block)     # end
    if n % threads:
        with b.if_equal("r11", threads - 1):
            b.ins("mov", "r3", n)
    b.ins("mov", "r14", 0)              # stage
    stage_loop = b.fresh("fft_stage")
    stage_done = b.fresh("fft_done")
    b.label(stage_loop)
    b.ins("cmp", "r14", stages)
    b.ins("jge", stage_done)
    b.ins("mov", "r10", 1)
    b.ins("shl", "r10", "r10", "r14")   # stride = 2^stage
    # butterfly over my block: only indices with the stage bit clear
    b.ins("mov", "r6", "r2")
    elem_loop = b.fresh("fft_elem")
    elem_done = b.fresh("fft_elem_done")
    skip = b.fresh("fft_skip")
    b.label(elem_loop)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", elem_done)
    b.ins("and", "r7", "r6", "r10")
    b.ins("jne", skip)
    b.ins("add", "r5", "r6", "r10")     # partner index
    b.ins("load", "r8", "[x + r6*4]")
    b.ins("load", "r9", "[x + r5*4]")
    b.ins("add", "r7", "r8", "r9")
    b.ins("store", "[x + r6*4]", "r7")
    b.ins("sub", "r7", "r8", "r9")
    b.ins("store", "[x + r5*4]", "r7")
    b.label(skip)
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", elem_loop)
    b.label(elem_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", stage_loop)
    b.label(stage_done)
    b.ins("ret")
    return h.build(), inputs


register(Workload("fft", "butterfly stages with all-to-all sharing",
                  "splash", _build_fft))
