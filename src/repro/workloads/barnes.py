"""barnes — n-body force phase: read-shared positions, private writes.

The sharing skeleton of SPLASH-2 Barnes-Hut without the tree: each
iteration, every thread computes "forces" on its particles by reading
*all* particle positions (heavily read-shared), then a barrier, then each
thread integrates its own particles (writing the shared position array the
others will read next iteration). The interaction is cheap integer mixing;
the migration of lines between read-shared and written states per
iteration is the point.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_PARTICLES = 64
_BASE_ITERS = 2


def _build_barnes(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    particles = _BASE_PARTICLES * scale
    iters = _BASE_ITERS + (scale - 1)
    block = particles // threads
    h = WorkloadHarness(threads, "barnes")
    b = h.b
    b.words("pos", data.words(seed=51, count=particles, modulus=1 << 20))
    b.space("force", particles * 4)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("pos", particles))

    b.label("body")
    b.ins("mov", "r11", "rdi")
    b.ins("mov", "r2", "r11")
    b.ins("mul", "r2", "r2", block)
    b.ins("add", "r3", "r2", block)
    if particles % threads:
        with b.if_equal("r11", threads - 1):
            b.ins("mov", "r3", particles)

    b.ins("mov", "r14", 0)
    iter_loop = b.fresh("bn_iter")
    iter_done = b.fresh("bn_done")
    b.label(iter_loop)
    b.ins("cmp", "r14", iters)
    b.ins("jge", iter_done)
    # force phase: force[i] = mix of pos[i] against every pos[j]
    b.ins("mov", "r6", "r2")
    i_loop = b.fresh("bn_i")
    i_done = b.fresh("bn_i_done")
    b.label(i_loop)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", i_done)
    b.ins("load", "r8", "[pos + r6*4]")
    b.ins("mov", "r9", 0)                        # accumulator
    j_loop = b.fresh("bn_j")
    j_done = b.fresh("bn_j_done")
    b.ins("mov", "r7", 0)
    b.label(j_loop)
    b.ins("cmp", "r7", particles)
    b.ins("jge", j_done)
    b.ins("load", "r5", "[pos + r7*4]")
    b.ins("sub", "r5", "r5", "r8")               # "distance"
    b.ins("sar", "r5", "r5", 6)                  # soften
    b.ins("add", "r9", "r9", "r5")
    b.ins("add", "r7", "r7", 1)
    b.ins("jmp", j_loop)
    b.label(j_done)
    b.ins("store", "[force + r6*4]", "r9")
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", i_loop)
    b.label(i_done)
    h.barrier()
    # integrate phase: pos[i] += force[i] (write what others will read)
    b.ins("mov", "r6", "r2")
    u_loop = b.fresh("bn_u")
    u_done = b.fresh("bn_u_done")
    b.label(u_loop)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", u_done)
    b.ins("load", "r8", "[pos + r6*4]")
    b.ins("load", "r9", "[force + r6*4]")
    b.ins("add", "r8", "r8", "r9")
    b.ins("and", "r8", "r8", (1 << 20) - 1)
    b.ins("store", "[pos + r6*4]", "r8")
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", u_loop)
    b.label(u_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", iter_loop)
    b.label(iter_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("barnes", "n-body force phase, read-shared positions",
                  "splash", _build_barnes))
