"""Workloads: SPLASH-2-style kernels and racy microbenchmarks.

The paper evaluates QuickRec on SPLASH-2 with 4 threads. We reproduce the
suite's *sharing patterns* at laptop scale on the IA-lite ISA:

=============  =======================================================
``fft``        barrier-separated butterfly stages (all-to-all shuffle)
``lu``         blocked elimination, row-partitioned, barrier per step
``radix``      per-thread histograms + prefix sum + permute, barriers
``ocean``      red-black stencil sweeps over a partitioned grid
``barnes``     n-body force phase: read-shared positions, private writes
``water``      pairwise interactions with per-molecule spinlocks
``raytrace``   self-scheduling task queue via an atomic ticket counter
``fmm``        tree build (locks) + upward accumulation (barriers)
``cholesky``   column pipeline over point-to-point ready flags
``radiosity``  work stealing from per-thread locked deques
=============  =======================================================

plus microbenchmarks (``counter``, ``pingpong``, ``dekker``, ``prodcons``,
``locks``, ``sigping``, ``iobound``, ``repcopy``) that stress single
recorder mechanisms. Every workload is registered in
:data:`~repro.workloads.base.REGISTRY` and reachable as
``workloads.build("fft", threads=4)``.
"""

from .base import (
    REGISTRY,
    Workload,
    WorkloadHarness,
    all_names,
    build,
    get,
    micro_names,
    splash_names,
)

# Importing the modules registers their workloads.
from . import micro  # noqa: E402,F401
from . import fft  # noqa: E402,F401
from . import lu  # noqa: E402,F401
from . import radix  # noqa: E402,F401
from . import ocean  # noqa: E402,F401
from . import barnes  # noqa: E402,F401
from . import water  # noqa: E402,F401
from . import raytrace  # noqa: E402,F401
from . import fmm  # noqa: E402,F401
from . import cholesky  # noqa: E402,F401
from . import radiosity  # noqa: E402,F401

__all__ = [
    "REGISTRY",
    "Workload",
    "WorkloadHarness",
    "all_names",
    "build",
    "get",
    "micro_names",
    "splash_names",
]
