"""water — pairwise interactions with per-molecule spinlocks.

The lock-intensive accumulation pattern of SPLASH-2 Water-Nsquared: pairs
``(i, j)`` are partitioned by ``i % threads``; each interaction updates the
shared force entries of *both* molecules under their locks (ordered by
index to avoid deadlock). Lock words live in their own array, one per
molecule, so the recorder sees heavy atomic traffic on many addresses.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_MOLECULES = 36
_BASE_ITERS = 1


def _build_water(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    molecules = _BASE_MOLECULES + 8 * (scale - 1)
    iters = _BASE_ITERS + (scale - 1)
    h = WorkloadHarness(threads, "water")
    b = h.b
    b.words("wpos", data.words(seed=61, count=molecules, modulus=1 << 16))
    b.space("wforce", molecules * 4)
    b.space("wlocks", molecules * 4)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("wforce", molecules))

    def lock_acquire(index_reg: str) -> None:
        """Spin-acquire wlocks[index_reg]; clobbers r4, r5."""
        acquire = b.fresh("wl_try")
        spin = b.fresh("wl_spin")
        got = b.fresh("wl_got")
        b.ins("shl", "r4", index_reg, 2)
        b.label(acquire)
        b.ins("mov", "r5", 1)
        b.ins("xchg", "[wlocks + r4]", "r5")
        b.ins("test", "r5", "r5")
        b.ins("je", got)
        b.label(spin)
        b.ins("pause")
        b.ins("load", "r5", "[wlocks + r4]")
        b.ins("test", "r5", "r5")
        b.ins("jne", spin)
        b.ins("jmp", acquire)
        b.label(got)

    def lock_release(index_reg: str) -> None:
        b.ins("shl", "r4", index_reg, 2)
        b.ins("store", "[wlocks + r4]", 0)

    b.label("body")
    b.ins("mov", "r11", "rdi")
    b.ins("mov", "r14", 0)
    iter_loop = b.fresh("wt_iter")
    iter_done = b.fresh("wt_done")
    b.label(iter_loop)
    b.ins("cmp", "r14", iters)
    b.ins("jge", iter_done)
    # for i in tid, tid+threads, ...: for j in i+1 .. M-1
    b.ins("mov", "r6", "r11")
    i_loop = b.fresh("wt_i")
    i_done = b.fresh("wt_i_done")
    b.label(i_loop)
    b.ins("cmp", "r6", molecules)
    b.ins("jge", i_done)
    b.ins("add", "r7", "r6", 1)
    j_loop = b.fresh("wt_j")
    j_done = b.fresh("wt_j_done")
    b.label(j_loop)
    b.ins("cmp", "r7", molecules)
    b.ins("jge", j_done)
    # interaction = (pos[i] ^ pos[j]) >> 8
    b.ins("load", "r8", "[wpos + r6*4]")
    b.ins("load", "r9", "[wpos + r7*4]")
    b.ins("xor", "r8", "r8", "r9")
    b.ins("shr", "r8", "r8", 8)
    # lock i (i < j always), update force[i], unlock
    lock_acquire("r6")
    b.ins("load", "r9", "[wforce + r6*4]")
    b.ins("add", "r9", "r9", "r8")
    b.ins("store", "[wforce + r6*4]", "r9")
    lock_release("r6")
    # lock j, subtract from force[j], unlock
    lock_acquire("r7")
    b.ins("load", "r9", "[wforce + r7*4]")
    b.ins("sub", "r9", "r9", "r8")
    b.ins("store", "[wforce + r7*4]", "r9")
    lock_release("r7")
    b.ins("add", "r7", "r7", 1)
    b.ins("jmp", j_loop)
    b.label(j_done)
    b.ins("add", "r6", "r6", threads)
    b.ins("jmp", i_loop)
    b.label(i_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", iter_loop)
    b.label(iter_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("water", "pairwise updates under per-molecule locks",
                  "splash", _build_water))
