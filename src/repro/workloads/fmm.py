"""fmm — locked scatter into tree leaves, then barriered upward pass.

A two-phase stand-in for SPLASH-2 FMM's tree traffic:

1. *Scatter*: each thread hashes its bodies into the leaves of a complete
   binary tree, accumulating under a per-leaf spinlock (irregular,
   lock-mediated sharing, like FMM's tree construction).
2. *Upward pass*: level by level, interior nodes are computed from their
   children; nodes of each level are partitioned round-robin across
   threads with a barrier between levels (the multipole upward pass).
   Higher levels have fewer nodes than threads, concentrating conflicts.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_LEAVES = 64
_BODIES_PER_THREAD = 96


def _build_fmm(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    leaves = _BASE_LEAVES * scale
    levels = leaves.bit_length() - 1
    bodies = _BODIES_PER_THREAD * scale
    # Heap-style complete tree: node 1 is the root, leaves at [leaves, 2*leaves).
    nodes = 2 * leaves
    h = WorkloadHarness(threads, "fmm")
    b = h.b
    b.space("tree", nodes * 4)
    b.space("tlocks", leaves * 4)
    b.words("bodies", data.words(seed=71, count=bodies * threads,
                                 modulus=1 << 24))
    h.emit_main(epilogue=lambda: h.emit_checksum_write("tree", nodes))

    b.label("body")
    b.ins("mov", "r11", "rdi")
    # -- phase 1: scatter my bodies into leaves under per-leaf locks --------
    b.ins("mov", "r2", "r11")
    b.ins("mul", "r2", "r2", bodies)          # my first body
    b.ins("add", "r3", "r2", bodies)
    b.ins("mov", "r6", "r2")
    scat = b.fresh("fm_scat")
    scat_done = b.fresh("fm_scat_done")
    b.label(scat)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", scat_done)
    b.ins("load", "r8", "[bodies + r6*4]")
    b.ins("and", "r9", "r8", leaves - 1)      # leaf index
    # acquire tlocks[r9]
    acquire = b.fresh("fm_try")
    spin = b.fresh("fm_spin")
    got = b.fresh("fm_got")
    b.ins("shl", "r4", "r9", 2)
    b.label(acquire)
    b.ins("mov", "r5", 1)
    b.ins("xchg", "[tlocks + r4]", "r5")
    b.ins("test", "r5", "r5")
    b.ins("je", got)
    b.label(spin)
    b.ins("pause")
    b.ins("load", "r5", "[tlocks + r4]")
    b.ins("test", "r5", "r5")
    b.ins("jne", spin)
    b.ins("jmp", acquire)
    b.label(got)
    b.ins("add", "r5", "r9", leaves)          # leaf node id
    b.ins("load", "r7", "[tree + r5*4]")
    b.ins("shr", "r8", "r8", 8)
    b.ins("add", "r7", "r7", "r8")
    b.ins("store", "[tree + r5*4]", "r7")
    b.ins("store", "[tlocks + r4]", 0)        # release
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", scat)
    b.label(scat_done)
    h.barrier()

    # -- phase 2: upward pass, one barrier per level -------------------------
    # level nodes: [width, 2*width) for width = leaves/2 .. 1
    b.ins("mov", "r10", leaves // 2)          # width
    level_loop = b.fresh("fm_level")
    level_done = b.fresh("fm_level_done")
    b.label(level_loop)
    b.ins("test", "r10", "r10")
    b.ins("je", level_done)
    # my nodes: width + tid, step threads
    b.ins("add", "r6", "r10", "r11")
    node_loop = b.fresh("fm_node")
    node_done = b.fresh("fm_node_done")
    b.label(node_loop)
    b.ins("shl", "r7", "r10", 1)              # 2*width = level end
    b.ins("cmp", "r6", "r7")
    b.ins("jge", node_done)
    b.ins("shl", "r8", "r6", 1)               # left child
    b.ins("load", "r9", "[tree + r8*4]")
    b.ins("add", "r8", "r8", 1)
    b.ins("load", "r5", "[tree + r8*4]")
    b.ins("add", "r9", "r9", "r5")
    b.ins("store", "[tree + r6*4]", "r9")
    b.ins("add", "r6", "r6", threads)
    b.ins("jmp", node_loop)
    b.label(node_done)
    h.barrier()
    b.ins("shr", "r10", "r10", 1)
    b.ins("jmp", level_loop)
    b.label(level_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("fmm", "locked leaf scatter + barriered upward pass",
                  "splash", _build_fmm))
