"""raytrace — self-scheduling task queue over an atomic ticket counter.

The work-stealing-ish structure of SPLASH-2 Raytrace/Radiosity: pixels are
claimed from a shared ticket counter with ``xadd``; each pixel runs an
independent integer escape-time iteration (a small Mandelbrot, standing in
for ray intersection math) and writes its own output word. Thread 0
reports progress with a write() per row band, sprinkling syscalls through
the run the way the original's I/O does.
"""

from __future__ import annotations

from ..isa.program import Program
from .base import Workload, WorkloadHarness, register

_BASE_SIDE = 16
_MAX_ESCAPE = 24


def _build_raytrace(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    side = _BASE_SIDE * scale
    pixels = side * side
    h = WorkloadHarness(threads, "raytrace")
    b = h.b
    b.word("ticket", 0)
    b.space("image", pixels * 4)
    b.word("progress", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("image", pixels,
                                                       stride_words=3))

    b.label("body")
    b.ins("mov", "r11", "rdi")
    claim = b.fresh("rt_claim")
    out = b.fresh("rt_out")
    b.label(claim)
    b.ins("mov", "r6", 1)
    b.ins("xadd", "[ticket]", "r6")       # r6 = my pixel
    b.ins("cmp", "r6", pixels)
    b.ins("jge", out)
    # pixel coordinates scaled to fixed point around the origin
    b.ins("mod", "r7", "r6", side)        # x
    b.ins("div", "r8", "r6", side)        # y
    b.ins("sub", "r7", "r7", side // 2)
    b.ins("sub", "r8", "r8", side // 2)
    b.ins("shl", "r7", "r7", 5)           # cx (fixed point <<8 total /8)
    b.ins("shl", "r8", "r8", 5)           # cy
    b.ins("mov", "r9", 0)                 # zx
    b.ins("mov", "r10", 0)                # zy
    b.ins("mov", "r5", 0)                 # iterations
    escape = b.fresh("rt_iter")
    hit = b.fresh("rt_hit")
    b.label(escape)
    b.ins("cmp", "r5", _MAX_ESCAPE)
    b.ins("jge", hit)
    # zx' = (zx^2 - zy^2)>>8 + cx ; zy' = (2*zx*zy)>>8 + cy
    b.ins("mul", "r4", "r9", "r9")
    b.ins("mul", "r2", "r10", "r10")
    b.ins("sub", "r4", "r4", "r2")
    b.ins("sar", "r4", "r4", 8)
    b.ins("add", "r4", "r4", "r7")
    b.ins("mul", "r2", "r9", "r10")
    b.ins("sar", "r2", "r2", 7)
    b.ins("add", "r10", "r2", "r8")
    b.ins("mov", "r9", "r4")
    # escaped if |zx| > 2<<8
    b.ins("mul", "r2", "r9", "r9")
    b.ins("mul", "r3", "r10", "r10")
    b.ins("add", "r2", "r2", "r3")
    b.ins("cmp", "r2", (4 << 16))
    b.ins("ja", hit)
    b.ins("add", "r5", "r5", 1)
    b.ins("jmp", escape)
    b.label(hit)
    b.ins("store", "[image + r6*4]", "r5")
    # thread 0 reports progress once per completed row-band
    if side >= 8:
        no_report = b.fresh("rt_norep")
        b.ins("test", "r11", "r11")
        b.ins("jne", no_report)
        b.ins("mod", "r2", "r6", side * 4)
        b.ins("test", "r2", "r2")
        b.ins("jne", no_report)
        b.ins("store", "[progress]", "r6")
        b.ins("push", "r6")
        b.write(1, "progress", 4)
        b.ins("pop", "r6")
        b.label(no_report)
    b.ins("jmp", claim)
    b.label(out)
    b.ins("ret")
    return h.build(), {}


register(Workload("raytrace", "atomic ticket queue of escape-time pixels",
                  "splash", _build_raytrace))
