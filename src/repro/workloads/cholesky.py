"""cholesky — column pipeline with point-to-point ready flags.

The dependency structure of SPLASH-2 Cholesky without the sparse
supernodes: column ``j`` can only be finished after consuming every column
``k < j``, and columns are owned round-robin — so threads synchronize
*pairwise* through per-column ready flags rather than global barriers.
Under TSO the publish is a plain store (data stores precede the flag store
in program order, and the store buffer drains in order), making this the
suite's release/acquire-flavoured workload: long producer/consumer chains,
RAW conflicts on flag and column lines, no barriers at all.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_N = 16


def _build_cholesky(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    n = _BASE_N + 4 * (scale - 1)
    h = WorkloadHarness(threads, "cholesky")
    b = h.b
    b.words("a", data.words(seed=81, count=n * n, modulus=10_000))
    b.space("ready", n * 4)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("a", n * n,
                                                       stride_words=3))

    b.label("body")
    b.ins("mov", "r11", "rdi")          # tid
    b.ins("mov", "r14", 0)              # j (column)
    col_loop = b.fresh("ch_col")
    col_done = b.fresh("ch_done")
    col_skip = b.fresh("ch_skip")
    b.label(col_loop)
    b.ins("cmp", "r14", n)
    b.ins("jge", col_done)
    b.ins("mod", "r7", "r14", threads)
    b.ins("cmp", "r7", "r11")
    b.ins("jne", col_skip)
    # -- consume every earlier column k ------------------------------------
    b.ins("mov", "r6", 0)               # k
    k_loop = b.fresh("ch_k")
    k_done = b.fresh("ch_kdone")
    b.label(k_loop)
    b.ins("cmp", "r6", "r14")
    b.ins("jge", k_done)
    wait = b.fresh("ch_wait")
    b.label(wait)                        # acquire: spin on ready[k]
    b.ins("pause")
    b.ins("load", "r7", "[ready + r6*4]")
    b.ins("test", "r7", "r7")
    b.ins("je", wait)
    # factor = a[k][j] | 1 keeps the integer division defined
    b.ins("mov", "r8", "r6")
    b.ins("mul", "r8", "r8", n)
    b.ins("add", "r8", "r8", "r14")      # k*n + j
    b.ins("load", "r9", "[a + r8*4]")
    b.ins("or", "r9", "r9", 1)
    # a[i][j] -= a[i][k] / factor   for i in j..n-1
    b.ins("mov", "r5", "r14")            # i
    i_loop = b.fresh("ch_i")
    i_done = b.fresh("ch_idone")
    b.label(i_loop)
    b.ins("cmp", "r5", n)
    b.ins("jge", i_done)
    b.ins("mov", "r8", "r5")
    b.ins("mul", "r8", "r8", n)
    b.ins("add", "r7", "r8", "r6")       # i*n + k
    b.ins("load", "r4", "[a + r7*4]")
    b.ins("div", "r4", "r4", "r9")
    b.ins("add", "r7", "r8", "r14")      # i*n + j
    b.ins("load", "r2", "[a + r7*4]")
    b.ins("sub", "r2", "r2", "r4")
    b.ins("store", "[a + r7*4]", "r2")
    b.ins("add", "r5", "r5", 1)
    b.ins("jmp", i_loop)
    b.label(i_done)
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", k_loop)
    b.label(k_done)
    # -- publish column j (data stores precede the flag under TSO) ----------
    b.ins("store", "[ready + r14*4]", 1)
    b.label(col_skip)
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", col_loop)
    b.label(col_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("cholesky", "column pipeline over per-column ready flags",
                  "splash", _build_cholesky))
