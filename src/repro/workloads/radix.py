"""radix — parallel radix sort (histogram, prefix, permute; barriers).

The SPLASH-2 radix structure: per digit pass, each thread histograms its
block of keys, a sequential prefix sum over all (thread, bucket) pairs
computes scatter offsets, and each thread permutes its keys into the
destination array using its private offset row. Keys arrive through the
VFS like the real benchmark's input set. Four 4-bit passes sort 16-bit
keys; the checksum is order-sensitive (sum of key*index) so a broken sort
is visible.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_KEYS = 256
_BUCKETS = 16
_PASSES = 4


def _build_radix(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    n = _BASE_KEYS * scale
    block = n // threads
    h = WorkloadHarness(threads, "radix")
    b = h.b
    b.asciz("in_path", "radix.in")
    b.space("keys0", n * 4)
    b.space("keys1", n * 4)
    b.space("hist", threads * _BUCKETS * 4)   # per-thread bucket counts
    b.space("offs", threads * _BUCKETS * 4)   # scatter offsets after prefix
    b.word("rank_out", 0)
    inputs = {"radix.in": data.words_to_bytes(
        data.words(seed=31, count=n, modulus=1 << 16))}

    def prologue():
        h.emit_read_file("r10", "in_path", "keys0", n * 4)

    def epilogue():
        # order-sensitive checksum: sum key[i] * (i + 1) over the sorted array
        b.ins("mov", "r5", 0)
        with b.for_range("r6", 0, n):
            b.ins("load", "r7", "[keys0 + r6*4]")
            b.ins("add", "r8", "r6", 1)
            b.ins("mul", "r7", "r7", "r8")
            b.ins("add", "r5", "r5", "r7")
        b.ins("store", "[__out]", "r5")
        b.write(1, "__out", 4)

    h.emit_main(prologue=prologue, epilogue=epilogue)

    b.label("body")
    b.ins("mov", "r11", "rdi")
    b.ins("mov", "r2", "r11")
    b.ins("mul", "r2", "r2", block)       # my start
    b.ins("add", "r3", "r2", block)       # my end
    if n % threads:
        with b.if_equal("r11", threads - 1):
            b.ins("mov", "r3", n)
    b.ins("mov", "r14", 0)                # pass

    pass_loop = b.fresh("rx_pass")
    pass_done = b.fresh("rx_done")
    b.label(pass_loop)
    b.ins("cmp", "r14", _PASSES)
    b.ins("jge", pass_done)
    b.ins("shl", "r10", "r14", 2)         # shift = pass * 4
    # src/dst base selection by pass parity: even -> keys0->keys1
    b.ins("and", "r7", "r14", 1)
    even = b.fresh("rx_even")
    picked = b.fresh("rx_picked")
    b.ins("je", even)
    b.ins("mov", "r4", "keys1")           # src
    b.ins("mov", "r5", "keys0")           # dst
    b.ins("jmp", picked)
    b.label(even)
    b.ins("mov", "r4", "keys0")
    b.ins("mov", "r5", "keys1")
    b.label(picked)

    # 1) zero my histogram row, then count digits in my block
    b.ins("mov", "r8", "r11")
    b.ins("mul", "r8", "r8", _BUCKETS)    # my hist row base index
    with b.for_range("r6", 0, _BUCKETS):
        b.ins("add", "r7", "r8", "r6")
        b.ins("store", "[hist + r7*4]", 0)
    b.ins("mov", "r6", "r2")
    count = b.fresh("rx_count")
    count_done = b.fresh("rx_count_done")
    b.label(count)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", count_done)
    b.ins("shl", "r7", "r6", 2)
    b.ins("add", "r7", "r7", "r4")
    b.ins("load", "r7", "[r7]")           # key
    b.ins("shr", "r7", "r7", "r10")
    b.ins("and", "r7", "r7", _BUCKETS - 1)
    b.ins("add", "r7", "r7", "r8")
    b.ins("load", "r9", "[hist + r7*4]")
    b.ins("add", "r9", "r9", 1)
    b.ins("store", "[hist + r7*4]", "r9")
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", count)
    b.label(count_done)
    h.barrier()

    # 2) thread 0: prefix sum in (bucket-major, thread-minor) order
    not_zero = b.fresh("rx_notzero")
    b.ins("test", "r11", "r11")
    b.ins("jne", not_zero)
    b.ins("mov", "r9", 0)                 # running total
    with b.for_range("r6", 0, _BUCKETS):
        with b.for_range("r7", 0, threads):
            b.ins("mov", "r1", "r7")
            b.ins("mul", "r1", "r1", _BUCKETS)
            b.ins("add", "r1", "r1", "r6")      # hist[t][d] index
            b.ins("store", "[offs + r1*4]", "r9")
            b.ins("load", "r0", "[hist + r1*4]")
            b.ins("add", "r9", "r9", "r0")
    b.label(not_zero)
    h.barrier()

    # 3) scatter my keys using my offset row (private after the prefix)
    b.ins("mov", "r6", "r2")
    scatter = b.fresh("rx_scat")
    scatter_done = b.fresh("rx_scat_done")
    b.label(scatter)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", scatter_done)
    b.ins("shl", "r7", "r6", 2)
    b.ins("add", "r7", "r7", "r4")
    b.ins("load", "r9", "[r7]")           # key
    b.ins("shr", "r7", "r9", "r10")
    b.ins("and", "r7", "r7", _BUCKETS - 1)
    b.ins("add", "r7", "r7", "r8")        # offs[tid][digit] index
    b.ins("load", "r1", "[offs + r7*4]")
    b.ins("add", "r0", "r1", 1)
    b.ins("store", "[offs + r7*4]", "r0")
    b.ins("shl", "r1", "r1", 2)
    b.ins("add", "r1", "r1", "r5")
    b.ins("store", "[r1]", "r9")
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", scatter)
    b.label(scatter_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", pass_loop)
    b.label(pass_done)
    b.ins("ret")
    return h.build(), inputs


register(Workload("radix", "histogram + prefix + permute radix sort",
                  "splash", _build_radix))
