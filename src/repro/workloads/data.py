"""Deterministic input-data generation.

Workload inputs come from a fixed LCG so that a workload name + scale fully
determines its input bytes — recordings embed no data files, and two
machines produce identical programs.
"""

from __future__ import annotations

import struct

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK64 = (1 << 64) - 1


def lcg_stream(seed: int):
    """Infinite deterministic 32-bit value stream."""
    state = (seed * 2654435761 + 1) & _MASK64
    while True:
        state = (state * _LCG_A + _LCG_C) & _MASK64
        yield (state >> 32) & 0xFFFFFFFF


def words(seed: int, count: int, modulus: int | None = None) -> list[int]:
    """``count`` deterministic 32-bit words (optionally reduced mod m)."""
    stream = lcg_stream(seed)
    out = []
    for _ in range(count):
        value = next(stream)
        if modulus:
            value %= modulus
        out.append(value)
    return out


def words_to_bytes(values: list[int]) -> bytes:
    """Little-endian packing, the format the READ syscall delivers."""
    return struct.pack(f"<{len(values)}I", *values)


def bytes_to_words(blob: bytes) -> list[int]:
    count = len(blob) // 4
    return list(struct.unpack(f"<{count}I", blob[:count * 4]))
