"""Random racy-program generation — soak testing for the recorder.

Generates small multithreaded programs over a handful of shared cache
lines, mixing every recording-relevant mechanism: plain and byte stores,
loads, LOCK atomics, fences, ``rep`` string ops, nondeterministic
instructions, syscalls (time/yield/write), and asynchronous signals. Used
three ways:

- the hypothesis property suite drives :func:`emit_ops` with shrinkable
  op lists (this is what minimized two real soundness bugs to a few ops);
- ``quickrec fuzz`` runs seeded soak campaigns from the CLI;
- :func:`fuzz_once` / :func:`fuzz_many` are the library API.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field

from .. import session
from ..config import (
    KernelConfig,
    MachineConfig,
    SimConfig,
    StoreBufferConfig,
)
from ..isa.builder import KernelBuilder
from ..isa.program import Program

NUM_SLOTS = 6
BUF_WORDS = 8

OP_KINDS = (
    "store", "storeb", "load", "xadd", "xchg", "cmpxchg", "mfence", "pause",
    "alu", "rep_movs", "rep_stos", "rdtsc", "rdrand", "time", "yield",
    "write", "kill", "gettid", "futex_wake",
)


def random_ops(rng: random.Random, max_ops: int = 14) -> list[tuple]:
    """A random op list for one thread (the CLI/soak entry point)."""
    ops: list[tuple] = []
    for _ in range(rng.randint(1, max_ops)):
        kind = rng.choice(OP_KINDS)
        if kind in ("store",):
            ops.append((kind, rng.randrange(NUM_SLOTS), rng.randrange(1001)))
        elif kind == "storeb":
            ops.append((kind, rng.randrange(NUM_SLOTS), rng.randrange(256)))
        elif kind == "load":
            ops.append((kind, rng.randrange(NUM_SLOTS)))
        elif kind in ("xadd", "xchg"):
            ops.append((kind, rng.randrange(NUM_SLOTS), rng.randrange(1, 10)))
        elif kind == "cmpxchg":
            ops.append((kind, rng.randrange(NUM_SLOTS), rng.randrange(4),
                        rng.randrange(1001)))
        elif kind == "alu":
            ops.append((kind, rng.choice(["add", "xor", "mul"]),
                        rng.randrange(100)))
        elif kind in ("rep_movs", "rep_stos"):
            ops.append((kind, rng.randint(1, BUF_WORDS)))
        elif kind == "write":
            ops.append((kind, rng.randint(1, BUF_WORDS)))
        elif kind == "kill":
            ops.append((kind, rng.randint(1, 3)))  # target tid
        else:
            ops.append((kind,))
    return ops


def emit_ops(b: KernelBuilder, ops: list[tuple]) -> None:
    """Emit one thread's op sequence (accumulator in r8)."""
    for op in ops:
        kind = op[0]
        if kind == "store":
            b.ins("store", f"[slots + {4 * op[1]}]", op[2])
        elif kind == "storeb":
            b.ins("storeb", f"[slots + {4 * op[1]}]", op[2])
        elif kind == "load":
            b.ins("load", "r7", f"[slots + {4 * op[1]}]")
            b.ins("add", "r8", "r8", "r7")
        elif kind == "xadd":
            b.ins("mov", "r7", op[2])
            b.ins("xadd", f"[slots + {4 * op[1]}]", "r7")
            b.ins("add", "r8", "r8", "r7")
        elif kind == "xchg":
            b.ins("mov", "r7", op[2])
            b.ins("xchg", f"[slots + {4 * op[1]}]", "r7")
            b.ins("add", "r8", "r8", "r7")
        elif kind == "cmpxchg":
            b.ins("mov", "rax", op[2])
            b.ins("mov", "r7", op[3])
            b.ins("cmpxchg", f"[slots + {4 * op[1]}]", "r7")
            b.ins("add", "r8", "r8", "rax")
        elif kind == "mfence":
            b.ins("mfence")
        elif kind == "pause":
            b.ins("pause")
        elif kind == "alu":
            b.ins(op[1], "r8", "r8", op[2])
        elif kind == "rep_movs":
            b.ins("mov", "rcx", op[1])
            b.ins("mov", "rsi", "buf")
            b.ins("mov", "rdi", "slots")
            b.ins("rep_movs")
        elif kind == "rep_stos":
            b.ins("mov", "rax", "r8")
            b.ins("mov", "rcx", op[1])
            b.ins("mov", "rdi", "buf")
            b.ins("rep_stos")
        elif kind == "rdtsc":
            b.ins("rdtsc", "r7")
            b.ins("xor", "r8", "r8", "r7")
        elif kind == "rdrand":
            b.ins("rdrand", "r7")
            b.ins("add", "r8", "r8", "r7")
        elif kind == "time":
            b.ins("push", "r8")
            b.syscall(9)  # SYS_TIME
            b.ins("pop", "r8")
            b.ins("add", "r8", "r8", "rax")
        elif kind == "yield":
            b.ins("push", "r8")
            b.syscall(6)
            b.ins("pop", "r8")
        elif kind == "write":
            b.ins("push", "r8")
            b.syscall(2, 1, "buf", 4 * op[1])
            b.ins("pop", "r8")
        elif kind == "kill":
            b.ins("push", "r8")
            b.syscall(12, op[1], 10)  # SIGUSR1 at a (maybe absent) tid
            b.ins("pop", "r8")
        elif kind == "gettid":
            b.ins("push", "r8")
            b.syscall(5)
            b.ins("pop", "r8")
            b.ins("add", "r8", "r8", "rax")
        elif kind == "futex_wake":
            b.ins("push", "r8")
            b.syscall(8, "slots", 4)
            b.ins("pop", "r8")
        else:  # pragma: no cover - generator and emitter kept in sync
            raise AssertionError(f"unknown fuzz op {kind!r}")


def build_program(threads_ops: list[list[tuple]], repeats: int = 1) -> Program:
    """Assemble a fuzz program: thread 0 is main; each thread loops its op
    list ``repeats`` times, accumulates into results, and joins via a
    shared counter. Every thread installs a signal handler so ``kill`` ops
    exercise delivery + sigreturn."""
    b = KernelBuilder()
    b.word("slots", *range(1, NUM_SLOTS + 1))
    b.word("buf", *range(10, 10 + BUF_WORDS))
    b.word("done", 0)
    b.word("sigcount", 0)
    b.word("results", *([0] * (len(threads_ops) + 1)))
    b.space("stacks", len(threads_ops) * 2048)

    b.label("main")
    b.syscall(13, 10, "fz_handler")  # SYS_SIGACTION
    for tid in range(1, len(threads_ops)):
        b.ins("mov", "r9", "stacks")
        b.ins("add", "r9", "r9", (tid + 1) * 2048 - 16)
        b.spawn(f"thread_{tid}", "r9", tid)
    b.ins("mov", "r8", 0)
    with b.for_range("r14", 0, repeats):
        emit_ops(b, threads_ops[0])
    b.ins("store", "[results]", "r8")
    join = b.label("join")
    b.ins("pause")
    b.ins("load", "r7", "[done]")
    b.ins("cmp", "r7", len(threads_ops) - 1)
    b.ins("jne", join)
    b.write(1, "results", 4 * len(threads_ops))
    b.exit(0)

    for tid in range(1, len(threads_ops)):
        b.label(f"thread_{tid}")
        b.syscall(13, 10, "fz_handler")
        b.ins("mov", "r8", 0)
        with b.for_range("r14", 0, repeats):
            emit_ops(b, threads_ops[tid])
        b.ins("store", f"[results + {4 * tid}]", "r8")
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[done]", "r7")
        b.exit(0)

    b.label("fz_handler")
    b.ins("load", "r7", "[sigcount]")
    b.ins("add", "r7", "r7", 1)
    b.ins("store", "[sigcount]", "r7")
    b.syscall(14)  # SYS_SIGRETURN
    return b.build("fuzz")


def random_config(rng: random.Random) -> SimConfig:
    return SimConfig(
        machine=MachineConfig(
            num_cores=rng.choice([1, 2, 4]),
            memory_bytes=1 << 18,
            store_buffer=StoreBufferConfig(
                entries=rng.randint(1, 12),
                drain_period=rng.randint(1, 40)),
        ),
        kernel=KernelConfig(quantum_instructions=rng.randint(80, 2000)),
    )


@dataclass
class FuzzCase:
    """One fully-determined fuzz scenario: everything needed to rebuild the
    program and rerun it, independent of any RNG state. The soak subsystem
    runs these across its config lattice and the shrinker mutates them."""

    seed: int
    threads_ops: list[list[tuple]]
    repeats: int
    config: SimConfig
    run_seed: int
    policy: str

    def op_count(self) -> int:
        return sum(len(ops) for ops in self.threads_ops)

    def build(self) -> Program:
        return build_program(self.threads_ops, repeats=self.repeats)


def generate_case(seed: int) -> FuzzCase:
    """Derive the :class:`FuzzCase` for ``seed``.

    Draw order is load-bearing: it must match what :func:`fuzz_once` has
    always done so historical seed numbers keep reproducing the same runs.
    """
    rng = random.Random(seed)
    threads = rng.randint(2, 3)
    threads_ops = [random_ops(rng) for _ in range(threads)]
    repeats = rng.randint(1, 3)
    config = random_config(rng)
    run_seed = rng.randrange(1 << 16)
    policy = rng.choice(["random", "bursty", "rr"])
    return FuzzCase(seed=seed, threads_ops=threads_ops, repeats=repeats,
                    config=config, run_seed=run_seed, policy=policy)


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    runs: int = 0
    verified: int = 0
    failures: list[tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.verified == self.runs


def fuzz_once(seed: int) -> tuple[bool, str]:
    """One seeded fuzz round: generate, record, replay, verify."""
    case = generate_case(seed)
    try:
        _outcome, _replayed, report = session.record_and_replay(
            case.build(), seed=case.run_seed, policy=case.policy,
            config=case.config)
    except Exception as exc:  # noqa: BLE001 - soak harness reports, not dies
        return False, (f"{type(exc).__name__}: {exc}\n"
                       f"{traceback.format_exc()}")
    if not report.ok:
        return False, report.summary()
    return True, "ok"


def fuzz_many(count: int, base_seed: int = 0) -> FuzzReport:
    """Run ``count`` fuzz rounds; collect failures instead of raising."""
    report = FuzzReport()
    for offset in range(count):
        seed = base_seed + offset
        report.runs += 1
        ok, detail = fuzz_once(seed)
        if ok:
            report.verified += 1
        else:
            report.failures.append((seed, detail))
    return report
