"""Workload abstraction and the shared parallel harness.

Every workload provides a builder function ``(threads, scale) -> (Program,
input_files)`` and registers itself. :class:`WorkloadHarness` supplies the
boilerplate all SPLASH-style kernels share:

- per-thread stacks in the data segment;
- a ``main`` that spawns ``threads - 1`` workers, runs the body itself as
  thread 0, then joins on a futex-backed done counter;
- a worker entry that calls the body (thread id in ``rdi``) and signals
  completion;
- a result checksum written to stdout so every run produces output (and so
  replay verification covers the write path).

The body is emitted as a function: it receives its thread id in ``rdi``
and must return with ``ret``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import WorkloadError
from ..isa.builder import (
    KernelBuilder,
    SYS_FUTEX_WAIT,
    SYS_FUTEX_WAKE,
    SYS_READ,
)
from ..isa.program import Program

BuilderFn = Callable[[int, int], tuple[Program, dict[str, bytes]]]


@dataclass(frozen=True)
class Workload:
    """A registered, buildable workload."""

    name: str
    description: str
    category: str  # "splash" or "micro"
    builder: BuilderFn
    default_threads: int = 4

    def build(self, threads: int | None = None,
              scale: int = 1) -> tuple[Program, dict[str, bytes]]:
        if threads is None:
            threads = self.default_threads
        if threads < 1:
            raise WorkloadError(f"{self.name}: need at least one thread")
        if scale < 1:
            raise WorkloadError(f"{self.name}: scale must be >= 1")
        return self.builder(threads, scale)


REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise WorkloadError(f"workload {workload.name!r} already registered")
    REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    workload = REGISTRY.get(name)
    if workload is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}")
    return workload


def build(name: str, threads: int | None = None,
          scale: int = 1) -> tuple[Program, dict[str, bytes]]:
    return get(name).build(threads=threads, scale=scale)


def all_names() -> list[str]:
    return sorted(REGISTRY)


def splash_names() -> list[str]:
    return sorted(n for n, w in REGISTRY.items() if w.category == "splash")


def micro_names() -> list[str]:
    return sorted(n for n, w in REGISTRY.items() if w.category == "micro")


STACK_BYTES = 4096


class WorkloadHarness:
    """KernelBuilder plus the spawn/join/checksum frame."""

    def __init__(self, threads: int, name: str):
        if threads < 1:
            raise WorkloadError("threads must be >= 1")
        self.threads = threads
        self.name = name
        self.b = KernelBuilder()
        self.b.word("__done", 0)
        self.b.word("__bar", 0, 0)
        self.b.space("__stacks", threads * STACK_BYTES)
        self.b.space("__out", 64)

    # -- the standard frame --------------------------------------------------

    def emit_main(self, body_label: str = "body",
                  prologue: Callable[[], None] | None = None,
                  epilogue: Callable[[], None] | None = None) -> None:
        """Emit ``main`` (spawn, run as tid 0, join) and the worker entry.

        ``prologue`` runs before spawning (e.g. read input files);
        ``epilogue`` runs after the join, before the checksum exit.
        """
        b = self.b
        b.label("main")
        if prologue is not None:
            prologue()
        # Spawn workers 1..threads-1.
        for tid in range(1, self.threads):
            b.ins("mov", "r9", "__stacks")
            b.ins("add", "r9", "r9", (tid + 1) * STACK_BYTES - 16)
            b.ins("mov", "r1", "__worker")
            b.ins("mov", "r2", "r9")
            b.ins("mov", "r3", tid)
            b.ins("mov", "rax", 4)  # SYS_SPAWN
            b.ins("syscall")
        # Main runs the body as thread 0.
        b.ins("mov", "rdi", 0)
        b.ins("call", body_label)
        # Join: wait until __done == threads - 1.
        join = b.fresh("join")
        joined = b.fresh("joined")
        b.label(join)
        b.ins("load", "r7", "[__done]")
        b.ins("cmp", "r7", self.threads - 1)
        b.ins("jge", joined)
        b.syscall(SYS_FUTEX_WAIT, "__done", "r7")
        b.ins("jmp", join)
        b.label(joined)
        if epilogue is not None:
            epilogue()
        b.exit(0)

        # Worker entry: body(tid), bump done counter, wake main, exit.
        b.label("__worker")
        b.ins("call", body_label)
        b.ins("mov", "r12", 1)
        b.ins("xadd", "[__done]", "r12")
        b.syscall(SYS_FUTEX_WAKE, "__done", self.threads)
        b.exit(0)

    def emit_checksum_write(self, array_symbol: str, words: int,
                            stride_words: int = 1) -> None:
        """Sum ``words`` words of ``array_symbol`` and write the result
        (and the word count) to stdout. Call from an epilogue."""
        b = self.b
        b.ins("mov", "r5", 0)
        step = max(1, stride_words)
        with b.for_range("r6", 0, words, step):
            b.ins("load", "r7", f"[{array_symbol} + r6*4]")
            b.ins("add", "r5", "r5", "r7")
        b.ins("store", "[__out]", "r5")
        b.ins("store", "[__out + 4]", words)
        b.write(1, "__out", 8)

    def emit_read_file(self, fd_reg: str, path_symbol: str,
                       dest_symbol: str, total_bytes: int,
                       chunk_bytes: int = 1024) -> None:
        """Open ``path_symbol`` and read ``total_bytes`` into
        ``dest_symbol`` in ``chunk_bytes`` pieces (each read is one logged
        copy-to-user event). Call from a prologue. Clobbers r1-r4, rax,
        r13, r14."""
        b = self.b
        b.syscall(10, path_symbol)  # SYS_OPEN
        b.ins("mov", fd_reg, "rax")
        b.ins("mov", "r13", 0)  # offset
        loop = b.fresh("readloop")
        done = b.fresh("readdone")
        b.label(loop)
        b.ins("cmp", "r13", total_bytes)
        b.ins("jge", done)
        b.ins("mov", "r14", dest_symbol)
        b.ins("add", "r14", "r14", "r13")
        b.ins("mov", "r1", fd_reg)
        b.ins("mov", "r2", "r14")
        b.ins("mov", "r3", chunk_bytes)
        b.ins("mov", "rax", SYS_READ)
        b.ins("syscall")
        b.ins("test", "rax", "rax")
        b.ins("je", done)
        b.ins("add", "r13", "r13", "rax")
        b.ins("jmp", loop)
        b.label(done)

    def barrier(self, scratch: tuple[str, str] = ("r12", "r13")) -> None:
        """All-thread sense-reversing barrier on the shared __bar word."""
        self.b.barrier("__bar", self.threads, scratch=scratch)

    def build(self) -> Program:
        return self.b.build(self.name)
