"""Microbenchmarks: each stresses one recorder mechanism in isolation.

=============  ==========================================================
``counter``    atomic contention: every thread xadds one shared word
``pingpong``   false/true sharing: all threads read-modify-write slots in
               a single cache line with plain loads/stores
``dekker``     Peterson mutual exclusion with mfence (store-load ordering
               under TSO; correctness visible in the checksum)
``prodcons``   single producer, ticketed consumers over a 16-slot ring
``locks``      one test-and-test-and-set spinlock guarding a counter
``sigping``    asynchronous signals: main kills the worker N times, the
               handler counts deliveries
``iobound``    syscall-dominated: per-thread file reads + stdout writes
               (maximal input-log pressure)
``repcopy``    rep_movs copies racing with scattered stores
               (mid-instruction chunk boundaries)
``racer``      a seeded data race: both threads plain-RMW one shared
               word while a spinlock correctly guards another (the
               forensics suite's ground truth)
=============  ==========================================================
"""

from __future__ import annotations

from ..isa.builder import (
    SYS_KILL,
    SYS_SIGACTION,
    SYS_SIGRETURN,
    SYS_YIELD,
)
from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register


def _build_counter(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    iters = 300 * scale
    h = WorkloadHarness(threads, "counter")
    b = h.b
    b.word("counter", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("counter", 1))
    b.label("body")
    with b.for_range("r6", 0, iters):
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[counter]", "r7")
    b.ins("ret")
    return h.build(), {}


def _build_pingpong(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    iters = 400 * scale
    h = WorkloadHarness(threads, "pingpong")
    b = h.b
    b.align(64)
    b.word("line", *([0] * 16))  # one 64-byte cache line of slots
    h.emit_main(epilogue=lambda: h.emit_checksum_write("line", 16))
    b.label("body")
    b.ins("mov", "r11", "rdi")
    b.ins("and", "r11", "r11", 15)
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[line + r11*4]")
        b.ins("add", "r7", "r7", 1)
        b.ins("store", "[line + r11*4]", "r7")
    b.ins("ret")
    return h.build(), {}


def _build_dekker(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    iters = 150 * scale
    h = WorkloadHarness(2, "dekker")  # Peterson is two-party
    b = h.b
    b.word("flag", 0, 0)
    b.word("turn", 0)
    b.word("crit", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("crit", 1))
    b.label("body")
    b.ins("mov", "r11", "rdi")          # my id
    b.ins("mov", "r10", 1)
    b.ins("sub", "r10", "r10", "r11")   # other id
    with b.for_range("r6", 0, iters):
        b.ins("store", "[flag + r11*4]", 1)
        b.ins("store", "[turn]", "r10")
        b.ins("mfence")
        spin = b.fresh("pspin")
        enter = b.fresh("penter")
        b.label(spin)
        b.ins("load", "r7", "[flag + r10*4]")
        b.ins("test", "r7", "r7")
        b.ins("je", enter)
        b.ins("load", "r8", "[turn]")
        b.ins("cmp", "r8", "r10")
        b.ins("je", spin)
        b.label(enter)
        b.ins("load", "r9", "[crit]")
        b.ins("add", "r9", "r9", 1)
        b.ins("store", "[crit]", "r9")
        b.ins("store", "[flag + r11*4]", 0)
    b.ins("ret")
    return h.build(), {}


_RING_SLOTS = 16


def _build_prodcons(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    threads = max(threads, 2)
    consumers = threads - 1
    per_consumer = 120 * scale
    total = per_consumer * consumers
    h = WorkloadHarness(threads, "prodcons")
    b = h.b
    b.word("ring", *([0] * _RING_SLOTS))
    b.word("filled", *([0] * _RING_SLOTS))
    b.word("ticket", 0)
    b.word("sums", *([0] * threads))
    h.emit_main(epilogue=lambda: h.emit_checksum_write("sums", threads))
    b.label("body")
    b.ins("mov", "r11", "rdi")
    consume = b.fresh("consume")
    out = b.fresh("bodyret")
    b.ins("test", "r11", "r11")
    b.ins("jne", consume)
    # -- producer (thread 0): item i goes to slot i % SLOTS ----------------
    with b.for_range("r6", 0, total):
        b.ins("and", "r7", "r6", _RING_SLOTS - 1)
        wait_empty = b.fresh("wempty")
        b.label(wait_empty)
        b.ins("load", "r8", "[filled + r7*4]")
        b.ins("test", "r8", "r8")
        go = b.fresh("wgo")
        b.ins("je", go)
        b.ins("pause")
        b.ins("jmp", wait_empty)
        b.label(go)
        b.ins("store", "[ring + r7*4]", "r6")
        b.ins("store", "[filled + r7*4]", 1)  # TSO keeps these ordered
    b.ins("jmp", out)
    # -- consumers: claim items with an atomic ticket ------------------------
    b.label(consume)
    loop = b.fresh("cloop")
    b.label(loop)
    b.ins("mov", "r6", 1)
    b.ins("xadd", "[ticket]", "r6")     # r6 = my item number
    b.ins("cmp", "r6", total)
    b.ins("jge", out)
    b.ins("and", "r7", "r6", _RING_SLOTS - 1)
    wait_full = b.fresh("wfull")
    b.label(wait_full)
    b.ins("load", "r8", "[filled + r7*4]")
    b.ins("test", "r8", "r8")
    take = b.fresh("wtake")
    b.ins("jne", take)
    b.ins("pause")
    b.ins("jmp", wait_full)
    b.label(take)
    b.ins("load", "r9", "[ring + r7*4]")
    b.ins("store", "[filled + r7*4]", 0)
    b.ins("load", "r8", "[sums + r11*4]")
    b.ins("add", "r8", "r8", "r9")
    b.ins("store", "[sums + r11*4]", "r8")
    b.ins("jmp", loop)
    b.label(out)
    b.ins("ret")
    return h.build(), {}


def _build_locks(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    iters = 100 * scale
    h = WorkloadHarness(threads, "locks")
    b = h.b
    b.word("lock", 0)
    b.word("crit", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("crit", 1))
    b.label("body")
    with b.for_range("r6", 0, iters):
        b.spin_lock("lock", scratch="r7")
        b.ins("load", "r8", "[crit]")
        b.ins("add", "r8", "r8", 1)
        b.ins("store", "[crit]", "r8")
        b.spin_unlock("lock")
    b.ins("ret")
    return h.build(), {}


def _build_sigping(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    pings = 20 * scale
    h = WorkloadHarness(2, "sigping")
    b = h.b
    b.word("acks", 0)
    b.word("sig_ready", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("acks", 1))
    b.label("body")
    b.ins("mov", "r11", "rdi")
    worker = b.fresh("sig_worker")
    out = b.fresh("sig_out")
    b.ins("test", "r11", "r11")
    b.ins("jne", worker)
    # -- main: wait for the handler to be registered, then fire N signals
    # at the worker (tid 2), yielding between ------------------------------
    ready = b.fresh("sig_ready_spin")
    b.label(ready)
    b.ins("pause")
    b.ins("load", "r7", "[sig_ready]")
    b.ins("test", "r7", "r7")
    b.ins("je", ready)
    with b.for_range("r6", 0, pings):
        b.ins("push", "r6")
        b.syscall(SYS_KILL, 2, 10)
        b.syscall(SYS_YIELD)
        b.ins("pop", "r6")
    # wait until all delivered
    wait = b.fresh("sig_wait")
    b.label(wait)
    b.ins("load", "r7", "[acks]")
    b.ins("cmp", "r7", pings)
    done = b.fresh("sig_done")
    b.ins("jge", done)
    b.syscall(SYS_YIELD)
    b.ins("jmp", wait)
    b.label(done)
    b.ins("jmp", out)
    # -- worker: register handler, spin until all signals arrive ------------
    b.label(worker)
    b.syscall(SYS_SIGACTION, 10, "sig_handler")
    b.ins("store", "[sig_ready]", 1)
    spin = b.fresh("sig_spin")
    b.label(spin)
    b.ins("pause")
    b.ins("load", "r7", "[acks]")
    b.ins("cmp", "r7", pings)
    b.ins("jl", spin)
    b.label(out)
    b.ins("ret")
    b.label("sig_handler")
    b.ins("load", "r7", "[acks]")
    b.ins("add", "r7", "r7", 1)
    b.ins("store", "[acks]", "r7")
    b.syscall(SYS_SIGRETURN)
    return h.build(), {}


def _build_iobound(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    words_per_thread = 512 * scale
    bytes_per_thread = words_per_thread * 4
    h = WorkloadHarness(threads, "iobound")
    b = h.b
    inputs: dict[str, bytes] = {}
    for tid in range(threads):
        b.asciz(f"path_{tid}", f"in_{tid}")
        inputs[f"in_{tid}"] = data.words_to_bytes(
            data.words(seed=100 + tid, count=words_per_thread, modulus=1000))
    b.space("iobuf", threads * bytes_per_thread)
    b.word("sums", *([0] * threads))
    h.emit_main(epilogue=lambda: h.emit_checksum_write("sums", threads))
    b.label("body")
    b.ins("mov", "r11", "rdi")
    # open my file: path table is laid out contiguously (each "in_N" is 5
    # bytes incl NUL), so compute the address arithmetically via a jump
    # table instead: dispatch per tid.
    done_open = b.fresh("io_opened")
    for tid in range(threads):
        skip = b.fresh("io_next")
        b.ins("cmp", "r11", tid)
        b.ins("jne", skip)
        b.syscall(10, f"path_{tid}")  # SYS_OPEN
        b.ins("jmp", done_open)
        b.label(skip)
    b.label(done_open)
    b.ins("mov", "r10", "rax")  # fd
    # read in 128-byte chunks into my region, summing as we go
    b.ins("mov", "r9", "iobuf")
    b.ins("mov", "r8", "r11")
    b.ins("mul", "r8", "r8", bytes_per_thread)
    b.ins("add", "r9", "r9", "r8")  # my region base
    b.ins("mov", "r14", 0)  # offset
    loop = b.fresh("io_loop")
    done = b.fresh("io_done")
    b.label(loop)
    b.ins("cmp", "r14", bytes_per_thread)
    b.ins("jge", done)
    b.ins("mov", "r1", "r10")
    b.ins("add", "r2", "r9", "r14")
    b.ins("mov", "r3", 128)
    b.ins("mov", "rax", 3)  # SYS_READ
    b.ins("syscall")
    b.ins("test", "rax", "rax")
    b.ins("je", done)
    b.ins("add", "r14", "r14", "rax")
    b.ins("jmp", loop)
    b.label(done)
    # sum my region
    b.ins("mov", "r8", 0)
    with b.for_range("r6", 0, words_per_thread):
        b.ins("shl", "r7", "r6", 2)
        b.ins("add", "r7", "r7", "r9")
        b.ins("load", "r7", "[r7]")
        b.ins("add", "r8", "r8", "r7")
    b.ins("store", "[sums + r11*4]", "r8")
    b.ins("ret")
    return h.build(), inputs


def _build_repcopy(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    block_words = 256
    rounds = 4 * scale
    h = WorkloadHarness(threads, "repcopy")
    b = h.b
    b.words("src", data.words(seed=7, count=block_words, modulus=10_000))
    b.space("dst", block_words * 4)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("dst", block_words))
    b.label("body")
    b.ins("mov", "r11", "rdi")
    with b.for_range("r14", 0, rounds):
        # Even tids bulk-copy with rep_movs; odd tids scatter stores into
        # the same destination — conflicts land inside the rep instruction.
        b.ins("and", "r7", "r11", 1)
        scatter = b.fresh("rc_scatter")
        next_round = b.fresh("rc_next")
        b.ins("test", "r7", "r7")
        b.ins("jne", scatter)
        b.ins("mov", "rcx", block_words)
        b.ins("mov", "rsi", "src")
        b.ins("mov", "rdi", "dst")
        b.ins("rep_movs")
        b.ins("jmp", next_round)
        b.label(scatter)
        with b.for_range("r6", 0, block_words):
            b.ins("and", "r8", "r6", block_words - 1)
            b.ins("store", "[dst + r8*4]", "r6")
        b.label(next_round)
        # rdi was clobbered by rep_movs/loop scratch; restore the tid
        b.ins("mov", "rdi", "r11")
    b.ins("ret")
    return h.build(), {}


def _build_racer(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    """Ground truth for ``quickrec analyze``: the ``racy`` word is updated
    with an unsynchronized load/add/store by both threads (a textbook data
    race), while ``guarded`` sees the same pattern under a spinlock and
    must NOT be reported."""
    iters = 40 * scale
    h = WorkloadHarness(2, "racer")
    b = h.b
    b.word("racy", 0)
    b.word("rlock", 0)
    b.word("guarded", 0)
    h.emit_main(epilogue=lambda: h.emit_checksum_write("racy", 1))
    b.label("body")
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[racy]")
        b.ins("add", "r7", "r7", 1)
        b.ins("store", "[racy]", "r7")
        b.spin_lock("rlock", scratch="r8")
        b.ins("load", "r9", "[guarded]")
        b.ins("add", "r9", "r9", 1)
        b.ins("store", "[guarded]", "r9")
        b.spin_unlock("rlock")
    b.ins("ret")
    return h.build(), {}


register(Workload("counter", "atomic xadd contention on one word",
                  "micro", _build_counter))
register(Workload("pingpong", "plain-store sharing inside one cache line",
                  "micro", _build_pingpong))
register(Workload("dekker", "Peterson mutual exclusion with mfence",
                  "micro", _build_dekker, default_threads=2))
register(Workload("prodcons", "single producer, ticketed consumers",
                  "micro", _build_prodcons))
register(Workload("locks", "spinlock-guarded critical section",
                  "micro", _build_locks))
register(Workload("sigping", "asynchronous signal delivery storm",
                  "micro", _build_sigping, default_threads=2))
register(Workload("iobound", "syscall-dominated file reads and writes",
                  "micro", _build_iobound))
register(Workload("repcopy", "rep_movs bulk copies racing scattered stores",
                  "micro", _build_repcopy))
def _build_crasher(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    """A workload that detects its own corruption: every thread
    plain-RMWs the shared ``racy`` word (lost updates under almost any
    preemptive interleaving), and after the join main compares the total
    against the race-free expectation and exits 1 on mismatch — the
    deterministic-per-seed faulting workload the flight-recorder crash
    path is exercised with."""
    threads = max(2, threads)
    iters = 40 * scale
    h = WorkloadHarness(threads, "crasher")
    b = h.b
    b.word("racy", 0)

    def epilogue() -> None:
        h.emit_checksum_write("racy", 1)
        ok = b.fresh("ok")
        b.ins("load", "r7", "[racy]")
        b.ins("cmp", "r7", threads * iters)
        b.ins("jge", ok)
        b.exit(1)
        b.label(ok)

    h.emit_main(epilogue=epilogue)
    b.label("body")
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[racy]")
        b.ins("add", "r7", "r7", 1)
        b.ins("store", "[racy]", "r7")
    b.ins("ret")
    return h.build(), {}


register(Workload("racer", "seeded data race beside a correctly locked word",
                  "micro", _build_racer, default_threads=2))
register(Workload("crasher", "self-checking lost-update fault (exits nonzero)",
                  "micro", _build_crasher, default_threads=2))
