"""ocean — red-black stencil sweeps over a row-partitioned grid.

The nearest-neighbour sharing of SPLASH-2 Ocean: a G x G integer grid,
interior cells relaxed to the mean of their four neighbours, in red/black
half-sweeps with a barrier after each. Threads own contiguous row bands,
so all steady-state communication is at band edges — the lowest
conflict-rate pattern in the suite.
"""

from __future__ import annotations

from ..isa.program import Program
from . import data
from .base import Workload, WorkloadHarness, register

_BASE_GRID = 18
_BASE_SWEEPS = 3


def _build_ocean(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    grid = _BASE_GRID + 4 * (scale - 1)
    sweeps = _BASE_SWEEPS + (scale - 1)
    interior = grid - 2
    rows_per_thread = interior // threads
    h = WorkloadHarness(threads, "ocean")
    b = h.b
    b.words("g", data.words(seed=41, count=grid * grid, modulus=4096))
    h.emit_main(epilogue=lambda: h.emit_checksum_write("g", grid * grid,
                                                       stride_words=5))

    b.label("body")
    b.ins("mov", "r11", "rdi")
    # my row band: [1 + tid*rows, 1 + (tid+1)*rows), last thread to grid-1
    b.ins("mov", "r2", "r11")
    b.ins("mul", "r2", "r2", rows_per_thread)
    b.ins("add", "r2", "r2", 1)                  # first row
    b.ins("add", "r3", "r2", rows_per_thread)    # last row (exclusive)
    with b.if_equal("r11", threads - 1):
        b.ins("mov", "r3", grid - 1)

    b.ins("mov", "r14", 0)                       # sweep counter
    sweep_loop = b.fresh("oc_sweep")
    sweep_done = b.fresh("oc_done")
    b.label(sweep_loop)
    b.ins("cmp", "r14", 2 * sweeps)              # two colors per sweep
    b.ins("jge", sweep_done)
    b.ins("and", "r10", "r14", 1)                # color of this half-sweep
    b.ins("mov", "r6", "r2")                     # row
    row_loop = b.fresh("oc_row")
    row_done = b.fresh("oc_row_done")
    b.label(row_loop)
    b.ins("cmp", "r6", "r3")
    b.ins("jge", row_done)
    b.ins("mov", "r8", "r6")
    b.ins("mul", "r8", "r8", grid)               # row base index
    b.ins("mov", "r7", 1)                        # col
    col_loop = b.fresh("oc_col")
    col_done = b.fresh("oc_col_done")
    col_skip = b.fresh("oc_col_skip")
    b.label(col_loop)
    b.ins("cmp", "r7", grid - 1)
    b.ins("jge", col_done)
    b.ins("add", "r9", "r6", "r7")
    b.ins("and", "r9", "r9", 1)
    b.ins("cmp", "r9", "r10")
    b.ins("jne", col_skip)
    b.ins("add", "r9", "r8", "r7")               # row*grid + col
    b.ins("sub", "r5", "r9", grid)
    b.ins("load", "r4", "[g + r5*4]")            # up
    b.ins("add", "r5", "r9", grid)
    b.ins("load", "r5", "[g + r5*4]")            # down
    b.ins("add", "r4", "r4", "r5")
    b.ins("sub", "r5", "r9", 1)
    b.ins("load", "r5", "[g + r5*4]")            # left
    b.ins("add", "r4", "r4", "r5")
    b.ins("add", "r5", "r9", 1)
    b.ins("load", "r5", "[g + r5*4]")            # right
    b.ins("add", "r4", "r4", "r5")
    b.ins("shr", "r4", "r4", 2)
    b.ins("store", "[g + r9*4]", "r4")
    b.label(col_skip)
    b.ins("add", "r7", "r7", 1)
    b.ins("jmp", col_loop)
    b.label(col_done)
    b.ins("add", "r6", "r6", 1)
    b.ins("jmp", row_loop)
    b.label(row_done)
    h.barrier()
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", sweep_loop)
    b.label(sweep_done)
    b.ins("ret")
    return h.build(), {}


register(Workload("ocean", "red-black stencil with edge sharing",
                  "splash", _build_ocean))
