"""radiosity — work stealing from per-thread task deques.

The distributed task-queue structure of SPLASH-2 Radiosity: every thread
owns a deque of task ids seeded round-robin; it pops work from its own
tail under the deque's lock and, when empty, scans the other deques and
steals from their heads. Termination is an atomic done-counter. Stealing
makes the lock and index lines migrate irregularly between cores — the
suite's most scheduler-sensitive conflict pattern — while the computation
itself (an integer "form factor" per task, accumulated per thread) keeps
the checksum schedule-independent.
"""

from __future__ import annotations

from ..isa.program import Program
from .base import Workload, WorkloadHarness, register

_TASKS_PER_THREAD = 48
_MAX_THREADS = 16


def _form_factor_expected(task: int) -> int:
    value = (task * 2654435761) & 0xFFFFFFFF
    return ((value >> 8) ^ task) & 0xFFFF


def _build_radiosity(threads: int, scale: int) -> tuple[Program, dict[str, bytes]]:
    per_thread = _TASKS_PER_THREAD * scale
    total = per_thread * threads
    h = WorkloadHarness(threads, "radiosity")
    b = h.b
    # Per-thread deques: tasks[t][...], head/tail indices, one lock each.
    b.space("dq_tasks", threads * per_thread * 4)
    b.word("dq_head", *([0] * threads))
    b.word("dq_tail", *([0] * threads))
    b.word("dq_lock", *([0] * threads))
    b.word("done_count", 0)
    b.word("acc", *([0] * threads))
    h.emit_main(prologue=lambda: _seed_deques(h, threads, per_thread),
                epilogue=lambda: h.emit_checksum_write("acc", threads))

    def lock_deque(idx_reg: str) -> None:
        acquire = b.fresh("rd_try")
        spin = b.fresh("rd_spin")
        got = b.fresh("rd_got")
        b.ins("shl", "r4", idx_reg, 2)
        b.label(acquire)
        b.ins("mov", "r5", 1)
        b.ins("xchg", "[dq_lock + r4]", "r5")
        b.ins("test", "r5", "r5")
        b.ins("je", got)
        b.label(spin)
        b.ins("pause")
        b.ins("load", "r5", "[dq_lock + r4]")
        b.ins("test", "r5", "r5")
        b.ins("jne", spin)
        b.ins("jmp", acquire)
        b.label(got)

    def unlock_deque(idx_reg: str) -> None:
        b.ins("shl", "r4", idx_reg, 2)
        b.ins("store", "[dq_lock + r4]", 0)

    b.label("body")
    b.ins("mov", "r11", "rdi")           # tid
    main_loop = b.fresh("rd_loop")
    run_task = b.fresh("rd_run")
    steal_scan = b.fresh("rd_steal")
    out = b.fresh("rd_out")

    b.label(main_loop)
    b.ins("load", "r7", "[done_count]")
    b.ins("cmp", "r7", total)
    b.ins("jge", out)
    # -- try my own deque: pop from the tail --------------------------------
    lock_deque("r11")
    b.ins("load", "r6", "[dq_head + r11*4]")
    b.ins("load", "r7", "[dq_tail + r11*4]")
    b.ins("cmp", "r6", "r7")
    empty_own = b.fresh("rd_empty_own")
    b.ins("jge", empty_own)
    b.ins("sub", "r7", "r7", 1)
    b.ins("store", "[dq_tail + r11*4]", "r7")
    b.ins("mov", "r9", "r11")
    b.ins("mul", "r9", "r9", per_thread)
    b.ins("add", "r9", "r9", "r7")
    b.ins("load", "r10", "[dq_tasks + r9*4]")  # task id
    unlock_deque("r11")
    b.ins("jmp", run_task)
    b.label(empty_own)
    unlock_deque("r11")
    # -- steal: scan every deque from my+1, take from the head ---------------
    b.ins("mov", "r14", 1)               # victim offset
    b.label(steal_scan)
    b.ins("cmp", "r14", threads)
    b.ins("jge", main_loop)              # nothing to steal; recheck done
    b.ins("add", "r13", "r11", "r14")
    b.ins("mod", "r13", "r13", threads)  # victim id
    lock_deque("r13")
    b.ins("load", "r6", "[dq_head + r13*4]")
    b.ins("load", "r7", "[dq_tail + r13*4]")
    b.ins("cmp", "r6", "r7")
    empty_victim = b.fresh("rd_empty_v")
    b.ins("jge", empty_victim)
    b.ins("add", "r5", "r6", 1)
    b.ins("store", "[dq_head + r13*4]", "r5")
    b.ins("mov", "r9", "r13")
    b.ins("mul", "r9", "r9", per_thread)
    b.ins("add", "r9", "r9", "r6")
    b.ins("load", "r10", "[dq_tasks + r9*4]")
    unlock_deque("r13")
    b.ins("jmp", run_task)
    b.label(empty_victim)
    unlock_deque("r13")
    b.ins("add", "r14", "r14", 1)
    b.ins("jmp", steal_scan)

    # -- run task r10: integer "form factor", accumulate, count done ---------
    b.label(run_task)
    b.ins("mul", "r7", "r10", 2654435761)
    b.ins("shr", "r8", "r7", 8)
    b.ins("xor", "r8", "r8", "r10")
    b.ins("and", "r8", "r8", 0xFFFF)
    b.ins("load", "r7", "[acc + r11*4]")
    b.ins("add", "r7", "r7", "r8")
    b.ins("store", "[acc + r11*4]", "r7")
    b.ins("mov", "r7", 1)
    b.ins("xadd", "[done_count]", "r7")
    b.ins("jmp", main_loop)
    b.label(out)
    b.ins("ret")
    return h.build(), {}


def _seed_deques(h: WorkloadHarness, threads: int, per_thread: int) -> None:
    """Main fills every deque before spawning: task ids round-robin."""
    b = h.b
    with b.for_range("r6", 0, threads * per_thread):
        b.ins("mod", "r7", "r6", threads)            # owner
        b.ins("div", "r8", "r6", threads)            # slot
        b.ins("mov", "r9", "r7")
        b.ins("mul", "r9", "r9", per_thread)
        b.ins("add", "r9", "r9", "r8")
        b.ins("store", "[dq_tasks + r9*4]", "r6")
    for tid in range(threads):
        b.ins("store", f"[dq_tail + {4 * tid}]", per_thread)


register(Workload("radiosity", "work stealing from per-thread task deques",
                  "splash", _build_radiosity))
