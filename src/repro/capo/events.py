"""Input-log event records.

One event per kernel-mediated nondeterministic effect. Events are totally
ordered per R-thread (the order the replayer consumes them) and carry a
global kernel sequence number and the thread's chunk count at event time so
the replayer can verify alignment and place signal deliveries at the exact
chunk boundary where they happened.
"""

from __future__ import annotations

from dataclasses import dataclass

EV_SYSCALL = "syscall"
EV_NONDET = "nondet"
EV_SIGNAL = "signal"
EV_SIGRETURN = "sigreturn"
EV_EXIT = "exit"

KINDS = (EV_SYSCALL, EV_NONDET, EV_SIGNAL, EV_SIGRETURN, EV_EXIT)
KIND_CODES = {kind: code for code, kind in enumerate(KINDS)}
KIND_NAMES = {code: kind for code, kind in enumerate(KINDS)}

NONDET_KINDS = ("", "rdtsc", "rdrand", "cpuid")
NONDET_CODES = {kind: code for code, kind in enumerate(NONDET_KINDS)}


@dataclass(frozen=True)
class InputEvent:
    """One logged input.

    Field use by kind:
        syscall    — ``sysno`` + ``value`` (return value) + ``copies``
                     (copy-to-user payloads as (addr, bytes) pairs);
        nondet     — ``nondet_kind`` + ``value`` (the trapped result);
        signal     — ``value`` is the signal number;
        sigreturn  — no payload (the replayer pops its own saved context);
        exit       — ``value`` is the exit code.
    """

    rthread: int
    seq: int
    chunk_seq: int
    kind: str
    sysno: int = 0
    value: int = 0
    nondet_kind: str = ""
    copies: tuple[tuple[int, bytes], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KIND_CODES:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.nondet_kind not in NONDET_CODES:
            raise ValueError(f"unknown nondet kind {self.nondet_kind!r}")

    @property
    def payload_bytes(self) -> int:
        """Bytes of copied-to-user data carried by this event."""
        return sum(len(data) for _addr, data in self.copies)
