"""The replay sphere: the unit of recording.

A sphere groups the R-threads recorded (and later replayed) together and
tracks per-thread chunk counts (the positions the input log's events are
anchored to). Cross-thread ordering — including kernel-mediated
communication such as futex wakeups and spawn — is carried entirely by the
globally synchronized chunk timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RecordingError


@dataclass
class ReplaySphere:
    """Sphere-wide recording state."""

    rthreads: set[int] = field(default_factory=set)
    chunk_counts: dict[int, int] = field(default_factory=dict)

    def register(self, rthread: int) -> None:
        if rthread in self.rthreads:
            raise RecordingError(f"rthread {rthread} already registered")
        self.rthreads.add(rthread)
        self.chunk_counts[rthread] = 0

    def note_chunk(self, rthread: int) -> None:
        self.chunk_counts[rthread] += 1

    def chunk_count(self, rthread: int) -> int:
        return self.chunk_counts[rthread]
