"""The recording bundle: everything replay is allowed to see.

A recording contains the program image, the configuration it ran under, the
chunk log, the input-event log, and verification metadata (final memory
digest, output file contents, exit codes). Notably it does *not* contain
the scheduler or interleaver seeds — if replay needed those, the logs would
not be capturing the nondeterminism.

Bundles round-trip to a directory::

    rec/
      manifest.json   config + metadata + log sizes
      program.json    the exact program image
      input.bin       input-event log
      chunks.bin      packed chunk log (raw format)
      chunks.qrz      compressed chunk log (when enabled)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..config import SimConfig
from ..errors import LogFormatError
from ..isa.program import Program
from ..mrr.chunk import ChunkEntry
from ..mrr.compression import compress_chunks, decompress_chunks
from ..mrr.logfmt import decode_chunks, encode_chunks
from .events import InputEvent
from .input_log import decode_events, encode_events

MANIFEST_NAME = "manifest.json"
PROGRAM_NAME = "program.json"
INPUT_NAME = "input.bin"
CHUNKS_NAME = "chunks.bin"
CHUNKS_COMPRESSED_NAME = "chunks.qrz"


@dataclass
class Recording:
    """A complete, self-contained recording of one run."""

    config: SimConfig
    program: Program
    chunks: list[ChunkEntry]
    events: list[InputEvent]
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- derived sizes (the log-rate experiments) ----------------------------

    def chunk_log_bytes(self) -> int:
        return len(encode_chunks(self.chunks,
                                 with_load_hash=self.config.mrr.log_load_hash))

    def chunk_log_compressed_bytes(self) -> int:
        return len(compress_chunks(self.chunks))

    def input_log_bytes(self) -> int:
        return len(encode_events(self.events))

    def total_log_bytes(self) -> int:
        return self.chunk_log_bytes() + self.input_log_bytes()

    def chunks_of(self, rthread: int) -> list[ChunkEntry]:
        return [chunk for chunk in self.chunks if chunk.rthread == rthread]

    def events_of(self, rthread: int) -> list[InputEvent]:
        return [event for event in self.events if event.rthread == rthread]

    def rthreads(self) -> list[int]:
        return sorted({chunk.rthread for chunk in self.chunks})

    # -- persistence ------------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with_hash = self.config.mrr.log_load_hash
        chunk_blob = encode_chunks(self.chunks, with_load_hash=with_hash)
        input_blob = encode_events(self.events)
        (directory / CHUNKS_NAME).write_bytes(chunk_blob)
        (directory / INPUT_NAME).write_bytes(input_blob)
        if self.config.capo.compress_chunk_log:
            (directory / CHUNKS_COMPRESSED_NAME).write_bytes(
                compress_chunks(self.chunks))
        manifest = {
            "format": "quickrec-recording",
            "version": 1,
            "config": self.config.to_dict(),
            "metadata": self.metadata,
            "chunk_count": len(self.chunks),
            "event_count": len(self.events),
            "chunk_log_bytes": len(chunk_blob),
            "input_log_bytes": len(input_blob),
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        (directory / PROGRAM_NAME).write_text(json.dumps(self.program.to_dict()))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Recording":
        directory = Path(directory)
        try:
            manifest = json.loads((directory / MANIFEST_NAME).read_text())
        except FileNotFoundError as exc:
            raise LogFormatError(f"no manifest in {directory}") from exc
        if manifest.get("format") != "quickrec-recording":
            raise LogFormatError("not a quickrec recording directory")
        config = SimConfig.from_dict(manifest["config"])
        program = Program.from_dict(
            json.loads((directory / PROGRAM_NAME).read_text()))
        chunk_path = directory / CHUNKS_NAME
        if chunk_path.exists():
            chunks = decode_chunks(chunk_path.read_bytes())
        else:
            compressed = directory / CHUNKS_COMPRESSED_NAME
            if not compressed.exists():
                raise LogFormatError(f"no chunk log in {directory}")
            chunks = decompress_chunks(compressed.read_bytes())
        events = decode_events((directory / INPUT_NAME).read_bytes())
        recording = cls(config=config, program=program, chunks=chunks,
                        events=events, metadata=manifest.get("metadata", {}))
        if len(recording.chunks) != manifest.get("chunk_count"):
            raise LogFormatError("chunk count mismatch against manifest")
        if len(recording.events) != manifest.get("event_count"):
            raise LogFormatError("event count mismatch against manifest")
        return recording
