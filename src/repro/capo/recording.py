"""The recording bundle: everything replay is allowed to see.

A recording contains the program image, the configuration it ran under, the
chunk log, the input-event log, optional embedded checkpoints (periodic
snapshots of deterministic replay state, see
:mod:`repro.replay.checkpoint`), and verification metadata (final memory
digest, output file contents, exit codes). Notably it does *not* contain
the scheduler or interleaver seeds — if replay needed those, the logs would
not be capturing the nondeterminism.

Bundles round-trip to a directory::

    rec/
      manifest.json    config + metadata + log sizes
      program.json     the exact program image
      input.bin        input-event log
      chunks.bin       packed chunk log (raw format)
      chunks.qrz       compressed chunk log (when enabled)
      checkpoints.bin  delta-encoded checkpoint section (when present)

Loading is *lazy*: ``Recording.load`` reads and validates only the
manifest and program image; each log section is read and decoded on first
access. ``quickrec``'s metadata-only paths (stats headers, manifest
summaries) therefore never pay for decompressing chunk payloads they do
not read, which matters once recordings reach millions of chunks.

Error contract: *everything* malformed raises
:class:`~repro.errors.LogFormatError` — a missing manifest, program image
or log section (the error names the offending directory), a truncated or
corrupt section payload, and any count mismatch against the manifest.
Callers handling damaged bundles (triage, crash capture, the flight
recorder) need exactly one except clause, never a raw ``FileNotFoundError``
or codec exception. ``save`` keeps the bundle self-consistent on re-save:
section files a previous save wrote but this save does not (checkpoints
dropped, compression toggled off) are removed rather than left stale.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Sequence

from ..config import SimConfig
from ..errors import LogFormatError
from ..isa.program import Program
from ..mrr.chunk import ChunkEntry
from ..mrr.compression import compress_chunks, decompress_chunks
from ..mrr.logfmt import (
    CheckpointRecord,
    decode_checkpoints,
    decode_chunks,
    encode_checkpoints,
    encode_chunks,
)
from .events import InputEvent
from .input_log import decode_events, encode_events

#: Metadata key marking a materialized flight window (see
#: :mod:`repro.flight`): replay must restore the embedded position-0
#: checkpoint instead of constructing a fresh replayer.
FLIGHT_META_KEY = "flight"

MANIFEST_NAME = "manifest.json"
PROGRAM_NAME = "program.json"
INPUT_NAME = "input.bin"
CHUNKS_NAME = "chunks.bin"
CHUNKS_COMPRESSED_NAME = "chunks.qrz"
CHECKPOINTS_NAME = "checkpoints.bin"


class Recording:
    """A complete, self-contained recording of one run.

    ``chunks``, ``events`` and ``checkpoints`` may be passed either as
    materialized lists (the in-memory recorder path) or as zero-argument
    loader callables (the lazy ``load`` path); the corresponding property
    forces a loader exactly once.
    """

    def __init__(self, config: SimConfig, program: Program,
                 chunks: list[ChunkEntry] | Callable[[], list[ChunkEntry]],
                 events: list[InputEvent] | Callable[[], list[InputEvent]],
                 metadata: dict[str, Any] | None = None,
                 checkpoints: Sequence[CheckpointRecord]
                 | Callable[[], list[CheckpointRecord]] | None = None):
        self.config = config
        self.program = program
        self.metadata: dict[str, Any] = metadata if metadata is not None else {}
        self._chunks = chunks
        self._events = events
        self._checkpoints = list(checkpoints) \
            if isinstance(checkpoints, (list, tuple)) \
            else (checkpoints if checkpoints is not None else [])

    # -- lazy sections -----------------------------------------------------------

    @property
    def chunks(self) -> list[ChunkEntry]:
        if callable(self._chunks):
            self._chunks = self._chunks()
        return self._chunks

    @chunks.setter
    def chunks(self, value: list[ChunkEntry]) -> None:
        self._chunks = value

    @property
    def events(self) -> list[InputEvent]:
        if callable(self._events):
            self._events = self._events()
        return self._events

    @events.setter
    def events(self, value: list[InputEvent]) -> None:
        self._events = value

    @property
    def checkpoints(self) -> list[CheckpointRecord]:
        if callable(self._checkpoints):
            self._checkpoints = self._checkpoints()
        return self._checkpoints

    @checkpoints.setter
    def checkpoints(self, value: Sequence[CheckpointRecord]) -> None:
        self._checkpoints = list(value)

    @property
    def sections_loaded(self) -> dict[str, bool]:
        """Which log sections have been decoded so far (lazy-load probe)."""
        return {
            "chunks": not callable(self._chunks),
            "events": not callable(self._events),
            "checkpoints": not callable(self._checkpoints),
        }

    def replace(self, **changes: Any) -> "Recording":
        """A shallow clone with the given attributes replaced — the
        ``dataclasses.replace`` analogue for this (lazy, non-dataclass)
        bundle. Unforced loaders are shared, not forced."""
        clone = Recording(config=self.config, program=self.program,
                          chunks=self._chunks, events=self._events,
                          metadata=dict(self.metadata),
                          checkpoints=self._checkpoints)
        for key, value in changes.items():
            if not hasattr(clone, key):
                raise AttributeError(f"Recording has no attribute {key!r}")
            setattr(clone, key, value)
        return clone

    def checkpoint_at(self, position: int) -> CheckpointRecord | None:
        """The checkpoint recorded exactly at chunk-schedule ``position``."""
        for record in self.checkpoints:
            if record.position == position:
                return record
        return None

    def nearest_checkpoint(self, position: int) -> CheckpointRecord | None:
        """The latest checkpoint at or before ``position`` (None = start)."""
        best = None
        for record in self.checkpoints:
            if record.position <= position and (
                    best is None or record.position > best.position):
                best = record
        return best

    # -- derived sizes (the log-rate experiments) ----------------------------

    def chunk_log_bytes(self, version: int | None = None) -> int:
        """Encoded chunk-log size; ``version`` overrides the bundle's
        configured ``capo.chunk_log_version`` (for v1-vs-v2 comparisons)."""
        if version is None:
            version = self.config.capo.chunk_log_version
        return len(encode_chunks(self.chunks,
                                 with_load_hash=self.config.mrr.log_load_hash,
                                 version=version))

    def chunk_log_compressed_bytes(self, version: int | None = None) -> int:
        if version is None:
            version = self.config.capo.chunk_log_version
        return len(compress_chunks(self.chunks, version=version))

    def input_log_bytes(self, version: int | None = None) -> int:
        """Encoded input-log size; ``version`` as for chunk_log_bytes."""
        if version is None:
            version = self.config.capo.input_log_version
        return len(encode_events(self.events, version=version))

    def total_log_bytes(self) -> int:
        return self.chunk_log_bytes() + self.input_log_bytes()

    def checkpoint_log_bytes(self) -> int:
        return len(encode_checkpoints(self.checkpoints)) \
            if self.checkpoints else 0

    def chunks_of(self, rthread: int) -> list[ChunkEntry]:
        return [chunk for chunk in self.chunks if chunk.rthread == rthread]

    def events_of(self, rthread: int) -> list[InputEvent]:
        return [event for event in self.events if event.rthread == rthread]

    def rthreads(self) -> list[int]:
        return sorted({chunk.rthread for chunk in self.chunks})

    # -- persistence ------------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with_hash = self.config.mrr.log_load_hash
        chunk_version = self.config.capo.chunk_log_version
        input_version = self.config.capo.input_log_version
        chunk_blob = encode_chunks(self.chunks, with_load_hash=with_hash,
                                   version=chunk_version)
        input_blob = encode_events(self.events, version=input_version)
        (directory / CHUNKS_NAME).write_bytes(chunk_blob)
        (directory / INPUT_NAME).write_bytes(input_blob)
        if self.config.capo.compress_chunk_log:
            (directory / CHUNKS_COMPRESSED_NAME).write_bytes(
                compress_chunks(self.chunks, version=chunk_version))
        else:
            # Re-saving into a directory whose previous occupant had the
            # section: a stale chunks.qrz would shadow nothing today (the
            # raw log wins on load) but diverges from this save's chunks
            # the moment chunks.bin is pruned. Same-name sections this
            # save does not write must not survive it.
            (directory / CHUNKS_COMPRESSED_NAME).unlink(missing_ok=True)
        if self.checkpoints:
            (directory / CHECKPOINTS_NAME).write_bytes(
                encode_checkpoints(self.checkpoints))
        else:
            # A stale checkpoints.bin against "checkpoint_count: 0" in the
            # fresh manifest makes the *next* load fail with a count
            # mismatch.
            (directory / CHECKPOINTS_NAME).unlink(missing_ok=True)
        manifest = {
            "format": "quickrec-recording",
            "version": 1,
            "config": self.config.to_dict(),
            "metadata": self.metadata,
            "chunk_count": len(self.chunks),
            "event_count": len(self.events),
            "checkpoint_count": len(self.checkpoints),
            "chunk_log_bytes": len(chunk_blob),
            "input_log_bytes": len(input_blob),
            "chunk_log_version": chunk_version,
            "input_log_version": input_version,
        }
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        (directory / PROGRAM_NAME).write_text(json.dumps(self.program.to_dict()))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "Recording":
        directory = Path(directory)
        try:
            manifest = json.loads((directory / MANIFEST_NAME).read_text())
        except FileNotFoundError as exc:
            raise LogFormatError(f"no manifest in {directory}") from exc
        if manifest.get("format") != "quickrec-recording":
            raise LogFormatError("not a quickrec recording directory")
        config = SimConfig.from_dict(manifest["config"])
        try:
            program = Program.from_dict(
                json.loads((directory / PROGRAM_NAME).read_text()))
        except FileNotFoundError as exc:
            raise LogFormatError(f"no program image in {directory}") from exc

        def load_chunks() -> list[ChunkEntry]:
            chunk_path = directory / CHUNKS_NAME
            if chunk_path.exists():
                chunks = decode_chunks(chunk_path.read_bytes())
            else:
                compressed = directory / CHUNKS_COMPRESSED_NAME
                if not compressed.exists():
                    raise LogFormatError(f"no chunk log in {directory}")
                chunks = decompress_chunks(compressed.read_bytes())
            if len(chunks) != manifest.get("chunk_count"):
                raise LogFormatError("chunk count mismatch against manifest")
            return chunks

        def load_events() -> list[InputEvent]:
            try:
                blob = (directory / INPUT_NAME).read_bytes()
            except FileNotFoundError as exc:
                raise LogFormatError(f"no input log in {directory}") from exc
            events = decode_events(blob)
            if len(events) != manifest.get("event_count"):
                raise LogFormatError("event count mismatch against manifest")
            return events

        def load_checkpoints() -> list[CheckpointRecord]:
            path = directory / CHECKPOINTS_NAME
            # Recordings made before the checkpoint section simply lack the
            # file (and the manifest key): that is a valid, empty section.
            if not path.exists():
                return []
            records = decode_checkpoints(path.read_bytes())
            expected = manifest.get("checkpoint_count")
            if expected is not None and len(records) != expected:
                raise LogFormatError(
                    "checkpoint count mismatch against manifest")
            return records

        return cls(config=config, program=program, chunks=load_chunks,
                   events=load_events, metadata=manifest.get("metadata", {}),
                   checkpoints=load_checkpoints)
