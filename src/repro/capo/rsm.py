"""The Replay Sphere Manager.

The RSM is Capo3's kernel-side core: it owns the recorders, the chunk
buffers and the logs, and it is invoked by the kernel at every crossing.
Two modes:

- ``hw``   — the MRR runs and chunk entries are buffered/drained, but no
  input logging and no software cycle charges. This is the "recording
  hardware only" configuration of the paper's overhead figure: its cost is
  just the CBUF entry traffic.
- ``full`` — the complete Capo3 stack: input logging (with per-event and
  per-byte charges), CBUF drain interrupts, syscall interposition and
  context-switch flush costs. This is the configuration whose overhead the
  paper reports at ~13% on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..errors import RecordingError
from ..machine.machine import Core, Machine
from ..mrr.chunk import ChunkEntry, Reason
from ..mrr.recorder import MemoryRaceRecorder
from ..mrr.signature import BloomSignature
from ..telemetry import get_logger
from .chunk_buffer import ChunkBuffer
from .events import (
    EV_EXIT,
    EV_NONDET,
    EV_SIGNAL,
    EV_SIGRETURN,
    EV_SYSCALL,
    KINDS,
    InputEvent,
)
from .sphere import ReplaySphere

MODE_HW = "hw"
MODE_FULL = "full"
MODES = (MODE_HW, MODE_FULL)

logger = get_logger("capo.rsm")


@dataclass
class RSMStats:
    chunks: int = 0
    input_events: int = 0
    input_payload_bytes: int = 0
    #: Payload bytes whose content was already in the recording's pool
    #: (copy avoidance: stored once, referenced again).
    input_payload_dedup_bytes: int = 0
    #: Batched-logging buffer drains (0 on the per-event path).
    input_batch_flushes: int = 0
    cbuf_drains: int = 0
    cycles_interpose: int = 0
    cycles_input_log: int = 0
    cycles_cbuf_drain: int = 0
    cycles_ctx_flush: int = 0
    cycles_cbuf_write: int = 0

    @property
    def cycles_software(self) -> int:
        return (self.cycles_interpose + self.cycles_input_log
                + self.cycles_cbuf_drain + self.cycles_ctx_flush)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["cycles_software"] = self.cycles_software
        return out


class ReplaySphereManager:
    """Wires the MRRs into the machine and the kernel."""

    def __init__(self, machine: Machine, config: SimConfig, mode: str = MODE_FULL):
        if mode not in MODES:
            raise RecordingError(f"unknown recording mode {mode!r}")
        self.machine = machine
        self.config = config
        self.mode = mode
        self.sphere = ReplaySphere()
        self.chunk_log: list[ChunkEntry] = []
        # Per-core chunk streams: each core's entries in emission order
        # (strictly timestamp-monotonic per stream, since the order clock
        # is global). Additional references only — ``chunk_log`` keeps the
        # CBUF drain order the digests and codecs are defined over; a
        # k-way merge of these streams reconstructs the global replay
        # schedule without the shared log (replay.schedule.
        # merge_core_streams).
        self.core_chunk_logs: list[list[ChunkEntry]] = [
            [] for _ in machine.cores]
        self.events: list[InputEvent] = []
        # Bounded-retention mode: when a FlightRing is attached (see
        # attach_flight), the ring becomes the retention authority —
        # chunks and events flow into it instead of the unbounded
        # chunk_log/core_chunk_logs/events lists, and per-core order logs
        # are trimmed at each eviction. Execution, logging *content* and
        # every cycle charge are identical either way.
        self.flight = None
        self.stats = RSMStats()
        self.telemetry = machine.telemetry
        # Hoisted enablement flag: the interposition paths run per kernel
        # event, so they read a plain attribute rather than chasing the
        # telemetry object (zero-cost-when-disabled contract).
        self._tm_on = self.telemetry.enabled
        self._seq = 0
        # rr-style batched input logging: events stage in per-thread
        # buffers of ``input_batch_events`` entries and drain at
        # chunk/kernel boundaries (and finalize), amortizing the per-event
        # interposition charge across each batch. 0 = per-event path.
        self._batch_size = config.capo.input_batch_events
        self._batched = self._batch_size > 0
        self._event_buffers: dict[int, list[InputEvent]] = {}
        # Copy avoidance: content-keyed pool of copy payloads. Identical
        # syscall buffers are stored once and shared by every event that
        # carries them (and, in batched mode, re-copies are charged at the
        # cheaper duplicate rate).
        self._payload_pool: dict[bytes, bytes] = {}
        # Per-rthread stash of signature state across deschedules (the
        # virtualization path): captured at kernel entry, folded back in at
        # dispatch via BloomSignature.merge. Every deschedule is preceded by
        # a kernel entry, whose terminate() empties the live signatures, so
        # the stash carries no bits today — the merge is a bit-identical
        # no-op that keeps the protocol explicit (and conservative if the
        # terminate-before-undispatch sequencing ever changes).
        self._virt_sigs: dict[int, tuple[BloomSignature, BloomSignature]] = {}
        self._cbufs: list[ChunkBuffer] = []
        self.recorders: list[MemoryRaceRecorder] = []
        for core in machine.cores:
            cbuf = ChunkBuffer(config.mrr.cbuf_entries,
                               self._make_drain_handler(core))
            self._cbufs.append(cbuf)
            recorder = MemoryRaceRecorder(config.mrr, core,
                                          self._make_sink(core, cbuf),
                                          telemetry=machine.telemetry)
            self.recorders.append(recorder)
            machine.attach_recorder(core.core_id, recorder)
        if self._tm_on:
            metrics = self.telemetry.metrics
            self._tm_drains = metrics.counter("capo.cbuf_drains")
            self._tm_batch = metrics.histogram("capo.cbuf_batch_entries")
            self._tm_events = metrics.counter("capo.input_events")
            self._tm_payload = metrics.counter("capo.input_payload_bytes")
            self._tm_threads = metrics.counter("capo.sphere_threads")
            self._tm_flushes = metrics.counter("capo.input_batch_flushes")
            self._tm_dedup = metrics.counter("capo.input_payload_dedup_bytes")
            # Pre-created per-kind counters: the logging hot path indexes
            # this dict instead of paying a registry lookup (and an f-string
            # format) per event.
            self._tm_kind = {kind: metrics.counter(f"capo.input_events.{kind}")
                             for kind in KINDS}

    # -- wiring ---------------------------------------------------------------

    def order_logs(self) -> list:
        """Each core's :class:`~repro.mrr.orderlog.CoreOrderLog`, indexed
        by core id."""
        return [recorder.order_log for recorder in self.recorders]

    def attach_flight(self, ring) -> None:
        """Switch to bounded retention through ``ring``
        (:class:`~repro.flight.ring.FlightRing`). Must be attached before
        the run starts; evictions trim the per-core order logs to the
        retained window."""
        self.flight = ring

        def trim_order_logs(base_timestamp: int) -> None:
            for recorder in self.recorders:
                recorder.order_log.trim_before(base_timestamp)

        ring.on_evict = trim_order_logs

    def _make_sink(self, core: Core, cbuf: ChunkBuffer):
        cost = self.machine.cost
        core_stream = self.core_chunk_logs[core.core_id]

        def sink(entry: ChunkEntry) -> None:
            self.sphere.note_chunk(entry.rthread)
            self.stats.chunks += 1
            core.cycles += cost.cbuf_entry_write
            self.stats.cycles_cbuf_write += cost.cbuf_entry_write
            flight = self.flight
            if flight is None:
                core_stream.append(entry)
            else:
                # Sink calls happen at termination under the fabric's
                # serialized order clock, so ring arrivals are already in
                # global schedule order (the CBUF drain below is not).
                flight.push_chunk(entry)
            cbuf.append(entry)

        return sink

    def _make_drain_handler(self, core: Core):
        cost = self.machine.cost

        def on_drain(batch: list[ChunkEntry]) -> None:
            if self.flight is None:
                self.chunk_log.extend(batch)
            self.stats.cbuf_drains += 1
            if self.mode == MODE_FULL:
                charge = (cost.cbuf_drain_interrupt
                          + cost.cbuf_drain_per_entry * len(batch))
                core.cycles += charge
                self.stats.cycles_cbuf_drain += charge
                if self._batched:
                    # The drain interrupt already runs RSM code: piggyback
                    # the staged input events of every thread (a chunk
                    # boundary is a batch boundary).
                    for rthread in list(self._event_buffers):
                        self._flush_events(rthread, core)
            if self._tm_on:
                self._tm_drains.inc()
                self._tm_batch.observe(len(batch))
                self.telemetry.tracer.instant(
                    "cbuf.drain", cat="capo", tid=core.core_id,
                    args={"entries": len(batch),
                          "log_chunks": len(self.chunk_log)})

        return on_drain

    # -- thread lifecycle ---------------------------------------------------------

    def thread_started(self, task) -> None:
        self.sphere.register(task.rthread)
        if self._tm_on:
            self._tm_threads.inc()
            self.telemetry.tracer.instant(
                "sphere.thread_started", cat="capo", tid=task.rthread)
            self.telemetry.tracer.thread_name(
                task.rthread, f"rthread {task.rthread}")

    # -- kernel crossings ------------------------------------------------------------

    def _virt_slot(self, rthread: int) -> tuple[BloomSignature, BloomSignature]:
        slot = self._virt_sigs.get(rthread)
        if slot is None:
            mrr = self.config.mrr
            slot = (BloomSignature(mrr.signature_bits, mrr.signature_hashes),
                    BloomSignature(mrr.signature_bits, mrr.signature_hashes))
            self._virt_sigs[rthread] = slot
        return slot

    def on_kernel_entry(self, core: Core, task, reason: str) -> None:
        core.recorder.terminate(reason)
        stash_read, stash_write = self._virt_slot(task.rthread)
        stash_read.clear()
        stash_write.clear()
        stash_read.merge(core.recorder.read_sig)
        stash_write.merge(core.recorder.write_sig)
        if self.mode != MODE_FULL:
            return
        cost = self.machine.cost
        if reason in (Reason.SYSCALL, Reason.EXIT):
            core.cycles += cost.rsm_syscall_interpose
            self.stats.cycles_interpose += cost.rsm_syscall_interpose
        elif reason == Reason.NONDET:
            core.cycles += cost.rsm_nondet_interpose
            self.stats.cycles_interpose += cost.rsm_nondet_interpose

    def on_kernel_exit(self, core: Core, task) -> None:
        """Hook for symmetry with on_kernel_entry (no recording work is
        needed at kernel exit: timestamps come from the global clock)."""

    def on_dispatch(self, core: Core, task) -> None:
        core.recorder.set_thread(task.rthread)
        slot = self._virt_sigs.get(task.rthread)
        if slot is not None:
            core.recorder.absorb_signatures(*slot)

    def on_undispatch(self, core: Core, task) -> None:
        core.recorder.clear_thread()
        if self.mode == MODE_FULL:
            cost = self.machine.cost
            core.cycles += cost.context_switch_flush
            self.stats.cycles_ctx_flush += cost.context_switch_flush
            if self._batched:
                # Kernel boundary: the departing thread's staged events
                # drain with the context-switch flush.
                self._flush_events(task.rthread, core)

    # -- input logging -----------------------------------------------------------------

    def _flush_events(self, rthread: int, core: Core | None) -> None:
        """Drain one thread's staged events into the log (batched mode)."""
        buffer = self._event_buffers.get(rthread)
        if not buffer:
            return
        if self.flight is None:
            self.events.extend(buffer)
        drained = len(buffer)
        buffer.clear()
        charge = self.machine.cost.input_log_flush
        if core is not None:
            core.cycles += charge
        self.stats.cycles_input_log += charge
        self.stats.input_batch_flushes += 1
        if self._tm_on:
            self._tm_flushes.inc()
            self.telemetry.tracer.instant(
                "input.flush", cat="capo", tid=rthread,
                args={"events": drained})

    def _log(self, event: InputEvent, core: Core | None,
             fresh_payload_bytes: int | None = None) -> None:
        if self.mode != MODE_FULL:
            return
        payload_bytes = event.payload_bytes
        fresh = payload_bytes if fresh_payload_bytes is None \
            else fresh_payload_bytes
        stats = self.stats
        stats.input_events += 1
        stats.input_payload_bytes += payload_bytes
        stats.input_payload_dedup_bytes += payload_bytes - fresh
        if self.flight is not None:
            # Tap before batching: _log is called in kernel seq order,
            # batch flushes are not, and a window event must reach the
            # ring before the chunk needing it could ever be evicted.
            self.flight.push_event(event)
        cost = self.machine.cost
        if self._batched:
            # Stage into the per-thread buffer; the interposition charge is
            # amortized by _flush_events. Copy avoidance: only content not
            # already pooled pays the full per-byte copy-out.
            buffer = self._event_buffers.get(event.rthread)
            if buffer is None:
                buffer = self._event_buffers[event.rthread] = []
            buffer.append(event)
            charge = (cost.input_log_event_batched
                      + cost.input_log_per_byte * fresh
                      + cost.input_log_dup_per_byte * (payload_bytes - fresh))
            full = len(buffer) >= self._batch_size
        else:
            if self.flight is None:
                self.events.append(event)
            charge = (cost.input_log_event
                      + cost.input_log_per_byte * payload_bytes)
            full = False
        if core is not None:
            core.cycles += charge
        stats.cycles_input_log += charge
        if self._tm_on:
            self._tm_events.inc()
            self._tm_payload.inc(payload_bytes)
            self._tm_dedup.inc(payload_bytes - fresh)
            self._tm_kind[event.kind].inc()
            self.telemetry.tracer.instant(
                f"input:{event.kind}", cat="capo", tid=event.rthread,
                args={"seq": event.seq, "chunk_seq": event.chunk_seq,
                      "payload_bytes": payload_bytes})
        if full:
            self._flush_events(event.rthread, core)

    def _event(self, task, kind: str, **fields) -> InputEvent:
        self._seq += 1
        return InputEvent(rthread=task.rthread, seq=self._seq,
                          chunk_seq=self.sphere.chunk_count(task.rthread),
                          kind=kind, **fields)

    def _core_of(self, task) -> Core | None:
        if task.core_id is None:
            return None
        return self.machine.cores[task.core_id]

    def _intern_copies(self, copies) -> tuple[tuple, int]:
        """Dedup copy payloads through the content-keyed pool.

        Returns the interned copies and the number of payload bytes whose
        content was *not* already pooled (the bytes that actually have to
        be copied into the log)."""
        if not copies:
            return (), 0
        pool = self._payload_pool
        fresh = 0
        out = []
        for addr, data in copies:
            pooled = pool.get(data)
            if pooled is None:
                pool[data] = pooled = data
                fresh += len(data)
            out.append((addr, pooled))
        return tuple(out), fresh

    def log_syscall(self, task, sysno: int, retval: int,
                    copies: tuple[tuple[int, bytes], ...]) -> None:
        copies, fresh = self._intern_copies(tuple(copies))
        event = self._event(task, EV_SYSCALL, sysno=sysno, value=retval,
                            copies=copies)
        self._log(event, self._core_of(task), fresh_payload_bytes=fresh)

    def log_nondet(self, task, kind: str, value: int) -> None:
        event = self._event(task, EV_NONDET, nondet_kind=kind, value=value)
        self._log(event, self._core_of(task))

    def log_signal(self, task, signo: int) -> None:
        event = self._event(task, EV_SIGNAL, value=signo)
        self._log(event, self._core_of(task))

    def log_sigreturn(self, task) -> None:
        event = self._event(task, EV_SIGRETURN)
        self._log(event, self._core_of(task))

    def log_exit(self, task, code: int) -> None:
        event = self._event(task, EV_EXIT, value=code)
        self._log(event, self._core_of(task))

    # -- finish ---------------------------------------------------------------------------

    def finalize(self) -> None:
        """Flush every CBUF and staged event buffer (end of recording)."""
        for cbuf in self._cbufs:
            cbuf.drain()
        if self._batched:
            for rthread in list(self._event_buffers):
                self._flush_events(rthread, None)
            # Buffers drain at different boundaries per thread, so the
            # global log is flush-ordered; restore the canonical kernel
            # sequence order (seq is globally unique and assigned in
            # append order, so this is exactly the per-event path's log).
            self.events.sort(key=lambda event: event.seq)
        logger.debug(
            "finalized sphere: %d chunks, %d input events, %d payload "
            "bytes, %d CBUF drains, %d software cycles",
            self.stats.chunks, self.stats.input_events,
            self.stats.input_payload_bytes, self.stats.cbuf_drains,
            self.stats.cycles_software)
        if self._tm_on:
            self.telemetry.tracer.instant(
                "rsm.finalize", cat="capo",
                args={"chunks": self.stats.chunks,
                      "input_events": self.stats.input_events})
