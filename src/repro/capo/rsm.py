"""The Replay Sphere Manager.

The RSM is Capo3's kernel-side core: it owns the recorders, the chunk
buffers and the logs, and it is invoked by the kernel at every crossing.
Two modes:

- ``hw``   — the MRR runs and chunk entries are buffered/drained, but no
  input logging and no software cycle charges. This is the "recording
  hardware only" configuration of the paper's overhead figure: its cost is
  just the CBUF entry traffic.
- ``full`` — the complete Capo3 stack: input logging (with per-event and
  per-byte charges), CBUF drain interrupts, syscall interposition and
  context-switch flush costs. This is the configuration whose overhead the
  paper reports at ~13% on average.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..errors import RecordingError
from ..machine.machine import Core, Machine
from ..mrr.chunk import ChunkEntry, Reason
from ..mrr.recorder import MemoryRaceRecorder
from ..mrr.signature import BloomSignature
from ..telemetry import get_logger
from .chunk_buffer import ChunkBuffer
from .events import (
    EV_EXIT,
    EV_NONDET,
    EV_SIGNAL,
    EV_SIGRETURN,
    EV_SYSCALL,
    InputEvent,
)
from .sphere import ReplaySphere

MODE_HW = "hw"
MODE_FULL = "full"
MODES = (MODE_HW, MODE_FULL)

logger = get_logger("capo.rsm")


@dataclass
class RSMStats:
    chunks: int = 0
    input_events: int = 0
    input_payload_bytes: int = 0
    cbuf_drains: int = 0
    cycles_interpose: int = 0
    cycles_input_log: int = 0
    cycles_cbuf_drain: int = 0
    cycles_ctx_flush: int = 0
    cycles_cbuf_write: int = 0

    @property
    def cycles_software(self) -> int:
        return (self.cycles_interpose + self.cycles_input_log
                + self.cycles_cbuf_drain + self.cycles_ctx_flush)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["cycles_software"] = self.cycles_software
        return out


class ReplaySphereManager:
    """Wires the MRRs into the machine and the kernel."""

    def __init__(self, machine: Machine, config: SimConfig, mode: str = MODE_FULL):
        if mode not in MODES:
            raise RecordingError(f"unknown recording mode {mode!r}")
        self.machine = machine
        self.config = config
        self.mode = mode
        self.sphere = ReplaySphere()
        self.chunk_log: list[ChunkEntry] = []
        self.events: list[InputEvent] = []
        self.stats = RSMStats()
        self.telemetry = machine.telemetry
        # Hoisted enablement flag: the interposition paths run per kernel
        # event, so they read a plain attribute rather than chasing the
        # telemetry object (zero-cost-when-disabled contract).
        self._tm_on = self.telemetry.enabled
        self._seq = 0
        # Per-rthread stash of signature state across deschedules (the
        # virtualization path): captured at kernel entry, folded back in at
        # dispatch via BloomSignature.merge. Every deschedule is preceded by
        # a kernel entry, whose terminate() empties the live signatures, so
        # the stash carries no bits today — the merge is a bit-identical
        # no-op that keeps the protocol explicit (and conservative if the
        # terminate-before-undispatch sequencing ever changes).
        self._virt_sigs: dict[int, tuple[BloomSignature, BloomSignature]] = {}
        self._cbufs: list[ChunkBuffer] = []
        for core in machine.cores:
            cbuf = ChunkBuffer(config.mrr.cbuf_entries,
                               self._make_drain_handler(core))
            self._cbufs.append(cbuf)
            recorder = MemoryRaceRecorder(config.mrr, core,
                                          self._make_sink(core, cbuf),
                                          telemetry=machine.telemetry)
            machine.attach_recorder(core.core_id, recorder)
        if self._tm_on:
            metrics = self.telemetry.metrics
            self._tm_drains = metrics.counter("capo.cbuf_drains")
            self._tm_batch = metrics.histogram("capo.cbuf_batch_entries")
            self._tm_events = metrics.counter("capo.input_events")
            self._tm_payload = metrics.counter("capo.input_payload_bytes")
            self._tm_threads = metrics.counter("capo.sphere_threads")

    # -- wiring ---------------------------------------------------------------

    def _make_sink(self, core: Core, cbuf: ChunkBuffer):
        cost = self.machine.cost

        def sink(entry: ChunkEntry) -> None:
            self.sphere.note_chunk(entry.rthread)
            self.stats.chunks += 1
            core.cycles += cost.cbuf_entry_write
            self.stats.cycles_cbuf_write += cost.cbuf_entry_write
            cbuf.append(entry)

        return sink

    def _make_drain_handler(self, core: Core):
        cost = self.machine.cost

        def on_drain(batch: list[ChunkEntry]) -> None:
            self.chunk_log.extend(batch)
            self.stats.cbuf_drains += 1
            if self.mode == MODE_FULL:
                charge = (cost.cbuf_drain_interrupt
                          + cost.cbuf_drain_per_entry * len(batch))
                core.cycles += charge
                self.stats.cycles_cbuf_drain += charge
            if self._tm_on:
                self._tm_drains.inc()
                self._tm_batch.observe(len(batch))
                self.telemetry.tracer.instant(
                    "cbuf.drain", cat="capo", tid=core.core_id,
                    args={"entries": len(batch),
                          "log_chunks": len(self.chunk_log)})

        return on_drain

    # -- thread lifecycle ---------------------------------------------------------

    def thread_started(self, task) -> None:
        self.sphere.register(task.rthread)
        if self._tm_on:
            self._tm_threads.inc()
            self.telemetry.tracer.instant(
                "sphere.thread_started", cat="capo", tid=task.rthread)
            self.telemetry.tracer.thread_name(
                task.rthread, f"rthread {task.rthread}")

    # -- kernel crossings ------------------------------------------------------------

    def _virt_slot(self, rthread: int) -> tuple[BloomSignature, BloomSignature]:
        slot = self._virt_sigs.get(rthread)
        if slot is None:
            mrr = self.config.mrr
            slot = (BloomSignature(mrr.signature_bits, mrr.signature_hashes),
                    BloomSignature(mrr.signature_bits, mrr.signature_hashes))
            self._virt_sigs[rthread] = slot
        return slot

    def on_kernel_entry(self, core: Core, task, reason: str) -> None:
        core.recorder.terminate(reason)
        stash_read, stash_write = self._virt_slot(task.rthread)
        stash_read.clear()
        stash_write.clear()
        stash_read.merge(core.recorder.read_sig)
        stash_write.merge(core.recorder.write_sig)
        if self.mode != MODE_FULL:
            return
        cost = self.machine.cost
        if reason in (Reason.SYSCALL, Reason.EXIT):
            core.cycles += cost.rsm_syscall_interpose
            self.stats.cycles_interpose += cost.rsm_syscall_interpose
        elif reason == Reason.NONDET:
            core.cycles += cost.rsm_nondet_interpose
            self.stats.cycles_interpose += cost.rsm_nondet_interpose

    def on_kernel_exit(self, core: Core, task) -> None:
        """Hook for symmetry with on_kernel_entry (no recording work is
        needed at kernel exit: timestamps come from the global clock)."""

    def on_dispatch(self, core: Core, task) -> None:
        core.recorder.set_thread(task.rthread)
        slot = self._virt_sigs.get(task.rthread)
        if slot is not None:
            core.recorder.absorb_signatures(*slot)

    def on_undispatch(self, core: Core, task) -> None:
        core.recorder.clear_thread()
        if self.mode == MODE_FULL:
            cost = self.machine.cost
            core.cycles += cost.context_switch_flush
            self.stats.cycles_ctx_flush += cost.context_switch_flush

    # -- input logging -----------------------------------------------------------------

    def _log(self, event: InputEvent, core: Core | None) -> None:
        if self.mode != MODE_FULL:
            return
        self.events.append(event)
        self.stats.input_events += 1
        self.stats.input_payload_bytes += event.payload_bytes
        cost = self.machine.cost
        charge = cost.input_log_event + cost.input_log_per_byte * event.payload_bytes
        if core is not None:
            core.cycles += charge
        self.stats.cycles_input_log += charge
        if self._tm_on:
            self._tm_events.inc()
            self._tm_payload.inc(event.payload_bytes)
            self.telemetry.metrics.counter(
                f"capo.input_events.{event.kind}").inc()
            self.telemetry.tracer.instant(
                f"input:{event.kind}", cat="capo", tid=event.rthread,
                args={"seq": event.seq, "chunk_seq": event.chunk_seq,
                      "payload_bytes": event.payload_bytes})

    def _event(self, task, kind: str, **fields) -> InputEvent:
        self._seq += 1
        return InputEvent(rthread=task.rthread, seq=self._seq,
                          chunk_seq=self.sphere.chunk_count(task.rthread),
                          kind=kind, **fields)

    def _core_of(self, task) -> Core | None:
        if task.core_id is None:
            return None
        return self.machine.cores[task.core_id]

    def log_syscall(self, task, sysno: int, retval: int,
                    copies: tuple[tuple[int, bytes], ...]) -> None:
        event = self._event(task, EV_SYSCALL, sysno=sysno, value=retval,
                            copies=tuple(copies))
        self._log(event, self._core_of(task))

    def log_nondet(self, task, kind: str, value: int) -> None:
        event = self._event(task, EV_NONDET, nondet_kind=kind, value=value)
        self._log(event, self._core_of(task))

    def log_signal(self, task, signo: int) -> None:
        event = self._event(task, EV_SIGNAL, value=signo)
        self._log(event, self._core_of(task))

    def log_sigreturn(self, task) -> None:
        event = self._event(task, EV_SIGRETURN)
        self._log(event, self._core_of(task))

    def log_exit(self, task, code: int) -> None:
        event = self._event(task, EV_EXIT, value=code)
        self._log(event, self._core_of(task))

    # -- finish ---------------------------------------------------------------------------

    def finalize(self) -> None:
        """Flush every CBUF (end of recording)."""
        for cbuf in self._cbufs:
            cbuf.drain()
        logger.debug(
            "finalized sphere: %d chunks, %d input events, %d payload "
            "bytes, %d CBUF drains, %d software cycles",
            self.stats.chunks, self.stats.input_events,
            self.stats.input_payload_bytes, self.stats.cbuf_drains,
            self.stats.cycles_software)
        if self._tm_on:
            self.telemetry.tracer.instant(
                "rsm.finalize", cat="capo",
                args={"chunks": self.stats.chunks,
                      "input_events": self.stats.input_events})
