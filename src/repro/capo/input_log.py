"""Binary serialization of the input-event log.

Two on-disk formats share the ``QRIL`` magic and are negotiated by the
header's version byte; :func:`decode_events` accepts both, so any reader
handles any recording.

**v1** — row-oriented: a header followed by varint-packed events with copy
payloads inline. Kept bit-exact for old recordings (and as the stable
byte stream the differential fingerprints hash).

**v2** — columnar: events are stored as per-field columns (``seq`` and
per-thread ``chunk_seq`` as zigzag-delta varints — both are monotone in
real logs, so deltas are tiny; ``rthread``/``kind``/``sysno`` are
low-cardinality and compress to almost nothing), copy payloads are
deduplicated through a content-keyed pool (repeated syscall buffers are
stored once and referenced by index), and the whole body runs through a
streaming zlib compressor. Sizes measured on the selected format feed the
F3 log-rate figure's input-log series.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from ..errors import LogFormatError
from ..mrr.varint import read_varint, unzigzag, write_varint, zigzag
from .events import (
    InputEvent,
    KIND_CODES,
    KIND_NAMES,
    NONDET_CODES,
    NONDET_KINDS,
)

MAGIC = b"QRIL"
VERSION = 1
VERSION_V2 = 2
VERSIONS = (VERSION, VERSION_V2)
_HEADER = struct.Struct("<4sBBHI")

#: v2 header flag: body is a zlib stream.
_V2_FLAG_ZLIB = 0x01


def _varint(value: int) -> bytes:
    return write_varint(value)


def _read_varint(blob: bytes, offset: int) -> tuple[int, int]:
    return read_varint(blob, offset, what="varint in input log")


def encode_events(events: Sequence[InputEvent], version: int = VERSION) -> bytes:
    """Serialize events in the requested format version."""
    if version == VERSION:
        return _encode_events_v1(events)
    if version == VERSION_V2:
        return _encode_events_v2(events)
    raise LogFormatError(f"unknown input log version {version}")


def _encode_events_v1(events: Sequence[InputEvent]) -> bytes:
    out = bytearray(_HEADER.pack(MAGIC, VERSION, 0, 0, len(events)))
    for event in events:
        out += _varint(event.rthread)
        out += _varint(event.seq)
        out += _varint(event.chunk_seq)
        out += _varint(KIND_CODES[event.kind])
        out += _varint(event.sysno)
        out += _varint(event.value)
        out += _varint(NONDET_CODES[event.nondet_kind])
        out += _varint(len(event.copies))
        for addr, data in event.copies:
            out += _varint(addr)
            out += _varint(len(data))
            out += data
    return bytes(out)


def _encode_events_v2(events: Sequence[InputEvent]) -> bytes:
    # Content-keyed copy-payload pool, in first-reference order.
    pool_index: dict[bytes, int] = {}
    pool: list[bytes] = []
    for event in events:
        for _addr, data in event.copies:
            if data not in pool_index:
                pool_index[data] = len(pool)
                pool.append(data)

    columns = [bytearray() for _ in range(9)]
    (col_rthread, col_seq, col_chunk_seq, col_kind, col_sysno, col_value,
     col_nondet, col_ncopies, col_copies) = columns
    prev_seq = 0
    prev_chunk_seq: dict[int, int] = {}
    for event in events:
        col_rthread += _varint(event.rthread)
        col_seq += _varint(zigzag(event.seq - prev_seq))
        prev_seq = event.seq
        prev = prev_chunk_seq.get(event.rthread, 0)
        col_chunk_seq += _varint(zigzag(event.chunk_seq - prev))
        prev_chunk_seq[event.rthread] = event.chunk_seq
        col_kind += _varint(KIND_CODES[event.kind])
        col_sysno += _varint(event.sysno)
        col_value += _varint(event.value)
        col_nondet += _varint(NONDET_CODES[event.nondet_kind])
        col_ncopies += _varint(len(event.copies))
        for addr, data in event.copies:
            col_copies += _varint(addr)
            col_copies += _varint(pool_index[data])

    compressor = zlib.compressobj(6)
    body = bytearray()
    body += compressor.compress(_varint(len(pool)))
    for payload in pool:
        body += compressor.compress(_varint(len(payload)))
        body += compressor.compress(payload)
    for column in columns:
        body += compressor.compress(bytes(column))
    body += compressor.flush()
    return _HEADER.pack(MAGIC, VERSION_V2, _V2_FLAG_ZLIB, 0,
                        len(events)) + bytes(body)


def decode_events(blob: bytes) -> list[InputEvent]:
    """Parse either format version back into events (stream order)."""
    if len(blob) < _HEADER.size:
        raise LogFormatError("input log truncated before header")
    magic, version, flags, _reserved, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise LogFormatError(f"bad input log magic {magic!r}")
    if version == VERSION:
        return _decode_events_v1(blob, count)
    if version == VERSION_V2:
        return _decode_events_v2(blob, flags, count)
    raise LogFormatError(f"unsupported input log version {version}")


def _decode_events_v1(blob: bytes, count: int) -> list[InputEvent]:
    events: list[InputEvent] = []
    offset = _HEADER.size
    for _ in range(count):
        rthread, offset = _read_varint(blob, offset)
        seq, offset = _read_varint(blob, offset)
        chunk_seq, offset = _read_varint(blob, offset)
        kind_code, offset = _read_varint(blob, offset)
        sysno, offset = _read_varint(blob, offset)
        value, offset = _read_varint(blob, offset)
        nondet_code, offset = _read_varint(blob, offset)
        copy_count, offset = _read_varint(blob, offset)
        copies = []
        for _ in range(copy_count):
            addr, offset = _read_varint(blob, offset)
            length, offset = _read_varint(blob, offset)
            if offset + length > len(blob):
                raise LogFormatError("truncated copy payload")
            copies.append((addr, blob[offset:offset + length]))
            offset += length
        kind = KIND_NAMES.get(kind_code)
        if kind is None:
            raise LogFormatError(f"unknown event kind code {kind_code}")
        if nondet_code >= len(NONDET_KINDS):
            raise LogFormatError(f"unknown nondet kind code {nondet_code}")
        events.append(InputEvent(rthread=rthread, seq=seq, chunk_seq=chunk_seq,
                                 kind=kind, sysno=sysno, value=value,
                                 nondet_kind=NONDET_KINDS[nondet_code],
                                 copies=tuple(copies)))
    if offset != len(blob):
        raise LogFormatError("trailing bytes in input log")
    return events


def _decode_events_v2(blob: bytes, flags: int, count: int) -> list[InputEvent]:
    body = blob[_HEADER.size:]
    if flags & _V2_FLAG_ZLIB:
        decompressor = zlib.decompressobj()
        try:
            body = decompressor.decompress(body)
            body += decompressor.flush()
        except zlib.error as exc:
            raise LogFormatError(
                f"corrupt input log body: {exc}") from exc
        if not decompressor.eof:
            raise LogFormatError("truncated input log body")
        if decompressor.unused_data:
            raise LogFormatError("trailing bytes after input log body")

    offset = 0
    pool_count, offset = _read_varint(body, offset)
    pool: list[bytes] = []
    for _ in range(pool_count):
        length, offset = _read_varint(body, offset)
        if offset + length > len(body):
            raise LogFormatError("truncated copy payload in pool")
        pool.append(body[offset:offset + length])
        offset += length

    def column(reader, n=count):
        nonlocal offset
        values = []
        for _ in range(n):
            value, offset = reader(body, offset)
            values.append(value)
        return values

    rthreads = column(_read_varint)
    seq_deltas = column(_read_varint)
    chunk_deltas = column(_read_varint)
    kind_codes = column(_read_varint)
    sysnos = column(_read_varint)
    values = column(_read_varint)
    nondet_codes = column(_read_varint)
    ncopies = column(_read_varint)

    events: list[InputEvent] = []
    prev_seq = 0
    prev_chunk_seq: dict[int, int] = {}
    for i in range(count):
        kind = KIND_NAMES.get(kind_codes[i])
        if kind is None:
            raise LogFormatError(f"unknown event kind code {kind_codes[i]}")
        if nondet_codes[i] >= len(NONDET_KINDS):
            raise LogFormatError(
                f"unknown nondet kind code {nondet_codes[i]}")
        seq = prev_seq + unzigzag(seq_deltas[i])
        prev_seq = seq
        rthread = rthreads[i]
        chunk_seq = prev_chunk_seq.get(rthread, 0) + unzigzag(chunk_deltas[i])
        prev_chunk_seq[rthread] = chunk_seq
        if seq < 0 or chunk_seq < 0:
            raise LogFormatError("negative sequence number in input log")
        copies = []
        for _ in range(ncopies[i]):
            addr, offset = _read_varint(body, offset)
            index, offset = _read_varint(body, offset)
            if index >= len(pool):
                raise LogFormatError(
                    f"copy payload index {index} outside pool")
            copies.append((addr, pool[index]))
        events.append(InputEvent(rthread=rthread, seq=seq, chunk_seq=chunk_seq,
                                 kind=kind, sysno=sysnos[i], value=values[i],
                                 nondet_kind=NONDET_KINDS[nondet_codes[i]],
                                 copies=tuple(copies)))
    if offset != len(body):
        raise LogFormatError("trailing bytes in input log")
    return events
