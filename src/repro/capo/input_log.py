"""Binary serialization of the input-event log.

Stream layout: a header (magic ``QRIL``, version, event count) followed by
varint-packed events. Copy payloads are stored inline (address, length,
bytes). Sizes measured on this format feed the F3 log-rate figure's
input-log series.
"""

from __future__ import annotations

import struct
from typing import Sequence

from ..errors import LogFormatError
from .events import (
    InputEvent,
    KIND_CODES,
    KIND_NAMES,
    NONDET_CODES,
    NONDET_KINDS,
)

MAGIC = b"QRIL"
VERSION = 1
_HEADER = struct.Struct("<4sBBHI")


def _varint(value: int) -> bytes:
    if value < 0:
        raise LogFormatError("varint requires non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(blob: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(blob):
            raise LogFormatError("truncated varint in input log")
        byte = blob[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_events(events: Sequence[InputEvent]) -> bytes:
    out = bytearray(_HEADER.pack(MAGIC, VERSION, 0, 0, len(events)))
    for event in events:
        out += _varint(event.rthread)
        out += _varint(event.seq)
        out += _varint(event.chunk_seq)
        out += _varint(KIND_CODES[event.kind])
        out += _varint(event.sysno)
        out += _varint(event.value)
        out += _varint(NONDET_CODES[event.nondet_kind])
        out += _varint(len(event.copies))
        for addr, data in event.copies:
            out += _varint(addr)
            out += _varint(len(data))
            out += data
    return bytes(out)


def decode_events(blob: bytes) -> list[InputEvent]:
    if len(blob) < _HEADER.size:
        raise LogFormatError("input log truncated before header")
    magic, version, _f, _r, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise LogFormatError(f"bad input log magic {magic!r}")
    if version != VERSION:
        raise LogFormatError(f"unsupported input log version {version}")
    events: list[InputEvent] = []
    offset = _HEADER.size
    for _ in range(count):
        rthread, offset = _read_varint(blob, offset)
        seq, offset = _read_varint(blob, offset)
        chunk_seq, offset = _read_varint(blob, offset)
        kind_code, offset = _read_varint(blob, offset)
        sysno, offset = _read_varint(blob, offset)
        value, offset = _read_varint(blob, offset)
        nondet_code, offset = _read_varint(blob, offset)
        copy_count, offset = _read_varint(blob, offset)
        copies = []
        for _ in range(copy_count):
            addr, offset = _read_varint(blob, offset)
            length, offset = _read_varint(blob, offset)
            if offset + length > len(blob):
                raise LogFormatError("truncated copy payload")
            copies.append((addr, blob[offset:offset + length]))
            offset += length
        kind = KIND_NAMES.get(kind_code)
        if kind is None:
            raise LogFormatError(f"unknown event kind code {kind_code}")
        if nondet_code >= len(NONDET_KINDS):
            raise LogFormatError(f"unknown nondet kind code {nondet_code}")
        events.append(InputEvent(rthread=rthread, seq=seq, chunk_seq=chunk_seq,
                                 kind=kind, sysno=sysno, value=value,
                                 nondet_kind=NONDET_KINDS[nondet_code],
                                 copies=tuple(copies)))
    if offset != len(blob):
        raise LogFormatError("trailing bytes in input log")
    return events
