"""The per-core chunk buffer (CBUF).

Hardware appends packed chunk entries here; when the buffer fills, the
overflow interrupt fires and the RSM drains it to the log. CBUF sizing is
an overhead knob (ablation A2): small buffers interrupt often, large ones
cost on-chip memory.
"""

from __future__ import annotations

from typing import Callable

from ..mrr.chunk import ChunkEntry


class ChunkBuffer:
    """Bounded entry buffer with an overflow-drain callback."""

    def __init__(self, capacity: int,
                 on_drain: Callable[[list[ChunkEntry]], None]):
        if capacity < 1:
            raise ValueError("CBUF capacity must be >= 1")
        self.capacity = capacity
        self._on_drain = on_drain
        self._entries: list[ChunkEntry] = []
        self.drains = 0
        self.appended = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, entry: ChunkEntry) -> None:
        self._entries.append(entry)
        self.appended += 1
        if len(self._entries) >= self.capacity:
            self.drain()

    def drain(self) -> int:
        """Hand buffered entries to the RSM; returns how many."""
        if not self._entries:
            return 0
        batch = self._entries
        self._entries = []
        self.drains += 1
        self._on_drain(batch)
        return len(batch)
