"""Capo3: the software stack that manages the recording hardware.

The Replay Sphere Manager (RSM) sits at every kernel crossing: it
terminates chunks on kernel entry, virtualizes the MRR (signatures and the
Lamport clock register) across context switches, logs every program input
(syscall results, copy-to-user payloads, trapped nondeterministic
instructions, signal deliveries), and drains the per-core chunk buffers
into the log. A finished run is packaged as a :class:`Recording` — the
bundle the replayer consumes and the only thing replay is allowed to see.
"""

from .events import InputEvent, EV_EXIT, EV_NONDET, EV_SIGNAL, EV_SIGRETURN, EV_SYSCALL
from .input_log import encode_events, decode_events
from .chunk_buffer import ChunkBuffer
from .sphere import ReplaySphere
from .rsm import ReplaySphereManager, RSMStats, MODE_FULL, MODE_HW
from .recording import Recording

__all__ = [
    "InputEvent",
    "EV_SYSCALL",
    "EV_NONDET",
    "EV_SIGNAL",
    "EV_SIGRETURN",
    "EV_EXIT",
    "encode_events",
    "decode_events",
    "ChunkBuffer",
    "ReplaySphere",
    "ReplaySphereManager",
    "RSMStats",
    "MODE_FULL",
    "MODE_HW",
    "Recording",
]
