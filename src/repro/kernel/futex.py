"""Futex wait queues: address-keyed parking of blocked tasks."""

from __future__ import annotations

from collections import deque


class FutexTable:
    """Waiters per user address, woken FIFO."""

    def __init__(self):
        self._waiters: dict[int, deque[int]] = {}

    def add_waiter(self, addr: int, tid: int) -> None:
        self._waiters.setdefault(addr, deque()).append(tid)

    def wake(self, addr: int, count: int) -> list[int]:
        """Dequeue up to ``count`` waiters of ``addr`` (FIFO)."""
        queue = self._waiters.get(addr)
        if not queue:
            return []
        woken = []
        while queue and len(woken) < count:
            woken.append(queue.popleft())
        if not queue:
            del self._waiters[addr]
        return woken

    def remove(self, tid: int) -> None:
        """Drop a task from every queue (e.g. on kill/exit)."""
        empty = []
        for addr, queue in self._waiters.items():
            try:
                queue.remove(tid)
            except ValueError:
                pass
            if not queue:
                empty.append(addr)
        for addr in empty:
            del self._waiters[addr]

    def waiter_count(self) -> int:
        return sum(len(queue) for queue in self._waiters.values())
