"""The miniature OS model — the substrate Capo3 manages.

A single-process, multi-threaded OS: preemptive round-robin scheduling with
a configurable quantum, a syscall table (I/O, thread spawn, futexes, time,
randomness, signals), a tiny in-memory VFS, and POSIX-flavoured signal
delivery. The kernel itself is a Python model — kernel execution is
instantaneous in instruction counts but charged in cycles — because the
paper's recorded sphere is *user-space only*: the kernel's job there, as
here, is to be the source of the inputs Capo3 must log (syscall results,
copied-in data, signal timing) and of the context switches the MRR must be
virtualized across.
"""

from .tasks import Task, STATE_BLOCKED, STATE_EXITED, STATE_RUNNABLE, STATE_RUNNING
from .vfs import VFS
from .futex import FutexTable
from .scheduler import Scheduler
from .syscalls import SYSCALL_NAMES, SYSCALL_NUMBERS
from .kernel import Kernel, KernelStats

__all__ = [
    "Task",
    "STATE_BLOCKED",
    "STATE_EXITED",
    "STATE_RUNNABLE",
    "STATE_RUNNING",
    "VFS",
    "FutexTable",
    "Scheduler",
    "SYSCALL_NAMES",
    "SYSCALL_NUMBERS",
    "Kernel",
    "KernelStats",
]
