"""Run queue and sleep queue."""

from __future__ import annotations

import heapq
from collections import deque

# Shared empty result for the (overwhelmingly common) no-sleepers-due tick;
# callers only iterate it.
_NO_SLEEPERS: list[int] = []


class Scheduler:
    """FIFO run queue plus a min-heap of sleeping tasks."""

    def __init__(self):
        # Public for the kernel's per-unit fast path (which peeks at both
        # to skip whole-method calls when nothing is due); callers other
        # than the scheduler must treat them as read-only.
        self.queue: deque[int] = deque()
        self.sleepers: list[tuple[int, int]] = []

    def enqueue(self, tid: int) -> None:
        self.queue.append(tid)

    def pop_next(self) -> int | None:
        if self.queue:
            return self.queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self.queue)

    # -- sleepers -----------------------------------------------------------

    def add_sleeper(self, wake_step: int, tid: int) -> None:
        heapq.heappush(self.sleepers, (wake_step, tid))

    def due_sleepers(self, now: int) -> list[int]:
        sleepers = self.sleepers
        if not sleepers or sleepers[0][0] > now:
            return _NO_SLEEPERS
        due = []
        while sleepers and sleepers[0][0] <= now:
            due.append(heapq.heappop(sleepers)[1])
        return due

    @property
    def sleeping(self) -> int:
        return len(self.sleepers)

    @property
    def next_wake(self) -> int | None:
        return self.sleepers[0][0] if self.sleepers else None
