"""Run queue and sleep queue."""

from __future__ import annotations

import heapq
from collections import deque


class Scheduler:
    """FIFO run queue plus a min-heap of sleeping tasks."""

    def __init__(self):
        self._queue: deque[int] = deque()
        self._sleepers: list[tuple[int, int]] = []

    def enqueue(self, tid: int) -> None:
        self._queue.append(tid)

    def pop_next(self) -> int | None:
        if self._queue:
            return self._queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self._queue)

    # -- sleepers -----------------------------------------------------------

    def add_sleeper(self, wake_step: int, tid: int) -> None:
        heapq.heappush(self._sleepers, (wake_step, tid))

    def due_sleepers(self, now: int) -> list[int]:
        due = []
        while self._sleepers and self._sleepers[0][0] <= now:
            due.append(heapq.heappop(self._sleepers)[1])
        return due

    @property
    def sleeping(self) -> int:
        return len(self._sleepers)

    @property
    def next_wake(self) -> int | None:
        return self._sleepers[0][0] if self._sleepers else None
