"""The kernel proper: traps, scheduling, signal delivery, the run loop.

Design rules that keep record/replay sound (see DESIGN.md):

- Every kernel entry (syscall, trapped nondeterministic instruction,
  preemption) first drains the store buffer and terminates the current
  chunk, so chunk boundaries align exactly with the points where the input
  log injects effects, and RSW is nonzero only at hardware-initiated
  boundaries.
- The trapping instruction retires *after* the chunk terminates, so its
  retirement counts into the following chunk — the replayer mirrors this.
- Copy-to-user data is written coherently through the trapping core's
  cache, so racing user accesses are conflict-detected and the copies
  belong, order-wise, to the thread's next chunk.
- Kernel behaviour is identical whether or not recording is attached: the
  RSM only observes and charges cycles. Two runs with the same seeds and
  different recording modes execute the same instructions in the same
  interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..config import KernelConfig
from ..errors import KernelError
from ..isa.operands import Reg
from ..isa.registers import RAX, RCX
from ..machine.core import (
    EngineContext,
    OUTCOME_NONDET,
    OUTCOME_OK,
    OUTCOME_SYSCALL,
)
from ..machine.interleave import Interleaver
from ..machine.machine import Core, Machine
from ..mrr.chunk import Reason
from . import syscalls
from .futex import FutexTable
from .scheduler import Scheduler
from .syscalls import (
    Block,
    Complete,
    ExitAction,
    SigReturnAction,
    SYS_EXIT,
)
from .tasks import (
    STATE_BLOCKED,
    STATE_EXITED,
    STATE_RUNNABLE,
    STATE_RUNNING,
    Task,
)
from .vfs import VFS

MASK32 = 0xFFFFFFFF
CPUID_VALUE = 0x0051C0DE

_IDLE_LIMIT = 1_000_000


@dataclass
class KernelStats:
    syscalls: int = 0
    syscalls_by_name: dict[str, int] = field(default_factory=dict)
    nondet_traps: int = 0
    preemptions: int = 0
    context_switches: int = 0
    signals_delivered: int = 0
    spawns: int = 0
    blocks: int = 0
    idle_ticks: int = 0
    copy_to_user_bytes: int = 0

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["syscalls_by_name"] = dict(self.syscalls_by_name)
        return out


class Kernel:
    """The OS model driving one :class:`Machine`."""

    def __init__(self, machine: Machine, config: KernelConfig | None = None,
                 rsm=None, seed: int = 0):
        self.machine = machine
        self.config = config or KernelConfig()
        self.rsm = rsm
        self.vfs = VFS()
        self.futexes = FutexTable()
        self.sched = Scheduler()
        self.tasks: dict[int, Task] = {}
        self.rng = random.Random(seed)
        self.stats = KernelStats()
        self.telemetry = machine.telemetry
        # Hoisted enablement flag: syscall/dispatch/wake paths run per
        # kernel event, so they read a plain attribute rather than chasing
        # the telemetry object (zero-cost-when-disabled contract).
        self._tm_on = self.telemetry.enabled
        self._next_tid = 1
        self._next_pid = 1
        self._live = 0
        # Core ids with a dispatched task, ascending — rebuilt by
        # _dispatch/_undispatch (the only writers of ``core.task``) so the
        # run loop need not recompute it every unit.
        self._running_ids: list[int] = []
        if self._tm_on:
            metrics = self.telemetry.metrics
            self._tm_syscalls = metrics.counter("kernel.syscalls")
            self._tm_futex_wakes = metrics.counter("kernel.futex_wakes")
            self._tm_preempts = metrics.counter("kernel.preemptions")
            self._tm_blocks = metrics.counter("kernel.blocks")
            self._tm_dispatches = metrics.counter("kernel.dispatches")
            self._tm_signals = metrics.counter("kernel.signals_delivered")

    # -- setup -------------------------------------------------------------

    def boot(self, main_arg: int = 0) -> Task:
        """Create the initial (recorded) process at the primary program's
        entry point, stack at the top of memory."""
        program = self.machine.program
        if program is None:
            raise KernelError("load a program before booting")
        stack_top = self.machine.config.memory_bytes - 16
        return self.add_process(program, stack_top=stack_top,
                                recorded=self.rsm is not None,
                                main_arg=main_arg)

    def add_process(self, program, stack_top: int, recorded: bool = False,
                    main_arg: int = 0) -> Task:
        """Create a process: its own program image and main thread.

        ``recorded`` puts the process (and every thread it spawns) inside
        the replay sphere; unrecorded processes share the machine as
        background load and contribute neither chunks nor input events.
        The caller is responsible for loading the program's data segment
        and for keeping processes' data regions disjoint.
        """
        if recorded and self.rsm is None:
            raise KernelError("cannot record a process without an RSM")
        pid = self._next_pid
        self._next_pid += 1
        main = self._create_task(program.entry, stack_top, main_arg,
                                 program=program, recorded=recorded, pid=pid)
        if self.rsm is not None and recorded:
            self.rsm.thread_started(main)
        self.sched.enqueue(main.tid)
        self._fill_idle_cores()
        return main

    def _create_task(self, entry: int, stack_top: int, arg: int, *,
                     program, recorded: bool, pid: int) -> Task:
        if len(self.tasks) >= self.config.max_threads:
            raise KernelError(f"thread limit {self.config.max_threads} reached")
        tid = self._next_tid
        self._next_tid += 1
        regs = [0] * 16
        regs[3] = arg & MASK32  # rdi
        regs[15] = stack_top & MASK32  # sp
        context = EngineContext(regs=tuple(regs), pc=entry, zf=0, sf=0,
                                cf=0, of=0, cur_memops=0)
        task = Task(tid=tid, context=context, pid=pid, recorded=recorded,
                    program=program)
        self.tasks[tid] = task
        self._live += 1
        return task

    def spawn_thread(self, parent: Task, entry: int, stack_top: int,
                     arg: int) -> Task:
        """SYS_SPAWN backend: children inherit program, pid and sphere
        membership."""
        child = self._create_task(entry, stack_top, arg,
                                  program=parent.program,
                                  recorded=parent.recorded, pid=parent.pid)
        self.stats.spawns += 1
        if self.rsm is not None and child.recorded:
            self.rsm.thread_started(child)
        child.state = STATE_RUNNABLE
        self.sched.enqueue(child.tid)
        return child

    def recorded_tids(self) -> list[int]:
        return sorted(tid for tid, task in self.tasks.items() if task.recorded)

    # -- helpers used by syscall handlers --------------------------------------

    def read_cstring(self, addr: int, limit: int = 256) -> str:
        raw = bytearray()
        for offset in range(limit):
            byte = self.machine.memory.read_byte(addr + offset)
            if byte == 0:
                break
            raw.append(byte)
        return raw.decode("latin-1")

    def user_read(self, task: Task, addr: int, size: int) -> bytes:
        """copy_from_user: a coherent, conflict-detected read so racing user
        stores are ordered against the kernel's view of the buffer."""
        core = self.machine.cores[task.core_id]
        return self.machine.coherent_read(core, addr, size)

    def user_read_cstring(self, task: Task, addr: int, limit: int = 256) -> str:
        text = self.read_cstring(addr, limit)
        # touch the lines coherently so the replayer can re-read the path
        # at the same logical position
        self.user_read(task, addr, min(limit, len(text) + 1))
        return text

    def wake_futex(self, addr: int, count: int) -> int:
        woken = self.futexes.wake(addr, count)
        for tid in woken:
            task = self.tasks[tid]
            task.state = STATE_RUNNABLE
            task.wait_channel = None
            self.sched.enqueue(tid)
        if self._tm_on:
            self._tm_futex_wakes.inc()
            self.telemetry.tracer.instant(
                "futex.wake", cat="kernel",
                args={"addr": addr, "woken": len(woken),
                      "requested": count})
        return len(woken)

    def post_signal(self, tid: int, signo: int) -> bool:
        task = self.tasks.get(tid)
        if task is None or not task.alive:
            return False
        task.sig_pending.append(signo)
        return True

    # -- run state ----------------------------------------------------------------

    @property
    def live_count(self) -> int:
        return self._live

    def runnable_core_ids(self) -> list[int]:
        return [core.core_id for core in self.machine.cores
                if core.task is not None]

    # -- the run loop -----------------------------------------------------------------

    def run(self, interleaver: Interleaver, max_units: int = 200_000_000) -> int:
        """Run until every task exits; returns units executed.

        The loop body inlines two per-unit calls:

        - the random interleaver's rejection sampling (when the interleaver
          exposes ``_getrandbits``) — same bits consumed as ``choose()``, so
          recordings are unchanged;
        - :meth:`after_unit`'s fast path — the quantum/trap/wakeup checks
          that are no-ops for the overwhelming majority of units. The slow
          cases share :meth:`_after_unit_slow` with ``after_unit``.

        ``sched.queue`` and ``sched.sleepers`` are mutated in place by the
        scheduler (never rebound), so hoisting the references is safe.
        """
        units = 0
        idle_streak = 0
        machine = self.machine
        cores = machine.cores
        step_core = machine.step_core
        choose = interleaver.choose
        getrandbits = getattr(interleaver, "_getrandbits", None)
        sched = self.sched
        run_queue = sched.queue
        sleepers = sched.sleepers
        while self._live > 0:
            candidates = self._running_ids
            n = len(candidates)
            if n == 0:
                self.idle_tick()
                idle_streak += 1
                if idle_streak > _IDLE_LIMIT:
                    raise KernelError("idle limit exceeded (deadlock?)")
                continue
            idle_streak = 0
            if getrandbits is None:
                # Stateful policies (rr, bursty) must see every choice.
                core_id = choose(candidates)
            elif n == 1:
                core_id = candidates[0]
            else:
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                core_id = candidates[r]
            outcome = step_core(core_id)
            core = cores[core_id]
            task = core.task
            task.units_in_quantum += 1
            if (outcome != OUTCOME_OK
                    or task.units_in_quantum >= task.quantum_limit
                    or run_queue
                    or (sleepers and sleepers[0][0] <= machine.global_step)):
                self._after_unit_slow(core, task, outcome)
            units += 1
            if units > max_units:
                raise KernelError(f"unit budget {max_units} exceeded")
        return units

    def idle_tick(self) -> None:
        """All cores idle: advance time, wake due sleepers."""
        if (self.sched.sleeping == 0 and len(self.sched) == 0
                and self.futexes.waiter_count() > 0):
            blocked = [t.tid for t in self.tasks.values()
                       if t.state == STATE_BLOCKED]
            raise KernelError(f"deadlock: tasks {blocked} blocked on futexes "
                              "with nothing runnable")
        if self.sched.sleeping == 0 and len(self.sched) == 0:
            raise KernelError("no runnable, sleeping or wakeable tasks")
        self.machine.idle_tick()
        self.stats.idle_ticks += 1
        self._wake_sleepers()
        self._fill_idle_cores()

    def after_unit(self, core_id: int, outcome: str) -> None:
        """Post-unit kernel work: traps, quantum, wakeups, dispatch.

        :meth:`run` inlines the fast-path check below; this method stays
        the single entry point for callers stepping cores themselves.
        """
        core = self.machine.cores[core_id]
        task = core.task
        task.units_in_quantum += 1
        # Fast path: no trap, quantum not expired, no sleeper due and no
        # task waiting for a core — every remaining step below is a no-op,
        # so skip the calls entirely. This is the overwhelmingly common
        # case and the per-unit kernel cost that dominates simulation rate.
        sched = self.sched
        if (outcome == OUTCOME_OK
                and task.units_in_quantum < task.quantum_limit
                and not sched.queue
                and (not sched.sleepers
                     or sched.sleepers[0][0] > self.machine.global_step)):
            return
        self._after_unit_slow(core, task, outcome)

    def _after_unit_slow(self, core: Core, task: Task, outcome: str) -> None:
        """The rare post-unit work: wakeups, trap handling, preemption and
        core refill. ``task.units_in_quantum`` is already incremented."""
        self._wake_sleepers()
        if outcome != OUTCOME_OK:
            if outcome == OUTCOME_SYSCALL:
                self._handle_syscall(core, task)
            elif outcome == OUTCOME_NONDET:
                self._handle_nondet(core, task)
        if (task.units_in_quantum >= task.quantum_limit
                and core.task is task and task.state == STATE_RUNNING):
            self._preempt(core, task)
        self._fill_idle_cores()

    # -- trap handling -----------------------------------------------------------

    def _kernel_entry(self, core: Core, task: Task, reason: str) -> None:
        core.drain_all()
        if self.rsm is not None and task.recorded:
            self.rsm.on_kernel_entry(core, task, reason)

    def _kernel_exit(self, core: Core, task: Task) -> None:
        if self.rsm is not None and task.recorded:
            self.rsm.on_kernel_exit(core, task)
        self._deliver_signal(core, task)

    def _handle_syscall(self, core: Core, task: Task) -> None:
        engine = core.engine
        sysno = engine.regs[RAX]
        args = (engine.regs[1], engine.regs[2], engine.regs[3], engine.regs[4])
        reason = Reason.EXIT if sysno == SYS_EXIT else Reason.SYSCALL
        self._kernel_entry(core, task, reason)
        core.cycles += self.machine.cost.syscall_base
        name = syscalls.SYSCALL_NAMES.get(sysno, f"sys_{sysno}")
        self.stats.syscalls += 1
        self.stats.syscalls_by_name[name] = \
            self.stats.syscalls_by_name.get(name, 0) + 1
        if self._tm_on:
            self._tm_syscalls.inc()
            self.telemetry.metrics.counter(f"kernel.syscalls.{name}").inc()
            self.telemetry.tracer.instant(
                f"sys.{name}", cat="kernel", tid=task.tid,
                args={"sysno": sysno, "core": core.core_id})

        action = syscalls.dispatch(self, task, sysno, args)

        if isinstance(action, Complete):
            engine.complete_trap(Reg(RAX), action.retval)
            for addr, data in action.copies:
                self.machine.coherent_copy(core, addr, data)
                self.stats.copy_to_user_bytes += len(data)
            if self.rsm is not None and task.recorded:
                self.rsm.log_syscall(task, sysno, action.retval, action.copies)
            self._kernel_exit(core, task)
            if action.reschedule:
                task.units_in_quantum = task.quantum_limit
        elif isinstance(action, Block):
            task.pending_retval = action.wake_retval
            if self.rsm is not None and task.recorded:
                self.rsm.log_syscall(task, sysno, action.wake_retval, ())
            self._block(core, task, action.channel)
            self.stats.blocks += 1
        elif isinstance(action, ExitAction):
            if self.rsm is not None and task.recorded:
                self.rsm.log_exit(task, action.code)
            self._exit_task(core, task, action.code)
        elif isinstance(action, SigReturnAction):
            if not task.sig_saved:
                raise KernelError(f"tid {task.tid}: sigreturn with no saved context")
            engine.restore_context(task.sig_saved.pop())
            if self.rsm is not None and task.recorded:
                self.rsm.log_sigreturn(task)
            self._kernel_exit(core, task)
        else:  # pragma: no cover - exhaustiveness guard
            raise KernelError(f"unknown syscall action {action!r}")

    def _handle_nondet(self, core: Core, task: Task) -> None:
        engine = core.engine
        instr = engine.current_instr()
        self._kernel_entry(core, task, Reason.NONDET)
        core.cycles += self.machine.cost.nondet_base
        self.stats.nondet_traps += 1
        if instr.mnemonic == "rdtsc":
            value = self.machine.global_step & MASK32
        elif instr.mnemonic == "rdrand":
            value = self.rng.getrandbits(32)
        elif instr.mnemonic == "cpuid":
            value = CPUID_VALUE ^ self.machine.config.num_cores
        else:  # pragma: no cover - dispatch guarantees the mnemonics above
            raise KernelError(f"unexpected nondet instruction {instr.mnemonic}")
        if self._tm_on:
            self.telemetry.tracer.instant(
                f"nondet.{instr.mnemonic}", cat="kernel", tid=task.tid,
                args={"value": value})
        engine.complete_trap(instr.ops[0], value)
        if self.rsm is not None and task.recorded:
            self.rsm.log_nondet(task, instr.mnemonic, value)
        self._kernel_exit(core, task)

    # -- scheduling -------------------------------------------------------------------

    def _quantum(self) -> int:
        quantum = self.config.quantum_instructions
        if self.config.timeslice_jitter:
            quantum += self.rng.randrange(self.config.timeslice_jitter + 1)
        return quantum

    def _dispatch(self, core: Core, task: Task) -> None:
        core.task = task
        self._running_ids = [c.core_id for c in self.machine.cores
                             if c.task is not None]
        task.core_id = core.core_id
        task.state = STATE_RUNNING
        task.units_in_quantum = 0
        task.quantum_limit = self._quantum()
        if self._tm_on:
            self._tm_dispatches.inc()
            self.telemetry.tracer.instant(
                "sched.dispatch", cat="kernel", tid=task.tid,
                args={"core": core.core_id,
                      "quantum": task.quantum_limit})
        if task.program is not None:
            core.engine.program = task.program
        core.engine.restore_context(task.context)
        task.context = None
        if self.rsm is not None and task.recorded:
            self.rsm.on_dispatch(core, task)
        if task.pending_retval is not None:
            core.engine.complete_trap(Reg(RAX), task.pending_retval)
            task.pending_retval = None
        self._deliver_signal(core, task)

    def _undispatch(self, core: Core, task: Task) -> None:
        task.context = core.engine.save_context()
        task.core_id = None
        core.task = None
        self._running_ids = [c.core_id for c in self.machine.cores
                             if c.task is not None]
        if self.rsm is not None and task.recorded:
            self.rsm.on_undispatch(core, task)

    def _preempt(self, core: Core, task: Task) -> None:
        self._kernel_entry(core, task, Reason.PREEMPT)
        core.cycles += self.machine.cost.context_switch_base
        self.stats.preemptions += 1
        self.stats.context_switches += 1
        if self._tm_on:
            self._tm_preempts.inc()
            self.telemetry.tracer.instant(
                "sched.preempt", cat="kernel", tid=task.tid,
                args={"core": core.core_id})
        self._undispatch(core, task)
        task.state = STATE_RUNNABLE
        self.sched.enqueue(task.tid)
        self._fill_idle_cores()

    def _block(self, core: Core, task: Task, channel: tuple) -> None:
        task.state = STATE_BLOCKED
        task.wait_channel = channel
        kind, value = channel
        if kind == "futex":
            self.futexes.add_waiter(value, task.tid)
        elif kind == "sleep":
            self.sched.add_sleeper(value, task.tid)
        else:  # pragma: no cover - handlers only emit the two kinds above
            raise KernelError(f"unknown wait channel {channel!r}")
        if self._tm_on:
            self._tm_blocks.inc()
            self.telemetry.tracer.instant(
                "sched.block", cat="kernel", tid=task.tid,
                args={"kind": kind, "value": value})
        self.stats.context_switches += 1
        self._undispatch(core, task)
        self._fill_idle_cores()

    def _exit_task(self, core: Core, task: Task, code: int) -> None:
        task.exit_code = code & MASK32
        task.state = STATE_EXITED
        self._live -= 1
        self._undispatch(core, task)
        task.context = None
        self._fill_idle_cores()

    def _wake_sleepers(self) -> None:
        for tid in self.sched.due_sleepers(self.machine.global_step):
            task = self.tasks[tid]
            task.state = STATE_RUNNABLE
            task.wait_channel = None
            self.sched.enqueue(tid)

    def _fill_idle_cores(self) -> None:
        if len(self.sched) == 0:
            return
        for core in self.machine.cores:
            if core.task is not None:
                continue
            tid = self.sched.pop_next()
            if tid is None:
                return
            self._dispatch(core, self.tasks[tid])

    # -- signals ------------------------------------------------------------------------

    def _deliver_signal(self, core: Core, task: Task) -> None:
        """Deliver at most one pending signal at a safe point (a chunk
        boundary: kernel exit or dispatch)."""
        while task.sig_pending:
            signo = task.sig_pending.popleft()
            handler = task.sig_handlers.get(signo)
            if handler is None:
                continue  # default action: ignore
            engine = core.engine
            task.sig_saved.append(engine.save_context())
            engine.pc = handler
            engine.regs[RCX] = signo
            engine.cur_memops = 0
            self.stats.signals_delivered += 1
            if self._tm_on:
                self._tm_signals.inc()
                self.telemetry.tracer.instant(
                    "signal.deliver", cat="kernel", tid=task.tid,
                    args={"signo": signo, "handler": handler})
            if self.rsm is not None and task.recorded:
                self.rsm.log_signal(task, signo)
            return
