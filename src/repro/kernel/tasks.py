"""Task (thread) structures."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..machine.core import EngineContext

STATE_RUNNABLE = "runnable"
STATE_RUNNING = "running"
STATE_BLOCKED = "blocked"
STATE_EXITED = "exited"


@dataclass
class Task:
    """One user thread.

    ``rthread`` is the replay-sphere thread id; we allocate tids
    deterministically so ``rthread == tid`` throughout. ``recorded`` marks
    membership in the replay sphere — unrecorded tasks (background
    processes) run on the same machine but produce no chunks or events.
    """

    tid: int
    context: EngineContext | None
    state: str = STATE_RUNNABLE
    core_id: int | None = None
    pid: int = 1
    recorded: bool = True
    program: object | None = None  # Program executed by this task

    # Quantum accounting.
    units_in_quantum: int = 0
    quantum_limit: int = 0

    # A syscall return value to apply when the task next reaches user mode
    # (set when a blocking syscall completes while the task is off-core).
    pending_retval: int | None = None

    # Signals.
    sig_handlers: dict[int, int] = field(default_factory=dict)
    sig_pending: deque[int] = field(default_factory=deque)
    sig_saved: list[EngineContext] = field(default_factory=list)

    exit_code: int | None = None
    wait_channel: tuple | None = None

    @property
    def rthread(self) -> int:
        return self.tid

    @property
    def alive(self) -> bool:
        return self.state != STATE_EXITED
