"""Signal numbers.

Delivery itself lives in :class:`repro.kernel.kernel.Kernel`: a pending
signal is delivered at the next safe point (kernel exit or dispatch — both
chunk boundaries), the full register context is saved kernel-side, the
handler runs with ``r1`` = signal number, and ``sigreturn`` restores the
saved context. The Capo3 input log records each delivery with its
chunk-sequence position so the replayer re-delivers at the same boundary.
"""

SIGUSR1 = 10
SIGUSR2 = 12
SIGALRM = 14

ALL_SIGNALS = (SIGUSR1, SIGUSR2, SIGALRM)
