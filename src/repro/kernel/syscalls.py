"""The syscall table.

Each handler is a pure-ish function from (kernel, task, args) to an action:

- :class:`Complete` — return a value now, optionally copying data to user
  memory (the copy-to-user payload Capo3 logs);
- :class:`Block` — park the task on a wait channel; the return value is
  applied when the task is next dispatched;
- :class:`ExitAction` — the thread terminates;
- :class:`SigReturnAction` — restore the context saved at signal delivery.

Handlers never touch cores or recorders — the kernel proper sequences those
around the call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

MASK32 = 0xFFFFFFFF
ENOSYS = 0xFFFFFFFF
EBADF = 0xFFFFFFFE
EAGAIN = 1
ESRCH = 0xFFFFFFFD

MAX_IO_BYTES = 1 << 20

SYS_EXIT = 1
SYS_WRITE = 2
SYS_READ = 3
SYS_SPAWN = 4
SYS_GETTID = 5
SYS_YIELD = 6
SYS_FUTEX_WAIT = 7
SYS_FUTEX_WAKE = 8
SYS_TIME = 9
SYS_OPEN = 10
SYS_CLOSE = 11
SYS_KILL = 12
SYS_SIGACTION = 13
SYS_SIGRETURN = 14
SYS_RANDOM = 15
SYS_NANOSLEEP = 16

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_WRITE: "write",
    SYS_READ: "read",
    SYS_SPAWN: "spawn",
    SYS_GETTID: "gettid",
    SYS_YIELD: "yield",
    SYS_FUTEX_WAIT: "futex_wait",
    SYS_FUTEX_WAKE: "futex_wake",
    SYS_TIME: "time",
    SYS_OPEN: "open",
    SYS_CLOSE: "close",
    SYS_KILL: "kill",
    SYS_SIGACTION: "sigaction",
    SYS_SIGRETURN: "sigreturn",
    SYS_RANDOM: "random",
    SYS_NANOSLEEP: "nanosleep",
}
SYSCALL_NUMBERS = {name: number for number, name in SYSCALL_NAMES.items()}


@dataclass(frozen=True)
class Complete:
    retval: int
    copies: tuple[tuple[int, bytes], ...] = ()
    reschedule: bool = False


@dataclass(frozen=True)
class Block:
    channel: tuple
    wake_retval: int = 0


@dataclass(frozen=True)
class ExitAction:
    code: int


@dataclass(frozen=True)
class SigReturnAction:
    pass


SyscallAction = Complete | Block | ExitAction | SigReturnAction


def _sys_exit(kernel, task, args) -> SyscallAction:
    return ExitAction(args[0])


def _sys_write(kernel, task, args) -> SyscallAction:
    fd, buf, length = args[0], args[1], args[2]
    length = min(length, MAX_IO_BYTES)
    data = kernel.user_read(task, buf, length)
    written = kernel.vfs.write(fd, data, recorded=task.recorded)
    if written is None:
        return Complete(EBADF)
    return Complete(written)


def _sys_read(kernel, task, args) -> SyscallAction:
    fd, buf, length = args[0], args[1], args[2]
    length = min(length, MAX_IO_BYTES)
    data = kernel.vfs.read(fd, length)
    if data is None:
        return Complete(EBADF)
    copies = ((buf, data),) if data else ()
    return Complete(len(data), copies=copies)


def _sys_spawn(kernel, task, args) -> SyscallAction:
    entry, stack_top, arg = args[0], args[1], args[2]
    child = kernel.spawn_thread(task, entry, stack_top, arg)
    return Complete(child.tid)


def _sys_gettid(kernel, task, args) -> SyscallAction:
    return Complete(task.tid)


def _sys_yield(kernel, task, args) -> SyscallAction:
    return Complete(0, reschedule=True)


def _sys_futex_wait(kernel, task, args) -> SyscallAction:
    addr, expected = args[0], args[1]
    current = kernel.machine.memory.read_word(addr & ~3)
    if current != (expected & MASK32):
        return Complete(EAGAIN)
    return Block(("futex", addr & ~3), wake_retval=0)


def _sys_futex_wake(kernel, task, args) -> SyscallAction:
    addr, count = args[0], args[1]
    woken = kernel.wake_futex(addr & ~3, count)
    return Complete(woken)


def _sys_time(kernel, task, args) -> SyscallAction:
    return Complete(kernel.machine.global_step & MASK32)


def _sys_open(kernel, task, args) -> SyscallAction:
    name = kernel.user_read_cstring(task, args[0])
    return Complete(kernel.vfs.open(name))


def _sys_close(kernel, task, args) -> SyscallAction:
    return Complete(kernel.vfs.close(args[0]))


def _sys_kill(kernel, task, args) -> SyscallAction:
    target_tid, signo = args[0], args[1]
    if not kernel.post_signal(target_tid, signo):
        return Complete(ESRCH)
    return Complete(0)


def _sys_sigaction(kernel, task, args) -> SyscallAction:
    signo, handler_pc = args[0], args[1]
    task.sig_handlers[signo] = handler_pc
    return Complete(0)


def _sys_sigreturn(kernel, task, args) -> SyscallAction:
    return SigReturnAction()


def _sys_random(kernel, task, args) -> SyscallAction:
    return Complete(kernel.rng.getrandbits(32))


def _sys_nanosleep(kernel, task, args) -> SyscallAction:
    duration = args[0]
    return Block(("sleep", kernel.machine.global_step + duration), wake_retval=0)


_TABLE: dict[int, Callable] = {
    SYS_EXIT: _sys_exit,
    SYS_WRITE: _sys_write,
    SYS_READ: _sys_read,
    SYS_SPAWN: _sys_spawn,
    SYS_GETTID: _sys_gettid,
    SYS_YIELD: _sys_yield,
    SYS_FUTEX_WAIT: _sys_futex_wait,
    SYS_FUTEX_WAKE: _sys_futex_wake,
    SYS_TIME: _sys_time,
    SYS_OPEN: _sys_open,
    SYS_CLOSE: _sys_close,
    SYS_KILL: _sys_kill,
    SYS_SIGACTION: _sys_sigaction,
    SYS_SIGRETURN: _sys_sigreturn,
    SYS_RANDOM: _sys_random,
    SYS_NANOSLEEP: _sys_nanosleep,
}


def dispatch(kernel, task, sysno: int, args: Sequence[int]) -> SyscallAction:
    """Run the handler for ``sysno``; unknown numbers return ENOSYS."""
    handler = _TABLE.get(sysno)
    if handler is None:
        return Complete(ENOSYS)
    return handler(kernel, task, args)
