"""A tiny in-memory virtual file system.

Just enough to give workloads real inputs and outputs: named byte files,
per-fd cursors, and a pre-opened stdout (fd 1). Reads past end-of-file
return short; reads of absent files return empty. Every byte a task reads
flows through the Capo3 input log (copy-to-user data), which is exactly why
the VFS exists — it is the dominant source of the software stack's
recording overhead in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KernelError

STDOUT_FD = 1
STDOUT_NAME = "stdout"


@dataclass
class _VFile:
    name: str
    data: bytearray = field(default_factory=bytearray)


@dataclass
class _FdEntry:
    file: _VFile
    offset: int = 0


class VFS:
    """Flat namespace of byte files plus a per-process fd table."""

    def __init__(self):
        self._files: dict[str, _VFile] = {}
        self._fds: dict[int, _FdEntry] = {}
        self._next_fd = 3
        # Bytes *written* per file during the run (what replay reconstructs;
        # distinct from contents, which include pre-loaded input data).
        self._written: dict[str, bytearray] = {}
        # Same, restricted to writes by recorded (replay-sphere) tasks.
        self._written_recorded: dict[str, bytearray] = {}
        stdout = self._get_or_create(STDOUT_NAME)
        self._fds[STDOUT_FD] = _FdEntry(stdout)

    def _get_or_create(self, name: str) -> _VFile:
        vfile = self._files.get(name)
        if vfile is None:
            vfile = _VFile(name)
            self._files[name] = vfile
        return vfile

    # -- setup / inspection -------------------------------------------------

    def add_file(self, name: str, data: bytes) -> None:
        """Create (or replace) an input file before the run."""
        self._get_or_create(name).data = bytearray(data)

    def contents(self, name: str) -> bytes:
        """Full contents of a file (e.g. ``stdout`` after a run)."""
        vfile = self._files.get(name)
        return bytes(vfile.data) if vfile else b""

    def file_names(self) -> list[str]:
        return sorted(self._files)

    # -- syscall backends ------------------------------------------------------

    def open(self, name: str) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _FdEntry(self._get_or_create(name))
        return fd

    def close(self, fd: int) -> int:
        if self._fds.pop(fd, None) is None:
            return 0xFFFFFFFF
        return 0

    def read(self, fd: int, length: int) -> bytes | None:
        """Read up to ``length`` bytes; None if the fd is invalid."""
        entry = self._fds.get(fd)
        if entry is None:
            return None
        data = bytes(entry.file.data[entry.offset:entry.offset + length])
        entry.offset += len(data)
        return data

    def write(self, fd: int, data: bytes, recorded: bool = True) -> int | None:
        """Append ``data``; returns bytes written or None on bad fd.

        ``recorded`` tags the write as coming from a replay-sphere task
        (replay reconstructs only those).
        """
        entry = self._fds.get(fd)
        if entry is None:
            return None
        entry.file.data.extend(data)
        self._written.setdefault(entry.file.name, bytearray()).extend(data)
        if recorded:
            self._written_recorded.setdefault(entry.file.name,
                                              bytearray()).extend(data)
        return len(data)

    def written(self) -> dict[str, bytes]:
        """Bytes written per file during the run."""
        return {name: bytes(data) for name, data in self._written.items()}

    def written_recorded(self) -> dict[str, bytes]:
        """Bytes written by replay-sphere tasks only."""
        return {name: bytes(data)
                for name, data in self._written_recorded.items()}

    def fd_name(self, fd: int) -> str:
        entry = self._fds.get(fd)
        if entry is None:
            raise KernelError(f"unknown fd {fd}")
        return entry.file.name
