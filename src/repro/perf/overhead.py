"""Recording-overhead measurement: native vs hardware-only vs full stack.

Runs the same (program, config, seeds) three times — recording off, MRR
hardware only, full Capo3 stack — and compares total cycles. Because the
recording machinery never alters execution, the three runs retire the same
instructions under the same interleaving; the cycle deltas are pure
recording cost. This regenerates the paper's central overhead figure (F1)
and its breakdown (F2).

An optional *fourth* run measures the batched input-logging path
(``capo.input_batch_events > 0``): same execution, same logs, but the
per-event interposition charge amortized rr-style across each batch. The
native/hw/full/full-batched series is the "overhead trajectory" the bench
history tracks, together with the v1-vs-v2 log-bandwidth figures computed
from the full run's recording.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from ..config import SimConfig
from ..errors import ReproError
from ..isa.program import Program
from ..session import MODE_FULL, MODE_HW, MODE_OFF, RunOutcome, simulate
from ..telemetry import Telemetry, get_logger

logger = get_logger("perf.overhead")


@dataclass
class OverheadResult:
    """Cycle comparison of one workload across recording modes."""

    name: str
    native: RunOutcome
    hw_only: RunOutcome
    full: RunOutcome
    full_batched: RunOutcome | None = None

    def __post_init__(self) -> None:
        if not (self.native.final_memory_digest
                == self.hw_only.final_memory_digest
                == self.full.final_memory_digest):
            raise ReproError(
                f"{self.name}: modes diverged — recording altered execution")
        if self.full_batched is not None and (
                self.full_batched.final_memory_digest
                != self.full.final_memory_digest):
            raise ReproError(
                f"{self.name}: batched logging altered execution")

    @property
    def hw_overhead(self) -> float:
        """Fractional slowdown of hardware-only recording vs native."""
        return self.hw_only.total_cycles / self.native.total_cycles - 1.0

    @property
    def full_overhead(self) -> float:
        """Fractional slowdown of the full software stack vs native."""
        return self.full.total_cycles / self.native.total_cycles - 1.0

    @property
    def batched_overhead(self) -> float | None:
        """Full-stack slowdown with batched input logging (None if the
        batched run was not requested)."""
        if self.full_batched is None:
            return None
        return self.full_batched.total_cycles / self.native.total_cycles - 1.0

    def software_breakdown(self) -> dict[str, float]:
        """Full-stack overhead cycles attributed to each software component,
        as fractions of native cycles."""
        stats = self.full.rsm_stats or {}
        base = self.native.total_cycles
        return {
            "syscall_interposition": stats.get("cycles_interpose", 0) / base,
            "input_logging": stats.get("cycles_input_log", 0) / base,
            "cbuf_drain": stats.get("cycles_cbuf_drain", 0) / base,
            "ctx_switch_flush": stats.get("cycles_ctx_flush", 0) / base,
        }

    def log_bandwidth(self) -> dict[str, Any]:
        """v1-vs-v2 log sizes of the full run's recording, absolute and per
        kilo-instruction. Empty when the full run kept no recording."""
        recording = self.full.recording
        if recording is None:
            return {}
        instructions = max(1, self.full.instructions)
        input_v1 = recording.input_log_bytes(version=1)
        input_v2 = recording.input_log_bytes(version=2)
        chunk_v1 = recording.chunk_log_bytes(version=1)
        chunk_v2 = recording.chunk_log_bytes(version=2)
        return {
            "input_bytes_v1": input_v1,
            "input_bytes_v2": input_v2,
            "chunk_bytes_v1": chunk_v1,
            "chunk_bytes_v2": chunk_v2,
            "total_bytes_v1": input_v1 + chunk_v1,
            "total_bytes_v2": input_v2 + chunk_v2,
            "total_B_per_ki_v1": 1000.0 * (input_v1 + chunk_v1) / instructions,
            "total_B_per_ki_v2": 1000.0 * (input_v2 + chunk_v2) / instructions,
        }

    def as_row(self) -> dict[str, Any]:
        row = {
            "workload": self.name,
            "native_cycles": self.native.total_cycles,
            "hw_overhead_pct": 100.0 * self.hw_overhead,
            "full_overhead_pct": 100.0 * self.full_overhead,
        }
        batched = self.batched_overhead
        if batched is not None:
            row["batched_overhead_pct"] = 100.0 * batched
        row.update(self.log_bandwidth())
        return row


def measure_overhead(program: Program, config: SimConfig | None = None,
                     seed: int = 0, policy: str = "random",
                     input_files: Mapping[str, bytes] | None = None,
                     name: str | None = None,
                     max_units: int = 200_000_000,
                     telemetry: Telemetry | None = None,
                     batch_events: int | None = None) -> OverheadResult:
    """Run the three-mode comparison for one program.

    ``telemetry`` (or ``config.telemetry.enabled``) instruments all three
    runs with the same tracer/metrics, so the trace shows the native, the
    hardware-only and the full-stack pass back to back — the raw material
    of the paper's F2 breakdown.

    ``batch_events`` adds a fourth MODE_FULL run with
    ``capo.input_batch_events`` set to that value, measuring how much of
    the software overhead batched logging recovers. The batched run must
    reproduce the unbatched digest exactly (it only changes accounting).
    """
    label = name or program.name
    runs: dict[str, RunOutcome] = {}
    for mode in (MODE_OFF, MODE_HW, MODE_FULL):
        outcome = simulate(program, config=config, seed=seed, policy=policy,
                           mode=mode, input_files=input_files,
                           max_units=max_units, telemetry=telemetry)
        runs[mode] = outcome
        logger.debug("%s: mode=%s units=%d cycles=%d", label, mode,
                     outcome.units, outcome.total_cycles)
    full_batched = None
    if batch_events:
        base_config = config if config is not None else SimConfig()
        batched_config = dataclasses.replace(
            base_config,
            capo=dataclasses.replace(base_config.capo,
                                     input_batch_events=batch_events))
        full_batched = simulate(program, config=batched_config, seed=seed,
                                policy=policy, mode=MODE_FULL,
                                input_files=input_files, max_units=max_units,
                                telemetry=telemetry)
        logger.debug("%s: mode=full(batch=%d) units=%d cycles=%d", label,
                     batch_events, full_batched.units,
                     full_batched.total_cycles)
    result = OverheadResult(name=label,
                            native=runs[MODE_OFF],
                            hw_only=runs[MODE_HW],
                            full=runs[MODE_FULL],
                            full_batched=full_batched)
    logger.info("%s: hw overhead %.2f%%, full overhead %.2f%%", label,
                100 * result.hw_overhead, 100 * result.full_overhead)
    run_telemetry = runs[MODE_FULL].telemetry
    if run_telemetry is not None and run_telemetry.enabled:
        gauges = run_telemetry.metrics
        gauges.gauge("overhead.native_cycles").set(result.native.total_cycles)
        gauges.gauge("overhead.hw_pct").set(100 * result.hw_overhead)
        gauges.gauge("overhead.full_pct").set(100 * result.full_overhead)
        batched = result.batched_overhead
        if batched is not None:
            gauges.gauge("overhead.full_batched_pct").set(100 * batched)
        for component, fraction in result.software_breakdown().items():
            gauges.gauge(f"overhead.breakdown.{component}_pct").set(
                100 * fraction)
    return result
