"""Recording-overhead measurement: native vs hardware-only vs full stack.

Runs the same (program, config, seeds) three times — recording off, MRR
hardware only, full Capo3 stack — and compares total cycles. Because the
recording machinery never alters execution, the three runs retire the same
instructions under the same interleaving; the cycle deltas are pure
recording cost. This regenerates the paper's central overhead figure (F1)
and its breakdown (F2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..config import SimConfig
from ..errors import ReproError
from ..isa.program import Program
from ..session import MODE_FULL, MODE_HW, MODE_OFF, RunOutcome, simulate
from ..telemetry import Telemetry, get_logger

logger = get_logger("perf.overhead")


@dataclass
class OverheadResult:
    """Cycle comparison of one workload across recording modes."""

    name: str
    native: RunOutcome
    hw_only: RunOutcome
    full: RunOutcome

    def __post_init__(self) -> None:
        if not (self.native.final_memory_digest
                == self.hw_only.final_memory_digest
                == self.full.final_memory_digest):
            raise ReproError(
                f"{self.name}: modes diverged — recording altered execution")

    @property
    def hw_overhead(self) -> float:
        """Fractional slowdown of hardware-only recording vs native."""
        return self.hw_only.total_cycles / self.native.total_cycles - 1.0

    @property
    def full_overhead(self) -> float:
        """Fractional slowdown of the full software stack vs native."""
        return self.full.total_cycles / self.native.total_cycles - 1.0

    def software_breakdown(self) -> dict[str, float]:
        """Full-stack overhead cycles attributed to each software component,
        as fractions of native cycles."""
        stats = self.full.rsm_stats or {}
        base = self.native.total_cycles
        return {
            "syscall_interposition": stats.get("cycles_interpose", 0) / base,
            "input_logging": stats.get("cycles_input_log", 0) / base,
            "cbuf_drain": stats.get("cycles_cbuf_drain", 0) / base,
            "ctx_switch_flush": stats.get("cycles_ctx_flush", 0) / base,
        }

    def as_row(self) -> dict[str, Any]:
        return {
            "workload": self.name,
            "native_cycles": self.native.total_cycles,
            "hw_overhead_pct": 100.0 * self.hw_overhead,
            "full_overhead_pct": 100.0 * self.full_overhead,
        }


def measure_overhead(program: Program, config: SimConfig | None = None,
                     seed: int = 0, policy: str = "random",
                     input_files: Mapping[str, bytes] | None = None,
                     name: str | None = None,
                     max_units: int = 200_000_000,
                     telemetry: Telemetry | None = None) -> OverheadResult:
    """Run the three-mode comparison for one program.

    ``telemetry`` (or ``config.telemetry.enabled``) instruments all three
    runs with the same tracer/metrics, so the trace shows the native, the
    hardware-only and the full-stack pass back to back — the raw material
    of the paper's F2 breakdown.
    """
    label = name or program.name
    runs: dict[str, RunOutcome] = {}
    for mode in (MODE_OFF, MODE_HW, MODE_FULL):
        outcome = simulate(program, config=config, seed=seed, policy=policy,
                           mode=mode, input_files=input_files,
                           max_units=max_units, telemetry=telemetry)
        runs[mode] = outcome
        logger.debug("%s: mode=%s units=%d cycles=%d", label, mode,
                     outcome.units, outcome.total_cycles)
    result = OverheadResult(name=label,
                            native=runs[MODE_OFF],
                            hw_only=runs[MODE_HW],
                            full=runs[MODE_FULL])
    logger.info("%s: hw overhead %.2f%%, full overhead %.2f%%", label,
                100 * result.hw_overhead, 100 * result.full_overhead)
    run_telemetry = runs[MODE_FULL].telemetry
    if run_telemetry is not None and run_telemetry.enabled:
        gauges = run_telemetry.metrics
        gauges.gauge("overhead.native_cycles").set(result.native.total_cycles)
        gauges.gauge("overhead.hw_pct").set(100 * result.hw_overhead)
        gauges.gauge("overhead.full_pct").set(100 * result.full_overhead)
        for component, fraction in result.software_breakdown().items():
            gauges.gauge(f"overhead.breakdown.{component}_pct").set(
                100 * fraction)
    return result
