"""Simulation-rate benchmark runner with a persistent perf trajectory.

Measures *simulated units per second* — the simulator's own throughput, not
the modeled cycle counts — for a fixed set of workloads, and appends each
run to a JSON history file (``BENCH_simrate.json`` by default). Every entry
carries the recording's determinism digest, so the history doubles as a
regression tripwire:

- a **digest mismatch** against the previous entry for the same
  (bench, scale, seed) means the simulation changed behaviour — that is
  blocking (exit 1); so is a **replay digest mismatch** (the replayed
  outcome changed, or parallel replay stopped matching serial);
- a **rate drop** is reported as a warning only: absolute throughput
  depends on the host and is never a correctness signal.

Each bench also measures *replay* throughput: a serial replay of the
fresh recording, then — after the record pool has drained — a parallel
interval replay at ``--replay-jobs`` over the recording's embedded
checkpoints. The parallel pass runs in the parent process (pool workers
are daemonic and cannot fork children of their own) against the bundle
the worker saved, and its result digest must equal the serial one.

Benches fan out across a ``multiprocessing`` pool (one process per
workload; each run is single-threaded and deterministic, so parallelism
cannot perturb results). ``--workers 1`` runs everything serially
in-process, which is what the test suite uses.

Exposed as ``python -m repro bench-all`` and ``benchmarks/runner.py``.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "repro-bench-simrate/v1"

#: Benches run with --quick (CI smoke): the two cheapest microbenchmarks.
QUICK_WORKLOADS = ("counter", "pingpong")

#: The full set: contended micros plus three SPLASH-2-like kernels.
FULL_WORKLOADS = QUICK_WORKLOADS + ("locks", "prodcons", "fft", "lu", "radix")

#: Rate drop (new/old) below which a slowdown warning is emitted.
SLOWDOWN_WARN_RATIO = 0.7

#: Checkpoint intervals per recording for the replay benches: enough
#: parallelism for 4 jobs without drowning small logs in snapshot cost.
CHECKPOINT_INTERVALS = 16

#: Per-thread buffer size for the batched leg of the overhead trajectory
#: (rr's syscall buffer holds far more; 64 already amortizes the
#: interposition charge to noise at these workload sizes).
OVERHEAD_BATCH_EVENTS = 64


def digest_of(outcome) -> str:
    """Determinism digest of a record run: memory image, chunk log, cycle
    and unit counts. Bit-identical runs — and only those — share it."""
    from ..mrr.logfmt import encode_chunks

    h = hashlib.sha256()
    h.update(outcome.final_memory_digest.encode())
    h.update(encode_chunks(outcome.recording.chunks))
    h.update(str(outcome.total_cycles).encode())
    h.update(str(outcome.units).encode())
    return h.hexdigest()


def run_bench(spec: tuple) -> dict:
    """Run one bench: ``spec`` is (workload, scale, seed, repeats,
    bundle_dir).

    Records ``repeats`` times and keeps the best wall time (the digest is
    checked identical across repeats — a varying digest would mean the
    simulator itself is nondeterministic, which is blocking by definition).
    Then embeds checkpoints, times a serial replay, and saves the bundle
    under ``bundle_dir`` for the parent's parallel-replay pass. Finally
    runs the recording-overhead trajectory (native / hw-only / full /
    full-batched, plus v1-vs-v2 log bandwidth) and nests it under the
    ``overhead`` key, so the bench history tracks recorded-vs-native cost
    alongside throughput.
    """
    from .. import session, workloads
    from ..replay.checkpoint import build_checkpoints
    from .overhead import measure_overhead

    name, scale, seed, repeats, bundle_dir = spec
    workload = workloads.REGISTRY[name]
    program, inputs = workloads.build(name, scale=scale)
    best_wall = None
    digest = None
    outcome = None
    for _ in range(max(1, repeats)):
        # Timing excludes collector pauses (a GC pass landing mid-run would
        # be charged to whichever bench happened to trigger it); garbage is
        # collected between repeats instead.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            outcome = session.record(program, seed=seed, input_files=inputs)
            wall = time.perf_counter() - start
        finally:
            gc.enable()
        run_digest = digest_of(outcome)
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise RuntimeError(
                f"bench {name}: nondeterministic digest across repeats "
                f"({digest[:16]} != {run_digest[:16]})")
        if best_wall is None or wall < best_wall:
            best_wall = wall

    recording = outcome.recording
    every = max(1, len(recording.chunks) // CHECKPOINT_INTERVALS)
    recording.checkpoints = build_checkpoints(recording, every)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        replayed = session.replay_recording(recording)
        replay_wall = time.perf_counter() - start
    finally:
        gc.enable()
    recording.save(Path(bundle_dir) / name)
    overhead = measure_overhead(program, seed=seed, input_files=inputs,
                                name=name, batch_events=OVERHEAD_BATCH_EVENTS)
    overhead_row = overhead.as_row()
    overhead_row.pop("workload", None)
    return {
        "bench": f"{workload.category}.{name}",
        "workload": name,
        "scale": scale,
        "seed": seed,
        "units": outcome.units,
        "cycles": outcome.total_cycles,
        "chunks": len(outcome.recording.chunks),
        "digest": digest,
        "wall_s": round(best_wall, 6),
        "rate_units_per_s": round(outcome.units / best_wall, 1),
        "replay_wall_s": round(replay_wall, 6),
        "replay_rate_units_per_s": round(replayed.stats.units / replay_wall,
                                         1),
        "replay_digest": replayed.digest(),
        "replay_checkpoints": len(recording.checkpoints),
        "overhead": overhead_row,
    }


def measure_parallel_replay(results: list[dict], bundle_dir: Path,
                            jobs: int) -> None:
    """Parallel-replay each saved bundle in the parent process, recording
    wall time and speedup into the result rows. The parallel result digest
    must equal the worker's serial one — a mismatch is a hard error, not a
    perf signal."""
    from ..capo.recording import Recording
    from ..replay.parallel import replay_parallel

    for row in results:
        directory = bundle_dir / row["workload"]
        recording = Recording.load(directory)
        gc.collect()
        gc.disable()
        try:
            result, report = replay_parallel(recording=recording,
                                             directory=directory, jobs=jobs)
        finally:
            gc.enable()
        if result.digest() != row["replay_digest"]:
            raise RuntimeError(
                f"bench {row['workload']}: parallel replay digest diverged "
                f"from serial ({result.digest()[:16]} != "
                f"{row['replay_digest'][:16]})")
        row["replay_jobs"] = report.jobs
        row["replay_parallel_wall_s"] = round(report.wall_s, 6)
        row["replay_speedup"] = round(
            row["replay_wall_s"] / report.wall_s, 3) if report.wall_s else 0.0
        row["replay_speedup_bound"] = round(report.speedup_bound, 2)


def run_all(names: tuple[str, ...], scale: int, seed: int, repeats: int,
            workers: int, replay_jobs: int = 4) -> list[dict]:
    """Run every bench, fanning across ``workers`` processes (serial
    in-process when 1), then measure parallel replay against each saved
    bundle. Result order always follows ``names``."""
    with tempfile.TemporaryDirectory(prefix="qr-bench-") as bundle_dir:
        specs = [(name, scale, seed, repeats, bundle_dir) for name in names]
        if workers <= 1:
            results = [run_bench(spec) for spec in specs]
        else:
            with multiprocessing.Pool(
                    processes=min(workers, len(specs))) as pool:
                results = pool.map(run_bench, specs)
        measure_parallel_replay(results, Path(bundle_dir), jobs=replay_jobs)
    return results


# -- history file ------------------------------------------------------------

def load_history(path: Path) -> dict:
    if not path.exists():
        return {"schema": SCHEMA, "entries": []}
    history = json.loads(path.read_text())
    if history.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {history.get('schema')!r}, expected {SCHEMA!r}")
    return history


def compare(previous: dict | None, results: list[dict]) -> tuple[list[str],
                                                                 list[str]]:
    """Compare fresh results against the previous history entry.

    Returns (blocking, warnings): digest mismatches on a matching
    (bench, scale, seed) block; rate drops merely warn.
    """
    blocking: list[str] = []
    warnings: list[str] = []
    if previous is None:
        return blocking, warnings
    prior = {(r["bench"], r["scale"], r["seed"]): r
             for r in previous["results"]}
    for result in results:
        old = prior.get((result["bench"], result["scale"], result["seed"]))
        if old is None:
            continue
        if old["digest"] != result["digest"]:
            blocking.append(
                f"{result['bench']}: determinism digest changed "
                f"({old['digest'][:16]} -> {result['digest'][:16]}) — "
                "the simulation is no longer bit-identical")
        if old.get("replay_digest") and result.get("replay_digest") \
                and old["replay_digest"] != result["replay_digest"]:
            blocking.append(
                f"{result['bench']}: replay digest changed "
                f"({old['replay_digest'][:16]} -> "
                f"{result['replay_digest'][:16]}) — replay no longer "
                "reproduces the same outcome")
        ratio = (result["rate_units_per_s"] / old["rate_units_per_s"]
                 if old["rate_units_per_s"] else 1.0)
        if ratio < SLOWDOWN_WARN_RATIO:
            warnings.append(
                f"{result['bench']}: rate dropped to {ratio:.0%} of the "
                f"previous run ({old['rate_units_per_s']:,.0f} -> "
                f"{result['rate_units_per_s']:,.0f} units/s)")
        old_replay = old.get("replay_rate_units_per_s")
        new_replay = result.get("replay_rate_units_per_s")
        if old_replay and new_replay \
                and new_replay / old_replay < SLOWDOWN_WARN_RATIO:
            warnings.append(
                f"{result['bench']}: replay rate dropped to "
                f"{new_replay / old_replay:.0%} of the previous run "
                f"({old_replay:,.0f} -> {new_replay:,.0f} units/s)")
    return blocking, warnings


# -- CLI ---------------------------------------------------------------------

def add_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="run only the quick set "
                             f"({', '.join(QUICK_WORKLOADS)})")
    parser.add_argument("--scale", type=int, default=2,
                        help="problem-size multiplier (default 2)")
    parser.add_argument("--seed", type=int, default=2,
                        help="interleaving seed (default 2)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per bench; best wall kept "
                             "(default 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per bench, "
                             "capped at CPU count); 1 = serial in-process")
    parser.add_argument("--replay-jobs", type=int, default=4,
                        help="worker processes for the parallel replay "
                             "measurement (default 4)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="history JSON to append to "
                             "(default: BENCH_simrate.json in the CWD)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored with this entry")


def run(args: argparse.Namespace) -> int:
    names = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    workers = args.workers
    if workers is None:
        workers = min(len(names), multiprocessing.cpu_count())
    out_path = Path(args.out) if args.out else Path("BENCH_simrate.json")

    history = load_history(out_path)
    previous = history["entries"][-1] if history["entries"] else None

    results = run_all(names, scale=args.scale, seed=args.seed,
                      repeats=args.repeats, workers=workers,
                      replay_jobs=args.replay_jobs)
    blocking, warnings = compare(previous, results)

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": args.label,
        "python": sys.version.split()[0],
        "results": results,
    }
    history["entries"].append(entry)
    out_path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")

    width = max(len(r["bench"]) for r in results)
    for r in results:
        print(f"{r['bench']:<{width}}  {r['units']:>9} units  "
              f"{r['wall_s']:>8.3f}s  {r['rate_units_per_s']:>12,.0f} u/s  "
              f"digest {r['digest'][:16]}")
        print(f"{'':<{width}}  replay {r['replay_rate_units_per_s']:>12,.0f}"
              f" u/s serial, {r['replay_parallel_wall_s']:>8.3f}s at "
              f"jobs={r['replay_jobs']} "
              f"(speedup {r['replay_speedup']:.2f}x, "
              f"bound {r['replay_speedup_bound']:.2f}x, "
              f"{r['replay_checkpoints']} checkpoints)")
        o = r.get("overhead")
        if o:
            print(f"{'':<{width}}  overhead hw {o['hw_overhead_pct']:+.2f}% "
                  f"full {o['full_overhead_pct']:+.2f}% "
                  f"batched {o.get('batched_overhead_pct', 0.0):+.2f}%  "
                  f"log bytes v1 {o.get('total_bytes_v1', 0)} "
                  f"-> v2 {o.get('total_bytes_v2', 0)}")
    for message in warnings:
        print(f"warning: {message}", file=sys.stderr)
    for message in blocking:
        print(f"BLOCKING: {message}", file=sys.stderr)
    print(f"history: {out_path} ({len(history['entries'])} entries)")
    return 1 if blocking else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-all",
        description="Simulation-rate benchmarks with a perf trajectory.")
    add_args(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
