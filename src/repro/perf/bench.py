"""Simulation-rate benchmark runner with a persistent perf trajectory.

Measures *simulated units per second* — the simulator's own throughput, not
the modeled cycle counts — for a fixed set of workloads, and appends each
run to a JSON history file (``BENCH_simrate.json`` by default). Every entry
carries the recording's determinism digest, so the history doubles as a
regression tripwire:

- a **digest mismatch** against the previous entry for the same
  (bench, scale, seed) means the simulation changed behaviour — that is
  blocking (exit 1); so is a **replay digest mismatch** (the replayed
  outcome changed, or parallel replay stopped matching serial);
- a **rate drop** is reported as a warning only: absolute throughput
  depends on the host and is never a correctness signal.

Each bench also measures *replay* throughput: a serial replay of the
fresh recording, then — after the record pool has drained — a parallel
interval replay at ``--replay-jobs`` over the recording's embedded
checkpoints. The parallel pass runs in the parent process (pool workers
are daemonic and cannot fork children of their own) against the bundle
the worker saved, and its result digest must equal the serial one.

Benches fan out across a ``multiprocessing`` pool (one process per
workload; each run is single-threaded and deterministic, so parallelism
cannot perturb results). ``--workers 1`` runs everything serially
in-process, which is what the test suite uses.

Exposed as ``python -m repro bench-all`` and ``benchmarks/runner.py``.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "repro-bench-simrate/v1"

#: Benches run with --quick (CI smoke): the two cheapest microbenchmarks.
QUICK_WORKLOADS = ("counter", "pingpong")

#: The full set: contended micros plus three SPLASH-2-like kernels.
FULL_WORKLOADS = QUICK_WORKLOADS + ("locks", "prodcons", "fft", "lu", "radix")

#: Rate drop (new/old) below which a slowdown warning is emitted.
SLOWDOWN_WARN_RATIO = 0.7

#: Checkpoint intervals per recording for the replay benches: enough
#: parallelism for 4 jobs without drowning small logs in snapshot cost.
CHECKPOINT_INTERVALS = 16

#: Per-thread buffer size for the batched leg of the overhead trajectory
#: (rr's syscall buffer holds far more; 64 already amortizes the
#: interposition charge to noise at these workload sizes).
OVERHEAD_BATCH_EVENTS = 64

#: Core counts for the many-core scaling series (directory vs snooping).
SCALING_CORES = (4, 8, 16, 32, 64)

#: The sharing-heavy scaling workload: every thread read-modify-writes
#: slots inside one cache line, so coherence traffic grows with the
#: thread count — the worst case for a broadcast fabric.
SCALING_WORKLOAD = "pingpong"

#: At 64 cores the directory must save more than this many notifies per
#: one it sends (the acceptance bar for O(sharers) beating broadcast).
SCALING_SAVED_RATIO_MIN = 2.0


def chunk_rate_per_kilo_instruction(chunks: int, instructions: int) -> float:
    """Chunks produced per thousand recorded instructions — the log
    production rate the scaling figures track (shared with bench_f8)."""
    return 1000.0 * chunks / instructions if instructions else 0.0


def digest_of(outcome) -> str:
    """Determinism digest of a record run: memory image, chunk log, cycle
    and unit counts. Bit-identical runs — and only those — share it."""
    from ..mrr.logfmt import encode_chunks

    h = hashlib.sha256()
    h.update(outcome.final_memory_digest.encode())
    h.update(encode_chunks(outcome.recording.chunks))
    h.update(str(outcome.total_cycles).encode())
    h.update(str(outcome.units).encode())
    return h.hexdigest()


def run_bench(spec: tuple) -> dict:
    """Run one bench: ``spec`` is (workload, scale, seed, repeats,
    bundle_dir).

    Records ``repeats`` times and keeps the best wall time (the digest is
    checked identical across repeats — a varying digest would mean the
    simulator itself is nondeterministic, which is blocking by definition).
    Then embeds checkpoints, times a serial replay, and saves the bundle
    under ``bundle_dir`` for the parent's parallel-replay pass. Finally
    runs the recording-overhead trajectory (native / hw-only / full /
    full-batched, plus v1-vs-v2 log bandwidth) and nests it under the
    ``overhead`` key, so the bench history tracks recorded-vs-native cost
    alongside throughput.
    """
    from .. import session, workloads
    from ..replay.checkpoint import build_checkpoints
    from .overhead import measure_overhead

    name, scale, seed, repeats, bundle_dir = spec
    workload = workloads.REGISTRY[name]
    program, inputs = workloads.build(name, scale=scale)
    best_wall = None
    digest = None
    outcome = None
    for _ in range(max(1, repeats)):
        # Timing excludes collector pauses (a GC pass landing mid-run would
        # be charged to whichever bench happened to trigger it); garbage is
        # collected between repeats instead.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            outcome = session.record(program, seed=seed, input_files=inputs)
            wall = time.perf_counter() - start
        finally:
            gc.enable()
        run_digest = digest_of(outcome)
        if digest is None:
            digest = run_digest
        elif run_digest != digest:
            raise RuntimeError(
                f"bench {name}: nondeterministic digest across repeats "
                f"({digest[:16]} != {run_digest[:16]})")
        if best_wall is None or wall < best_wall:
            best_wall = wall

    recording = outcome.recording
    every = max(1, len(recording.chunks) // CHECKPOINT_INTERVALS)
    recording.checkpoints = build_checkpoints(recording, every)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        replayed = session.replay_recording(recording)
        replay_wall = time.perf_counter() - start
    finally:
        gc.enable()
    recording.save(Path(bundle_dir) / name)
    overhead = measure_overhead(program, seed=seed, input_files=inputs,
                                name=name, batch_events=OVERHEAD_BATCH_EVENTS)
    overhead_row = overhead.as_row()
    overhead_row.pop("workload", None)
    return {
        "bench": f"{workload.category}.{name}",
        "workload": name,
        "scale": scale,
        "seed": seed,
        "units": outcome.units,
        "cycles": outcome.total_cycles,
        "chunks": len(outcome.recording.chunks),
        "digest": digest,
        "wall_s": round(best_wall, 6),
        "rate_units_per_s": round(outcome.units / best_wall, 1),
        "replay_wall_s": round(replay_wall, 6),
        "replay_rate_units_per_s": round(replayed.stats.units / replay_wall,
                                         1),
        "replay_digest": replayed.digest(),
        "replay_checkpoints": len(recording.checkpoints),
        "overhead": overhead_row,
    }


def measure_parallel_replay(results: list[dict], bundle_dir: Path,
                            jobs: int) -> None:
    """Parallel-replay each saved bundle in the parent process, recording
    wall time and speedup into the result rows. The parallel result digest
    must equal the worker's serial one — a mismatch is a hard error, not a
    perf signal."""
    from ..capo.recording import Recording
    from ..replay.parallel import replay_parallel

    for row in results:
        directory = bundle_dir / row["workload"]
        recording = Recording.load(directory)
        gc.collect()
        gc.disable()
        try:
            result, report = replay_parallel(recording=recording,
                                             directory=directory, jobs=jobs)
        finally:
            gc.enable()
        if result.digest() != row["replay_digest"]:
            raise RuntimeError(
                f"bench {row['workload']}: parallel replay digest diverged "
                f"from serial ({result.digest()[:16]} != "
                f"{row['replay_digest'][:16]})")
        row["replay_jobs"] = report.jobs
        row["replay_parallel_wall_s"] = round(report.wall_s, 6)
        row["replay_speedup"] = round(
            row["replay_wall_s"] / report.wall_s, 3) if report.wall_s else 0.0
        row["replay_speedup_bound"] = round(report.speedup_bound, 2)


def run_all(names: tuple[str, ...], scale: int, seed: int, repeats: int,
            workers: int, replay_jobs: int = 4) -> list[dict]:
    """Run every bench, fanning across ``workers`` processes (serial
    in-process when 1), then measure parallel replay against each saved
    bundle. Result order always follows ``names``."""
    with tempfile.TemporaryDirectory(prefix="qr-bench-") as bundle_dir:
        specs = [(name, scale, seed, repeats, bundle_dir) for name in names]
        if workers <= 1:
            results = [run_bench(spec) for spec in specs]
        else:
            with multiprocessing.Pool(
                    processes=min(workers, len(specs))) as pool:
                results = pool.map(run_bench, specs)
        measure_parallel_replay(results, Path(bundle_dir), jobs=replay_jobs)
    return results


# -- many-core scaling -------------------------------------------------------

def run_scaling(core_counts: tuple[int, ...] = SCALING_CORES,
                workload: str = SCALING_WORKLOAD, seed: int = 2,
                scale: int = 1) -> tuple[list[dict], list[str]]:
    """The scaling curve: record ``workload`` at each core count under
    both coherence fabrics, one thread per core.

    Returns ``(rows, blocking)``. Per core count each row carries both
    fabrics' sim rate and notify counters plus the shared determinism
    digest — a digest mismatch between fabrics (the bit-identity
    contract) is blocking, as is a directory that fails to beat broadcast
    by ``SCALING_SAVED_RATIO_MIN`` at the largest core count.
    """
    import dataclasses

    from .. import session, workloads
    from ..config import COHERENCE_MODELS, DEFAULT_CONFIG

    rows: list[dict] = []
    blocking: list[str] = []
    for cores in core_counts:
        row: dict = {"workload": workload, "cores": cores,
                     "threads": cores, "scale": scale, "seed": seed}
        digests: dict[str, str] = {}
        program, inputs = workloads.build(workload, threads=cores,
                                          scale=scale)
        for coherence in COHERENCE_MODELS:
            config = dataclasses.replace(
                DEFAULT_CONFIG,
                machine=dataclasses.replace(DEFAULT_CONFIG.machine,
                                            num_cores=cores,
                                            coherence=coherence))
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                outcome = session.record(program, seed=seed, config=config,
                                         input_files=inputs)
                wall = time.perf_counter() - start
            finally:
                gc.enable()
            digests[coherence] = digest_of(outcome)
            bus = outcome.machine_stats["bus"]
            row[coherence] = {
                "wall_s": round(wall, 6),
                "rate_units_per_s": round(outcome.units / wall, 1),
                "notifies_sent": bus["notifies_sent"],
                "notifies_saved": bus["notifies_saved"],
                "broadcast_snoops": bus["broadcast_snoops"],
            }
            row["units"] = outcome.units
            row["chunks"] = len(outcome.recording.chunks)
            row["chunks_per_ki"] = round(chunk_rate_per_kilo_instruction(
                len(outcome.recording.chunks), outcome.instructions), 3)
        if len(set(digests.values())) != 1:
            blocking.append(
                f"scaling {workload}@{cores}: coherence fabrics are not "
                f"bit-identical ({digests})")
        row["digest"] = digests["snoop"]
        sent = row["directory"]["notifies_sent"]
        row["saved_ratio"] = round(
            row["directory"]["notifies_saved"] / sent, 2) if sent else 0.0
        rows.append(row)
    largest = rows[-1]
    if (largest["cores"] >= 64
            and largest["saved_ratio"] <= SCALING_SAVED_RATIO_MIN):
        blocking.append(
            f"scaling {workload}@{largest['cores']}: directory saved ratio "
            f"{largest['saved_ratio']} not > {SCALING_SAVED_RATIO_MIN}x — "
            "notify work is no longer growing slower than broadcast")
    return rows, blocking


def compare_scaling(previous: dict | None,
                    rows: list[dict]) -> tuple[list[str], list[str]]:
    """Digest-gate the scaling series against the previous entry, same
    contract as :func:`compare` (mismatch blocks, rate drops warn)."""
    blocking: list[str] = []
    warnings: list[str] = []
    if not previous:
        return blocking, warnings
    prior = {(r["workload"], r["cores"], r["scale"], r["seed"]): r
             for r in previous.get("scaling", [])}
    for row in rows:
        old = prior.get((row["workload"], row["cores"], row["scale"],
                         row["seed"]))
        if old is None:
            continue
        if old["digest"] != row["digest"]:
            blocking.append(
                f"scaling {row['workload']}@{row['cores']}: determinism "
                f"digest changed ({old['digest'][:16]} -> "
                f"{row['digest'][:16]})")
        for coherence in ("snoop", "directory"):
            old_rate = old.get(coherence, {}).get("rate_units_per_s")
            new_rate = row[coherence]["rate_units_per_s"]
            if old_rate and new_rate / old_rate < SLOWDOWN_WARN_RATIO:
                warnings.append(
                    f"scaling {row['workload']}@{row['cores']} "
                    f"[{coherence}]: rate dropped to "
                    f"{new_rate / old_rate:.0%} of the previous run")
    return blocking, warnings


# -- history file ------------------------------------------------------------

def load_history(path: Path) -> dict:
    if not path.exists():
        return {"schema": SCHEMA, "entries": []}
    history = json.loads(path.read_text())
    if history.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {history.get('schema')!r}, expected {SCHEMA!r}")
    return history


def compare(previous: dict | None, results: list[dict]) -> tuple[list[str],
                                                                 list[str]]:
    """Compare fresh results against the previous history entry.

    Returns (blocking, warnings): digest mismatches on a matching
    (bench, scale, seed) block; rate drops merely warn.
    """
    blocking: list[str] = []
    warnings: list[str] = []
    if previous is None:
        return blocking, warnings
    prior = {(r["bench"], r["scale"], r["seed"]): r
             for r in previous["results"]}
    for result in results:
        old = prior.get((result["bench"], result["scale"], result["seed"]))
        if old is None:
            continue
        if old["digest"] != result["digest"]:
            blocking.append(
                f"{result['bench']}: determinism digest changed "
                f"({old['digest'][:16]} -> {result['digest'][:16]}) — "
                "the simulation is no longer bit-identical")
        if old.get("replay_digest") and result.get("replay_digest") \
                and old["replay_digest"] != result["replay_digest"]:
            blocking.append(
                f"{result['bench']}: replay digest changed "
                f"({old['replay_digest'][:16]} -> "
                f"{result['replay_digest'][:16]}) — replay no longer "
                "reproduces the same outcome")
        ratio = (result["rate_units_per_s"] / old["rate_units_per_s"]
                 if old["rate_units_per_s"] else 1.0)
        if ratio < SLOWDOWN_WARN_RATIO:
            warnings.append(
                f"{result['bench']}: rate dropped to {ratio:.0%} of the "
                f"previous run ({old['rate_units_per_s']:,.0f} -> "
                f"{result['rate_units_per_s']:,.0f} units/s)")
        old_replay = old.get("replay_rate_units_per_s")
        new_replay = result.get("replay_rate_units_per_s")
        if old_replay and new_replay \
                and new_replay / old_replay < SLOWDOWN_WARN_RATIO:
            warnings.append(
                f"{result['bench']}: replay rate dropped to "
                f"{new_replay / old_replay:.0%} of the previous run "
                f"({old_replay:,.0f} -> {new_replay:,.0f} units/s)")
    return blocking, warnings


# -- CLI ---------------------------------------------------------------------

def add_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="run only the quick set "
                             f"({', '.join(QUICK_WORKLOADS)})")
    parser.add_argument("--scale", type=int, default=2,
                        help="problem-size multiplier (default 2)")
    parser.add_argument("--seed", type=int, default=2,
                        help="interleaving seed (default 2)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per bench; best wall kept "
                             "(default 3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: one per bench, "
                             "capped at CPU count); 1 = serial in-process")
    parser.add_argument("--replay-jobs", type=int, default=4,
                        help="worker processes for the parallel replay "
                             "measurement (default 4)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="history JSON to append to "
                             "(default: BENCH_simrate.json in the CWD)")
    parser.add_argument("--label", default=None,
                        help="free-form label stored with this entry")
    parser.add_argument("--scaling-cores", default=None, metavar="CSV",
                        help="core counts for the directory-vs-snooping "
                             "scaling series (default "
                             f"{','.join(map(str, SCALING_CORES))}; "
                             "--quick trims to 4,16)")
    parser.add_argument("--no-scaling", action="store_true",
                        help="skip the many-core scaling series")


def run(args: argparse.Namespace) -> int:
    names = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    workers = args.workers
    if workers is None:
        workers = min(len(names), multiprocessing.cpu_count())
    out_path = Path(args.out) if args.out else Path("BENCH_simrate.json")

    history = load_history(out_path)
    previous = history["entries"][-1] if history["entries"] else None

    results = run_all(names, scale=args.scale, seed=args.seed,
                      repeats=args.repeats, workers=workers,
                      replay_jobs=args.replay_jobs)
    blocking, warnings = compare(previous, results)

    scaling_rows: list[dict] = []
    if not args.no_scaling:
        if args.scaling_cores:
            core_counts = tuple(int(c) for c
                                in args.scaling_cores.split(","))
        else:
            core_counts = (4, 16) if args.quick else SCALING_CORES
        scaling_rows, scaling_blocking = run_scaling(core_counts,
                                                     seed=args.seed)
        blocking.extend(scaling_blocking)
        more_blocking, more_warnings = compare_scaling(previous,
                                                       scaling_rows)
        blocking.extend(more_blocking)
        warnings.extend(more_warnings)

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "label": args.label,
        "python": sys.version.split()[0],
        "results": results,
        "scaling": scaling_rows,
    }
    history["entries"].append(entry)
    out_path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")

    width = max(len(r["bench"]) for r in results)
    for r in results:
        print(f"{r['bench']:<{width}}  {r['units']:>9} units  "
              f"{r['wall_s']:>8.3f}s  {r['rate_units_per_s']:>12,.0f} u/s  "
              f"digest {r['digest'][:16]}")
        print(f"{'':<{width}}  replay {r['replay_rate_units_per_s']:>12,.0f}"
              f" u/s serial, {r['replay_parallel_wall_s']:>8.3f}s at "
              f"jobs={r['replay_jobs']} "
              f"(speedup {r['replay_speedup']:.2f}x, "
              f"bound {r['replay_speedup_bound']:.2f}x, "
              f"{r['replay_checkpoints']} checkpoints)")
        o = r.get("overhead")
        if o:
            print(f"{'':<{width}}  overhead hw {o['hw_overhead_pct']:+.2f}% "
                  f"full {o['full_overhead_pct']:+.2f}% "
                  f"batched {o.get('batched_overhead_pct', 0.0):+.2f}%  "
                  f"log bytes v1 {o.get('total_bytes_v1', 0)} "
                  f"-> v2 {o.get('total_bytes_v2', 0)}")
    for row in scaling_rows:
        print(f"scaling {row['workload']}@{row['cores']:<2} cores  "
              f"snoop {row['snoop']['rate_units_per_s']:>10,.0f} u/s  "
              f"directory {row['directory']['rate_units_per_s']:>10,.0f} "
              f"u/s  notifies {row['directory']['notifies_sent']:>8} "
              f"(saved {row['saved_ratio']:.1f}x)  "
              f"digest {row['digest'][:16]}")
    for message in warnings:
        print(f"warning: {message}", file=sys.stderr)
    for message in blocking:
        print(f"BLOCKING: {message}", file=sys.stderr)
    print(f"history: {out_path} ({len(history['entries'])} entries)")
    return 1 if blocking else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-all",
        description="Simulation-rate benchmarks with a perf trajectory.")
    add_args(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
