"""Cycle cost constants for the simulated QuickIA machine.

The constants are order-of-magnitude figures for a Pentium-class in-order
core behind a shared front-side bus, chosen so that the *software* recording
costs land in the regime the paper reports (~13% average full-stack
overhead, dominated by input logging), while the *hardware* recording costs
stay negligible — which is the paper's central quantitative claim. The
claim's shape comes from measured event counts (syscalls, bytes copied,
chunk terminations), not from the constants themselves: a benchmark with 10x
the syscall rate shows ~10x the software overhead regardless of calibration.

All costs are in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle charges; grouped by whether recording state affects them."""

    # -- baseline machine costs (identical in every recording mode) --------
    unit: int = 1
    l1_miss: int = 30
    upgrade: int = 12
    writeback: int = 8
    store_drain: int = 1
    atomic_extra: int = 10
    syscall_base: int = 250
    nondet_base: int = 60
    context_switch_base: int = 600

    # -- hardware recording costs (charged when an MRR is attached) --------
    # Writing one packed chunk entry to the CBUF (a streaming store).
    cbuf_entry_write: int = 2

    # -- software (Capo3/RSM) recording costs (charged in FULL mode) -------
    rsm_syscall_interpose: int = 400
    rsm_nondet_interpose: int = 150
    input_log_event: int = 80
    input_log_per_byte: int = 2
    cbuf_drain_interrupt: int = 800
    cbuf_drain_per_entry: int = 4
    context_switch_flush: int = 150

    # -- batched input logging (rr-style syscall-buffer amortization; used
    #    when ``capo.input_batch_events > 0``) ------------------------------
    # Appending one event to the per-thread buffer: a user-space store, no
    # kernel crossing, no log-cursor maintenance.
    input_log_event_batched: int = 8
    # Draining one full batch into the log: a single interposition charge
    # amortized across the whole batch instead of paid per event.
    input_log_flush: int = 120
    # Copy avoidance: a payload whose content is already in the recording's
    # pool pays this per byte instead of ``input_log_per_byte`` (a content
    # compare against the pooled copy, not a second copy-out).
    input_log_dup_per_byte: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


DEFAULT_COST_MODEL = CostModel()
