"""Performance modelling: cycle costs and recording-overhead experiments.

The simulator is functional, so "time" is cycle accounting with documented
constants (:mod:`repro.perf.costmodel`). Because the recording machinery
never changes *what* executes — only how many cycles it charges — two runs
with the same seed and different recording modes have identical
interleavings, and their cycle difference isolates recording overhead
exactly. That is how the paper-shaped overhead figures (F1/F2/F8) are
produced; see DESIGN.md for the calibration rationale.
"""

from .costmodel import CostModel, DEFAULT_COST_MODEL

# NOTE: repro.perf.overhead is imported lazily by callers (it depends on
# repro.session, which depends on the machine, which depends on this
# package's cost model — importing it here would close that cycle).

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]
