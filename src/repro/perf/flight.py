"""Flight-recorder cost and fidelity measurement.

The flight ring's contract has two measurable halves:

- **fidelity** — a flight run is bit-identical to an unbounded run of
  the same seed: same execution (cycles, instruction counts), and the
  materialized window replays to the *same final digests, outputs and
  exit codes* as replaying the unbounded log (the base state carries the
  dropped prefix's cumulative effects);
- **boundedness** — ring occupancy is O(window): the maximum number of
  chunks ever retained never exceeds ``(window + 1) * epoch_chunks``, no
  matter how long the run, while the unbounded log keeps growing.

:func:`measure_flight` records the same workload twice (ring off / ring
on) and packages both halves into one comparison row; the T5 bench
sweeps problem scale to show the unbounded log growing past a ring
occupancy that stays flat.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..capo.recording import FLIGHT_META_KEY
from ..config import DEFAULT_CONFIG, SimConfig
from ..isa.program import Program


@dataclass(frozen=True)
class FlightComparison:
    """One workload recorded unbounded and under a flight ring."""

    name: str
    window: int
    epoch_chunks: int
    chunks_total: int           # unbounded log length
    events_total: int
    window_chunks: int          # chunks the materialized window retained
    evictions: int
    max_chunks_retained: int    # peak ring occupancy during the run
    cycles_unbounded: int
    cycles_flight: int
    replay_digest_unbounded: str
    replay_digest_flight: str

    @property
    def ring_bound(self) -> int:
        """The O(window) occupancy ceiling: ``window`` sealed epochs plus
        the open bucket."""
        return (self.window + 1) * self.epoch_chunks

    @property
    def bounded(self) -> bool:
        return self.max_chunks_retained <= self.ring_bound

    @property
    def bit_identical(self) -> bool:
        """Same execution and same replay outcome, ring on or off."""
        return (self.cycles_unbounded == self.cycles_flight
                and self.replay_digest_unbounded == self.replay_digest_flight)


def measure_flight(program: Program, *, window: int,
                   epoch_chunks: int | None = None, seed: int = 0,
                   policy: str = "random", input_files=None,
                   config: SimConfig | None = None,
                   name: str = "") -> FlightComparison:
    """Record ``program`` unbounded and under an ``(window, epoch)`` ring
    with the same seed; replay both; compare."""
    from .. import session

    config = config or DEFAULT_CONFIG
    capo = dataclasses.replace(config.capo, flight_window=window)
    if epoch_chunks is not None:
        capo = dataclasses.replace(capo, flight_epoch_chunks=epoch_chunks)
    flight_config = dataclasses.replace(config, capo=capo)

    unbounded = session.record(program, seed=seed, policy=policy,
                               input_files=input_files, config=config)
    flight = session.record(program, seed=seed, policy=policy,
                            input_files=input_files, config=flight_config)
    info = flight.recording.metadata[FLIGHT_META_KEY]
    return FlightComparison(
        name=name or program.name,
        window=capo.flight_window,
        epoch_chunks=capo.flight_epoch_chunks,
        chunks_total=len(unbounded.recording.chunks),
        events_total=len(unbounded.recording.events),
        window_chunks=len(flight.recording.chunks),
        evictions=info["evictions"],
        max_chunks_retained=info["max_chunks_retained"],
        cycles_unbounded=unbounded.total_cycles,
        cycles_flight=flight.total_cycles,
        replay_digest_unbounded=session.replay_recording(
            unbounded.recording).digest(),
        replay_digest_flight=session.replay_recording(
            flight.recording).digest(),
    )
