"""Checkpointing: snapshot, serialize and restore deterministic replay state.

QuickRec's chunk log totally orders inter-thread communication, so replay
state at any chunk-schedule position is a pure function of the recording —
which makes any suffix of a replay resumable from a snapshot of the state
at its start. A checkpoint captures exactly that state:

- the full physical memory image;
- per R-thread: the complete architectural engine state (registers, pc,
  flags, retirement/memop counters, load hash), the withheld-store FIFO
  (the replay-side TSO store buffer), deferred copy-to-user payloads and
  kernel actions, the signal context stack and handler table, and the
  input-event cursor;
- the replay-side kernel emulation state (fd table, write segments, exit
  codes) and cumulative replay statistics.

Checkpoints are created by a *replay pass* over the recording (the same
way rr materializes checkpoints during replay, not recording), then
embedded into the bundle's checkpoint section. Restoring one onto a fresh
:class:`~repro.replay.replayer.Replayer` is bit-for-bit equivalent to
serially replaying the prefix — the property :func:`state_digest` makes
checkable: equal digests iff equal states.

Uses: O(interval) seek for inspection (restore the nearest checkpoint and
step), and parallel replay (each worker restores its interval's checkpoint
— see :mod:`repro.replay.parallel`).
"""

from __future__ import annotations

import hashlib
import json
import struct
import time
from collections import deque
from dataclasses import dataclass

from ..capo.events import InputEvent
from ..capo.recording import Recording
from ..errors import LogFormatError, ReproError
from ..machine.core import Engine, EngineContext
from ..mrr.logfmt import CheckpointRecord
from ..telemetry import Telemetry
from .pending import ReplayPort, WithheldStores
from .replayer import Replayer, _ReplayThread

STATE_VERSION = 1
_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class ReplayState:
    """A decoded checkpoint: JSON-able header plus the raw memory image."""

    position: int
    header: dict
    memory: bytes


# -- capture -----------------------------------------------------------------

def capture_state(replayer: Replayer) -> ReplayState:
    """Snapshot ``replayer`` at its current chunk-schedule position.

    Must be called between chunks (which is the only way the public
    ``step_chunk`` interface can leave the replayer).
    """
    event_totals: dict[int, int] = {}
    for event in replayer.recording.events:
        event_totals[event.rthread] = event_totals.get(event.rthread, 0) + 1
    threads = {}
    for rthread, ctx in replayer.threads.items():
        threads[str(rthread)] = {
            "engine": ctx.engine.snapshot_arch(),
            "boundary_retired": ctx.boundary_retired,
            "completed_chunks": ctx.completed_chunks,
            "finished": ctx.finished,
            "events_consumed":
                event_totals.get(rthread, 0) - len(ctx.events),
            "pending_copies": [[addr, data.hex()]
                               for addr, data in ctx.pending_copies],
            "pending_actions": [list(action)
                                for action in ctx.pending_actions],
            "sig_saved": [saved.to_dict() for saved in ctx.sig_saved],
            "sig_handlers": {str(signo): handler
                             for signo, handler in ctx.sig_handlers.items()},
            "withheld": [list(entry) for entry in ctx.withheld.snapshot()],
        }
    header = {
        "version": STATE_VERSION,
        "position": replayer.position,
        "threads": threads,
        "fd_names": {str(fd): name
                     for fd, name in replayer._fd_names.items()},
        "write_segments": [[seq, name, data.hex()]
                           for seq, name, data in replayer._write_segments],
        "exit_codes": {str(rthread): code
                       for rthread, code in replayer.exit_codes.items()},
        "stats": replayer.stats.as_dict(),
    }
    return ReplayState(position=replayer.position, header=header,
                       memory=replayer.memory.snapshot())


# -- wire format -------------------------------------------------------------

def encode_state(state: ReplayState) -> bytes:
    """Canonical payload bytes: length-prefixed canonical-JSON header
    followed by the raw memory image. Equal states encode identically, so
    the payload's SHA-256 doubles as a state-equality digest."""
    header = json.dumps(state.header, sort_keys=True,
                        separators=(",", ":")).encode()
    return _LEN.pack(len(header)) + header + state.memory


def decode_state(payload: bytes) -> ReplayState:
    if len(payload) < _LEN.size:
        raise LogFormatError("checkpoint payload truncated")
    (header_len,) = _LEN.unpack_from(payload, 0)
    end = _LEN.size + header_len
    if len(payload) < end:
        raise LogFormatError("checkpoint payload truncated in header")
    try:
        header = json.loads(payload[_LEN.size:end].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise LogFormatError(f"corrupt checkpoint header: {exc}") from exc
    if header.get("version") != STATE_VERSION:
        raise LogFormatError(
            f"unsupported checkpoint state version {header.get('version')}")
    return ReplayState(position=header["position"], header=header,
                       memory=payload[end:])


def state_digest(state: ReplayState) -> str:
    """SHA-256 of the canonical encoding — the seam-verification digest."""
    return hashlib.sha256(encode_state(state)).hexdigest()


# -- restore -----------------------------------------------------------------

def restore_replayer(recording: Recording, state: ReplayState,
                     telemetry: Telemetry | None = None) -> Replayer:
    """A replayer positioned exactly as one that serially replayed
    ``state.position`` chunks of ``recording``."""
    replayer = Replayer(recording, telemetry=telemetry)
    start = time.perf_counter()
    replayer.memory.restore(state.memory)
    events_by_thread: dict[int, deque[InputEvent]] = {}
    for event in recording.events:
        events_by_thread.setdefault(event.rthread, deque()).append(event)
    replayer._events_by_thread = events_by_thread
    replayer.threads = {}
    for key in sorted(state.header["threads"], key=int):
        rthread = int(key)
        data = state.header["threads"][key]
        engine = Engine(recording.program)
        engine.restore_arch(data["engine"])
        withheld = WithheldStores(replayer.memory)
        withheld.restore([tuple(entry) for entry in data["withheld"]])
        port = ReplayPort(replayer.memory, withheld,
                          telemetry=replayer.telemetry)
        events = events_by_thread.setdefault(rthread, deque())
        for _ in range(data["events_consumed"]):
            if not events:
                raise LogFormatError(
                    f"checkpoint consumed more events than rthread "
                    f"{rthread} has")
            events.popleft()
        ctx = _ReplayThread(rthread, engine, withheld, port, events)
        ctx.boundary_retired = data["boundary_retired"]
        ctx.completed_chunks = data["completed_chunks"]
        ctx.finished = data["finished"]
        ctx.pending_copies = tuple(
            (addr, bytes.fromhex(blob))
            for addr, blob in data["pending_copies"])
        ctx.pending_actions = [tuple(action)
                               for action in data["pending_actions"]]
        ctx.sig_saved = [EngineContext.from_dict(saved)
                         for saved in data["sig_saved"]]
        ctx.sig_handlers = {int(signo): handler
                            for signo, handler in data["sig_handlers"].items()}
        replayer.threads[rthread] = ctx
    replayer._fd_names = {int(fd): name
                          for fd, name in state.header["fd_names"].items()}
    replayer._write_segments = [
        (seq, name, bytes.fromhex(blob))
        for seq, name, blob in state.header["write_segments"]]
    replayer.exit_codes = {int(rthread): code
                           for rthread, code in
                           state.header["exit_codes"].items()}
    stats = replayer.stats
    for field, value in state.header["stats"].items():
        setattr(stats, field, value)
    replayer._next_index = state.position
    if replayer.telemetry.enabled:
        metrics = replayer.telemetry.metrics
        metrics.counter("replay.checkpoint_restores").inc()
        metrics.histogram("replay.checkpoint_restore_us").observe(
            (time.perf_counter() - start) * 1e6)
    return replayer


# -- flight-window base ------------------------------------------------------

def flight_base_state(recording: Recording) -> ReplayState | None:
    """The window-origin state of a materialized flight recording.

    A flight window captured after evictions embeds the ring-base replay
    state as a checkpoint at position 0 (fresh-replayer construction is
    wrong there: the dropped prefix's memory, thread and kernel state
    live only in that record). None for ordinary recordings and for
    flight windows that never evicted.
    """
    from ..capo.recording import FLIGHT_META_KEY
    if FLIGHT_META_KEY not in recording.metadata:
        return None
    record = recording.checkpoint_at(0)
    if record is None:
        return None
    return decode_state(record.payload)


def base_replayer(recording: Recording,
                  telemetry: Telemetry | None = None) -> Replayer:
    """A replayer at position 0 of ``recording`` — fresh for ordinary
    recordings, restored from the embedded window-origin state for
    materialized flight windows. Every "replay from the start" path must
    come through here."""
    state = flight_base_state(recording)
    if state is None:
        return Replayer(recording, telemetry=telemetry)
    return restore_replayer(recording, state, telemetry=telemetry)


# -- building ----------------------------------------------------------------

def build_checkpoints(recording: Recording, every: int,
                      telemetry: Telemetry | None = None,
                      ) -> list[CheckpointRecord]:
    """Embeddable checkpoints at every ``every``-th chunk-schedule epoch.

    Runs one serial replay pass over the recording (which also validates
    it end to end) and snapshots replay state at each epoch boundary.
    The initial and final positions are omitted: position 0 is a fresh
    replayer and the final state is the replay result itself.
    """
    if every <= 0:
        raise ReproError(f"checkpoint interval must be positive, got {every}")
    replayer = base_replayer(recording, telemetry=telemetry)
    records: list[CheckpointRecord] = []
    start = time.perf_counter()
    while replayer.step_chunk() is not None:
        position = replayer.position
        if position % every == 0 and not replayer.finished:
            state = capture_state(replayer)
            records.append(CheckpointRecord.for_payload(
                position, encode_state(state)))
    replayer.result()
    if telemetry is not None and telemetry.enabled:
        metrics = telemetry.metrics
        metrics.gauge("checkpoint.count").set(len(records))
        metrics.gauge("checkpoint.interval_chunks").set(every)
        metrics.gauge("checkpoint.raw_bytes").set(
            sum(len(record.payload) for record in records))
        metrics.gauge("checkpoint.build_us").set(
            round((time.perf_counter() - start) * 1e6))
        telemetry.tracer.instant(
            "checkpoint.build", cat="checkpoint",
            args={"count": len(records), "every": every})
    return records


# -- seek --------------------------------------------------------------------

def replayer_at(recording: Recording, position: int,
                telemetry: Telemetry | None = None) -> Replayer:
    """A replayer at ``position`` in O(interval): restore the nearest
    embedded checkpoint at or before it, then step the remainder."""
    total = len(recording.chunks)
    if position < 0 or position > total:
        raise ReproError(f"position {position} outside [0, {total}]")
    record = recording.nearest_checkpoint(position)
    if record is not None and record.position > 0:
        replayer = restore_replayer(recording, decode_state(record.payload),
                                    telemetry=telemetry)
    else:
        # Position 0: a fresh replayer — or, for a flight window, the
        # embedded window-origin state (which is the position-0 record
        # nearest_checkpoint just found).
        replayer = base_replayer(recording, telemetry=telemetry)
    while replayer.position < position:
        if replayer.step_chunk() is None:
            raise ReproError(
                f"replay ended at {replayer.position} before requested "
                f"position {position}")
    return replayer
