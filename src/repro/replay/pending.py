"""Withheld stores: the replay-side image of the TSO store buffer.

During replay every store first lands in its thread's withheld FIFO. At a
chunk boundary with logged RSW ``k``, all but the youngest ``k`` entries
commit to shared memory — exactly the set that had drained by that boundary
during recording, because both structures are FIFO. Atomic instructions and
fences commit everything (the recorder drained the store buffer at those
points), as does a failed store-to-load forward (the recorder's pipeline
drained there too).
"""

from __future__ import annotations

from collections import deque

from ..errors import ReplayDivergenceError
from ..machine.memory import PhysicalMemory
from ..machine.store_buffer import PendingStore
from ..telemetry import NULL_TELEMETRY, Telemetry

MASK32 = 0xFFFFFFFF


class WithheldStores:
    """Unbounded FIFO of not-yet-visible stores for one replay thread."""

    def __init__(self, memory: PhysicalMemory):
        self._memory = memory
        self._entries: deque[PendingStore] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, addr: int, size: int, value: int) -> None:
        self._entries.append(PendingStore(addr, size, value & MASK32))

    def _commit_one(self) -> None:
        entry = self._entries.popleft()
        if entry.size == 4:
            self._memory.write_word(entry.addr, entry.value)
        else:
            self._memory.write_byte(entry.addr, entry.value)

    def commit_all(self) -> None:
        while self._entries:
            self._commit_one()

    def commit_keep_last(self, keep: int) -> None:
        """Commit the oldest entries, keeping the youngest ``keep``."""
        if keep > len(self._entries):
            raise ReplayDivergenceError(
                f"RSW {keep} exceeds {len(self._entries)} withheld stores")
        while len(self._entries) > keep:
            self._commit_one()

    def snapshot(self) -> list[tuple[int, int, int]]:
        """FIFO contents, oldest first, as (addr, size, value) triples."""
        return [(entry.addr, entry.size, entry.value)
                for entry in self._entries]

    def restore(self, entries: list) -> None:
        """Replace the FIFO with a prior :meth:`snapshot`."""
        self._entries = deque(PendingStore(addr, size, value)
                              for addr, size, value in entries)

    def resolve(self, addr: int, size: int) -> tuple[str, int | None]:
        """Store-to-load forwarding, mirroring the store buffer's rules."""
        for entry in reversed(self._entries):
            if entry.covers(addr, size):
                return "hit", entry.extract(addr, size)
            if entry.overlaps(addr, size):
                return "conflict", None
        return "miss", None


class ReplayPort:
    """Engine memory port: withheld FIFO in front of shared replay memory."""

    def __init__(self, memory: PhysicalMemory, withheld: WithheldStores,
                 telemetry: Telemetry | None = None):
        self._memory = memory
        self._withheld = withheld
        self._telemetry = telemetry or NULL_TELEMETRY
        if self._telemetry.enabled:
            self._tm_stalls = self._telemetry.metrics.counter(
                "replay.pending_store_stalls")

    def load(self, addr: int, size: int) -> int:
        status, value = self._withheld.resolve(addr, size)
        if status == "hit":
            return value  # type: ignore[return-value]
        if status == "conflict":
            # Recording drained the store buffer at this exact point.
            if self._telemetry.enabled:
                self._tm_stalls.inc()
            self._withheld.commit_all()
        if size == 4:
            return self._memory.read_word(addr)
        return self._memory.read_byte(addr)

    def store(self, addr: int, size: int, value: int) -> None:
        self._withheld.push(addr, size, value)

    def fence(self) -> None:
        self._withheld.commit_all()

    def atomic_load(self, addr: int, size: int) -> int:
        # The engine fences before atomics, so the FIFO is already empty.
        if size == 4:
            return self._memory.read_word(addr)
        return self._memory.read_byte(addr)

    def atomic_store(self, addr: int, size: int, value: int) -> None:
        if size == 4:
            self._memory.write_word(addr, value)
        else:
            self._memory.write_byte(addr, value)
