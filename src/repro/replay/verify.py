"""Record-vs-replay verification.

Compares the observable outcome of a recorded run against its replay:
final memory image (digest), every output file byte-for-byte, and
per-thread exit codes. Any mismatch means the logs failed to capture some
nondeterminism — a bug, reported with as much locality as we have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .replayer import ReplayResult


@dataclass
class VerificationReport:
    """Outcome of comparing a recording's run against its replay."""

    memory_match: bool
    output_match: bool
    exit_code_match: bool
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.memory_match and self.output_match and self.exit_code_match

    def summary(self) -> str:
        if self.ok:
            return "replay verified: memory, outputs and exit codes match"
        return "REPLAY DIVERGED: " + "; ".join(self.mismatches)


def verify_replay(recorded_digest: str, recorded_outputs: dict[str, bytes],
                  recorded_exit_codes: dict[int, int],
                  replay: ReplayResult,
                  use_region: bool = False) -> VerificationReport:
    mismatches: list[str] = []

    replay_digest = (replay.region_digest if use_region
                     else replay.final_memory_digest)
    memory_match = recorded_digest == replay_digest
    if not memory_match:
        mismatches.append(
            f"memory digest {recorded_digest[:12]}… != "
            f"{(replay_digest or '<none>')[:12]}…")

    output_match = True
    names = set(recorded_outputs) | set(replay.outputs)
    for name in sorted(names):
        want = recorded_outputs.get(name, b"")
        got = replay.outputs.get(name, b"")
        if want != got:
            output_match = False
            prefix = _common_prefix(want, got)
            if prefix < min(len(want), len(got)):
                where = f"content differs at offset {prefix}"
            elif len(got) < len(want):
                # Every compared byte matched; the replay just stopped short.
                where = f"replay output truncated at length {prefix}"
            else:
                where = f"replay output extended at length {prefix}"
            mismatches.append(
                f"output {name!r}: {len(want)} vs {len(got)} bytes, {where}")

    exit_code_match = recorded_exit_codes == replay.exit_codes
    if not exit_code_match:
        mismatches.append(
            f"exit codes {recorded_exit_codes} != {replay.exit_codes}")

    return VerificationReport(memory_match=memory_match,
                              output_match=output_match,
                              exit_code_match=exit_code_match,
                              mismatches=mismatches)


def _common_prefix(a: bytes, b: bytes) -> int:
    for index, (byte_a, byte_b) in enumerate(zip(a, b)):
        if byte_a != byte_b:
            return index
    return min(len(a), len(b))
