"""Time-travel inspection of a recording — the RnR debugging use case.

:class:`ReplayInspector` wraps the replayer's incremental interface with
the operations a deterministic debugger needs: step chunk by chunk, run
until a timestamp or a predicate, watch a memory word for change, and
inspect per-thread architectural state and (committed or thread-visible)
memory at any point. Because replay is a pure function of the recording,
any position is revisitable by constructing a fresh inspector — time
travel by re-execution, exactly how the paper frames RnR-based debugging.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from ..capo.recording import Recording
from ..errors import ReproError
from ..mrr.chunk import ChunkEntry
from .replayer import Replayer


def _clone_replayer(replayer: Replayer) -> Replayer:
    """Deep-copy replay state while sharing the immutable recording,
    program and schedule (checkpointing would be prohibitive otherwise)."""
    memo = {
        id(replayer.recording): replayer.recording,
        id(replayer.recording.program): replayer.recording.program,
        id(replayer.schedule): replayer.schedule,
        id(replayer.config): replayer.config,
    }
    return copy.deepcopy(replayer, memo)


@dataclass(frozen=True)
class ThreadView:
    """A thread's architectural state at the current replay position."""

    rthread: int
    pc: int
    retired: int
    regs: tuple[int, ...]
    withheld_stores: int
    completed_chunks: int
    finished: bool


@dataclass(frozen=True)
class WatchHit:
    """A watched word changed while replaying ``chunk``."""

    address: int
    old_value: int
    new_value: int
    chunk: ChunkEntry
    chunk_index: int


class ReplayInspector:
    """Drive a replay interactively over a :class:`Recording`.

    With ``checkpoint_every`` set, the inspector snapshots replay state
    periodically while moving forward, and :meth:`seek` can then travel
    *backwards* by restoring the nearest earlier checkpoint and re-stepping
    — the standard RnR debugger implementation of reverse execution.
    """

    def __init__(self, recording: Recording, checkpoint_every: int = 0):
        if checkpoint_every < 0:
            raise ReproError("checkpoint_every must be >= 0")
        self.recording = recording
        self._replayer = self._fresh_replayer()
        self._checkpoint_every = checkpoint_every
        # position -> frozen Replayer snapshot (position 0 is implicit:
        # a fresh Replayer). Checkpoints *embedded* in the recording are
        # used as additional seek bases without being materialized here.
        self._checkpoints: dict[int, Replayer] = {}

    def _maybe_checkpoint(self) -> None:
        if not self._checkpoint_every:
            return
        position = self._replayer.position
        if position % self._checkpoint_every == 0 \
                and position not in self._checkpoints:
            self._checkpoints[position] = _clone_replayer(self._replayer)

    def seek(self, index: int) -> None:
        """Move to ``position == index``, travelling backwards if needed.

        Backward seeks restore the nearest checkpoint at or before
        ``index`` — either one of this inspector's in-memory snapshots or
        one embedded in the recording, whichever is closer — or replay
        from scratch, then re-step. Far-forward seeks likewise jump over
        an embedded checkpoint instead of stepping the whole way. Replay
        determinism makes the restored states identical to the originals.
        """
        if index < 0 or index > self.total_chunks:
            raise ReproError(f"seek target {index} outside [0, "
                             f"{self.total_chunks}]")
        embedded = self.recording.nearest_checkpoint(index)
        embedded_pos = embedded.position if embedded else 0
        if index < self.position:
            in_memory = max((p for p in self._checkpoints if p <= index),
                            default=0)
            if embedded_pos > in_memory:
                self._replayer = self._restore_embedded(embedded)
            elif in_memory:
                self._replayer = _clone_replayer(self._checkpoints[in_memory])
            else:
                self._replayer = self._fresh_replayer()
        elif embedded_pos > self.position:
            self._replayer = self._restore_embedded(embedded)
        self.run_to_index(index)

    def _fresh_replayer(self) -> Replayer:
        # base_replayer: a flight window's position 0 is its embedded
        # ring-base state, not a fresh Replayer.
        from .checkpoint import base_replayer
        return base_replayer(self.recording)

    def _restore_embedded(self, record) -> Replayer:
        from .checkpoint import decode_state, restore_replayer
        if record.position == 0:
            return self._fresh_replayer()
        return restore_replayer(self.recording, decode_state(record.payload))

    @property
    def checkpoints(self) -> list[int]:
        return sorted(self._checkpoints)

    # -- position ------------------------------------------------------------

    @property
    def position(self) -> int:
        """Chunks replayed so far (index of the next chunk)."""
        return self._replayer.position

    @property
    def total_chunks(self) -> int:
        return len(self._replayer.schedule)

    @property
    def finished(self) -> bool:
        return self._replayer.finished

    def next_chunk(self) -> ChunkEntry | None:
        """The chunk :meth:`step` would replay, without replaying it."""
        if self.finished:
            return None
        return self._replayer.schedule[self.position]

    # -- movement --------------------------------------------------------------

    def _step_one(self) -> ChunkEntry | None:
        chunk = self._replayer.step_chunk()
        if chunk is not None:
            self._maybe_checkpoint()
        return chunk

    def step(self, count: int = 1) -> list[ChunkEntry]:
        """Replay up to ``count`` chunks; returns the chunks replayed."""
        if count < 0:
            raise ReproError("step count must be non-negative; use seek() "
                             "to travel backwards")
        replayed = []
        for _ in range(count):
            chunk = self._step_one()
            if chunk is None:
                break
            replayed.append(chunk)
        return replayed

    def run_until(self, predicate: Callable[[ChunkEntry], bool],
                  ) -> ChunkEntry | None:
        """Replay until a just-replayed chunk satisfies ``predicate``.

        Returns that chunk, or None if the log ends first.
        """
        while True:
            chunk = self._step_one()
            if chunk is None:
                return None
            if predicate(chunk):
                return chunk

    def run_to_timestamp(self, timestamp: int) -> ChunkEntry | None:
        """Replay through the first chunk with timestamp >= ``timestamp``."""
        return self.run_until(lambda chunk: chunk.timestamp >= timestamp)

    def run_to_index(self, index: int) -> None:
        """Replay until ``position == index`` (no-op if already past)."""
        while self.position < index and self._step_one():
            pass

    def run_to_end(self):
        """Replay the rest and return the verified ReplayResult."""
        while self._step_one() is not None:
            pass
        return self._replayer.result()

    def watch_word(self, address: int) -> WatchHit | None:
        """Replay until the committed word at ``address`` changes.

        Returns the hit (with before/after values and the responsible
        chunk), or None if it never changes again.
        """
        old = self.read_word(address)
        while True:
            index = self.position
            chunk = self._step_one()
            if chunk is None:
                return None
            new = self.read_word(address)
            if new != old:
                return WatchHit(address=address, old_value=old,
                                new_value=new, chunk=chunk,
                                chunk_index=index)

    # -- state inspection ------------------------------------------------------

    def resolve(self, symbol_or_address: str | int, index: int = 0) -> int:
        """Turn a data symbol (plus word index) or raw address into an
        address."""
        if isinstance(symbol_or_address, str):
            base = self.recording.program.symbol(symbol_or_address)
        else:
            base = symbol_or_address
        return base + 4 * index

    def read_word(self, symbol_or_address: str | int, index: int = 0) -> int:
        """Globally committed value of a word (withheld stores excluded)."""
        return self._replayer.memory.read_word(
            self.resolve(symbol_or_address, index))

    def thread_word(self, rthread: int, symbol_or_address: str | int,
                    index: int = 0) -> int:
        """The value ``rthread`` would load right now — its withheld
        (TSO-pending) stores forward over committed memory."""
        ctx = self._ctx(rthread)
        return ctx.port.load(self.resolve(symbol_or_address, index), 4)

    def thread_view(self, rthread: int) -> ThreadView:
        ctx = self._ctx(rthread)
        engine = ctx.engine
        return ThreadView(
            rthread=rthread,
            pc=engine.pc,
            retired=engine.retired,
            regs=tuple(engine.regs),
            withheld_stores=len(ctx.withheld),
            completed_chunks=ctx.completed_chunks,
            finished=ctx.finished,
        )

    def threads(self) -> list[int]:
        """R-threads that exist at the current position."""
        return sorted(self._replayer.threads)

    def outputs_so_far(self) -> dict[str, bytes]:
        return self._replayer.outputs_so_far()

    def disassemble_at(self, rthread: int, window: int = 3) -> str:
        """The instructions around ``rthread``'s current pc."""
        engine = self._ctx(rthread).engine
        program = self.recording.program
        lines = []
        for pc in range(max(0, engine.pc - window),
                        min(len(program), engine.pc + window + 1)):
            marker = "->" if pc == engine.pc else "  "
            lines.append(f"{marker} {pc:5d}  {program.instructions[pc]}")
        return "\n".join(lines)

    def _ctx(self, rthread: int):
        ctx = self._replayer.threads.get(rthread)
        if ctx is None:
            raise ReproError(
                f"rthread {rthread} does not exist at chunk {self.position} "
                f"(known: {self.threads()})")
        return ctx
