"""Deterministic replay from a :class:`~repro.capo.recording.Recording`.

The replayer executes chunks in global (timestamp, rthread) order on fresh
per-thread engines. At every chunk boundary it commits withheld stores
according to the logged RSW counts (TSO visibility), consumes the thread's
next input event when the boundary is a kernel entry, and re-delivers
signals at their recorded chunk positions. It sees nothing but the
recording — no seeds, no kernel — which is precisely the property the
verification suite checks.
"""

from .pending import WithheldStores, ReplayPort
from .schedule import build_schedule, validate_schedule
from .replayer import Replayer, ReplayResult
from .checkpoint import build_checkpoints, replayer_at, restore_replayer
from .parallel import ParallelReplayReport, plan_intervals, replay_parallel
from .inspect import ReplayInspector, ThreadView, WatchHit
from .verify import VerificationReport, verify_replay

__all__ = [
    "WithheldStores",
    "ReplayPort",
    "build_schedule",
    "validate_schedule",
    "Replayer",
    "ReplayResult",
    "build_checkpoints",
    "replayer_at",
    "restore_replayer",
    "ParallelReplayReport",
    "plan_intervals",
    "replay_parallel",
    "ReplayInspector",
    "ThreadView",
    "WatchHit",
    "VerificationReport",
    "verify_replay",
]
