"""Parallel interval replay: fan a chunk schedule out over checkpoints.

The chunk schedule is split at embedded checkpoint boundaries into
intervals. Each interval is independently replayable: a worker restores
its starting checkpoint (interval 0 starts from a fresh replayer), replays
only its chunks, and — this is what makes parallel replay self-validating —
digests its final state and compares it against the *recorded* digest of
the next checkpoint. A seam mismatch anywhere means the stitched result
would not be bit-identical to a serial replay, and raises
:class:`~repro.errors.ReplayDivergenceError` naming the seam.

Because every checkpoint carries cumulative state (write segments, exit
codes, statistics), the last interval's :class:`ReplayResult` *is* the
whole run's result: stitching is verification, not reassembly. ``--jobs 1``
and ``--jobs N`` therefore produce identical results by construction, and
the test suite enforces it bit-for-bit.

Workers are plain ``multiprocessing`` processes. Under the default
``fork`` start method they inherit the already-decoded recording from the
parent (no pickling, no re-reading); under ``spawn`` each worker loads the
bundle from disk, so a directory is required (an in-memory recording is
spilled to a temporary bundle automatically).
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from ..capo.recording import Recording
from ..errors import ReplayDivergenceError, ReproError
from ..telemetry import NULL_TELEMETRY, Telemetry
from .checkpoint import base_replayer, capture_state, decode_state, \
    restore_replayer, state_digest
from .replayer import ReplayResult


@dataclass(frozen=True)
class Interval:
    """One independently replayable slice of the chunk schedule."""

    index: int
    start: int
    end: int
    #: Recorded digest of the checkpoint at ``end`` (None for the final
    #: interval — its end state is the replay result itself).
    expected_digest: str | None


@dataclass(frozen=True)
class IntervalOutcome:
    index: int
    start: int
    end: int
    units: int
    wall_s: float
    end_digest: str | None


@dataclass
class ParallelReplayReport:
    """How a parallel replay went: per-interval work and seam checks."""

    jobs: int
    intervals: list[IntervalOutcome]
    seams_verified: int
    wall_s: float

    @property
    def speedup_bound(self) -> float:
        """Max parallel speedup the partition allows (total units over the
        largest interval's units) — the critical-path bound, independent
        of how many cores the host actually has."""
        largest = max((o.units for o in self.intervals), default=0)
        total = sum(o.units for o in self.intervals)
        return total / largest if largest else 1.0


def plan_intervals(recording: Recording) -> list[Interval]:
    """Split the schedule at embedded checkpoint positions."""
    total = len(recording.chunks)
    records = sorted((r for r in recording.checkpoints
                      if 0 < r.position < total),
                     key=lambda record: record.position)
    bounds = [0] + [r.position for r in records] + [total]
    digests = {r.position: r.digest for r in records}
    intervals = []
    for index, (start, end) in enumerate(zip(bounds, bounds[1:])):
        intervals.append(Interval(index=index, start=start, end=end,
                                  expected_digest=digests.get(end)))
    return intervals


def _replay_one(recording: Recording, interval: Interval,
                is_last: bool) -> IntervalOutcome | tuple:
    """Replay one interval; returns its outcome (plus the final
    ReplayResult when it is the last interval)."""
    start_wall = time.perf_counter()
    if interval.start == 0:
        # base_replayer, not a bare Replayer: a flight window's position
        # 0 restores the embedded ring-base state.
        replayer = base_replayer(recording)
    else:
        record = recording.checkpoint_at(interval.start)
        if record is None:
            raise ReproError(
                f"no checkpoint at position {interval.start}")
        replayer = restore_replayer(recording, decode_state(record.payload))
    units_before = replayer.stats.units
    while replayer.position < interval.end:
        if replayer.step_chunk() is None:
            raise ReplayDivergenceError(
                f"schedule ended at {replayer.position} inside interval "
                f"[{interval.start}, {interval.end})")
    result = None
    end_digest = None
    if is_last:
        result = replayer.result()
    else:
        end_digest = state_digest(capture_state(replayer))
        if interval.expected_digest is not None \
                and end_digest != interval.expected_digest:
            raise ReplayDivergenceError(
                f"seam mismatch at chunk {interval.end}: interval "
                f"[{interval.start}, {interval.end}) reached state "
                f"{end_digest[:12]}…, recording expects "
                f"{interval.expected_digest[:12]}…")
    outcome = IntervalOutcome(
        index=interval.index, start=interval.start, end=interval.end,
        units=replayer.stats.units - units_before,
        wall_s=time.perf_counter() - start_wall,
        end_digest=end_digest)
    return (outcome, result) if is_last else outcome


# Recording shared with fork-started pool workers (set just before the
# pool is created; children inherit the decoded sections copy-on-write).
_WORKER_RECORDING: Recording | None = None
_WORKER_DIRECTORY: str | None = None


def _pool_replay_interval(spec: tuple):
    interval, is_last = spec
    recording = _WORKER_RECORDING
    if recording is None:
        if _WORKER_DIRECTORY is None:
            raise ReproError("parallel replay worker has no recording source")
        recording = Recording.load(_WORKER_DIRECTORY)
    return _replay_one(recording, interval, is_last)


def replay_parallel(recording: Recording | None = None,
                    directory: str | Path | None = None,
                    jobs: int = 1,
                    telemetry: Telemetry | None = None,
                    ) -> tuple[ReplayResult, ParallelReplayReport]:
    """Replay ``recording`` across its checkpoint intervals.

    ``jobs <= 1`` (or a checkpoint-free recording, or a daemonic caller
    that cannot fork workers) executes the intervals serially in-process —
    still restoring every checkpoint and verifying every seam, so the
    checkpoint machinery is exercised identically; only the wall-clock
    parallelism differs.
    """
    if recording is None:
        if directory is None:
            raise ReproError("replay_parallel needs a recording or directory")
        recording = Recording.load(directory)
    telemetry = telemetry or NULL_TELEMETRY
    intervals = plan_intervals(recording)
    is_last = {interval.index: interval.index == len(intervals) - 1
               for interval in intervals}
    effective_jobs = min(jobs, len(intervals))
    if multiprocessing.current_process().daemon:
        effective_jobs = 1  # pool workers cannot have children

    start_wall = time.perf_counter()
    if effective_jobs <= 1:
        raw = [_replay_one(recording, interval, is_last[interval.index])
               for interval in intervals]
    else:
        raw = _fan_out(recording, directory, intervals, is_last,
                       effective_jobs)

    outcomes: list[IntervalOutcome] = []
    result: ReplayResult | None = None
    for item in raw:
        if isinstance(item, tuple):
            outcome, result = item
            outcomes.append(outcome)
        else:
            outcomes.append(item)
    if result is None:
        raise ReproError("parallel replay produced no final result")
    report = ParallelReplayReport(
        jobs=effective_jobs, intervals=outcomes,
        seams_verified=sum(1 for o in outcomes if o.end_digest is not None),
        wall_s=time.perf_counter() - start_wall)
    if telemetry.enabled:
        metrics = telemetry.metrics
        metrics.gauge("replay.parallel_jobs").set(effective_jobs)
        metrics.gauge("replay.parallel_intervals").set(len(outcomes))
        metrics.gauge("replay.parallel_seams_verified").set(
            report.seams_verified)
        metrics.gauge("replay.parallel_wall_us").set(
            round(report.wall_s * 1e6))
    return result, report


def _fan_out(recording: Recording, directory: str | Path | None,
             intervals: list[Interval], is_last: dict[int, bool],
             jobs: int) -> list:
    """Run the intervals over a process pool, largest first (greedy LPT
    keeps the pool busy when intervals are uneven)."""
    global _WORKER_RECORDING, _WORKER_DIRECTORY
    fork = multiprocessing.get_start_method(allow_none=False) == "fork"
    tmp = None
    try:
        if not fork and directory is None:
            tmp = tempfile.TemporaryDirectory(prefix="qr-parallel-")
            recording.save(tmp.name)
            directory = tmp.name
        _WORKER_RECORDING = recording if fork else None
        _WORKER_DIRECTORY = str(directory) if directory is not None else None
        specs = [(interval, is_last[interval.index])
                 for interval in sorted(intervals,
                                        key=lambda iv: iv.start - iv.end)]
        with multiprocessing.Pool(processes=jobs) as pool:
            raw = pool.map(_pool_replay_interval, specs, chunksize=1)
    finally:
        _WORKER_RECORDING = None
        _WORKER_DIRECTORY = None
        if tmp is not None:
            tmp.cleanup()
    # Restore schedule order for the report.
    def order_key(item):
        outcome = item[0] if isinstance(item, tuple) else item
        return outcome.start
    return sorted(raw, key=order_key)
