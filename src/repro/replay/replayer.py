"""The replayer: re-execute a recording from its logs alone.

Per-chunk protocol (mirrors the recorder/kernel contract exactly):

1. *Pre-chunk*: apply copy-to-user payloads deferred from the thread's last
   syscall (they belong, order-wise, to this chunk), then re-deliver any
   signals recorded at this chunk boundary.
2. *Execute* units until the thread has retired ``icount`` further
   instructions and the in-flight instruction has completed ``memops``
   memory operations — chunks may start and end inside ``rep_*``
   instructions. A trap outcome inside a chunk is a divergence.
3. *Boundary*: commit withheld stores, keeping the youngest ``rsw``
   (TSO visibility); if the chunk ended at a kernel entry, consume the
   thread's next input event — injecting the syscall return value and
   retiring the trapped instruction into the *next* chunk, creating spawned
   threads, restoring signal contexts on sigreturn, finishing on exit.

Output files are reconstructed by emulating only the fd-bookkeeping of
``open``/``close``/``write`` against replayed memory; everything else is
pure injection.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from ..capo.events import (
    EV_EXIT,
    EV_NONDET,
    EV_SIGNAL,
    EV_SIGRETURN,
    EV_SYSCALL,
    InputEvent,
)
from ..capo.recording import Recording
from ..errors import ReplayDivergenceError
from ..isa.operands import Reg
from ..isa.registers import RAX, RCX
from ..kernel.syscalls import (
    SYS_CLOSE,
    SYS_OPEN,
    SYS_SIGACTION,
    SYS_SPAWN,
    SYS_WRITE,
)
from ..kernel.vfs import STDOUT_FD, STDOUT_NAME
from ..machine.core import Engine, OUTCOME_OK
from ..machine.memory import PhysicalMemory
from ..mrr.chunk import ChunkEntry, Reason
from ..telemetry import NULL_TELEMETRY, Telemetry
from .pending import ReplayPort, WithheldStores
from .schedule import build_schedule, validate_schedule

MASK32 = 0xFFFFFFFF
MAIN_RTHREAD = 1


@dataclass
class ReplayStats:
    chunks: int = 0
    units: int = 0
    events: int = 0
    signals: int = 0
    copies_applied: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ReplayResult:
    final_memory_digest: str
    outputs: dict[str, bytes]
    exit_codes: dict[int, int]
    stats: ReplayStats
    # Digest of the sphere's memory region, when the recording was made
    # with background processes (metadata "sphere_region").
    region_digest: str | None = None

    def digest(self) -> str:
        """One digest over everything replay-observable — memory, outputs,
        exit codes, statistics. Two replays of the same recording are
        equivalent iff their digests match, which is how serial and
        parallel replay are compared."""
        acc = hashlib.sha256()
        acc.update(self.final_memory_digest.encode())
        for name in sorted(self.outputs):
            acc.update(name.encode() + b"\x00" + self.outputs[name] + b"\x00")
        for rthread in sorted(self.exit_codes):
            acc.update(f"{rthread}={self.exit_codes[rthread]};".encode())
        acc.update(repr(sorted(self.stats.as_dict().items())).encode())
        if self.region_digest is not None:
            acc.update(self.region_digest.encode())
        return acc.hexdigest()


class _ReplayThread:
    """Per-R-thread replay context."""

    def __init__(self, rthread: int, engine: Engine,
                 withheld: WithheldStores, port: ReplayPort,
                 events: deque[InputEvent]):
        self.rthread = rthread
        self.engine = engine
        self.withheld = withheld
        self.port = port
        self.events = events
        self.completed_chunks = 0
        self.boundary_retired = 0
        self.pending_copies: tuple[tuple[int, bytes], ...] = ()
        # Deferred kernel reads (write() payload capture, open() path
        # resolution) that must observe memory at the start of the next
        # chunk — the position the recording's coherent copy_from_user
        # ordered them at.
        self.pending_actions: list[tuple] = []
        self.sig_saved: list = []
        self.sig_handlers: dict[int, int] = {}
        self.finished = False

    def next_event(self) -> InputEvent:
        if not self.events:
            raise ReplayDivergenceError("input log exhausted",
                                        rthread=self.rthread)
        return self.events.popleft()

    def peek_event(self) -> InputEvent | None:
        return self.events[0] if self.events else None


class Replayer:
    """Drives a full replay of one recording."""

    def __init__(self, recording: Recording,
                 telemetry: Telemetry | None = None,
                 schedule: list | None = None):
        self.recording = recording
        self.config = recording.config
        self.telemetry = telemetry or NULL_TELEMETRY
        self.memory = PhysicalMemory(self.config.machine.memory_bytes)
        self.memory.load_blob(recording.program.data_base,
                              recording.program.data)
        # ``schedule`` lets a caller supply a pre-merged global order —
        # e.g. merge_core_streams over per-core logs — instead of sorting
        # the shared chunk log; it must contain the same chunks and is
        # validated identically.
        if schedule is None:
            schedule = build_schedule(recording.chunks)
        self.schedule = list(schedule)
        validate_schedule(self.schedule)
        self._events_by_thread: dict[int, deque[InputEvent]] = {}
        for event in recording.events:
            self._events_by_thread.setdefault(event.rthread,
                                              deque()).append(event)
        self.threads: dict[int, _ReplayThread] = {}
        # Optional (rthread, engine, port) -> port hook. Observability
        # layers (the forensics shadow detector) set it so threads spawned
        # mid-replay get instrumented ports; it must return an object with
        # the ReplayPort interface and must not change replay semantics.
        self.port_wrapper = None
        self.stats = ReplayStats()
        # (kernel seq, file name, payload) — assembled per file in kernel
        # order at finalize, since chunk-schedule order and kernel order
        # may legally differ for writes of unrelated threads.
        self._write_segments: list[tuple[int, str, bytes]] = []
        self.exit_codes: dict[int, int] = {}
        self._fd_names: dict[int, str] = {STDOUT_FD: STDOUT_NAME}
        self._next_index = 0
        if self.telemetry.enabled:
            # Replay trace time is units executed so far (there is no
            # machine clock on the replay side).
            if self.telemetry.tracer.clock is None:
                self.telemetry.tracer.clock = lambda: self.stats.units
            metrics = self.telemetry.metrics
            self._tm_chunks = metrics.counter("replay.chunks")
            metrics.gauge("replay.schedule_chunks").set(len(self.schedule))
        main_sp = recording.metadata.get(
            "main_sp", self.config.machine.memory_bytes - 16)
        self._create_thread(MAIN_RTHREAD, pc=recording.program.entry,
                            sp=main_sp, arg=0)

    # -- thread management ---------------------------------------------------

    def _create_thread(self, rthread: int, pc: int, sp: int, arg: int) -> None:
        if rthread in self.threads:
            raise ReplayDivergenceError("duplicate thread creation",
                                        rthread=rthread)
        engine = Engine(self.recording.program)
        engine.pc = pc
        engine.regs[3] = arg & MASK32   # rdi
        engine.regs[15] = sp & MASK32   # sp
        withheld = WithheldStores(self.memory)
        port = ReplayPort(self.memory, withheld, telemetry=self.telemetry)
        if self.port_wrapper is not None:
            port = self.port_wrapper(rthread, engine, port)
        # setdefault, not get: the thread context and the event map must
        # share one deque, so events appended *after* thread creation (the
        # flight ring feeds the shadow replayer incrementally) still reach
        # the context.
        events = self._events_by_thread.setdefault(rthread, deque())
        self.threads[rthread] = _ReplayThread(rthread, engine, withheld,
                                              port, events)

    # -- main loop -------------------------------------------------------------

    @property
    def position(self) -> int:
        """Index of the next chunk to replay (= chunks replayed so far)."""
        return self._next_index

    @property
    def finished(self) -> bool:
        return self._next_index >= len(self.schedule)

    def step_chunk(self) -> ChunkEntry | None:
        """Replay exactly one chunk; returns it, or None at end of log.

        This is the incremental interface the inspector/debugger builds on;
        :meth:`run` is equivalent to stepping to the end.
        """
        if self.finished:
            return None
        chunk = self.schedule[self._next_index]
        self._next_index += 1
        self._replay_chunk(chunk)
        return chunk

    def run(self) -> ReplayResult:
        while self.step_chunk() is not None:
            pass
        return self.result()

    def result(self) -> ReplayResult:
        """Finalize (consistency checks) and assemble the result."""
        self._finalize()
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.gauge("replay.units").set(self.stats.units)
            metrics.gauge("replay.events_applied").set(self.stats.events)
            metrics.gauge("replay.signals").set(self.stats.signals)
        region_digest = None
        region = self.recording.metadata.get("sphere_region")
        if region is not None:
            region_digest = self.memory.digest_range(region[0], region[1])
        return ReplayResult(
            final_memory_digest=self.memory.digest(),
            outputs=self.outputs_so_far(),
            exit_codes=dict(self.exit_codes),
            stats=self.stats,
            region_digest=region_digest,
        )

    def outputs_so_far(self) -> dict[str, bytes]:
        """Output files reconstructed from the writes replayed so far."""
        outputs: dict[str, bytearray] = {}
        for _seq, name, data in sorted(self._write_segments):
            outputs.setdefault(name, bytearray()).extend(data)
        return {name: bytes(data) for name, data in outputs.items()}

    def _replay_chunk(self, chunk: ChunkEntry) -> None:
        ctx = self.threads.get(chunk.rthread)
        if ctx is None:
            raise ReplayDivergenceError(
                "chunk for a thread that does not exist yet (ordering bug)",
                rthread=chunk.rthread)
        if ctx.finished:
            raise ReplayDivergenceError("chunk after thread exit",
                                        rthread=chunk.rthread)
        telemetry = self.telemetry
        if not telemetry.enabled:
            self._pre_chunk(ctx)
            self._execute_chunk(ctx, chunk)
            self._boundary(ctx, chunk)
            self.stats.chunks += 1
            return
        start = telemetry.tracer.now()
        try:
            self._pre_chunk(ctx)
            self._execute_chunk(ctx, chunk)
            self._boundary(ctx, chunk)
        except ReplayDivergenceError as exc:
            telemetry.tracer.instant(
                "replay.divergence", cat="replay", tid=chunk.rthread,
                args={"chunk_index": self._next_index - 1,
                      "detail": str(exc)})
            raise
        self.stats.chunks += 1
        self._tm_chunks.inc()
        telemetry.tracer.complete(
            f"replay:{chunk.reason}", start, cat="replay",
            tid=chunk.rthread,
            args={"icount": chunk.icount, "rsw": chunk.rsw,
                  "timestamp": chunk.timestamp})
        if self.stats.chunks % telemetry.sampling == 0:
            telemetry.tracer.counter(
                "replay.progress",
                {"chunks": self.stats.chunks,
                 "events": self.stats.events}, cat="replay")

    def _pre_chunk(self, ctx: _ReplayThread) -> None:
        if ctx.pending_actions:
            for action in ctx.pending_actions:
                self._run_action(action)
            ctx.pending_actions = []
        if ctx.pending_copies:
            for addr, data in ctx.pending_copies:
                self.memory.write(addr, data)
                self.stats.copies_applied += 1
            ctx.pending_copies = ()
        self._deliver_signals(ctx)

    def _run_action(self, action: tuple) -> None:
        kind = action[0]
        if kind == "open":
            _kind, fd, path_addr = action
            self._fd_names[fd] = self._read_cstring(path_addr)
        elif kind == "write":
            _kind, seq, fd, buf, written = action
            name = self._fd_names.get(fd)
            if name is not None:
                data = self.memory.read(buf, written)
                self._write_segments.append((seq, name, data))

    def _deliver_signals(self, ctx: _ReplayThread) -> None:
        while True:
            event = ctx.peek_event()
            if (event is None or event.kind != EV_SIGNAL
                    or event.chunk_seq != ctx.completed_chunks):
                return
            ctx.next_event()
            engine = ctx.engine
            ctx.sig_saved.append(engine.save_context())
            handler = ctx.sig_handlers.get(event.value)
            if handler is None:
                raise ReplayDivergenceError(
                    f"signal {event.value} delivered with no recorded handler",
                    rthread=ctx.rthread)
            engine.pc = handler
            engine.regs[RCX] = event.value
            engine.cur_memops = 0
            self.stats.signals += 1
            self.stats.events += 1

    def _execute_chunk(self, ctx: _ReplayThread, chunk: ChunkEntry) -> None:
        engine = ctx.engine
        target = ctx.boundary_retired + chunk.icount
        guard = 0
        # Units per chunk are unbounded by icount alone (rep_* iterations
        # do not retire), so the guard is only a runaway backstop.
        guard_limit = 1_000_000_000
        while not (engine.retired == target
                   and engine.cur_memops == chunk.memops):
            if engine.retired > target:
                raise ReplayDivergenceError(
                    f"overshot chunk: retired {engine.retired} > {target}",
                    rthread=ctx.rthread, icount=engine.retired)
            outcome = engine.step(ctx.port)
            self.stats.units += 1
            guard += 1
            if outcome != OUTCOME_OK:
                raise ReplayDivergenceError(
                    f"trap ({outcome}) inside a chunk at pc {engine.pc}",
                    rthread=ctx.rthread, icount=engine.retired)
            if guard > guard_limit:
                raise ReplayDivergenceError(
                    "chunk stop condition unreachable",
                    rthread=ctx.rthread, icount=engine.retired)
        if (self.config.mrr.log_load_hash and chunk.load_hash is not None
                and engine.load_hash != chunk.load_hash):
            raise ReplayDivergenceError(
                f"load-value hash mismatch: {engine.load_hash:#x} != "
                f"{chunk.load_hash:#x}", rthread=ctx.rthread,
                icount=engine.retired)

    def _boundary(self, ctx: _ReplayThread, chunk: ChunkEntry) -> None:
        engine = ctx.engine
        ctx.boundary_retired = engine.retired
        ctx.withheld.commit_keep_last(chunk.rsw)
        engine.load_hash = 0
        ctx.completed_chunks += 1
        if chunk.reason not in Reason.KERNEL_ENTRY:
            return
        if chunk.reason == Reason.PREEMPT:
            return
        event = ctx.next_event()
        self.stats.events += 1
        if event.chunk_seq != ctx.completed_chunks:
            raise ReplayDivergenceError(
                f"event chunk_seq {event.chunk_seq} != boundary "
                f"{ctx.completed_chunks}", rthread=ctx.rthread)
        if chunk.reason == Reason.NONDET:
            self._apply_nondet(ctx, event)
        elif chunk.reason == Reason.EXIT:
            self._apply_exit(ctx, event)
        else:
            self._apply_syscall_like(ctx, event)

    # -- event application -----------------------------------------------------

    def _apply_nondet(self, ctx: _ReplayThread, event: InputEvent) -> None:
        if event.kind != EV_NONDET:
            raise ReplayDivergenceError(
                f"expected nondet event, got {event.kind}", rthread=ctx.rthread)
        engine = ctx.engine
        instr = engine.current_instr()
        if instr.mnemonic != event.nondet_kind:
            raise ReplayDivergenceError(
                f"nondet kind mismatch: log {event.nondet_kind}, "
                f"pc has {instr.mnemonic}", rthread=ctx.rthread)
        engine.complete_trap(instr.ops[0], event.value)

    def _apply_exit(self, ctx: _ReplayThread, event: InputEvent) -> None:
        if event.kind != EV_EXIT:
            raise ReplayDivergenceError(
                f"expected exit event, got {event.kind}", rthread=ctx.rthread)
        if ctx.pending_copies:
            for addr, data in ctx.pending_copies:
                self.memory.write(addr, data)
                self.stats.copies_applied += 1
            ctx.pending_copies = ()
        ctx.withheld.commit_all()
        ctx.finished = True
        self.exit_codes[ctx.rthread] = event.value

    def _apply_syscall_like(self, ctx: _ReplayThread, event: InputEvent) -> None:
        engine = ctx.engine
        if event.kind == EV_SIGRETURN:
            if not ctx.sig_saved:
                raise ReplayDivergenceError("sigreturn with empty context stack",
                                            rthread=ctx.rthread)
            engine.restore_context(ctx.sig_saved.pop())
            return
        if event.kind != EV_SYSCALL:
            raise ReplayDivergenceError(
                f"expected syscall event, got {event.kind}", rthread=ctx.rthread)
        args = (engine.regs[1], engine.regs[2], engine.regs[3], engine.regs[4])
        self._emulate_side_effects(ctx, event, args)
        engine.complete_trap(Reg(RAX), event.value)
        ctx.pending_copies = event.copies

    def _emulate_side_effects(self, ctx: _ReplayThread, event: InputEvent,
                              args: tuple[int, int, int, int]) -> None:
        sysno = event.sysno
        if sysno == SYS_SPAWN:
            entry, sp, arg = args[0], args[1], args[2]
            self._create_thread(event.value, pc=entry, sp=sp, arg=arg)
        elif sysno == SYS_WRITE:
            fd, buf, length = args[0], args[1], args[2]
            written = event.value
            if written <= length:
                ctx.pending_actions.append(
                    ("write", event.seq, fd, buf, written))
        elif sysno == SYS_OPEN:
            ctx.pending_actions.append(("open", event.value, args[0]))
        elif sysno == SYS_CLOSE:
            self._fd_names.pop(args[0], None)
        elif sysno == SYS_SIGACTION:
            signo, handler = args[0], args[1]
            ctx.sig_handlers[signo] = handler

    def _read_cstring(self, addr: int, limit: int = 256) -> str:
        raw = bytearray()
        for offset in range(limit):
            byte = self.memory.read_byte(addr + offset)
            if byte == 0:
                break
            raw.append(byte)
        return raw.decode("latin-1")

    # -- completion ------------------------------------------------------------------

    def _finalize(self) -> None:
        for ctx in self.threads.values():
            if not ctx.finished:
                raise ReplayDivergenceError("thread never exited",
                                            rthread=ctx.rthread)
            if ctx.events:
                raise ReplayDivergenceError(
                    f"{len(ctx.events)} unconsumed input events",
                    rthread=ctx.rthread)
            if len(ctx.withheld):
                raise ReplayDivergenceError(
                    f"{len(ctx.withheld)} uncommitted stores at exit",
                    rthread=ctx.rthread)
