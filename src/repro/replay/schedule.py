"""Chunk schedule construction and validation.

Replay executes chunks in total (timestamp, rthread) order. Equal-timestamp
chunks are mutually unordered by construction (any true conflict forces a
strict timestamp inequality), so the rthread tie-break is safe; validation
checks the per-thread invariants the recorder guarantees.

Two equivalent schedule sources: :func:`build_schedule` sorts the single
shared chunk log (the v1 path), and :func:`merge_core_streams` k-way-merges
the per-core order streams — each strictly timestamp-monotonic, so the
merge is O(n log k) and needs no global sort. The property suite pins that
both produce the identical schedule.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from ..errors import ReplayDivergenceError
from ..mrr.chunk import ChunkEntry, Reason


def build_schedule(chunks: list[ChunkEntry]) -> list[ChunkEntry]:
    """Global replay order: sort by (timestamp, rthread), stably."""
    return sorted(chunks, key=lambda chunk: chunk.sort_key)


def merge_core_streams(streams: Sequence[Iterable]) -> list:
    """Merge per-core chunk (or order-record) streams into the global
    schedule.

    Each stream must be strictly timestamp-monotonic — which per-core
    emission order guarantees, because the fabric's order clock is global
    — so a k-way heap merge on ``sort_key`` reconstructs exactly the
    (timestamp, rthread)-sorted schedule ``build_schedule`` derives from
    the shared log. A non-monotonic stream means a corrupt per-core log
    and raises.
    """
    checked: list[list] = []
    for core_id, stream in enumerate(streams):
        items = list(stream)
        for previous, item in zip(items, items[1:]):
            if item.timestamp <= previous.timestamp:
                raise ReplayDivergenceError(
                    f"core {core_id} order stream not monotonic: "
                    f"{previous.timestamp} -> {item.timestamp}",
                    rthread=item.rthread)
        checked.append(items)
    return list(heapq.merge(*checked, key=lambda item: item.sort_key))


def validate_schedule(chunks: list[ChunkEntry]) -> None:
    """Check recorder invariants; raises on violation.

    - per-thread timestamps strictly increase;
    - kernel-entry chunks have RSW 0 (the kernel drains on entry);
    - a thread's chunk stream ends with an EXIT chunk and contains no
      EXIT chunk elsewhere.
    """
    last_ts: dict[int, int] = {}
    last_reason: dict[int, str] = {}
    exited: set[int] = set()
    for chunk in chunks:
        rthread = chunk.rthread
        if rthread in exited:
            raise ReplayDivergenceError(
                "chunk after EXIT", rthread=rthread)
        previous = last_ts.get(rthread)
        if previous is not None and chunk.timestamp <= previous:
            raise ReplayDivergenceError(
                f"non-monotonic timestamps {previous} -> {chunk.timestamp}",
                rthread=rthread)
        last_ts[rthread] = chunk.timestamp
        last_reason[rthread] = chunk.reason
        if chunk.reason in Reason.KERNEL_ENTRY and chunk.rsw != 0:
            raise ReplayDivergenceError(
                f"kernel-entry chunk with RSW {chunk.rsw}", rthread=rthread)
        if chunk.reason == Reason.EXIT:
            exited.add(rthread)
    for rthread, reason in last_reason.items():
        if reason != Reason.EXIT:
            raise ReplayDivergenceError(
                f"chunk stream ends with {reason!r}, not exit", rthread=rthread)
