"""Chunk schedule construction and validation.

Replay executes chunks in total (timestamp, rthread) order. Equal-timestamp
chunks are mutually unordered by construction (any true conflict forces a
strict timestamp inequality), so the rthread tie-break is safe; validation
checks the per-thread invariants the recorder guarantees.
"""

from __future__ import annotations

from ..errors import ReplayDivergenceError
from ..mrr.chunk import ChunkEntry, Reason


def build_schedule(chunks: list[ChunkEntry]) -> list[ChunkEntry]:
    """Global replay order: sort by (timestamp, rthread), stably."""
    return sorted(chunks, key=lambda chunk: chunk.sort_key)


def validate_schedule(chunks: list[ChunkEntry]) -> None:
    """Check recorder invariants; raises on violation.

    - per-thread timestamps strictly increase;
    - kernel-entry chunks have RSW 0 (the kernel drains on entry);
    - a thread's chunk stream ends with an EXIT chunk and contains no
      EXIT chunk elsewhere.
    """
    last_ts: dict[int, int] = {}
    last_reason: dict[int, str] = {}
    exited: set[int] = set()
    for chunk in chunks:
        rthread = chunk.rthread
        if rthread in exited:
            raise ReplayDivergenceError(
                "chunk after EXIT", rthread=rthread)
        previous = last_ts.get(rthread)
        if previous is not None and chunk.timestamp <= previous:
            raise ReplayDivergenceError(
                f"non-monotonic timestamps {previous} -> {chunk.timestamp}",
                rthread=rthread)
        last_ts[rthread] = chunk.timestamp
        last_reason[rthread] = chunk.reason
        if chunk.reason in Reason.KERNEL_ENTRY and chunk.rsw != 0:
            raise ReplayDivergenceError(
                f"kernel-entry chunk with RSW {chunk.rsw}", rthread=rthread)
        if chunk.reason == Reason.EXIT:
            exited.add(rthread)
    for rthread, reason in last_reason.items():
        if reason != Reason.EXIT:
            raise ReplayDivergenceError(
                f"chunk stream ends with {reason!r}, not exit", rthread=rthread)
