"""The Memory Race Recorder (MRR): QuickRec's per-core recording hardware.

One recorder per core. It maintains read/write Bloom-filter signatures over
the cache-line addresses the current chunk touched, snoops every bus
transaction for conflicts, assigns Lamport timestamps to chunks, and emits
packed 128-bit chunk log entries into the chunk buffer (CBUF).

Chunk entry fields (see :mod:`repro.mrr.logfmt`): R-thread id, Lamport
timestamp, instruction count, sub-instruction memory-operation count (for
chunks ending inside a ``rep_*`` instruction), the reordered-store-window
count (RSW — stores still in the store buffer at termination, deferred by
the replayer), and the termination reason.
"""

from .hashing import H3Hasher
from .signature import BloomSignature
from .chunk import ChunkEntry, Reason
from .logfmt import encode_chunks, decode_chunks
from .recorder import MemoryRaceRecorder
from .compression import compress_chunks, decompress_chunks, compressed_size

__all__ = [
    "H3Hasher",
    "BloomSignature",
    "ChunkEntry",
    "Reason",
    "encode_chunks",
    "decode_chunks",
    "MemoryRaceRecorder",
    "compress_chunks",
    "decompress_chunks",
    "compressed_size",
]
