"""The per-core Memory Race Recorder.

Responsibilities (matching the prototype's MRR block):

- accumulate cache-line addresses into read/write Bloom signatures
  (loads and atomics at execution time; plain stores at *drain* time,
  which is what makes the RSW accounting correct under TSO);
- snoop bus transactions and terminate the current chunk when a remote
  request hits the signatures — guaranteeing that no two conflicting
  accesses ever inhabit a pair of *open* chunks;
- timestamp each chunk from the machine's globally synchronized clock
  (the prototype reads the invariant TSC at termination). Because the
  clock is strictly increasing across cores, timestamps order chunks by
  real termination time: a dependence on a *closed* chunk is ordered for
  free, and a dependence on an *open* chunk forces it closed first via
  the signature hit — so replaying in timestamp order respects every
  cross-thread dependence;
- terminate chunks on instruction-count cap, signature saturation, and on
  every kernel entry (driven by the Replay Sphere Manager);
- emit packed chunk entries to a sink (the CBUF).

The recorder never influences execution — it observes, counts cycles, and
logs. That invariant is what lets the overhead experiments compare modes
under identical interleavings.
"""

from __future__ import annotations

from typing import Callable

from ..config import MRRConfig, TsoMode
from ..errors import RecordingError
from .chunk import ChunkEntry, Reason
from .signature import BloomSignature


class MemoryRaceRecorder:
    """MRR hardware state for one core."""

    def __init__(self, config: MRRConfig, core,
                 sink: Callable[[ChunkEntry], None]):
        self.config = config
        self.core = core
        self.sink = sink
        self.read_sig = BloomSignature(config.signature_bits, config.signature_hashes)
        self.write_sig = BloomSignature(config.signature_bits, config.signature_hashes)
        self.rthread: int | None = None
        self._icnt_start = 0
        # Diagnostics for the evaluation figures.
        self.chunks_logged = 0
        self.conflicts_caused = 0

    @property
    def active(self) -> bool:
        return self.rthread is not None

    # -- thread virtualization (driven by the RSM) --------------------------

    def set_thread(self, rthread: int) -> None:
        """Begin recording ``rthread`` on this core."""
        if self.rthread is not None:
            raise RecordingError(
                f"recorder busy with rthread {self.rthread}; terminate first")
        self.rthread = rthread
        self._begin_chunk()

    def clear_thread(self) -> None:
        """Stop recording on this core (context switch away)."""
        self.rthread = None
        self.read_sig.clear()
        self.write_sig.clear()

    def _begin_chunk(self) -> None:
        self.read_sig.clear()
        self.write_sig.clear()
        engine = self.core.engine
        self._icnt_start = engine.retired
        engine.load_hash = 0

    # -- signature insertion hooks ------------------------------------------

    def on_load(self, line: int) -> None:
        if self.rthread is not None:
            self.read_sig.insert(line)

    def on_store_drain(self, line: int) -> None:
        if self.rthread is not None:
            self.write_sig.insert(line)

    def on_atomic_read(self, line: int) -> None:
        if self.rthread is not None:
            self.read_sig.insert(line)

    def on_atomic_write(self, line: int) -> None:
        if self.rthread is not None:
            self.write_sig.insert(line)

    def on_copy_write(self, line: int) -> None:
        """A kernel copy-to-user performed on behalf of this thread; the
        data becomes part of the current chunk's write set."""
        if self.rthread is not None:
            self.write_sig.insert(line)

    def on_copy_read(self, line: int) -> None:
        """A kernel copy-from-user on behalf of this thread (write()
        payloads, path strings); joins the current chunk's read set."""
        if self.rthread is not None:
            self.read_sig.insert(line)

    # -- conflict detection ----------------------------------------------------

    def snoop(self, line: int, is_write: bool) -> int | None:
        """Check a remote transaction; terminate and return the chunk's
        timestamp on a hit."""
        if self.rthread is None:
            return None
        if is_write:
            if self.write_sig.test(line):
                return self.terminate(Reason.WAW)
            if self.read_sig.test(line):
                return self.terminate(Reason.WAR)
            return None
        if self.write_sig.test(line):
            return self.terminate(Reason.RAW)
        return None

    def observe_victims(self, victim_timestamps: list[int]) -> None:
        """This core's transaction terminated remote chunks (diagnostics
        only: ordering is carried by the global timestamp clock)."""
        self.conflicts_caused += len(victim_timestamps)

    # -- self-initiated terminations -----------------------------------------

    def after_unit(self) -> None:
        """Post-unit checks: chunk size cap and signature saturation."""
        if self.rthread is None:
            return
        if self.core.engine.retired - self._icnt_start >= self.config.max_chunk_instructions:
            self.terminate(Reason.SIZE)
            return
        threshold = self.config.saturation_threshold
        if threshold < 1.0 and (self.read_sig.saturation >= threshold
                                or self.write_sig.saturation >= threshold):
            self.terminate(Reason.SATURATION)

    # -- termination -----------------------------------------------------------

    def terminate(self, reason: str) -> int:
        """Close the current chunk, emit its entry, start the next one.

        Returns the chunk's timestamp.
        """
        if self.rthread is None:
            raise RecordingError("terminate with no active rthread")
        machine = self.core.machine
        if (self.config.tso_mode == TsoMode.DRAIN
                and not machine.in_bus_transaction):
            # Ablation A3: stall termination until the store buffer is
            # empty (the drains insert into the *current*, closing chunk).
            # Draining is only legal OUTSIDE a bus transaction: a victim
            # terminated by a snoop sits inside the requester's
            # transaction, and draining there would issue nested
            # transactions that break the outer one's atomicity — besides
            # creating ordering cycles between simultaneously closing
            # chunks. Snoop-cut chunks therefore fall back to RSW logging,
            # which is precisely the implementability argument for the
            # paper's RSW design.
            self.core.drain_all()
        # Timestamp taken AFTER the drain: chunks the drain terminated
        # elsewhere must be ordered before this one (their reads preceded
        # this chunk's store visibility).
        timestamp = machine.next_chunk_timestamp()
        engine = self.core.engine
        entry = ChunkEntry(
            rthread=self.rthread,
            timestamp=timestamp,
            icount=engine.retired - self._icnt_start,
            memops=engine.cur_memops,
            rsw=len(self.core.store_buffer),
            reason=reason,
            load_hash=engine.load_hash if self.config.log_load_hash else None,
        )
        self.sink(entry)
        self.chunks_logged += 1
        self._begin_chunk()
        return timestamp
