"""The per-core Memory Race Recorder.

Responsibilities (matching the prototype's MRR block):

- accumulate cache-line addresses into read/write Bloom signatures
  (loads and atomics at execution time; plain stores at *drain* time,
  which is what makes the RSW accounting correct under TSO);
- snoop bus transactions and terminate the current chunk when a remote
  request hits the signatures — guaranteeing that no two conflicting
  accesses ever inhabit a pair of *open* chunks;
- timestamp each chunk from the fabric's globally synchronized order
  clock (the prototype reads the invariant TSC at termination), and
  append a matching record to this core's own order log. Because the
  clock is strictly increasing across cores, timestamps order chunks by
  real termination time: a dependence on a *closed* chunk is ordered for
  free, and a dependence on an *open* chunk forces it closed first via
  the signature hit — so replaying in timestamp order respects every
  cross-thread dependence;
- terminate chunks on instruction-count cap, signature saturation, and on
  every kernel entry (driven by the Replay Sphere Manager);
- emit packed chunk entries to a sink (the CBUF).

The recorder never influences execution — it observes, counts cycles, and
logs. That invariant is what lets the overhead experiments compare modes
under identical interleavings.
"""

from __future__ import annotations

from typing import Callable

from ..config import MRRConfig, TsoMode
from ..errors import RecordingError
from ..telemetry import NULL_TELEMETRY, Telemetry
from .chunk import ChunkEntry, Reason
from .orderlog import CoreOrderLog
from .signature import BloomSignature


class MemoryRaceRecorder:
    """MRR hardware state for one core."""

    def __init__(self, config: MRRConfig, core,
                 sink: Callable[[ChunkEntry], None],
                 telemetry: Telemetry | None = None):
        self.config = config
        self.core = core
        self.sink = sink
        self.read_sig = BloomSignature(config.signature_bits, config.signature_hashes)
        self.write_sig = BloomSignature(config.signature_bits, config.signature_hashes)
        self.rthread: int | None = None
        self._icnt_start = 0
        # retired-count at which the size cap fires; kept in step with
        # _icnt_start so the machine's per-unit gate is one compare.
        self._icnt_limit = config.max_chunk_instructions
        # Diagnostics for the evaluation figures.
        self.chunks_logged = 0
        self.conflicts_caused = 0
        # This core's own order stream: one record per terminated chunk,
        # with predecessor timestamps from victim notifications. Purely
        # additive metadata — the shared chunk log is unchanged.
        self.order_log = CoreOrderLog(core.core_id)
        self.telemetry = telemetry or NULL_TELEMETRY
        # Hot-path hoists: telemetry enablement and the termination
        # thresholds are fixed for the recorder's lifetime, so the per-unit
        # and per-access paths read plain attributes instead of chasing
        # config/telemetry objects.
        self._tm_on = self.telemetry.enabled
        self._drain_mode = config.tso_mode == TsoMode.DRAIN
        self._max_chunk = config.max_chunk_instructions
        self._sat_threshold = config.saturation_threshold
        self._sat_enabled = config.saturation_threshold < 1.0
        self._sig_bits = config.signature_bits
        # Saturation rewritten as an integer popcount threshold: the
        # smallest bits_set for which ``bits_set / bits >= threshold``,
        # found by evaluating that exact float predicate once per count —
        # so the per-unit integer compare decides identically to the float
        # division it replaces (sentinel bits+1 when unreachable).
        bits = config.signature_bits
        threshold = config.saturation_threshold
        n = 0
        while n <= bits and n / bits < threshold:
            n += 1
        self._sat_min_bits = n
        self._chunk_start_ts = 0
        # Exact line sets shadowing the Bloom signatures, maintained only
        # when telemetry is enabled: a snoop that hits the signature but
        # misses the exact set is a measured (not estimated) Bloom false
        # positive. Observation only — the chunk still terminates.
        self._exact_reads: set[int] = set()
        self._exact_writes: set[int] = set()
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            self._tm_chunks = metrics.counter("mrr.chunks_total")
            self._tm_snoop_cuts = metrics.counter("mrr.snoop_terminations")
            self._tm_bloom_fp = metrics.counter("mrr.bloom_false_positives")
            self._tm_chunk_hist = metrics.histogram("mrr.chunk_instructions")
            self._tm_rsw_hist = metrics.histogram("mrr.chunk_rsw")
            self._tm_occupancy = metrics.histogram("mrr.signature_occupancy_pct")

    @property
    def active(self) -> bool:
        return self.rthread is not None

    # -- thread virtualization (driven by the RSM) --------------------------

    def set_thread(self, rthread: int) -> None:
        """Begin recording ``rthread`` on this core."""
        if self.rthread is not None:
            raise RecordingError(
                f"recorder busy with rthread {self.rthread}; terminate first")
        self.rthread = rthread
        self._begin_chunk()

    def clear_thread(self) -> None:
        """Stop recording on this core (context switch away)."""
        self.rthread = None
        self.read_sig.clear()
        self.write_sig.clear()

    def _begin_chunk(self) -> None:
        # Inline of BloomSignature.clear() for both filters: this runs at
        # every chunk boundary, which conflict-heavy workloads hit every
        # few units.
        read_sig = self.read_sig
        read_sig._word = 0
        read_sig.bits_set = 0
        read_sig.inserts = 0
        write_sig = self.write_sig
        write_sig._word = 0
        write_sig.bits_set = 0
        write_sig.inserts = 0
        engine = self.core.engine
        self._icnt_start = engine.retired
        self._icnt_limit = engine.retired + self._max_chunk
        engine.load_hash = 0
        if self._tm_on:
            self._exact_reads.clear()
            self._exact_writes.clear()
            self._chunk_start_ts = self.telemetry.tracer.now()

    # -- signature insertion hooks ------------------------------------------

    def on_load(self, line: int) -> None:
        if self.rthread is not None:
            self.read_sig.insert(line)
            if self._tm_on:
                self._exact_reads.add(line)

    def on_store_drain(self, line: int) -> None:
        if self.rthread is not None:
            self.write_sig.insert(line)
            if self._tm_on:
                self._exact_writes.add(line)

    def on_atomic_read(self, line: int) -> None:
        if self.rthread is not None:
            self.read_sig.insert(line)
            if self._tm_on:
                self._exact_reads.add(line)

    def on_atomic_write(self, line: int) -> None:
        if self.rthread is not None:
            self.write_sig.insert(line)
            if self._tm_on:
                self._exact_writes.add(line)

    def on_copy_write(self, line: int) -> None:
        """A kernel copy-to-user performed on behalf of this thread; the
        data becomes part of the current chunk's write set."""
        if self.rthread is not None:
            self.write_sig.insert(line)
            if self._tm_on:
                self._exact_writes.add(line)

    def on_copy_read(self, line: int) -> None:
        """A kernel copy-from-user on behalf of this thread (write()
        payloads, path strings); joins the current chunk's read set."""
        if self.rthread is not None:
            self.read_sig.insert(line)
            if self._tm_on:
                self._exact_reads.add(line)

    def absorb_signatures(self, read_sig: BloomSignature,
                          write_sig: BloomSignature) -> None:
        """Merge stashed signature state into the live filters.

        The RSM's virtualization path stashes a thread's signatures when it
        is descheduled and folds them back in here on redispatch. Merging is
        purely additive (strictly more conservative conflict detection), so
        this can never miss a race. Chunks always terminate on kernel entry
        before a thread is descheduled, so today the stash is provably empty
        and the merge is a bit-identical no-op; the hook keeps the chunk
        protocol honest if that sequencing ever changes. Absorbed lines are
        Bloom-only (no exact shadow entry), so telemetry may classify a
        snoop hit on an absorbed line as a false positive.
        """
        if self.rthread is None:
            raise RecordingError("absorb_signatures with no active rthread")
        self.read_sig.merge(read_sig)
        self.write_sig.merge(write_sig)

    # -- conflict detection ----------------------------------------------------

    def snoop(self, line: int, is_write: bool) -> int | None:
        """Check a remote transaction; terminate and return the chunk's
        timestamp on a hit."""
        if self.rthread is None:
            return None
        # The filter-word guards skip the test() calls entirely when a
        # signature is empty (always true just after a chunk boundary).
        write_sig = self.write_sig
        if is_write:
            if write_sig._word and write_sig.test(line):
                self._note_snoop_cut(line, self._exact_writes, Reason.WAW)
                return self.terminate(Reason.WAW)
            read_sig = self.read_sig
            if read_sig._word and read_sig.test(line):
                self._note_snoop_cut(line, self._exact_reads, Reason.WAR)
                return self.terminate(Reason.WAR)
            return None
        if write_sig._word and write_sig.test(line):
            self._note_snoop_cut(line, self._exact_writes, Reason.RAW)
            return self.terminate(Reason.RAW)
        return None

    def _note_snoop_cut(self, line: int, exact: set[int],
                        reason: str) -> None:
        """Telemetry for a signature hit: count it, and classify it as a
        Bloom false positive when the exact shadow set disagrees."""
        if not self._tm_on:
            return
        self._tm_snoop_cuts.inc()
        if line not in exact:
            self._tm_bloom_fp.inc()
            self.telemetry.tracer.instant(
                "mrr.bloom_fp", cat="mrr", tid=self.rthread or 0,
                args={"line": line, "reason": reason,
                      "core": self.core.core_id})

    def observe_victims(self, victim_timestamps: list[int]) -> None:
        """This core's transaction terminated remote chunks: count them,
        and raise the order log's remote high-water mark — the piggybacked
        predecessor timestamps the per-core order records carry. Ordering
        itself is still carried by the global timestamp clock."""
        self.conflicts_caused += len(victim_timestamps)
        if victim_timestamps:
            self.order_log.observe_remote(max(victim_timestamps))

    # -- self-initiated terminations -----------------------------------------

    def after_unit(self) -> None:
        """Post-unit checks: chunk size cap and signature saturation.

        Runs once per simulated unit, so it reads only hoisted attributes;
        the saturation check is the precomputed integer popcount threshold
        ``_sat_min_bits``, which decides identically to the
        ``bits_set / bits >= threshold`` float comparison it replaces.
        """
        if self.rthread is None:
            return
        if self.core.engine.retired - self._icnt_start >= self._max_chunk:
            self.terminate(Reason.SIZE)
            return
        if self._sat_enabled:
            sat_min = self._sat_min_bits
            if (self.read_sig.bits_set >= sat_min
                    or self.write_sig.bits_set >= sat_min):
                self.terminate(Reason.SATURATION)

    # -- termination -----------------------------------------------------------

    def terminate(self, reason: str) -> int:
        """Close the current chunk, emit its entry, start the next one.

        Returns the chunk's timestamp.
        """
        if self.rthread is None:
            raise RecordingError("terminate with no active rthread")
        machine = self.core.machine
        if self._drain_mode and not machine.in_bus_transaction:
            # Ablation A3: stall termination until the store buffer is
            # empty (the drains insert into the *current*, closing chunk).
            # Draining is only legal OUTSIDE a bus transaction: a victim
            # terminated by a snoop sits inside the requester's
            # transaction, and draining there would issue nested
            # transactions that break the outer one's atomicity — besides
            # creating ordering cycles between simultaneously closing
            # chunks. Snoop-cut chunks therefore fall back to RSW logging,
            # which is precisely the implementability argument for the
            # paper's RSW design.
            self.core.drain_all()
        # Timestamp taken AFTER the drain: chunks the drain terminated
        # elsewhere must be ordered before this one (their reads preceded
        # this chunk's store visibility). Inline of
        # bus.next_chunk_timestamp() — terminate is on the conflict hot
        # path and the counter bump does not merit a call. The clock lives
        # on the fabric (the serialization point terminations already
        # synchronize with), not in a machine-global counter.
        bus = machine.bus
        timestamp = bus.order_clock + 1
        bus.order_clock = timestamp
        engine = self.core.engine
        entry = ChunkEntry(
            rthread=self.rthread,
            timestamp=timestamp,
            icount=engine.retired - self._icnt_start,
            memops=engine.cur_memops,
            rsw=len(self.core.store_buffer),
            reason=reason,
            load_hash=engine.load_hash if self.config.log_load_hash else None,
        )
        if self._tm_on:
            telemetry = self.telemetry
            read_pct = 100.0 * self.read_sig.saturation
            write_pct = 100.0 * self.write_sig.saturation
            self._tm_chunks.inc()
            telemetry.metrics.counter(f"mrr.chunks.{reason}").inc()
            self._tm_chunk_hist.observe(entry.icount)
            self._tm_rsw_hist.observe(entry.rsw)
            self._tm_occupancy.observe(read_pct)
            self._tm_occupancy.observe(write_pct)
            telemetry.tracer.complete(
                f"chunk:{reason}", self._chunk_start_ts, cat="mrr",
                tid=self.rthread,
                args={"icount": entry.icount, "rsw": entry.rsw,
                      "timestamp": timestamp,
                      "read_sat_pct": round(read_pct, 2),
                      "write_sat_pct": round(write_pct, 2)})
        self.sink(entry)
        self.chunks_logged += 1
        self.order_log.append(entry.rthread, timestamp)
        self._begin_chunk()
        return timestamp
