"""Bloom-filter address signatures.

A signature summarizes the set of cache-line addresses a chunk has read (or
written). Membership tests can return false positives — which only cause
extra chunk terminations, never missed conflicts — and never false
negatives, which is the property replay soundness rests on.
"""

from __future__ import annotations

from .hashing import H3Hasher, shared_hasher


class BloomSignature:
    """A ``bits``-wide Bloom filter with ``hashes`` H3 hash functions."""

    def __init__(self, bits: int, hashes: int, hasher: H3Hasher | None = None):
        if bits & (bits - 1) or bits <= 0:
            raise ValueError("signature bits must be a power of two")
        self.bits = bits
        self.hashes = hashes
        self._hasher = hasher or shared_hasher(bits, hashes)
        self._word = 0
        self.bits_set = 0
        self.inserts = 0

    def insert(self, key: int) -> None:
        mask = self._hasher.mask(key)
        word = self._word
        merged = word | mask
        if merged != word:
            self.bits_set += (merged ^ word).bit_count()
            self._word = merged
        self.inserts += 1

    def test(self, key: int) -> bool:
        word = self._word
        if not word:
            return False
        mask = self._hasher.mask(key)
        return word & mask == mask

    def merge(self, other: BloomSignature) -> None:
        """OR another signature of identical geometry into this one.

        Used by the recorder's virtualization path: when a replay thread is
        scheduled back onto a core, signature state stashed at undispatch is
        folded into the live filters. Purely additive — merging can only add
        members (more conservative conflict detection), never drop them.
        """
        if other.bits != self.bits or other.hashes != self.hashes:
            raise ValueError(
                f"cannot merge {other.bits}x{other.hashes} signature into "
                f"{self.bits}x{self.hashes}")
        self._word |= other._word
        self.bits_set = self._word.bit_count()
        self.inserts += other.inserts

    def clear(self) -> None:
        self._word = 0
        self.bits_set = 0
        self.inserts = 0

    @property
    def empty(self) -> bool:
        return self._word == 0

    @property
    def saturation(self) -> float:
        """Fraction of filter bits set (the false-positive-rate driver)."""
        return self.bits_set / self.bits

    def false_positive_rate(self) -> float:
        """Estimated probability a random absent key tests positive."""
        return self.saturation ** self.hashes

    def __contains__(self, key: int) -> bool:
        return self.test(key)
