"""Bloom-filter address signatures.

A signature summarizes the set of cache-line addresses a chunk has read (or
written). Membership tests can return false positives — which only cause
extra chunk terminations, never missed conflicts — and never false
negatives, which is the property replay soundness rests on.
"""

from __future__ import annotations

from .hashing import H3Hasher, shared_hasher


class BloomSignature:
    """A ``bits``-wide Bloom filter with ``hashes`` H3 hash functions."""

    def __init__(self, bits: int, hashes: int, hasher: H3Hasher | None = None):
        if bits & (bits - 1) or bits <= 0:
            raise ValueError("signature bits must be a power of two")
        self.bits = bits
        self.hashes = hashes
        self._hasher = hasher or shared_hasher(bits, hashes)
        self._word = 0
        self.bits_set = 0
        self.inserts = 0

    def insert(self, key: int) -> None:
        word = self._word
        for index in self._hasher.indices(key):
            bit = 1 << index
            if not word & bit:
                word |= bit
                self.bits_set += 1
        self._word = word
        self.inserts += 1

    def test(self, key: int) -> bool:
        word = self._word
        for index in self._hasher.indices(key):
            if not word & (1 << index):
                return False
        return True

    def clear(self) -> None:
        self._word = 0
        self.bits_set = 0
        self.inserts = 0

    @property
    def empty(self) -> bool:
        return self._word == 0

    @property
    def saturation(self) -> float:
        """Fraction of filter bits set (the false-positive-rate driver)."""
        return self.bits_set / self.bits

    def false_positive_rate(self) -> float:
        """Estimated probability a random absent key tests positive."""
        return self.saturation ** self.hashes

    def __contains__(self, key: int) -> bool:
        return self.test(key)
