"""Chunk-log compression.

The packed format spends most of its bits on timestamps and instruction
counts that are strongly correlated within a thread. The compressor splits
the log into per-thread streams, delta-encodes timestamps, and varint-packs
every field; the result is optionally squeezed further with zlib. This is
the same structure-aware approach the paper credits for its small log
rates, and the F3 bench reports both raw and compressed figures.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from ..errors import LogFormatError
from .chunk import ChunkEntry, Reason

_MAGIC = b"QRCZ"


def _varint(value: int) -> bytes:
    if value < 0:
        raise LogFormatError("varint requires non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(blob: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(blob):
            raise LogFormatError("truncated varint")
        byte = blob[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def compress_chunks(entries: Sequence[ChunkEntry], use_zlib: bool = True) -> bytes:
    """Delta+varint encode per thread, then optionally deflate."""
    streams: dict[int, list[ChunkEntry]] = {}
    for entry in entries:
        streams.setdefault(entry.rthread, []).append(entry)

    body = bytearray(_varint(len(streams)))
    for rthread in sorted(streams):
        # CBUFs drain per core, so a migrating thread's entries may appear
        # out of timestamp order in the raw log; the stream itself is
        # timestamp-ordered by the recorder's invariants.
        stream = sorted(streams[rthread], key=lambda entry: entry.timestamp)
        body += _varint(rthread)
        body += _varint(len(stream))
        last_ts = 0
        for entry in stream:
            delta = entry.timestamp - last_ts
            if delta < 0:
                raise LogFormatError(
                    f"timestamps not monotone within rthread {rthread}")
            last_ts = entry.timestamp
            body += _varint(Reason.CODES[entry.reason])
            body += _varint(delta)
            body += _varint(entry.icount)
            body += _varint(entry.memops)
            body += _varint(entry.rsw)

    payload = bytes(body)
    flags = 1 if use_zlib else 0
    if use_zlib:
        payload = zlib.compress(payload, level=6)
    return _MAGIC + bytes([flags]) + payload


def decompress_chunks(blob: bytes) -> list[ChunkEntry]:
    """Invert :func:`compress_chunks`; entries return in global
    (timestamp, rthread) order."""
    if blob[:4] != _MAGIC:
        raise LogFormatError("bad compressed chunk log magic")
    if len(blob) < 5:
        raise LogFormatError("truncated compressed chunk log: missing flags")
    flags = blob[4]
    payload = blob[5:]
    if flags & 1:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise LogFormatError(
                f"corrupt compressed chunk log payload: {exc}") from exc

    entries: list[ChunkEntry] = []
    offset = 0
    num_streams, offset = _read_varint(payload, offset)
    for _ in range(num_streams):
        rthread, offset = _read_varint(payload, offset)
        count, offset = _read_varint(payload, offset)
        timestamp = 0
        for _ in range(count):
            reason_code, offset = _read_varint(payload, offset)
            delta, offset = _read_varint(payload, offset)
            icount, offset = _read_varint(payload, offset)
            memops, offset = _read_varint(payload, offset)
            rsw, offset = _read_varint(payload, offset)
            timestamp += delta
            reason = Reason.NAMES.get(reason_code)
            if reason is None:
                raise LogFormatError(f"unknown reason code {reason_code}")
            entries.append(ChunkEntry(rthread, timestamp, icount, memops,
                                      rsw, reason))
    entries.sort(key=lambda entry: entry.sort_key)
    return entries


def compressed_size(entries: Sequence[ChunkEntry], use_zlib: bool = True) -> int:
    return len(compress_chunks(entries, use_zlib=use_zlib))
