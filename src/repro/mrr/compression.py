"""Chunk-log compression.

The packed format spends most of its bits on timestamps and instruction
counts that are strongly correlated within a thread. The compressor splits
the log into per-thread streams, delta-encodes timestamps, and varint-packs
every field; the result is optionally squeezed further with zlib. This is
the same structure-aware approach the paper credits for its small log
rates, and the F3 bench reports both raw and compressed figures.

Two layouts share the ``QRCZ`` magic, negotiated by a flags bit:

- **v1** interleaves the five fields per entry within each thread stream;
- **v2** is columnar — within each thread stream every field is its own
  varint column, with ``icount``/``memops`` zigzag-delta encoded against
  the thread's previous chunk (near-monotone, so deltas are tiny and
  runs of similar bytes deflate hard).
"""

from __future__ import annotations

import zlib
from typing import Sequence

from ..errors import LogFormatError
from .chunk import ChunkEntry, Reason
from .varint import read_varint, unzigzag, write_varint, zigzag

_MAGIC = b"QRCZ"

VERSION = 1
VERSION_V2 = 2
VERSIONS = (VERSION, VERSION_V2)

_FLAG_ZLIB = 0x01
_FLAG_COLUMNAR = 0x02


def _varint(value: int) -> bytes:
    return write_varint(value)


def _read_varint(blob: bytes, offset: int) -> tuple[int, int]:
    return read_varint(blob, offset, what="varint in compressed chunk log")


def _thread_streams(entries: Sequence[ChunkEntry]) \
        -> dict[int, list[ChunkEntry]]:
    streams: dict[int, list[ChunkEntry]] = {}
    for entry in entries:
        streams.setdefault(entry.rthread, []).append(entry)
    return streams


def compress_chunks(entries: Sequence[ChunkEntry], use_zlib: bool = True,
                    version: int = VERSION) -> bytes:
    """Delta+varint encode per thread, then optionally deflate."""
    if version not in VERSIONS:
        raise LogFormatError(f"unknown compressed chunk log version {version}")
    streams = _thread_streams(entries)

    body = bytearray(_varint(len(streams)))
    for rthread in sorted(streams):
        # CBUFs drain per core, so a migrating thread's entries may appear
        # out of timestamp order in the raw log; the stream itself is
        # timestamp-ordered by the recorder's invariants.
        stream = sorted(streams[rthread], key=lambda entry: entry.timestamp)
        body += _varint(rthread)
        body += _varint(len(stream))
        if version == VERSION:
            _encode_stream_v1(body, rthread, stream)
        else:
            _encode_stream_v2(body, rthread, stream)

    payload = bytes(body)
    flags = 1 if use_zlib else 0
    if version == VERSION_V2:
        flags |= _FLAG_COLUMNAR
    if use_zlib:
        payload = zlib.compress(payload, level=6)
    return _MAGIC + bytes([flags]) + payload


def _encode_stream_v1(body: bytearray, rthread: int,
                      stream: list[ChunkEntry]) -> None:
    last_ts = 0
    for entry in stream:
        delta = entry.timestamp - last_ts
        if delta < 0:
            raise LogFormatError(
                f"timestamps not monotone within rthread {rthread}")
        last_ts = entry.timestamp
        body += _varint(Reason.CODES[entry.reason])
        body += _varint(delta)
        body += _varint(entry.icount)
        body += _varint(entry.memops)
        body += _varint(entry.rsw)


def _encode_stream_v2(body: bytearray, rthread: int,
                      stream: list[ChunkEntry]) -> None:
    columns = [bytearray() for _ in range(5)]
    col_reason, col_ts, col_icount, col_memops, col_rsw = columns
    last_ts = last_ic = last_mo = 0
    for entry in stream:
        delta = entry.timestamp - last_ts
        if delta < 0:
            raise LogFormatError(
                f"timestamps not monotone within rthread {rthread}")
        col_reason += _varint(Reason.CODES[entry.reason])
        col_ts += _varint(delta)
        col_icount += _varint(zigzag(entry.icount - last_ic))
        col_memops += _varint(zigzag(entry.memops - last_mo))
        col_rsw += _varint(entry.rsw)
        last_ts, last_ic, last_mo = entry.timestamp, entry.icount, entry.memops
    for column in columns:
        body += column


def decompress_chunks(blob: bytes) -> list[ChunkEntry]:
    """Invert :func:`compress_chunks` (either layout); entries return in
    global (timestamp, rthread) order."""
    if blob[:4] != _MAGIC:
        raise LogFormatError("bad compressed chunk log magic")
    if len(blob) < 5:
        raise LogFormatError("truncated compressed chunk log: missing flags")
    flags = blob[4]
    payload = blob[5:]
    if flags & _FLAG_ZLIB:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise LogFormatError(
                f"corrupt compressed chunk log payload: {exc}") from exc
    columnar = bool(flags & _FLAG_COLUMNAR)

    entries: list[ChunkEntry] = []
    offset = 0
    num_streams, offset = _read_varint(payload, offset)
    for _ in range(num_streams):
        rthread, offset = _read_varint(payload, offset)
        count, offset = _read_varint(payload, offset)
        if columnar:
            offset = _decode_stream_v2(payload, offset, rthread, count,
                                       entries)
        else:
            offset = _decode_stream_v1(payload, offset, rthread, count,
                                       entries)
    if offset != len(payload):
        raise LogFormatError("trailing bytes in compressed chunk log")
    entries.sort(key=lambda entry: entry.sort_key)
    return entries


def _decode_stream_v1(payload: bytes, offset: int, rthread: int, count: int,
                      entries: list[ChunkEntry]) -> int:
    timestamp = 0
    for _ in range(count):
        reason_code, offset = _read_varint(payload, offset)
        delta, offset = _read_varint(payload, offset)
        icount, offset = _read_varint(payload, offset)
        memops, offset = _read_varint(payload, offset)
        rsw, offset = _read_varint(payload, offset)
        timestamp += delta
        reason = Reason.NAMES.get(reason_code)
        if reason is None:
            raise LogFormatError(f"unknown reason code {reason_code}")
        entries.append(ChunkEntry(rthread, timestamp, icount, memops,
                                  rsw, reason))
    return offset


def _decode_stream_v2(payload: bytes, offset: int, rthread: int, count: int,
                      entries: list[ChunkEntry]) -> int:
    def column(n=count):
        nonlocal offset
        values = []
        for _ in range(n):
            value, offset = _read_varint(payload, offset)
            values.append(value)
        return values

    reason_codes = column()
    ts_deltas = column()
    icount_deltas = column()
    memops_deltas = column()
    rsws = column()
    timestamp = icount = memops = 0
    for i in range(count):
        reason = Reason.NAMES.get(reason_codes[i])
        if reason is None:
            raise LogFormatError(f"unknown reason code {reason_codes[i]}")
        timestamp += ts_deltas[i]
        icount += unzigzag(icount_deltas[i])
        memops += unzigzag(memops_deltas[i])
        if icount < 0 or memops < 0:
            raise LogFormatError("negative field in compressed chunk log")
        entries.append(ChunkEntry(rthread, timestamp, icount, memops,
                                  rsws[i], reason))
    return offset


def compressed_size(entries: Sequence[ChunkEntry], use_zlib: bool = True,
                    version: int = VERSION) -> int:
    return len(compress_chunks(entries, use_zlib=use_zlib, version=version))
