"""LEB128 varints with a hard 64-bit cap, shared by every log codec.

Both the input-log (``QRIL``) and chunk-log (``QRCL``/``QRCZ``) formats
define their integer fields as unsigned 64-bit values. The decoder
therefore refuses continuation chains longer than :data:`MAX_VARINT_BYTES`
(ten bytes carry 70 payload bits — the canonical u64 LEB128 bound): a
malformed or adversarial stream previously decoded into arbitrarily large
Python ints after an arbitrarily long loop. The encoder enforces the same
bound so every encodable value round-trips.

Signed-ish deltas (the columnar v2 codecs delta-encode near-monotone
fields whose differences can be negative) use zigzag mapping, which keeps
small-magnitude deltas small in either direction.
"""

from __future__ import annotations

from ..errors import LogFormatError

#: Longest legal encoding: 10 × 7 payload bits ≥ 64 bits.
MAX_VARINT_BYTES = 10

#: Largest value ten continuation bytes can carry (70 payload bits —
#: u64 fields fit, and so do their zigzagged deltas, which need 65 bits).
MAX_VARINT_VALUE = (1 << (7 * MAX_VARINT_BYTES)) - 1


def write_varint(value: int) -> bytes:
    """Encode ``value`` as an LEB128 varint (u64 range enforced)."""
    if value < 0:
        raise LogFormatError("varint requires non-negative value")
    if value > MAX_VARINT_VALUE:
        raise LogFormatError(
            f"varint value {value} exceeds {MAX_VARINT_BYTES} bytes")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(blob: bytes, offset: int,
                what: str = "varint") -> tuple[int, int]:
    """Decode one varint at ``offset``; returns ``(value, new_offset)``.

    Raises :class:`LogFormatError` on truncation and on continuation
    chains longer than :data:`MAX_VARINT_BYTES` — the unbounded-decode
    guard (``what`` names the stream for the error message).
    """
    result = 0
    shift = 0
    start = offset
    while True:
        if offset >= len(blob):
            raise LogFormatError(f"truncated {what}")
        if offset - start >= MAX_VARINT_BYTES:
            raise LogFormatError(
                f"{what} continuation chain exceeds "
                f"{MAX_VARINT_BYTES} bytes (corrupt stream)")
        byte = blob[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed int to an unsigned one (0,-1,1,-2 → 0,1,2,3)."""
    return value << 1 if value >= 0 else (-value << 1) - 1


def unzigzag(value: int) -> int:
    """Invert :func:`zigzag`."""
    return value >> 1 if not value & 1 else -((value + 1) >> 1)
