"""Per-core chunk order logs.

Scalable ordering metadata, one stream per core (the "Distributed Order
Recording" shape): instead of funnelling every chunk through one shared
log to establish order, each MRR appends an :class:`OrderRecord` to its
own :class:`CoreOrderLog` at termination. A record carries

- the chunk's global timestamp (drawn from the fabric's serialized
  ``order_clock`` — the interconnect every termination already passes
  through, so no extra shared counter sits on the hot path), and
- ``pred_ts``: the latest chunk termination this core has *directly
  observed* — its own previous chunk, or a remote chunk whose timestamp
  was piggybacked on a victim notification of one of this core's
  transactions. ``pred_ts < timestamp`` always; it names the record's
  immediate order predecessor without consulting any global structure.

Each core's stream is strictly timestamp-monotonic, so an O(log n) k-way
merge (:func:`repro.replay.schedule.merge_core_streams`) reconstructs
exactly the global (timestamp, rthread) replay schedule — pinned against
the v1 single-log schedule by the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class OrderRecord:
    """One chunk termination as seen by its own core."""

    #: Position within this core's stream (0-based, dense).
    seq: int
    #: R-thread the chunk belongs to.
    rthread: int
    #: Global chunk timestamp (fabric order clock at termination).
    timestamp: int
    #: Latest termination this core observed before this one: its own
    #: previous chunk or a victim timestamp piggybacked on one of its
    #: transactions. 0 when nothing was observed yet.
    pred_ts: int

    @property
    def sort_key(self) -> tuple[int, int]:
        return (self.timestamp, self.rthread)


class CoreOrderLog:
    """One core's append-only order stream."""

    def __init__(self, core_id: int):
        self.core_id = core_id
        self.records: list[OrderRecord] = []
        # Timestamp of this core's last terminated chunk.
        self.local_clock = 0
        # High-water mark of remote timestamps piggybacked on victim
        # notifications (observe_victims).
        self.observed_remote = 0
        # Records dropped by trim_before (flight-ring retention).
        self.trimmed = 0

    def observe_remote(self, timestamp: int) -> None:
        """A transaction of this core terminated a remote chunk; its
        timestamp rides back on the notification."""
        if timestamp > self.observed_remote:
            self.observed_remote = timestamp

    def append(self, rthread: int, timestamp: int) -> OrderRecord:
        """Record a chunk termination on this core."""
        pred = self.local_clock
        if self.observed_remote > pred:
            pred = self.observed_remote
        record = OrderRecord(seq=self.trimmed + len(self.records),
                             rthread=rthread,
                             timestamp=timestamp, pred_ts=pred)
        self.records.append(record)
        self.local_clock = timestamp
        return record

    def trim_before(self, timestamp: int) -> int:
        """Drop records older than ``timestamp`` (flight-ring eviction:
        ordering metadata for discarded epochs is itself discarded, so the
        order stream stays O(window) too). Returns the number dropped;
        ``trimmed`` keeps ``seq`` assignment dense across trims."""
        records = self.records
        keep = 0
        while keep < len(records) and records[keep].timestamp < timestamp:
            keep += 1
        if keep:
            del records[:keep]
            self.trimmed += keep
        return keep

    def __len__(self) -> int:
        return len(self.records)
