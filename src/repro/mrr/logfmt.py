"""Binary encoding of chunk log entries and checkpoint sections.

Two stream versions share the ``QRCL`` magic; :func:`decode_chunks`
negotiates by the header's version byte.

**v1** mirrors the prototype's packed 128-bit entry::

    byte 0      rthread        (u8)
    byte 1      reason code    (u8)
    bytes 2-3   RSW            (u16)
    bytes 4-7   timestamp      (u32)
    bytes 8-11  icount         (u32)
    bytes 12-15 memops         (u32)

A stream is a 12-byte header (magic ``QRCL``, version, flags, count)
followed by the entries. When the debug load-hash flag is set, each entry
carries an extra 8 bytes.

**v2** is columnar: each field is stored as its own varint column in
stream order, with ``timestamp``/``icount``/``memops`` zigzag-delta
encoded against the previous entry of the *same* rthread (all three are
near-monotone per thread, so deltas stay small), and the body zlib
compressed. Entry order — including the CBUF drain interleaving — is
preserved exactly, so the v2 round trip is entry-identical to v1's.

The checkpoint section (magic ``QRCK``) carries periodic snapshots of the
deterministic replay-visible machine state, keyed by chunk-schedule
position. Payloads are opaque at this layer (see
:mod:`repro.replay.checkpoint` for their contents); the section stores
each one delta-encoded (XOR) against the previous checkpoint's payload and
zlib-compressed — consecutive snapshots share most of their physical
memory image, so deltas are overwhelmingly zero bytes. Every record
carries the SHA-256 of its *raw* payload, verified on decode, which is
also the seam digest parallel replay validates against.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import LogFormatError
from .chunk import ChunkEntry, Reason
from .varint import read_varint, unzigzag, write_varint, zigzag

MAGIC = b"QRCL"
VERSION = 1
VERSION_V2 = 2
VERSIONS = (VERSION, VERSION_V2)
ENTRY_BYTES = 16
_HEADER = struct.Struct("<4sBBHI")
_ENTRY = struct.Struct("<BBHIII")
_HASH = struct.Struct("<Q")

FLAG_LOAD_HASH = 0x01
#: v2 header flag: body is a zlib stream.
FLAG_ZLIB = 0x02


def _check_entry(entry: ChunkEntry) -> None:
    if entry.rthread > 0xFF:
        raise LogFormatError(f"rthread {entry.rthread} exceeds u8")
    if entry.rsw > 0xFFFF:
        raise LogFormatError(f"rsw {entry.rsw} exceeds u16")


def encode_chunks(entries: Sequence[ChunkEntry],
                  with_load_hash: bool = False,
                  version: int = VERSION) -> bytes:
    """Serialize entries to the packed (v1) or columnar (v2) format."""
    if version == VERSION:
        return _encode_chunks_v1(entries, with_load_hash)
    if version == VERSION_V2:
        return _encode_chunks_v2(entries, with_load_hash)
    raise LogFormatError(f"unknown chunk stream version {version}")


def _encode_chunks_v1(entries: Sequence[ChunkEntry],
                      with_load_hash: bool) -> bytes:
    flags = FLAG_LOAD_HASH if with_load_hash else 0
    out = bytearray(_HEADER.pack(MAGIC, VERSION, flags, 0, len(entries)))
    for entry in entries:
        _check_entry(entry)
        out += _ENTRY.pack(entry.rthread, Reason.CODES[entry.reason],
                           entry.rsw, entry.timestamp & 0xFFFFFFFF,
                           entry.icount, entry.memops)
        if with_load_hash:
            out += _HASH.pack(entry.load_hash or 0)
    return bytes(out)


def _encode_chunks_v2(entries: Sequence[ChunkEntry],
                      with_load_hash: bool) -> bytes:
    flags = FLAG_ZLIB | (FLAG_LOAD_HASH if with_load_hash else 0)
    columns = [bytearray() for _ in range(7)]
    (col_rthread, col_reason, col_rsw, col_ts, col_icount, col_memops,
     col_hash) = columns
    prev: dict[int, tuple[int, int, int]] = {}
    for entry in entries:
        _check_entry(entry)
        timestamp = entry.timestamp & 0xFFFFFFFF
        prev_ts, prev_ic, prev_mo = prev.get(entry.rthread, (0, 0, 0))
        col_rthread += write_varint(entry.rthread)
        col_reason += write_varint(Reason.CODES[entry.reason])
        col_rsw += write_varint(entry.rsw)
        col_ts += write_varint(zigzag(timestamp - prev_ts))
        col_icount += write_varint(zigzag(entry.icount - prev_ic))
        col_memops += write_varint(zigzag(entry.memops - prev_mo))
        prev[entry.rthread] = (timestamp, entry.icount, entry.memops)
        if with_load_hash:
            col_hash += write_varint(entry.load_hash or 0)
    compressor = zlib.compressobj(6)
    body = bytearray()
    for column in columns:
        body += compressor.compress(bytes(column))
    body += compressor.flush()
    return _HEADER.pack(MAGIC, VERSION_V2, flags, 0,
                        len(entries)) + bytes(body)


def decode_chunks(blob: bytes) -> list[ChunkEntry]:
    """Parse either stream version back into entries (in stream order)."""
    if len(blob) < _HEADER.size:
        raise LogFormatError("chunk stream truncated before header")
    magic, version, flags, _reserved, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise LogFormatError(f"bad magic {magic!r}")
    if version == VERSION:
        return _decode_chunks_v1(blob, flags, count)
    if version == VERSION_V2:
        return _decode_chunks_v2(blob, flags, count)
    raise LogFormatError(f"unsupported chunk stream version {version}")


def _decode_chunks_v1(blob: bytes, flags: int, count: int) -> list[ChunkEntry]:
    with_hash = bool(flags & FLAG_LOAD_HASH)
    stride = ENTRY_BYTES + (_HASH.size if with_hash else 0)
    expected = _HEADER.size + count * stride
    if len(blob) != expected:
        raise LogFormatError(f"chunk stream length {len(blob)} != expected {expected}")
    entries: list[ChunkEntry] = []
    offset = _HEADER.size
    for _ in range(count):
        rthread, reason_code, rsw, timestamp, icount, memops = \
            _ENTRY.unpack_from(blob, offset)
        offset += ENTRY_BYTES
        load_hash = None
        if with_hash:
            (load_hash,) = _HASH.unpack_from(blob, offset)
            offset += _HASH.size
        reason = Reason.NAMES.get(reason_code)
        if reason is None:
            raise LogFormatError(f"unknown reason code {reason_code}")
        entries.append(ChunkEntry(rthread, timestamp, icount, memops, rsw,
                                  reason, load_hash))
    return entries


def _decode_chunks_v2(blob: bytes, flags: int, count: int) -> list[ChunkEntry]:
    with_hash = bool(flags & FLAG_LOAD_HASH)
    body = blob[_HEADER.size:]
    if flags & FLAG_ZLIB:
        decompressor = zlib.decompressobj()
        try:
            body = decompressor.decompress(body)
            body += decompressor.flush()
        except zlib.error as exc:
            raise LogFormatError(f"corrupt chunk stream body: {exc}") from exc
        if not decompressor.eof:
            raise LogFormatError("truncated chunk stream body")
        if decompressor.unused_data:
            raise LogFormatError("trailing bytes after chunk stream body")

    offset = 0

    def column(n=count, what="chunk stream"):
        nonlocal offset
        values = []
        for _ in range(n):
            value, offset = read_varint(body, offset, what=what)
            values.append(value)
        return values

    rthreads = column()
    reason_codes = column()
    rsws = column()
    ts_deltas = column()
    icount_deltas = column()
    memops_deltas = column()
    hashes = column() if with_hash else None
    if offset != len(body):
        raise LogFormatError("trailing bytes in chunk stream")

    entries: list[ChunkEntry] = []
    prev: dict[int, tuple[int, int, int]] = {}
    for i in range(count):
        reason = Reason.NAMES.get(reason_codes[i])
        if reason is None:
            raise LogFormatError(f"unknown reason code {reason_codes[i]}")
        rthread = rthreads[i]
        prev_ts, prev_ic, prev_mo = prev.get(rthread, (0, 0, 0))
        timestamp = prev_ts + unzigzag(ts_deltas[i])
        icount = prev_ic + unzigzag(icount_deltas[i])
        memops = prev_mo + unzigzag(memops_deltas[i])
        if timestamp < 0 or icount < 0 or memops < 0:
            raise LogFormatError("negative field in chunk stream")
        prev[rthread] = (timestamp, icount, memops)
        entries.append(ChunkEntry(rthread, timestamp, icount, memops,
                                  rsws[i], reason,
                                  hashes[i] if with_hash else None))
    return entries


def encoded_size(entries: Iterable[ChunkEntry],
                 with_load_hash: bool = False) -> int:
    """Size in bytes of the packed stream without building it."""
    count = sum(1 for _ in entries)
    stride = ENTRY_BYTES + (_HASH.size if with_load_hash else 0)
    return _HEADER.size + count * stride


# -- checkpoint section -------------------------------------------------------

CHECKPOINT_MAGIC = b"QRCK"
CHECKPOINT_VERSION = 1
_CKPT_HEADER = struct.Struct("<4sBBHI")
_CKPT_ENTRY = struct.Struct("<IIIB32s")  # position, raw_len, comp_len, flags, digest
_CKPT_FLAG_DELTA = 0x01


@dataclass(frozen=True)
class CheckpointRecord:
    """One embedded checkpoint: raw replay-state payload at a schedule
    position, plus the payload's SHA-256 (the seam digest)."""

    position: int
    digest: str
    payload: bytes

    @classmethod
    def for_payload(cls, position: int, payload: bytes) -> "CheckpointRecord":
        return cls(position=position, payload=payload,
                   digest=hashlib.sha256(payload).hexdigest())


#: XOR block size: big enough to amortize the Python-level loop, small
#: enough that the per-block big-int conversions stay cache-resident
#: (multi-MB images previously went through two full-image
#: ``int.from_bytes``/``to_bytes`` conversions, a checkpoint-encode
#: hot spot that scaled super-linearly with image size).
_XOR_BLOCK = 1 << 15


def _xor_bytes(data: bytes, key: bytes) -> bytes:
    """``data XOR key`` over ``len(data)`` bytes; ``key`` is zero-padded or
    truncated to fit (payload sizes drift as the JSON header grows).

    XORs fixed-size blocks through ``int.from_bytes`` over memoryview
    slices rather than converting the whole image to one big int.
    """
    if not data or not key:
        return data
    if len(key) < len(data):
        key = key.ljust(len(data), b"\x00")
    out = bytearray(len(data))
    view_data = memoryview(data)
    view_key = memoryview(key)
    for start in range(0, len(data), _XOR_BLOCK):
        end = min(start + _XOR_BLOCK, len(data))
        block = (int.from_bytes(view_data[start:end], "little")
                 ^ int.from_bytes(view_key[start:end], "little"))
        out[start:end] = block.to_bytes(end - start, "little")
    return bytes(out)


def encode_checkpoints(records: Sequence[CheckpointRecord]) -> bytes:
    """Serialize checkpoint records (sorted by position) to the packed
    delta-encoded section."""
    ordered = sorted(records, key=lambda record: record.position)
    out = bytearray(_CKPT_HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                                      0, 0, len(ordered)))
    previous = b""
    for record in ordered:
        delta = _xor_bytes(record.payload, previous)
        flags = _CKPT_FLAG_DELTA if previous else 0
        compressed = zlib.compress(delta, 6)
        out += _CKPT_ENTRY.pack(record.position, len(record.payload),
                                len(compressed), flags,
                                bytes.fromhex(record.digest))
        out += compressed
        previous = record.payload
    return bytes(out)


def decode_checkpoints(blob: bytes) -> list[CheckpointRecord]:
    """Parse a checkpoint section; verifies every payload digest."""
    if len(blob) < _CKPT_HEADER.size:
        raise LogFormatError("checkpoint section truncated before header")
    magic, version, _flags, _reserved, count = _CKPT_HEADER.unpack_from(blob, 0)
    if magic != CHECKPOINT_MAGIC:
        raise LogFormatError(f"bad checkpoint section magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise LogFormatError(f"unsupported checkpoint section version {version}")
    records: list[CheckpointRecord] = []
    offset = _CKPT_HEADER.size
    previous = b""
    for _ in range(count):
        if offset + _CKPT_ENTRY.size > len(blob):
            raise LogFormatError("checkpoint section truncated in entry header")
        position, raw_len, comp_len, flags, digest_bytes = \
            _CKPT_ENTRY.unpack_from(blob, offset)
        offset += _CKPT_ENTRY.size
        if offset + comp_len > len(blob):
            raise LogFormatError("checkpoint section truncated in payload")
        try:
            delta = zlib.decompress(blob[offset:offset + comp_len])
        except zlib.error as exc:
            raise LogFormatError(
                f"corrupt checkpoint payload at position {position}: "
                f"{exc}") from exc
        offset += comp_len
        if len(delta) != raw_len:
            raise LogFormatError(
                f"checkpoint payload at position {position} is {len(delta)} "
                f"bytes, expected {raw_len}")
        payload = _xor_bytes(delta, previous) if flags & _CKPT_FLAG_DELTA \
            else delta
        digest = digest_bytes.hex()
        if hashlib.sha256(payload).hexdigest() != digest:
            raise LogFormatError(
                f"checkpoint digest mismatch at position {position}")
        records.append(CheckpointRecord(position=position, digest=digest,
                                        payload=payload))
        previous = payload
    if offset != len(blob):
        raise LogFormatError(
            f"checkpoint section has {len(blob) - offset} trailing bytes")
    return records
