"""Binary encoding of chunk log entries.

Mirrors the prototype's packed 128-bit entry::

    byte 0      rthread        (u8)
    byte 1      reason code    (u8)
    bytes 2-3   RSW            (u16)
    bytes 4-7   timestamp      (u32)
    bytes 8-11  icount         (u32)
    bytes 12-15 memops         (u32)

A stream is a 12-byte header (magic ``QRCL``, version, flags, count)
followed by the entries. When the debug load-hash flag is set, each entry
carries an extra 8 bytes.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from ..errors import LogFormatError
from .chunk import ChunkEntry, Reason

MAGIC = b"QRCL"
VERSION = 1
ENTRY_BYTES = 16
_HEADER = struct.Struct("<4sBBHI")
_ENTRY = struct.Struct("<BBHIII")
_HASH = struct.Struct("<Q")

FLAG_LOAD_HASH = 0x01


def encode_chunks(entries: Sequence[ChunkEntry],
                  with_load_hash: bool = False) -> bytes:
    """Serialize entries to the packed stream format."""
    flags = FLAG_LOAD_HASH if with_load_hash else 0
    out = bytearray(_HEADER.pack(MAGIC, VERSION, flags, 0, len(entries)))
    for entry in entries:
        if entry.rthread > 0xFF:
            raise LogFormatError(f"rthread {entry.rthread} exceeds u8")
        if entry.rsw > 0xFFFF:
            raise LogFormatError(f"rsw {entry.rsw} exceeds u16")
        out += _ENTRY.pack(entry.rthread, Reason.CODES[entry.reason],
                           entry.rsw, entry.timestamp & 0xFFFFFFFF,
                           entry.icount, entry.memops)
        if with_load_hash:
            out += _HASH.pack(entry.load_hash or 0)
    return bytes(out)


def decode_chunks(blob: bytes) -> list[ChunkEntry]:
    """Parse a packed stream back into entries (in stream order)."""
    if len(blob) < _HEADER.size:
        raise LogFormatError("chunk stream truncated before header")
    magic, version, flags, _reserved, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise LogFormatError(f"bad magic {magic!r}")
    if version != VERSION:
        raise LogFormatError(f"unsupported chunk stream version {version}")
    with_hash = bool(flags & FLAG_LOAD_HASH)
    stride = ENTRY_BYTES + (_HASH.size if with_hash else 0)
    expected = _HEADER.size + count * stride
    if len(blob) != expected:
        raise LogFormatError(f"chunk stream length {len(blob)} != expected {expected}")
    entries: list[ChunkEntry] = []
    offset = _HEADER.size
    for _ in range(count):
        rthread, reason_code, rsw, timestamp, icount, memops = \
            _ENTRY.unpack_from(blob, offset)
        offset += ENTRY_BYTES
        load_hash = None
        if with_hash:
            (load_hash,) = _HASH.unpack_from(blob, offset)
            offset += _HASH.size
        reason = Reason.NAMES.get(reason_code)
        if reason is None:
            raise LogFormatError(f"unknown reason code {reason_code}")
        entries.append(ChunkEntry(rthread, timestamp, icount, memops, rsw,
                                  reason, load_hash))
    return entries


def encoded_size(entries: Iterable[ChunkEntry],
                 with_load_hash: bool = False) -> int:
    """Size in bytes of the packed stream without building it."""
    count = sum(1 for _ in entries)
    stride = ENTRY_BYTES + (_HASH.size if with_load_hash else 0)
    return _HEADER.size + count * stride
