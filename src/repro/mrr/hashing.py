"""H3 hash family over cache-line addresses.

H3 is the standard hardware-friendly universal hash: the output is the XOR
of per-input-bit random masks selected by the set bits of the key. It is
what signature proposals (Bulk, SigTM, and Intel's MRR line) assume, because
it is a tree of XOR gates in hardware.

The masks are derived from a fixed seed so every recorder — and the
analysis tooling — computes identical hashes.
"""

from __future__ import annotations

import random

_ADDRESS_BITS = 32
_DEFAULT_SEED = 0x9E3779B9


class H3Hasher:
    """``num_hashes`` independent H3 functions mapping keys to [0, buckets)."""

    def __init__(self, buckets: int, num_hashes: int, seed: int = _DEFAULT_SEED):
        if buckets & (buckets - 1) or buckets <= 0:
            raise ValueError("buckets must be a power of two")
        if not 1 <= num_hashes <= 8:
            raise ValueError("num_hashes must be in [1, 8]")
        self.buckets = buckets
        self.num_hashes = num_hashes
        rng = random.Random(seed)
        mask = buckets - 1
        # masks[h][bit] is XORed in when key bit `bit` is set.
        self._masks: list[list[int]] = [
            [rng.randrange(buckets) & mask for _ in range(_ADDRESS_BITS)]
            for _ in range(num_hashes)
        ]
        # Hashing is hot (every memory access); memoize per key.
        self._cache: dict[int, tuple[int, ...]] = {}
        # Per-key filter-word bitmask (OR of one bit per hash function),
        # so Bloom insert/test collapse to one OR/AND on the filter word.
        self._mask_cache: dict[int, int] = {}

    def indices(self, key: int) -> tuple[int, ...]:
        """The ``num_hashes`` bucket indices for ``key``."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        out = []
        for masks in self._masks:
            acc = 0
            bits = key & 0xFFFFFFFF
            bit = 0
            while bits:
                if bits & 1:
                    acc ^= masks[bit]
                bits >>= 1
                bit += 1
            out.append(acc)
        result = tuple(out)
        self._cache[key] = result
        return result

    def mask(self, key: int) -> int:
        """The ``buckets``-wide bitmask with the key's index bits set.

        This is the signature fast path: ``filter_word | mask`` inserts the
        key, ``filter_word & mask == mask`` tests it — identical semantics
        to iterating :meth:`indices`, precomputed once per key.
        """
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = 0
        for index in self.indices(key):
            mask |= 1 << index
        self._mask_cache[key] = mask
        return mask


_shared: dict[tuple[int, int, int], H3Hasher] = {}


def shared_hasher(buckets: int, num_hashes: int,
                  seed: int = _DEFAULT_SEED) -> H3Hasher:
    """A process-wide memoized hasher (signatures with equal geometry share
    one hash cache; the masks are deterministic anyway)."""
    key = (buckets, num_hashes, seed)
    hasher = _shared.get(key)
    if hasher is None:
        hasher = H3Hasher(buckets, num_hashes, seed)
        _shared[key] = hasher
    return hasher
