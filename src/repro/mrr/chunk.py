"""Chunk log entries and termination reasons."""

from __future__ import annotations

from dataclasses import dataclass


class Reason:
    """Why a chunk terminated.

    Hardware-initiated:
        RAW/WAR/WAW — a remote coherence request hit this core's signatures
        (named for the dependence it ordered); SIZE — the instruction-count
        cap; SATURATION — a signature passed its fill threshold.

    Software-initiated (every kernel entry terminates the chunk):
        SYSCALL, NONDET (a trapped RDTSC/RDRAND/CPUID), PREEMPT (quantum
        expiry or yield-driven context switch), EXIT (the thread's final
        kernel entry).
    """

    RAW = "raw"
    WAR = "war"
    WAW = "waw"
    SIZE = "size"
    SATURATION = "saturation"
    SYSCALL = "syscall"
    NONDET = "nondet"
    PREEMPT = "preempt"
    EXIT = "exit"

    ALL = (RAW, WAR, WAW, SIZE, SATURATION, SYSCALL, NONDET, PREEMPT, EXIT)
    CONFLICTS = (RAW, WAR, WAW)
    HARDWARE = (RAW, WAR, WAW, SIZE, SATURATION)
    KERNEL_ENTRY = (SYSCALL, NONDET, PREEMPT, EXIT)

    CODES = {name: code for code, name in enumerate(ALL)}
    NAMES = {code: name for code, name in enumerate(ALL)}


@dataclass(slots=True)
class ChunkEntry:
    """One packed chunk record (the 128-bit hardware log entry).

    Treated as immutable once emitted (slots, no mutation anywhere in the
    stack); not ``frozen`` because entries are constructed on the conflict
    hot path and frozen dataclasses pay ``object.__setattr__`` per field —
    nearly 4x the construction cost for a class created thousands of times
    per recorded run.

    Attributes:
        rthread: replay-sphere thread id the chunk belongs to.
        timestamp: Lamport timestamp; replay executes chunks in
            (timestamp, rthread) order.
        icount: instructions *retired* during the chunk.
        memops: memory operations completed by the instruction in flight at
            termination (nonzero only when the chunk ends inside a
            ``rep_*`` instruction).
        rsw: reordered-store-window — stores still in the store buffer at
            termination; the replayer defers that many trailing stores.
        reason: a :class:`Reason` constant.
        load_hash: optional rolling hash of load values (debug mode).
    """

    rthread: int
    timestamp: int
    icount: int
    memops: int
    rsw: int
    reason: str
    load_hash: int | None = None

    def __post_init__(self) -> None:
        if self.reason not in Reason.CODES:
            raise ValueError(f"unknown termination reason {self.reason!r}")
        if min(self.rthread, self.timestamp, self.icount,
               self.memops, self.rsw) < 0:
            raise ValueError("chunk entry fields must be non-negative")

    @property
    def is_conflict(self) -> bool:
        return self.reason in Reason.CONFLICTS

    @property
    def sort_key(self) -> tuple[int, int]:
        return (self.timestamp, self.rthread)
