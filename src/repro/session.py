"""High-level API: run, record, replay, verify.

This is the module most users (and all examples/benchmarks) interact with::

    from repro import session

    outcome = session.record(program, seed=7)
    replayed = session.replay_recording(outcome.recording)
    report = session.verify(outcome, replayed)
    assert report.ok

Recording modes:

- ``MODE_OFF``  — bare machine, the native baseline;
- ``MODE_HW``   — MRR hardware active, no software stack costs/logging;
- ``MODE_FULL`` — the complete Capo3 stack; produces a replayable
  :class:`~repro.capo.recording.Recording`.

Runs with identical (program, config, seeds, inputs) execute identically in
every mode — only cycle accounting differs — which is how the overhead
experiments isolate recording cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .capo.recording import Recording
from .capo.rsm import MODE_FULL, MODE_HW, ReplaySphereManager
from .config import DEFAULT_CONFIG, SimConfig
from .errors import ConfigError
from .isa.program import Program
from .kernel.kernel import Kernel
from .machine.interleave import make_interleaver
from .machine.machine import Machine
from .perf.costmodel import CostModel
from .replay.replayer import ReplayResult
from .replay.verify import VerificationReport, verify_replay
from .telemetry import Telemetry

MODE_OFF = "off"
MODES = (MODE_OFF, MODE_HW, MODE_FULL)

_KERNEL_SEED_SALT = 0x5EED_C0DE

# Stack allowance appended to a background/primary process region when the
# main stack cannot live at the top of memory (multi-process runs).
_REGION_STACK_BYTES = 16 * 1024


@dataclass
class RunOutcome:
    """Everything observable about one simulated run.

    ``sphere_*`` fields restrict to the recorded process (the replay
    sphere); without background processes they equal the full-run fields.
    """

    mode: str
    units: int
    total_cycles: int
    outputs: dict[str, bytes]
    exit_codes: dict[int, int]
    final_memory_digest: str
    machine_stats: dict[str, Any]
    kernel_stats: dict[str, Any]
    sphere_outputs: dict[str, bytes] | None = None
    sphere_exit_codes: dict[int, int] | None = None
    sphere_region: tuple[int, int] | None = None
    sphere_digest: str | None = None
    rsm_stats: dict[str, Any] | None = None
    recording: Recording | None = None
    # The run's telemetry (tracer + metrics); NULL_TELEMETRY when disabled.
    telemetry: Telemetry | None = None
    # Per-core chunk streams and order logs (recording modes only): each
    # core's chunks in emission order plus its CoreOrderLog of
    # (seq, rthread, timestamp, pred_ts) records. Merging the streams
    # reconstructs the global replay schedule without the shared log.
    core_chunk_logs: list[list] | None = None
    order_logs: list | None = None

    @property
    def instructions(self) -> int:
        return sum(core["retired"] for core in self.machine_stats["cores"])


def _region_of(program: Program) -> tuple[int, int]:
    """A process's memory region: data segment plus main-stack allowance."""
    return (program.data_base, len(program.data) + _REGION_STACK_BYTES)


def _check_disjoint_regions(programs: Sequence[Program],
                            memory_bytes: int) -> None:
    regions = sorted(_region_of(p) for p in programs)
    previous_end = 0
    for start, size in regions:
        if start < previous_end:
            raise ConfigError(
                "process memory regions overlap; give each program a "
                "distinct data_base with room for data + 16 KiB of stack")
        if start + size > memory_bytes:
            raise ConfigError("process region extends past physical memory")
        previous_end = start + size


def simulate(program: Program, config: SimConfig | None = None,
             seed: int = 0, policy: str = "random", mode: str = MODE_OFF,
             input_files: Mapping[str, bytes] | None = None,
             kernel_seed: int | None = None, cost: CostModel | None = None,
             background_programs: Sequence[Program] = (),
             max_units: int = 200_000_000,
             telemetry: Telemetry | None = None) -> RunOutcome:
    """Run ``program`` to completion under the given recording mode.

    ``background_programs`` are loaded as additional *unrecorded*
    processes sharing the machine (disjoint data regions required): the
    Capo multiprogramming scenario. Only the primary program is in the
    replay sphere; verification then scopes to its region, its writes,
    and its threads' exit codes.
    """
    if mode not in MODES:
        raise ConfigError(f"unknown mode {mode!r}; choose from {MODES}")
    config = config or DEFAULT_CONFIG
    if telemetry is None:
        telemetry = Telemetry.from_config(config.telemetry)
    machine = Machine(config.machine, cost=cost, telemetry=telemetry)
    if telemetry.enabled:
        # Trace time is simulated time: one tick per machine step.
        telemetry.tracer.clock = lambda: machine.global_step
        telemetry.tracer.instant("run.start", cat="session",
                                 args={"mode": mode, "seed": seed,
                                       "policy": policy,
                                       "program": program.name})
    machine.load_program(program)

    rsm = None
    if mode != MODE_OFF:
        rsm = ReplaySphereManager(machine, config, mode=mode)

    if kernel_seed is None:
        kernel_seed = (seed ^ _KERNEL_SEED_SALT) & 0xFFFFFFFF
    kernel = Kernel(machine, config.kernel, rsm=rsm, seed=kernel_seed)
    for name, data in (input_files or {}).items():
        kernel.vfs.add_file(name, data)

    sphere_region = None
    main_sp = None
    if background_programs:
        _check_disjoint_regions([program, *background_programs],
                                config.machine.memory_bytes)
        # the primary's main stack moves into its own region so the sphere
        # digest covers everything the recorded process touches
        sphere_region = _region_of(program)
        main_sp = (sphere_region[0] + sphere_region[1] - 16) & ~15
        kernel.add_process(program, stack_top=main_sp,
                           recorded=rsm is not None)
        for extra in background_programs:
            machine.memory.load_blob(extra.data_base, extra.data)
            region = _region_of(extra)
            stack_top = (region[0] + region[1] - 16) & ~15
            kernel.add_process(extra, stack_top=stack_top, recorded=False)
    else:
        kernel.boot()
    flight_ring = None
    if rsm is not None and mode == MODE_FULL and config.capo.flight_window > 0:
        # Bounded retention: the ring (and its shadow replayer) must know
        # the sphere layout before the first chunk terminates.
        from .flight import FlightRing
        ring_meta = {}
        if sphere_region is not None:
            ring_meta = {"sphere_region": list(sphere_region),
                         "main_sp": main_sp}
        flight_ring = FlightRing(config, program, metadata=ring_meta,
                                 telemetry=telemetry)
        rsm.attach_flight(flight_ring)
    interleaver = make_interleaver(policy, seed)
    units = kernel.run(interleaver, max_units=max_units)

    recording = None
    rsm_stats = None
    core_chunk_logs = None
    order_logs = None
    if rsm is not None:
        rsm.finalize()
        rsm_stats = rsm.stats.as_dict()
        core_chunk_logs = rsm.core_chunk_logs
        order_logs = rsm.order_logs()
    exit_codes = {tid: task.exit_code for tid, task in kernel.tasks.items()}
    outputs = kernel.vfs.written()
    sphere_outputs = kernel.vfs.written_recorded()
    recorded_tids = set(kernel.recorded_tids())
    sphere_exit_codes = {tid: code for tid, code in exit_codes.items()
                         if tid in recorded_tids} if recorded_tids else None
    digest = machine.memory.digest()
    sphere_digest = None
    if sphere_region is not None:
        sphere_digest = machine.memory.digest_range(*sphere_region)
    if rsm is not None and mode == MODE_FULL:
        verify_digest = sphere_digest or digest
        verify_exit_codes = sphere_exit_codes or exit_codes
        metadata = {
            "final_memory_digest": verify_digest,
            "exit_codes": {str(tid): code
                           for tid, code in verify_exit_codes.items()},
            "outputs_hex": {name: data.hex()
                            for name, data in sphere_outputs.items()},
            "seed": seed,
            "policy": policy,
            "program_name": program.name,
        }
        if sphere_region is not None:
            metadata["sphere_region"] = list(sphere_region)
            metadata["main_sp"] = main_sp
        if flight_ring is not None:
            # The retained window, rebased to its origin; replays to the
            # same final digests as the unbounded recording would.
            recording = flight_ring.materialize(metadata)
        else:
            recording = Recording(
                config=config,
                program=program,
                chunks=list(rsm.chunk_log),
                events=list(rsm.events),
                metadata=metadata,
            )
    if telemetry.enabled:
        telemetry.tracer.instant("run.end", cat="session",
                                 args={"units": units,
                                       "cycles": machine.total_cycles})
        metrics = telemetry.metrics
        metrics.gauge("session.units").set(units)
        metrics.gauge("session.total_cycles").set(machine.total_cycles)
        # Fabric notify accounting (directory vs broadcast): scalar bus
        # stats become gauges so `quickrec stats` / `record --trace`
        # surface them alongside the recorder metrics.
        for key, value in machine.bus.stats.as_dict().items():
            if isinstance(value, int):
                metrics.gauge(f"machine.bus.{key}").set(value)
        if recording is not None:
            metrics.gauge("recording.chunks").set(len(recording.chunks))
            metrics.gauge("recording.input_events").set(len(recording.events))
            metrics.gauge("recording.chunk_log_bytes").set(
                recording.chunk_log_bytes())
            metrics.gauge("recording.input_log_bytes").set(
                recording.input_log_bytes())
    return RunOutcome(
        mode=mode,
        units=units,
        total_cycles=machine.total_cycles,
        outputs=outputs,
        exit_codes=exit_codes,
        final_memory_digest=digest,
        machine_stats=machine.stats_dict(),
        kernel_stats=kernel.stats.as_dict(),
        sphere_outputs=sphere_outputs,
        sphere_exit_codes=sphere_exit_codes,
        sphere_region=sphere_region,
        sphere_digest=sphere_digest,
        rsm_stats=rsm_stats,
        recording=recording,
        telemetry=telemetry,
        core_chunk_logs=core_chunk_logs,
        order_logs=order_logs,
    )


def record(program: Program, **kwargs) -> RunOutcome:
    """Run with the full Capo3 stack; the outcome carries a Recording."""
    kwargs.pop("mode", None)
    return simulate(program, mode=MODE_FULL, **kwargs)


def add_checkpoints(recording: Recording, every: int,
                    telemetry: Telemetry | None = None) -> Recording:
    """Embed periodic replay-state checkpoints into ``recording``.

    Runs one serial replay pass (which also validates the recording end to
    end) and snapshots deterministic replay state at every ``every``-th
    chunk-schedule position. The checkpoints ride along in the bundle
    (``checkpoints.bin``) and enable O(interval) seek and parallel replay.
    """
    from .capo.recording import FLIGHT_META_KEY
    from .replay.checkpoint import build_checkpoints
    # A flight window's position-0 record is its replay base, not a
    # periodic checkpoint — it must survive a (re)build.
    base = recording.checkpoint_at(0) \
        if FLIGHT_META_KEY in recording.metadata else None
    records = build_checkpoints(recording, every, telemetry=telemetry)
    recording.checkpoints = ([base] + records) if base is not None \
        else records
    return recording


def replay_recording(recording: Recording,
                     telemetry: Telemetry | None = None,
                     jobs: int = 1) -> ReplayResult:
    """Replay a recording from its logs alone.

    With ``jobs > 1`` and embedded checkpoints, replays checkpoint
    intervals in parallel worker processes, verifying state digests at
    every seam; the result is bit-identical to ``jobs=1``.
    """
    if jobs > 1:
        from .replay.parallel import replay_parallel
        result, _report = replay_parallel(recording=recording, jobs=jobs,
                                          telemetry=telemetry)
        return result
    from .replay.checkpoint import base_replayer
    return base_replayer(recording, telemetry=telemetry).run()


def verify(outcome: RunOutcome, replayed: ReplayResult) -> VerificationReport:
    """Compare a recorded run against its replay.

    Scopes to the replay sphere: with background processes, the compared
    digest is the sphere region's, the outputs are the sphere's writes,
    and the exit codes are the sphere's threads'.
    """
    if outcome.sphere_region is not None:
        return verify_replay(outcome.sphere_digest,
                             outcome.sphere_outputs or {},
                             outcome.sphere_exit_codes or {}, replayed,
                             use_region=True)
    return verify_replay(outcome.final_memory_digest, outcome.outputs,
                         outcome.exit_codes, replayed)


def record_and_replay(program: Program, **kwargs) -> tuple[
        RunOutcome, ReplayResult, VerificationReport]:
    """Record, replay, verify — the full round trip in one call."""
    outcome = record(program, **kwargs)
    replayed = replay_recording(outcome.recording)
    return outcome, replayed, verify(outcome, replayed)
