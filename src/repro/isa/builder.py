"""A macro-assembler eDSL for writing workloads in Python.

:class:`KernelBuilder` accumulates assembly source, providing structured
control flow, unique-label generation, and the synchronization macros the
SPLASH-style workloads need (test-and-test-and-set spinlocks, a
sense-reversing barrier, thread spawn). It emits plain text assembly and
delegates to :func:`repro.isa.assembler.assemble`, so anything the builder
produces can also be inspected, dumped, and reassembled by hand.

Example::

    b = KernelBuilder()
    b.word("counter", 0)
    b.label("main")
    with b.for_range("r4", 0, 100):
        b.ins("xadd", b.at("counter"), "r5")
    b.exit(0)
    program = b.build("example")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from .assembler import assemble
from .program import DEFAULT_DATA_BASE, Program

# Syscall numbers mirrored from repro.kernel.syscalls (kept literal here so
# the ISA layer does not depend on the kernel package).
SYS_EXIT = 1
SYS_WRITE = 2
SYS_READ = 3
SYS_SPAWN = 4
SYS_GETTID = 5
SYS_YIELD = 6
SYS_FUTEX_WAIT = 7
SYS_FUTEX_WAKE = 8
SYS_TIME = 9
SYS_OPEN = 10
SYS_CLOSE = 11
SYS_KILL = 12
SYS_SIGACTION = 13
SYS_SIGRETURN = 14
SYS_RANDOM = 15
SYS_NANOSLEEP = 16


class KernelBuilder:
    """Accumulates assembly text with macros and structured control flow."""

    def __init__(self, data_base: int = DEFAULT_DATA_BASE):
        self._data_lines: list[str] = []
        self._text_lines: list[str] = []
        self._data_base = data_base
        self._label_counter = 0

    # -- raw emission ------------------------------------------------------

    def ins(self, mnemonic: str, *operands: object) -> None:
        """Emit one instruction; operands may be ints, strings, or labels."""
        rendered = ", ".join(str(op) for op in operands)
        self._text_lines.append(f"    {mnemonic} {rendered}".rstrip())

    def raw(self, line: str) -> None:
        """Emit a raw line of assembly text verbatim."""
        self._text_lines.append(line)

    def comment(self, text: str) -> None:
        self._text_lines.append(f"    ; {text}")

    def label(self, name: str) -> str:
        self._text_lines.append(f"{name}:")
        return name

    def fresh(self, hint: str = "L") -> str:
        """Return a new unique label name (not yet placed)."""
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    # -- data segment --------------------------------------------------------

    def word(self, name: str, *values: object) -> str:
        rendered = ", ".join(str(v) for v in values) if values else "0"
        self._data_lines.append("    .align 4")
        self._data_lines.append(f"{name}: .word {rendered}")
        return name

    def space(self, name: str, size_bytes: int, fill: int = 0) -> str:
        self._data_lines.append("    .align 4")
        self._data_lines.append(f"{name}: .space {size_bytes}, {fill}")
        return name

    def words(self, name: str, values: Sequence[int]) -> str:
        """A named array of 32-bit words (chunked to keep lines short)."""
        self._data_lines.append("    .align 4")
        self._data_lines.append(f"{name}:")
        for start in range(0, len(values), 16):
            chunk = ", ".join(str(v) for v in values[start:start + 16])
            self._data_lines.append(f"    .word {chunk}")
        if not values:
            self._data_lines.append("    .word 0")
        return name

    def asciz(self, name: str, text: str) -> str:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        self._data_lines.append(f'{name}: .asciz "{escaped}"')
        return name

    def align(self, boundary: int = 64) -> None:
        self._data_lines.append(f"    .align {boundary}")

    @staticmethod
    def at(symbol: str, index: str | None = None, scale: int = 4, disp: int = 0) -> str:
        """Render a memory operand for a data symbol: ``[sym + idx*scale + d]``."""
        parts = [symbol]
        if index is not None:
            parts.append(f"{index}*{scale}" if scale != 1 else index)
        if disp:
            parts.append(str(disp))
        return "[" + " + ".join(parts) + "]"

    # -- structured control flow ---------------------------------------------

    @contextmanager
    def for_range(self, reg: str, start: object, stop: object,
                  step: int = 1) -> Iterator[None]:
        """``for reg in range(start, stop, step)`` — signed comparison.

        ``stop`` may be a register or an immediate/symbol.
        """
        head = self.fresh("for")
        end = self.fresh("endfor")
        self.ins("mov", reg, start)
        self.label(head)
        self.ins("cmp", reg, stop)
        self.ins("jge" if step > 0 else "jle", end)
        yield
        self.ins("add", reg, reg, step)
        self.ins("jmp", head)
        self.label(end)

    @contextmanager
    def while_nonzero(self, reg: str) -> Iterator[None]:
        """Loop while ``reg`` != 0 (tested at the top)."""
        head = self.fresh("while")
        end = self.fresh("endwhile")
        self.label(head)
        self.ins("test", reg, reg)
        self.ins("je", end)
        yield
        self.ins("jmp", head)
        self.label(end)

    @contextmanager
    def if_equal(self, a: str, b: object) -> Iterator[None]:
        """Execute the body only when ``a == b``."""
        skip = self.fresh("endif")
        self.ins("cmp", a, b)
        self.ins("jne", skip)
        yield
        self.label(skip)

    @contextmanager
    def if_not_equal(self, a: str, b: object) -> Iterator[None]:
        skip = self.fresh("endif")
        self.ins("cmp", a, b)
        self.ins("je", skip)
        yield
        self.label(skip)

    # -- synchronization macros ------------------------------------------------

    def spin_lock(self, lock_symbol: str, scratch: str = "r12") -> None:
        """Test-and-test-and-set acquire with ``pause`` in the spin loop."""
        acquire = self.fresh("lock_try")
        spin = self.fresh("lock_spin")
        got = self.fresh("lock_got")
        self.label(acquire)
        self.ins("mov", scratch, 1)
        self.ins("xchg", f"[{lock_symbol}]", scratch)
        self.ins("test", scratch, scratch)
        self.ins("je", got)
        self.label(spin)
        self.ins("pause")
        self.ins("load", scratch, f"[{lock_symbol}]")
        self.ins("test", scratch, scratch)
        self.ins("jne", spin)
        self.ins("jmp", acquire)
        self.label(got)

    def spin_unlock(self, lock_symbol: str) -> None:
        """Release: a plain store suffices under TSO."""
        self.ins("store", f"[{lock_symbol}]", 0)

    def barrier(self, barrier_symbol: str, nthreads: int,
                scratch: tuple[str, str] = ("r12", "r13")) -> None:
        """Sense-reversing centralized barrier.

        The barrier variable is two words: ``[sym]`` the arrival counter and
        ``[sym+4]`` the generation number. Declare it with
        ``builder.word(sym, 0, 0)``.
        """
        s0, s1 = scratch
        done = self.fresh("bar_done")
        spin = self.fresh("bar_spin")
        self.ins("load", s1, f"[{barrier_symbol} + 4]")
        self.ins("mov", s0, 1)
        self.ins("xadd", f"[{barrier_symbol}]", s0)
        self.ins("cmp", s0, nthreads - 1)
        with self.if_equal(s0, nthreads - 1):
            self.ins("store", f"[{barrier_symbol}]", 0)
            self.ins("add", s1, s1, 1)
            self.ins("store", f"[{barrier_symbol} + 4]", s1)
            self.ins("jmp", done)
        self.label(spin)
        self.ins("pause")
        self.ins("load", s0, f"[{barrier_symbol} + 4]")
        self.ins("cmp", s0, s1)
        self.ins("je", spin)
        self.label(done)

    # -- syscall helpers --------------------------------------------------------

    def syscall(self, number: int, *args: object) -> None:
        """Load the syscall number and up to 4 arguments, then trap.

        Clobbers rax and r1..r4. The return value lands in rax.
        """
        if len(args) > 4:
            raise ValueError("at most 4 syscall arguments")
        for position, arg in enumerate(args, start=1):
            self.ins("mov", f"r{position}", arg)
        self.ins("mov", "rax", number)
        self.ins("syscall")

    def exit(self, code: object = 0) -> None:
        self.syscall(SYS_EXIT, code)

    def write(self, fd: object, buf_symbol: str, length: object) -> None:
        self.syscall(SYS_WRITE, fd, buf_symbol, length)

    def spawn(self, entry_label: str, stack_top_expr: object, arg: object) -> None:
        """Create a thread at ``entry_label`` with the given stack top and arg.

        The child starts with ``sp`` = stack top, ``rdi`` = arg, everything
        else zero. The child's tid is returned in rax.
        """
        self.syscall(SYS_SPAWN, entry_label, stack_top_expr, arg)

    def futex_wait(self, addr_symbol: str, expected: object) -> None:
        self.syscall(SYS_FUTEX_WAIT, addr_symbol, expected)

    def futex_wake(self, addr_symbol: str, count: object) -> None:
        self.syscall(SYS_FUTEX_WAKE, addr_symbol, count)

    # -- assembly ----------------------------------------------------------------

    def source(self) -> str:
        lines = [".data"]
        lines.extend(self._data_lines)
        lines.append(".text")
        lines.extend(self._text_lines)
        return "\n".join(lines) + "\n"

    def build(self, name: str = "program", entry: str | None = None) -> Program:
        return assemble(self.source(), name=name,
                        data_base=self._data_base, entry=entry)
