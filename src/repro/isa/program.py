"""The assembled program image.

A program is Harvard-style: instructions live in their own instruction
memory addressed by index (the program counter is an instruction index),
while data lives in the byte-addressable physical memory starting at
``data_base``. Code labels therefore resolve to instruction indices and data
labels to byte addresses; both are plain integers by execution time.

Programs serialize to JSON-compatible dicts so a recording bundle can embed
the exact program it recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import LogFormatError
from .instructions import Instr
from .operands import Imm, Mem, Operand, Reg

DEFAULT_DATA_BASE = 0x1000


@dataclass(frozen=True)
class DataItem:
    """A named, typed blob in the data segment (for introspection)."""

    name: str
    address: int
    size: int


@dataclass(frozen=True)
class Program:
    """An executable image: code, initialized data, and symbols."""

    instructions: tuple[Instr, ...]
    data: bytes = b""
    data_base: int = DEFAULT_DATA_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    code_symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    name: str = "program"

    def __post_init__(self) -> None:
        if not 0 <= self.entry <= len(self.instructions):
            raise ValueError(f"entry {self.entry} outside code of "
                             f"{len(self.instructions)} instructions")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def data_end(self) -> int:
        """First byte address past the initialized data segment."""
        return self.data_base + len(self.data)

    def symbol(self, name: str) -> int:
        """Address of a data symbol or index of a code symbol."""
        if name in self.symbols:
            return self.symbols[name]
        if name in self.code_symbols:
            return self.code_symbols[name]
        raise KeyError(f"unknown symbol {name!r}")

    def listing(self) -> str:
        """A human-readable disassembly listing."""
        index_of_label = {idx: lbl for lbl, idx in self.code_symbols.items()}
        lines = []
        for idx, instr in enumerate(self.instructions):
            label = index_of_label.get(idx)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  {idx:5d}  {instr}")
        return "\n".join(lines)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "entry": self.entry,
            "data_base": self.data_base,
            "data_hex": self.data.hex(),
            "symbols": dict(self.symbols),
            "code_symbols": dict(self.code_symbols),
            "instructions": [_instr_to_dict(i) for i in self.instructions],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Program":
        try:
            return cls(
                instructions=tuple(_instr_from_dict(d) for d in payload["instructions"]),
                data=bytes.fromhex(payload["data_hex"]),
                data_base=payload["data_base"],
                symbols=dict(payload["symbols"]),
                code_symbols=dict(payload["code_symbols"]),
                entry=payload["entry"],
                name=payload.get("name", "program"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise LogFormatError(f"malformed program payload: {exc}") from exc


def _operand_to_dict(op: Operand) -> dict[str, Any]:
    if isinstance(op, Reg):
        return {"k": "r", "n": op.number}
    if isinstance(op, Imm):
        return {"k": "i", "v": op.value}
    if isinstance(op, Mem):
        return {"k": "m", "b": op.base, "x": op.index, "s": op.scale,
                "d": op.disp, "sym": op.symbol}
    raise TypeError(f"unknown operand type {type(op)!r}")


def _operand_from_dict(payload: dict[str, Any]) -> Operand:
    kind = payload.get("k")
    if kind == "r":
        return Reg(payload["n"])
    if kind == "i":
        return Imm(payload["v"])
    if kind == "m":
        return Mem(base=payload["b"], index=payload["x"], scale=payload["s"],
                   disp=payload["d"], symbol=payload.get("sym"))
    raise LogFormatError(f"unknown operand kind {kind!r}")


def _instr_to_dict(instr: Instr) -> dict[str, Any]:
    return {"m": instr.mnemonic, "ops": [_operand_to_dict(op) for op in instr.ops]}


def _instr_from_dict(payload: dict[str, Any]) -> Instr:
    return Instr(payload["m"], tuple(_operand_from_dict(d) for d in payload["ops"]))


def concat_data(items: Iterable[bytes]) -> bytes:
    """Join data blobs, for assembler/builder use."""
    return b"".join(items)
