"""Compact binary encoding of instructions and whole program images.

The JSON form (:meth:`Program.to_dict`) is the human-auditable format the
recording bundle uses; this module provides the dense alternative — a few
bytes per instruction — for embedding programs where size matters and for
tooling that wants a stable wire format.

Instruction layout::

    opcode        u8   (index into the sorted mnemonic table)
    per operand, by signature code:
      r           u8 register number
      v           u8 tag (0 = register, 1 = immediate) + payload
      t           varint immediate (instruction index)
      m           u8 flags (bit0 base, bit1 index, bits2-3 log2 scale)
                  + optional base u8 + optional index u8 + varint disp

Program layout::

    magic "QRPX"  version u8
    entry varint, data_base varint
    code:   varint count, then encoded instructions
    data:   varint length, raw bytes
    symbol tables (data, code): varint count, then
            (varint name length, name utf-8, varint value)
    name:   varint length, utf-8

Symbol display hints on memory operands (``Mem.symbol``) are not carried —
they are disassembly sugar; addresses are already folded into
displacements.
"""

from __future__ import annotations

from ..errors import LogFormatError
from .instructions import Instr, MNEMONICS
from .operands import Imm, Mem, Reg
from .program import Program

MAGIC = b"QRPX"
VERSION = 1

_OPCODE_TABLE = tuple(sorted(MNEMONICS))
_OPCODES = {mnemonic: code for code, mnemonic in enumerate(_OPCODE_TABLE)}

_TAG_REG = 0
_TAG_IMM = 1

_SCALE_CODES = {1: 0, 2: 1, 4: 2, 8: 3}
_SCALES = {code: scale for scale, code in _SCALE_CODES.items()}


def _varint(value: int) -> bytes:
    if value < 0:
        raise LogFormatError("varint requires non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(blob: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(blob):
            raise LogFormatError("truncated varint in program encoding")
        byte = blob[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


# -- instructions -------------------------------------------------------------

def encode_instr(instr: Instr) -> bytes:
    out = bytearray([_OPCODES[instr.mnemonic]])
    for code, op in zip(instr.spec.signature, instr.ops):
        if code == "r":
            out.append(op.number)
        elif code == "v":
            if isinstance(op, Reg):
                out.append(_TAG_REG)
                out.append(op.number)
            else:
                out.append(_TAG_IMM)
                out += _varint(op.value)
        elif code == "t":
            out += _varint(op.value)
        elif code == "m":
            flags = 0
            if op.base is not None:
                flags |= 1
            if op.index is not None:
                flags |= 2
            flags |= _SCALE_CODES[op.scale] << 2
            out.append(flags)
            if op.base is not None:
                out.append(op.base)
            if op.index is not None:
                out.append(op.index)
            out += _varint(op.disp)
    return bytes(out)


def decode_instr(blob: bytes, offset: int = 0) -> tuple[Instr, int]:
    if offset >= len(blob):
        raise LogFormatError("truncated instruction encoding")
    opcode = blob[offset]
    offset += 1
    if opcode >= len(_OPCODE_TABLE):
        raise LogFormatError(f"unknown opcode {opcode}")
    mnemonic = _OPCODE_TABLE[opcode]
    spec = MNEMONICS[mnemonic]
    ops = []
    for code in spec.signature:
        if code == "r":
            ops.append(Reg(blob[offset]))
            offset += 1
        elif code == "v":
            tag = blob[offset]
            offset += 1
            if tag == _TAG_REG:
                ops.append(Reg(blob[offset]))
                offset += 1
            elif tag == _TAG_IMM:
                value, offset = _read_varint(blob, offset)
                ops.append(Imm(value))
            else:
                raise LogFormatError(f"bad value-operand tag {tag}")
        elif code == "t":
            value, offset = _read_varint(blob, offset)
            ops.append(Imm(value))
        elif code == "m":
            flags = blob[offset]
            offset += 1
            base = index = None
            if flags & 1:
                base = blob[offset]
                offset += 1
            if flags & 2:
                index = blob[offset]
                offset += 1
            scale = _SCALES[(flags >> 2) & 3]
            disp, offset = _read_varint(blob, offset)
            ops.append(Mem(base=base, index=index, scale=scale, disp=disp))
    try:
        return Instr(mnemonic, tuple(ops)), offset
    except ValueError as exc:
        raise LogFormatError(f"malformed encoded instruction: {exc}") from exc


# -- programs -------------------------------------------------------------------

def _encode_symbols(symbols: dict[str, int]) -> bytes:
    out = bytearray(_varint(len(symbols)))
    for name in sorted(symbols):
        raw = name.encode("utf-8")
        out += _varint(len(raw))
        out += raw
        out += _varint(symbols[name])
    return bytes(out)


def _decode_symbols(blob: bytes, offset: int) -> tuple[dict[str, int], int]:
    count, offset = _read_varint(blob, offset)
    symbols: dict[str, int] = {}
    for _ in range(count):
        length, offset = _read_varint(blob, offset)
        if offset + length > len(blob):
            raise LogFormatError("truncated symbol name")
        name = blob[offset:offset + length].decode("utf-8")
        offset += length
        value, offset = _read_varint(blob, offset)
        symbols[name] = value
    return symbols, offset


def encode_program(program: Program) -> bytes:
    out = bytearray(MAGIC)
    out.append(VERSION)
    out += _varint(program.entry)
    out += _varint(program.data_base)
    out += _varint(len(program.instructions))
    for instr in program.instructions:
        out += encode_instr(instr)
    out += _varint(len(program.data))
    out += program.data
    out += _encode_symbols(program.symbols)
    out += _encode_symbols(program.code_symbols)
    raw_name = program.name.encode("utf-8")
    out += _varint(len(raw_name))
    out += raw_name
    return bytes(out)


def decode_program(blob: bytes) -> Program:
    if blob[:4] != MAGIC:
        raise LogFormatError("bad program encoding magic")
    if len(blob) < 5 or blob[4] != VERSION:
        raise LogFormatError("unsupported program encoding version")
    offset = 5
    entry, offset = _read_varint(blob, offset)
    data_base, offset = _read_varint(blob, offset)
    count, offset = _read_varint(blob, offset)
    instructions = []
    for _ in range(count):
        instr, offset = decode_instr(blob, offset)
        instructions.append(instr)
    data_len, offset = _read_varint(blob, offset)
    if offset + data_len > len(blob):
        raise LogFormatError("truncated data segment")
    data = blob[offset:offset + data_len]
    offset += data_len
    symbols, offset = _decode_symbols(blob, offset)
    code_symbols, offset = _decode_symbols(blob, offset)
    name_len, offset = _read_varint(blob, offset)
    if offset + name_len > len(blob):
        raise LogFormatError("truncated program name")
    name = blob[offset:offset + name_len].decode("utf-8")
    offset += name_len
    if offset != len(blob):
        raise LogFormatError("trailing bytes in program encoding")
    return Program(instructions=tuple(instructions), data=data,
                   data_base=data_base, symbols=symbols,
                   code_symbols=code_symbols, entry=entry, name=name)
