"""Two-pass text assembler for the IA-lite ISA.

Supported syntax::

    ; comment (also #)
    .data
    counter:  .word 0
    table:    .word 1, 2, 3, top        ; symbols allowed in .word
    buf:      .space 256
    msg:      .asciz "hello\\n"
              .align 64
    .text
    top:
        mov   r4, counter               ; bare symbol = its address/index
        load  r5, [r4]
        add   r5, r5, 1
        store [counter + r6*4], r5
        jne   top
        syscall

Code labels resolve to instruction indices, data labels to byte addresses.
The assembler is deliberately strict: unknown mnemonics, malformed operands,
duplicate or undefined labels are all hard errors with line numbers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import AssemblerError
from .instructions import ALIASES, Instr, MNEMONICS
from .operands import Imm, Mem, Reg, VALID_SCALES
from .program import DEFAULT_DATA_BASE, Program
from .registers import is_register_name, register_number

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.$]*):")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")


@dataclass
class _PendingInstr:
    mnemonic: str
    raw_ops: list[str]
    line: int


@dataclass
class _Assembly:
    instrs: list[_PendingInstr] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    data_symbols: dict[str, int] = field(default_factory=dict)
    code_symbols: dict[str, int] = field(default_factory=dict)
    word_fixups: list[tuple[int, str, int]] = field(default_factory=list)


def assemble(source: str, name: str = "program",
             data_base: int = DEFAULT_DATA_BASE,
             entry: str | None = None) -> Program:
    """Assemble ``source`` into a :class:`Program`.

    Args:
        source: assembly text.
        name: program name stored in the image.
        data_base: byte address where the data segment is loaded.
        entry: entry label; defaults to ``main`` if present, else index 0.

    Raises:
        AssemblerError: on any syntax or resolution problem.
    """
    asm = _parse(source)
    symbols = {lbl: data_base + off for lbl, off in asm.data_symbols.items()}
    duplicates = set(symbols) & set(asm.code_symbols)
    if duplicates:
        raise AssemblerError(f"labels defined in both segments: {sorted(duplicates)}")

    resolver = _Resolver(symbols, asm.code_symbols)
    instructions = tuple(resolver.resolve(pending) for pending in asm.instrs)

    data = bytearray(asm.data)
    for offset, sym, line in asm.word_fixups:
        value = resolver.lookup(sym, line)
        data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    entry_index = 0
    entry_label = entry if entry is not None else ("main" if "main" in asm.code_symbols else None)
    if entry_label is not None:
        if entry_label not in asm.code_symbols:
            raise AssemblerError(f"entry label {entry_label!r} not defined")
        entry_index = asm.code_symbols[entry_label]

    return Program(
        instructions=instructions,
        data=bytes(data),
        data_base=data_base,
        symbols=symbols,
        code_symbols=dict(asm.code_symbols),
        entry=entry_index,
        name=name,
    )


def _parse(source: str) -> _Assembly:
    asm = _Assembly()
    section = "text"
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw).strip()
        while True:
            match = _LABEL_RE.match(text)
            if not match:
                break
            label = match.group(1)
            _define_label(asm, section, label, line_no)
            text = text[match.end():].strip()
        if not text:
            continue
        if text.startswith("."):
            section = _directive(asm, section, text, line_no)
        else:
            _instruction(asm, section, text, line_no)
    return asm


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch in ";#" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _define_label(asm: _Assembly, section: str, label: str, line: int) -> None:
    table = asm.code_symbols if section == "text" else asm.data_symbols
    if label in asm.code_symbols or label in asm.data_symbols:
        raise AssemblerError(f"duplicate label {label!r}", line)
    table[label] = len(asm.instrs) if section == "text" else len(asm.data)


def _directive(asm: _Assembly, section: str, text: str, line: int) -> str:
    parts = text.split(None, 1)
    name = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if name == ".text":
        return "text"
    if name == ".data":
        return "data"
    if section != "data":
        raise AssemblerError(f"directive {name} only valid in .data section", line)
    if name == ".word":
        for item in _split_args(rest):
            value = _try_int(item)
            if value is None:
                if not _IDENT_RE.match(item):
                    raise AssemblerError(f"bad .word value {item!r}", line)
                asm.word_fixups.append((len(asm.data), item, line))
                asm.data.extend(b"\x00\x00\x00\x00")
            else:
                asm.data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
    elif name == ".byte":
        for item in _split_args(rest):
            value = _try_int(item)
            if value is None or not -128 <= value <= 255:
                raise AssemblerError(f"bad .byte value {item!r}", line)
            asm.data.append(value & 0xFF)
    elif name == ".space":
        args = _split_args(rest)
        if not 1 <= len(args) <= 2:
            raise AssemblerError(".space takes 1 or 2 arguments", line)
        count = _try_int(args[0])
        fill = _try_int(args[1]) if len(args) == 2 else 0
        if count is None or count < 0 or fill is None:
            raise AssemblerError(f"bad .space arguments {rest!r}", line)
        asm.data.extend(bytes([fill & 0xFF]) * count)
    elif name == ".asciz":
        asm.data.extend(_parse_string(rest, line) + b"\x00")
    elif name == ".ascii":
        asm.data.extend(_parse_string(rest, line))
    elif name == ".align":
        boundary = _try_int(rest.strip())
        if boundary is None or boundary <= 0 or boundary & (boundary - 1):
            raise AssemblerError(f"bad .align boundary {rest!r}", line)
        while len(asm.data) % boundary:
            asm.data.append(0)
    else:
        raise AssemblerError(f"unknown directive {name}", line)
    return section


def _instruction(asm: _Assembly, section: str, text: str, line: int) -> None:
    if section != "text":
        raise AssemblerError("instruction outside .text section", line)
    parts = text.split(None, 1)
    mnemonic = ALIASES.get(parts[0].lower(), parts[0].lower())
    if mnemonic not in MNEMONICS:
        raise AssemblerError(f"unknown mnemonic {parts[0]!r}", line)
    raw_ops = _split_args(parts[1]) if len(parts) > 1 else []
    asm.instrs.append(_PendingInstr(mnemonic, raw_ops, line))


def _split_args(text: str) -> list[str]:
    """Split on commas not inside brackets or strings."""
    args: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "[" and not in_string:
            depth += 1
        elif ch == "]" and not in_string:
            depth -= 1
        if ch == "," and depth == 0 and not in_string:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        args.append(tail)
    return args


def _parse_string(text: str, line: int) -> bytes:
    text = text.strip()
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblerError(f"expected quoted string, got {text!r}", line)
    body = text[1:-1]
    try:
        return body.encode("utf-8").decode("unicode_escape").encode("latin-1")
    except (UnicodeDecodeError, UnicodeEncodeError) as exc:
        raise AssemblerError(f"bad string literal: {exc}", line) from exc


def _try_int(text: str) -> int | None:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        return None


class _Resolver:
    """Pass-2 operand resolution against the symbol tables."""

    def __init__(self, data_symbols: dict[str, int], code_symbols: dict[str, int]):
        self._data = data_symbols
        self._code = code_symbols

    def lookup(self, name: str, line: int) -> int:
        if name in self._data:
            return self._data[name]
        if name in self._code:
            return self._code[name]
        raise AssemblerError(f"undefined symbol {name!r}", line)

    def resolve(self, pending: _PendingInstr) -> Instr:
        spec = MNEMONICS[pending.mnemonic]
        if len(pending.raw_ops) != spec.arity:
            raise AssemblerError(
                f"{pending.mnemonic} takes {spec.arity} operand(s), "
                f"got {len(pending.raw_ops)}", pending.line)
        ops = tuple(self._operand(code, raw, pending.line)
                    for code, raw in zip(spec.signature, pending.raw_ops))
        try:
            return Instr(pending.mnemonic, ops, source_line=pending.line)
        except ValueError as exc:
            raise AssemblerError(str(exc), pending.line) from exc

    def _operand(self, code: str, raw: str, line: int):
        raw = raw.strip()
        if code == "r":
            if not is_register_name(raw):
                raise AssemblerError(f"expected register, got {raw!r}", line)
            return Reg(register_number(raw))
        if code == "v":
            if is_register_name(raw):
                return Reg(register_number(raw))
            return Imm(self._value(raw, line))
        if code == "t":
            return Imm(self._value(raw, line))
        if code == "m":
            return self._memory(raw, line)
        raise AssemblerError(f"internal: bad signature code {code!r}", line)

    def _value(self, raw: str, line: int) -> int:
        number = _try_int(raw)
        if number is not None:
            return number
        if _IDENT_RE.match(raw):
            return self.lookup(raw, line)
        raise AssemblerError(f"expected value, got {raw!r}", line)

    def _memory(self, raw: str, line: int) -> Mem:
        if not (raw.startswith("[") and raw.endswith("]")):
            raise AssemblerError(f"expected memory operand, got {raw!r}", line)
        body = raw[1:-1].replace(" ", "").replace("-", "+-")
        terms = [t.strip() for t in body.split("+") if t.strip()]
        if not terms:
            raise AssemblerError("empty memory operand", line)
        base: int | None = None
        index: int | None = None
        scale = 1
        disp = 0
        symbol: str | None = None
        for term in terms:
            if "*" in term:
                reg_text, scale_text = (part.strip() for part in term.split("*", 1))
                if not is_register_name(reg_text):
                    raise AssemblerError(f"bad index register {reg_text!r}", line)
                if index is not None:
                    raise AssemblerError("two index registers in memory operand", line)
                parsed_scale = _try_int(scale_text)
                if parsed_scale not in VALID_SCALES:
                    raise AssemblerError(f"bad scale {scale_text!r}", line)
                index = register_number(reg_text)
                scale = parsed_scale
            elif is_register_name(term):
                if base is None:
                    base = register_number(term)
                elif index is None:
                    index = register_number(term)
                else:
                    raise AssemblerError("too many registers in memory operand", line)
            else:
                number = _try_int(term)
                if number is not None:
                    disp += number
                elif _IDENT_RE.match(term):
                    disp += self.lookup(term, line)
                    symbol = term
                else:
                    raise AssemblerError(f"bad memory term {term!r}", line)
        return Mem(base=base, index=index, scale=scale, disp=disp, symbol=symbol)
