"""Instruction definitions and static metadata.

Execution semantics live in :mod:`repro.machine.core`; this module defines
what an instruction *is* — its mnemonic, operand shape, and the static
properties the assembler, recorder and analysis passes need:

- which instructions are LOCK-prefixed atomics (they drain the store buffer
  and perform a bus-locked read-modify-write);
- which are ``rep``-style string instructions (multiple memory operations,
  interruptible between iterations);
- which produce nondeterministic values the software stack must log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .operands import Imm, Mem, Operand, Reg

# Operand-signature codes:
#   r  register
#   v  register or immediate (a "value" operand; labels fold to immediates)
#   m  memory reference
#   t  branch/call target (immediate instruction index after assembly)
_SIG_CODES = frozenset("rvmt")


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    signature: str
    is_branch: bool = False
    is_cond_branch: bool = False
    is_atomic: bool = False
    is_rep: bool = False
    is_nondet: bool = False
    is_fence: bool = False
    reads_mem: bool = False
    writes_mem: bool = False
    is_syscall: bool = False

    def __post_init__(self) -> None:
        for code in self.signature:
            if code not in _SIG_CODES:
                raise ValueError(f"bad signature code {code!r} in {self.mnemonic}")

    @property
    def arity(self) -> int:
        return len(self.signature)


def _spec(mnemonic: str, signature: str, **flags) -> InstrSpec:
    return InstrSpec(mnemonic, signature, **flags)


_ALU3 = ("add", "sub", "and", "or", "xor", "shl", "shr", "sar",
         "mul", "div", "mod")
_COND_BRANCHES = ("je", "jne", "jl", "jle", "jg", "jge",
                  "jb", "jbe", "ja", "jae", "js", "jns")

MNEMONICS: dict[str, InstrSpec] = {}


def _register(spec: InstrSpec) -> None:
    MNEMONICS[spec.mnemonic] = spec


_register(_spec("mov", "rv"))
_register(_spec("lea", "rm"))
_register(_spec("load", "rm", reads_mem=True))
_register(_spec("loadb", "rm", reads_mem=True))
_register(_spec("store", "mv", writes_mem=True))
_register(_spec("storeb", "mv", writes_mem=True))
_register(_spec("push", "v", writes_mem=True))
_register(_spec("pop", "r", reads_mem=True))

for _name in _ALU3:
    _register(_spec(_name, "rrv"))
_register(_spec("neg", "rr"))
_register(_spec("not", "rr"))
_register(_spec("cmp", "rv"))
_register(_spec("test", "rv"))

_register(_spec("jmp", "t", is_branch=True))
for _name in _COND_BRANCHES:
    _register(_spec(_name, "t", is_branch=True, is_cond_branch=True))
_register(_spec("call", "t", is_branch=True, writes_mem=True))
_register(_spec("ret", "", is_branch=True, reads_mem=True))

_register(_spec("xadd", "mr", is_atomic=True, is_fence=True,
                reads_mem=True, writes_mem=True))
_register(_spec("xchg", "mr", is_atomic=True, is_fence=True,
                reads_mem=True, writes_mem=True))
_register(_spec("cmpxchg", "mr", is_atomic=True, is_fence=True,
                reads_mem=True, writes_mem=True))
_register(_spec("mfence", "", is_fence=True))
_register(_spec("pause", ""))
_register(_spec("nop", ""))

_register(_spec("rep_movs", "", is_rep=True, reads_mem=True, writes_mem=True))
_register(_spec("rep_stos", "", is_rep=True, writes_mem=True))

_register(_spec("rdtsc", "r", is_nondet=True))
_register(_spec("rdrand", "r", is_nondet=True))
_register(_spec("cpuid", "r", is_nondet=True))

_register(_spec("syscall", "", is_syscall=True, is_fence=True))

# Assembler-level aliases (normalized before an Instr is built).
ALIASES = {"jz": "je", "jnz": "jne"}


@dataclass(frozen=True)
class Instr:
    """One assembled instruction.

    ``ops`` holds fully resolved operands (labels already folded into
    immediates / displacements). ``source_line`` points back into the
    assembly source for diagnostics.
    """

    mnemonic: str
    ops: tuple[Operand, ...] = ()
    source_line: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        spec = MNEMONICS.get(self.mnemonic)
        if spec is None:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        if len(self.ops) != spec.arity:
            raise ValueError(
                f"{self.mnemonic} takes {spec.arity} operand(s), got {len(self.ops)}")
        for code, op in zip(spec.signature, self.ops):
            _check_operand(self.mnemonic, code, op)

    @property
    def spec(self) -> InstrSpec:
        return MNEMONICS[self.mnemonic]

    def __str__(self) -> str:
        if not self.ops:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(op) for op in self.ops)


def _check_operand(mnemonic: str, code: str, op: Operand) -> None:
    ok = {
        "r": isinstance(op, Reg),
        "v": isinstance(op, (Reg, Imm)),
        "m": isinstance(op, Mem),
        "t": isinstance(op, Imm),
    }[code]
    if not ok:
        raise ValueError(f"{mnemonic}: operand {op!r} does not match code {code!r}")


def is_atomic(instr: Instr) -> bool:
    """True for LOCK-prefixed read-modify-write instructions."""
    return instr.spec.is_atomic


def is_rep(instr: Instr) -> bool:
    """True for string instructions that run one iteration per step."""
    return instr.spec.is_rep


def mem_ops_per_unit(instr: Instr) -> int:
    """Memory operations performed by one execution *unit* of ``instr``.

    A unit is a whole instruction, except for ``rep_*`` instructions where a
    unit is a single iteration (``rep_movs`` = one load + one store).
    Used by the recorder to maintain the sub-instruction memory-operation
    count that QuickRec logs when a chunk terminates mid-instruction.
    """
    if instr.mnemonic == "rep_movs":
        return 2
    if instr.mnemonic == "rep_stos":
        return 1
    spec = instr.spec
    count = 0
    if spec.reads_mem:
        count += 1
    if spec.writes_mem:
        count += 1
    return count
