"""The IA-lite instruction set: an x86-flavoured mini-ISA.

The ISA deliberately reproduces the x86 features that made QuickRec's
recording hardware interesting:

- LOCK-prefixed read-modify-write instructions (``xadd``, ``xchg``,
  ``cmpxchg``) and ``mfence``, which drain the store buffer;
- ``rep_movs``/``rep_stos`` string instructions that perform many memory
  operations per instruction and are interruptible between iterations, so a
  chunk can terminate *inside* an instruction;
- nondeterministic reads (``rdtsc``, ``rdrand``, ``cpuid``) whose results the
  Capo3 stack must log.

Programs are written either in text assembly (:mod:`repro.isa.assembler`)
or via the :class:`~repro.isa.builder.KernelBuilder` eDSL.
"""

from .registers import (
    NUM_REGS,
    RAX,
    RCX,
    RSI,
    RDI,
    SP,
    register_name,
    register_number,
)
from .operands import Imm, Mem, Reg
from .instructions import Instr, MNEMONICS, is_atomic, is_rep, mem_ops_per_unit
from .program import Program, DataItem
from .assembler import assemble
from .builder import KernelBuilder

__all__ = [
    "NUM_REGS",
    "RAX",
    "RCX",
    "RSI",
    "RDI",
    "SP",
    "register_name",
    "register_number",
    "Imm",
    "Mem",
    "Reg",
    "Instr",
    "MNEMONICS",
    "is_atomic",
    "is_rep",
    "mem_ops_per_unit",
    "Program",
    "DataItem",
    "assemble",
    "KernelBuilder",
]
