"""Instruction operands: registers, immediates, and memory references.

A memory operand follows the x86 addressing form

    [base + index * scale + displacement]

where ``base`` and ``index`` are optional registers, ``scale`` is 1, 2, 4 or
8, and ``displacement`` is a 32-bit constant. The assembler resolves symbol
references into the displacement before the program runs, so at execution
time an operand is fully numeric.
"""

from __future__ import annotations

from dataclasses import dataclass

from .registers import register_name

MASK32 = 0xFFFFFFFF
VALID_SCALES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand."""

    number: int

    def __str__(self) -> str:
        return register_name(self.number)


@dataclass(frozen=True)
class Imm:
    """A 32-bit immediate operand (stored as an unsigned value)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & MASK32)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]``.

    ``base`` and ``index`` are register numbers or ``None``. ``symbol`` is
    kept only for disassembly readability once the assembler has folded the
    symbol's address into ``disp``.
    """

    base: int | None = None
    index: int | None = None
    scale: int = 1
    disp: int = 0
    symbol: str | None = None

    def __post_init__(self) -> None:
        if self.scale not in VALID_SCALES:
            raise ValueError(f"invalid scale {self.scale}; must be one of {VALID_SCALES}")
        object.__setattr__(self, "disp", self.disp & MASK32)

    def effective_address(self, regs) -> int:
        """Compute the effective address given a register file (indexable)."""
        addr = self.disp
        if self.base is not None:
            addr += regs[self.base]
        if self.index is not None:
            addr += regs[self.index] * self.scale
        return addr & MASK32

    def __str__(self) -> str:
        parts: list[str] = []
        if self.base is not None:
            parts.append(register_name(self.base))
        if self.index is not None:
            term = register_name(self.index)
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        if self.symbol is not None:
            parts.append(self.symbol)
        elif self.disp or not parts:
            parts.append(str(self.disp))
        return "[" + " + ".join(parts) + "]"


Operand = Reg | Imm | Mem
