"""Architectural registers of the IA-lite machine.

Sixteen 32-bit general-purpose registers, ``r0`` .. ``r15``. A handful carry
x86-style aliases because instructions give them implicit roles:

========  =====  =========================================================
alias     reg    implicit role
========  =====  =========================================================
``rax``   r0     accumulator: ``cmpxchg`` comparand, ``rep_stos`` fill
                 value, syscall number and syscall return value
``rcx``   r1     ``rep_*`` iteration count; first syscall argument
``rsi``   r2     ``rep_movs`` source pointer; second syscall argument
``rdi``   r3     ``rep_movs``/``rep_stos`` destination; third syscall arg
``sp``    r15    stack pointer (``push``/``pop``/``call``/``ret``)
========  =====  =========================================================
"""

from __future__ import annotations

NUM_REGS = 16

RAX = 0
RCX = 1
RSI = 2
RDI = 3
SP = 15

_ALIASES = {
    "rax": RAX,
    "rcx": RCX,
    "rsi": RSI,
    "rdi": RDI,
    "sp": SP,
}

_ALIAS_BY_NUMBER = {number: alias for alias, number in _ALIASES.items()}


def register_number(name: str) -> int:
    """Parse a register name (``r7``, ``rax``, ``sp``) to its number.

    Raises:
        ValueError: if the name is not a register.
    """
    name = name.lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        number = int(name[1:])
        if 0 <= number < NUM_REGS:
            return number
    raise ValueError(f"not a register: {name!r}")


def register_name(number: int) -> str:
    """Render a register number with its alias when it has one."""
    if not 0 <= number < NUM_REGS:
        raise ValueError(f"register number out of range: {number}")
    return _ALIAS_BY_NUMBER.get(number, f"r{number}")


def is_register_name(name: str) -> bool:
    """True if ``name`` parses as a register."""
    try:
        register_number(name)
    except ValueError:
        return False
    return True
