"""Configuration objects for every subsystem.

All configs are frozen dataclasses: a configuration is a value, shared freely
between the machine, the recorder, and the replayer. The replayer must run
with the *same* machine/MRR configuration that produced a recording; the
configs are therefore serializable to/from plain dicts so they can be stored
inside a recording bundle.

The defaults model the QuickRec prototype at small scale: a 4-core QuickIA
machine (two FPGA-emulated Pentium cores per socket), per-core L1 caches kept
coherent with MESI over a snooping bus, TSO store buffers, and the MRR
recording hardware with 512-bit Bloom signatures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from .errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a per-core L1 data cache.

    The cache is used for two things: MESI coherence (which provides the
    snoop hook the MRR keys off) and miss accounting for the cycle model.
    """

    line_bytes: int = 64
    sets: int = 64
    ways: int = 4

    def __post_init__(self) -> None:
        _require(_is_pow2(self.line_bytes), "line_bytes must be a power of two")
        _require(_is_pow2(self.sets), "sets must be a power of two")
        _require(self.ways >= 1, "ways must be >= 1")

    @property
    def size_bytes(self) -> int:
        return self.line_bytes * self.sets * self.ways

    def line_of(self, addr: int) -> int:
        """Cache-line address (line-aligned byte address) containing addr."""
        return addr & ~(self.line_bytes - 1)

    def set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.sets


@dataclass(frozen=True)
class StoreBufferConfig:
    """TSO store buffer shape and drain behaviour.

    ``drain_period`` is the number of simulation steps between background
    drain opportunities; together with ``drain_burst`` it controls how long
    stores linger, which is the source of the RSW phenomenon QuickRec logs.
    A period of 1 with a large burst approximates a machine that drains
    eagerly (RSW almost always zero).
    """

    entries: int = 8
    drain_period: int = 3
    drain_burst: int = 1

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "store buffer needs at least one entry")
        _require(self.drain_period >= 1, "drain_period must be >= 1")
        _require(self.drain_burst >= 1, "drain_burst must be >= 1")


#: Coherence fabrics the machine can be built with. ``snoop`` is the
#: reference broadcast bus; ``directory`` tracks exact per-line sharer
#: sets and notifies only them — bit-identical by construction (pinned by
#: the lockstep suite and the soak lattice), O(sharers) per transaction.
COHERENCE_SNOOP = "snoop"
COHERENCE_DIRECTORY = "directory"
COHERENCE_MODELS = (COHERENCE_SNOOP, COHERENCE_DIRECTORY)


@dataclass(frozen=True)
class MachineConfig:
    """The simulated QuickIA machine."""

    num_cores: int = 4
    memory_bytes: int = 1 << 22
    cache: CacheConfig = field(default_factory=CacheConfig)
    store_buffer: StoreBufferConfig = field(default_factory=StoreBufferConfig)
    word_bytes: int = 4
    coherence: str = COHERENCE_SNOOP

    def __post_init__(self) -> None:
        _require(1 <= self.num_cores <= 64, "num_cores must be in [1, 64]")
        _require(self.memory_bytes % self.cache.line_bytes == 0,
                 "memory size must be a whole number of cache lines")
        _require(self.word_bytes in (4, 8), "word_bytes must be 4 or 8")
        _require(self.coherence in COHERENCE_MODELS,
                 f"coherence must be one of {COHERENCE_MODELS}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MachineConfig":
        data = dict(data)
        data["cache"] = CacheConfig(**data.get("cache", {}))
        data["store_buffer"] = StoreBufferConfig(**data.get("store_buffer", {}))
        return cls(**data)


class TsoMode:
    """How the MRR copes with stores pending at chunk termination.

    ``RSW``   — log the reordered-store-window count (the QuickRec design).
    ``DRAIN`` — stall chunk termination until the store buffer drains
                (the strawman QuickRec avoids; used by the A3 ablation).
    """

    RSW = "rsw"
    DRAIN = "drain"

    ALL = (RSW, DRAIN)


@dataclass(frozen=True)
class MRRConfig:
    """The Memory Race Recorder hardware block, one instance per core."""

    signature_bits: int = 512
    signature_hashes: int = 2
    max_chunk_instructions: int = 64 * 1024
    cbuf_entries: int = 256
    tso_mode: str = TsoMode.RSW
    # Proactively cut a chunk when a signature passes this fill fraction
    # (keeps the Bloom false-positive rate bounded). 1.0 disables.
    saturation_threshold: float = 0.75
    # Debug aid: log a rolling hash of load values per chunk so the
    # replayer can pinpoint the first diverging chunk.
    log_load_hash: bool = False

    def __post_init__(self) -> None:
        _require(_is_pow2(self.signature_bits), "signature_bits must be a power of two")
        _require(1 <= self.signature_hashes <= 8, "signature_hashes must be in [1, 8]")
        _require(self.max_chunk_instructions >= 1, "max_chunk_instructions must be >= 1")
        _require(self.cbuf_entries >= 2, "cbuf_entries must be >= 2")
        _require(self.tso_mode in TsoMode.ALL, f"unknown tso_mode {self.tso_mode!r}")
        _require(0.0 < self.saturation_threshold <= 1.0,
                 "saturation_threshold must be in (0, 1]")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MRRConfig":
        return cls(**data)


@dataclass(frozen=True)
class KernelConfig:
    """The miniature OS model (the substrate Capo3 runs in)."""

    quantum_instructions: int = 5_000
    stack_bytes_per_thread: int = 16 * 1024
    max_threads: int = 64
    timeslice_jitter: int = 0

    def __post_init__(self) -> None:
        _require(self.quantum_instructions >= 10, "quantum too small to schedule")
        _require(self.stack_bytes_per_thread >= 256, "stack too small")
        _require(self.max_threads >= 1, "need at least one thread")
        _require(self.timeslice_jitter >= 0, "jitter must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KernelConfig":
        return cls(**data)


#: Log format versions a bundle may select (``decode`` negotiates by the
#: stream header, so every reader accepts both).
LOG_VERSIONS = (1, 2)


@dataclass(frozen=True)
class CapoConfig:
    """The Capo3 software stack (Replay Sphere Manager) behaviour.

    ``input_batch_events`` selects rr-style batched input logging: events
    are staged in per-thread buffers of this many entries and drained at
    chunk/kernel boundaries, amortizing the per-event interposition charge
    across each batch. 0 keeps the per-event path (and its legacy cycle
    accounting; the logs themselves are bit-identical either way).

    ``input_log_version`` / ``chunk_log_version`` pick the serialization
    format a bundle is *written* in (1 = row-packed, 2 = columnar
    delta-varint with streaming zlib); loading negotiates from the stream
    headers, so either setting reads both.

    ``flight_window`` > 0 selects the bounded-memory flight-recorder mode
    (iReplayer-style black box): only the last ``flight_window`` epochs of
    ``flight_epoch_chunks`` chunks each are retained in a ring, older
    epochs are discarded in O(1), and the retained window materializes as
    a self-contained recording rebased to the window origin. 0 keeps the
    unbounded log. Execution is bit-identical either way — the ring is an
    observer, never a participant.
    """

    compress_chunk_log: bool = True
    log_copy_to_user: bool = True
    drain_on_context_switch: bool = True
    input_batch_events: int = 0
    input_log_version: int = 1
    chunk_log_version: int = 1
    flight_window: int = 0
    flight_epoch_chunks: int = 64

    def __post_init__(self) -> None:
        _require(self.input_batch_events >= 0,
                 "input_batch_events must be >= 0 (0 disables batching)")
        _require(self.flight_window >= 0,
                 "flight_window must be >= 0 (0 disables the flight ring)")
        _require(self.flight_epoch_chunks >= 1,
                 "flight_epoch_chunks must be >= 1")
        _require(self.input_log_version in LOG_VERSIONS,
                 f"input_log_version must be one of {LOG_VERSIONS}")
        _require(self.chunk_log_version in LOG_VERSIONS,
                 f"chunk_log_version must be one of {LOG_VERSIONS}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CapoConfig":
        return cls(**data)


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability opt-in (see :mod:`repro.telemetry`).

    Telemetry is strictly observational: enabling it never changes the
    executed instructions, the interleaving, the logs or the cycle
    accounting — only whether trace events and metrics are collected.
    ``sampling`` thins the per-step machine events (1 = every step); the
    coarse events (chunks, syscalls, CBUF drains) are never sampled.
    """

    enabled: bool = False
    sampling: int = 64

    def __post_init__(self) -> None:
        _require(self.sampling >= 1, "sampling must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryConfig":
        return cls(**data)


@dataclass(frozen=True)
class SimConfig:
    """Everything needed to build a recordable machine, in one value."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    mrr: MRRConfig = field(default_factory=MRRConfig)
    kernel: KernelConfig = field(default_factory=KernelConfig)
    capo: CapoConfig = field(default_factory=CapoConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine.to_dict(),
            "mrr": self.mrr.to_dict(),
            "kernel": self.kernel.to_dict(),
            "capo": self.capo.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimConfig":
        return cls(
            machine=MachineConfig.from_dict(data["machine"]),
            mrr=MRRConfig.from_dict(data["mrr"]),
            kernel=KernelConfig.from_dict(data["kernel"]),
            capo=CapoConfig.from_dict(data["capo"]),
            # absent in bundles recorded before the telemetry subsystem
            telemetry=TelemetryConfig.from_dict(data.get("telemetry", {})),
        )


DEFAULT_CONFIG = SimConfig()
