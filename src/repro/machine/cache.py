"""Per-core L1 cache with MESI coherence states.

The cache tracks *states*, not data (see :mod:`repro.machine.memory`). Its
job is to decide which accesses require a bus transaction — the events the
Memory Race Recorder snoops — and to feed the miss counters of the cycle
model.

MESI invariant relied on by the recorder (argued in DESIGN.md): every
cross-core communication involves at least one bus transaction, so silent
(transaction-free) hits can never hide a true conflict.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import CacheConfig

MODIFIED = "M"
EXCLUSIVE = "E"
SHARED = "S"

# Access classifications returned by classify_write/classify_read.
HIT = "hit"
MISS = "miss"
UPGRADE = "upgrade"


@dataclass
class CacheStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    upgrades: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations_received: int = 0
    downgrades_received: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class MESICache:
    """Set-associative MESI state cache with LRU replacement."""

    config: CacheConfig
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        # One LRU-ordered dict per set: line address -> state.
        self._sets: list[OrderedDict[int, str]] = [
            OrderedDict() for _ in range(self.config.sets)
        ]
        # Optional hook called with a line address whenever this cache
        # drops a copy outside a snoop (LRU eviction, flush_all). The
        # directory fabric attaches it to keep exact sharer sets; None
        # under the snooping bus (evictions never narrow presence).
        self.evict_listener = None
        # line_bytes and sets are validated powers of two, so set selection
        # is a shift+mask — same result as CacheConfig.set_index for the
        # non-negative addresses the machine produces.
        self._line_shift = self.config.line_bytes.bit_length() - 1
        self._set_mask = self.config.sets - 1

    def _set_for(self, line: int) -> OrderedDict[int, str]:
        return self._sets[(line >> self._line_shift) & self._set_mask]

    def state(self, line: int) -> str | None:
        """MESI state of a line, or None if not cached (Invalid)."""
        return self._set_for(line).get(line)

    def classify_read(self, line: int) -> str:
        """HIT (M/E/S, no transaction) or MISS (needs a BusRd)."""
        entry_set = self._set_for(line)
        if line in entry_set:
            entry_set.move_to_end(line)
            self.stats.read_hits += 1
            return HIT
        self.stats.read_misses += 1
        return MISS

    def classify_write(self, line: int) -> str:
        """HIT (M/E, silent), UPGRADE (S, needs BusUpgr) or MISS (BusRdX)."""
        entry_set = self._set_for(line)
        state = entry_set.get(line)
        if state in (MODIFIED, EXCLUSIVE):
            entry_set.move_to_end(line)
            entry_set[line] = MODIFIED
            self.stats.write_hits += 1
            return HIT
        if state == SHARED:
            entry_set.move_to_end(line)
            self.stats.upgrades += 1
            return UPGRADE
        self.stats.write_misses += 1
        return MISS

    def fill(self, line: int, state: str) -> bool:
        """Insert a line after a bus transaction; returns True if a modified
        victim was written back."""
        entry_set = self._set_for(line)
        wrote_back = False
        if line not in entry_set and len(entry_set) >= self.config.ways:
            victim, victim_state = entry_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_state == MODIFIED:
                self.stats.writebacks += 1
                wrote_back = True
            if self.evict_listener is not None:
                self.evict_listener(victim)
        entry_set[line] = state
        entry_set.move_to_end(line)
        return wrote_back

    def snoop_remote_read(self, line: int) -> bool:
        """Another core issued BusRd. Downgrade M/E to S.

        Returns True if this cache held the line at all (so the requester
        must fill in Shared rather than Exclusive).
        """
        entry_set = self._set_for(line)
        state = entry_set.get(line)
        if state is None:
            return False
        if state in (MODIFIED, EXCLUSIVE):
            if state == MODIFIED:
                self.stats.writebacks += 1
            entry_set[line] = SHARED
            self.stats.downgrades_received += 1
        return True

    def snoop_remote_write(self, line: int) -> bool:
        """Another core issued BusRdX/BusUpgr. Invalidate.

        Returns True if a modified copy was flushed.
        """
        entry_set = self._set_for(line)
        state = entry_set.pop(line, None)
        if state is None:
            return False
        self.stats.invalidations_received += 1
        if state == MODIFIED:
            self.stats.writebacks += 1
            return True
        return False

    def flush_all(self) -> None:
        """Drop every line (states only; memory already holds the data)."""
        for entry_set in self._sets:
            if self.evict_listener is not None:
                for line in entry_set:
                    self.evict_listener(line)
            entry_set.clear()

    def cached_lines(self) -> dict[int, str]:
        """All cached lines and their states (for tests and debugging)."""
        merged: dict[int, str] = {}
        for entry_set in self._sets:
            merged.update(entry_set)
        return merged
