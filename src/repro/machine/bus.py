"""The serializing snoop bus.

Every coherence transaction (read miss, write miss, upgrade) passes through
here, in a single global order — the simulator's equivalent of the QuickIA
front-side bus. Two kinds of agents observe transactions:

- the other cores' caches, which downgrade or invalidate their copies
  (MESI); and
- *snoopers* — the per-core Memory Race Recorders — which test the line
  against their signatures and may terminate their current chunk, returning
  the terminated chunk's timestamp so the requester can raise its Lamport
  clock above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .cache import EXCLUSIVE, MESICache, MODIFIED, SHARED

# Module-level default for presence-based snoop filtering; the MESI
# invariant suite flips this off to compare filtered and unfiltered runs.
SNOOP_FILTER_DEFAULT = True


class Snooper(Protocol):
    """A bus observer (the MRR). Returns the timestamp of a chunk it
    terminated because of this transaction, or None."""

    def snoop(self, line: int, is_write: bool) -> int | None: ...


@dataclass
class BusStats:
    transactions: int = 0
    reads: int = 0
    read_exclusives: int = 0
    upgrades: int = 0
    flushes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass(slots=True)
class BusResult:
    """Outcome of one transaction."""

    fill_state: str
    victim_timestamps: list[int] = field(default_factory=list)
    flushed: bool = False


class SnoopBus:
    """Serializes coherence transactions across ``num_cores`` agents."""

    def __init__(self, num_cores: int, filter_snoops: bool | None = None):
        self.num_cores = num_cores
        self._caches: list[MESICache | None] = [None] * num_cores
        self._snoopers: list[Snooper | None] = [None] * num_cores
        self.stats = BusStats()
        # Monotonic transaction sequence, usable as an idealized global clock
        # (the timestamp_piggyback=False ablation).
        self.sequence = 0
        if filter_snoops is None:
            filter_snoops = SNOOP_FILTER_DEFAULT
        self.filter_snoops = filter_snoops
        # Conservative per-line presence summary: bit c set means core c
        # *may* hold the line. Lines with no transaction history default to
        # "anyone may hold it" (tests pre-fill caches directly, bypassing
        # the bus). A bit is cleared only by a remote-write transaction —
        # which invalidates that core's copy AND snoops its recorder in the
        # same transaction — and is never cleared on eviction, so the
        # summary is always a superset of the true holder set and of every
        # line in any recorder signature (pinned by the MESI invariant
        # suite). Always maintained, even with filtering off.
        self._all_mask = (1 << num_cores) - 1
        self._presence: dict[int, int] = {}

    def presence_mask(self, line: int) -> int:
        """The conservative holder bitmask for ``line``."""
        return self._presence.get(line, self._all_mask)

    def attach_cache(self, core_id: int, cache: MESICache) -> None:
        self._caches[core_id] = cache

    def attach_snooper(self, core_id: int, snooper: Snooper | None) -> None:
        self._snoopers[core_id] = snooper

    def transaction(self, requester: int, line: int, is_write: bool,
                    upgrade: bool = False) -> BusResult:
        """Run one transaction and notify caches and snoopers.

        ``upgrade`` marks a Shared-to-Modified upgrade (the requester already
        holds the line; no data transfer, but invalidations and snooping
        still occur).
        """
        self.stats.transactions += 1
        self.sequence += 1
        if upgrade:
            self.stats.upgrades += 1
        elif is_write:
            self.stats.read_exclusives += 1
        else:
            self.stats.reads += 1

        # Presence-filtered snooping: cores whose presence bit is clear can
        # hold neither the line (their copy was invalidated by the write
        # that cleared the bit) nor a signature entry for it (that same
        # transaction snooped their recorder, and a true member always
        # tests positive, terminating the chunk and clearing the
        # signatures). Skipping them is therefore a no-op — they would
        # mutate no cache state, no stats, and no recorder state. The
        # filtered mask is read once, before any update, so a transaction
        # never filters on its own effects.
        present = (self._presence.get(line, self._all_mask)
                   if self.filter_snoops else self._all_mask)

        # One pass per core: the cache snoop and the recorder snoop touch
        # disjoint state, so interleaving them per-core is observably
        # identical to two passes (victim order is still ascending core id).
        shared = False
        flushed = False
        victims: list[int] = []
        snoopers = self._snoopers
        for core_id, cache in enumerate(self._caches):
            if core_id == requester or not present & (1 << core_id):
                continue
            if cache is not None:
                if is_write:
                    flushed |= cache.snoop_remote_write(line)
                elif cache.snoop_remote_read(line):
                    shared = True
            snooper = snoopers[core_id]
            if snooper is not None:
                timestamp = snooper.snoop(line, is_write)
                if timestamp is not None:
                    victims.append(timestamp)
        if flushed:
            self.stats.flushes += 1

        if is_write:
            # Everyone else was just invalidated — and, crucially, also
            # snooped: any recorder whose signature held the line has just
            # terminated its chunk and cleared its signatures. Only now is
            # clearing their presence bits sound.
            self._presence[line] = 1 << requester
        else:
            # Reads only ADD the requester: a core that evicted the line
            # may still carry it in a chunk signature, and narrowing to the
            # caches that answered the BusRd would stop snooping that
            # recorder — missing a later WAR conflict. Bits are cleared by
            # writes alone.
            self._presence[line] = present | (1 << requester)

        if is_write:
            fill_state = MODIFIED
        else:
            fill_state = SHARED if shared else EXCLUSIVE
        return BusResult(fill_state=fill_state, victim_timestamps=victims,
                         flushed=flushed)
