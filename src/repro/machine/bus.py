"""The coherence fabric: a serializing snoop bus, and a directory model.

Every coherence transaction (read miss, write miss, upgrade) passes through
here, in a single global order — the simulator's equivalent of the QuickIA
front-side bus. Two kinds of agents observe transactions:

- the other cores' caches, which downgrade or invalidate their copies
  (MESI); and
- *snoopers* — the per-core Memory Race Recorders — which test the line
  against their signatures and may terminate their current chunk, returning
  the terminated chunk's timestamp so the requester can raise its Lamport
  clock above it.

Two fabrics implement that contract (selected by ``MachineConfig.
coherence``):

- :class:`SnoopBus` — the reference broadcast fabric: every transaction
  architecturally reaches all other agents (``num_cores - 1`` snoops),
  with the conservative presence filter skipping the provable no-ops.
- :class:`DirectoryBus` — a home-node directory that additionally keeps
  the *exact* per-line sharer set (maintained on fill and eviction) and
  notifies caches point-to-point, O(sharers) instead of O(num_cores).
  Recorder notifications deliberately stay presence-based — see the class
  docstring for why anything tighter would break bit-identity.

The fabric also owns ``order_clock``, the globally synchronized
chunk-timestamp source: the interconnect is the one serialization point
every chunk termination already passes through, so the clock lives here
rather than in a machine-global counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .cache import EXCLUSIVE, MESICache, MODIFIED, SHARED

# Module-level default for presence-based snoop filtering; the MESI
# invariant suite flips this off to compare filtered and unfiltered runs.
SNOOP_FILTER_DEFAULT = True


class Snooper(Protocol):
    """A bus observer (the MRR). Returns the timestamp of a chunk it
    terminated because of this transaction, or None."""

    def snoop(self, line: int, is_write: bool) -> int | None: ...


@dataclass
class BusStats:
    transactions: int = 0
    reads: int = 0
    read_exclusives: int = 0
    upgrades: int = 0
    flushes: int = 0
    #: Point-to-point agent notifications actually delivered. The snooping
    #: fabric broadcasts, so here this equals ``broadcast_snoops``; the
    #: directory delivers O(sharers) and the difference lands in
    #: ``notifies_saved``.
    notifies_sent: int = 0
    #: What a broadcast fabric would have delivered: (num_cores - 1) per
    #: transaction. Identical workloads produce identical values under
    #: both fabrics, which is what makes the saved ratio comparable.
    broadcast_snoops: int = 0
    #: broadcast_snoops - notifies_sent (0 on the snooping bus).
    notifies_saved: int = 0
    #: Directory only: histogram of exact cache-sharer-set sizes per
    #: transaction (requester excluded). Empty on the snooping bus.
    sharer_hist: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["sharer_hist"] = dict(self.sharer_hist)
        return out


@dataclass(slots=True)
class BusResult:
    """Outcome of one transaction."""

    fill_state: str
    victim_timestamps: list[int] = field(default_factory=list)
    flushed: bool = False


class SnoopBus:
    """Serializes coherence transactions across ``num_cores`` agents."""

    def __init__(self, num_cores: int, filter_snoops: bool | None = None):
        self.num_cores = num_cores
        self._caches: list[MESICache | None] = [None] * num_cores
        self._snoopers: list[Snooper | None] = [None] * num_cores
        self.stats = BusStats()
        # Monotonic transaction sequence, usable as an idealized global clock
        # (the timestamp_piggyback=False ablation).
        self.sequence = 0
        # Globally synchronized chunk-timestamp source — the simulator's
        # stand-in for the invariant TSC the prototype reads at chunk
        # termination. The interconnect is the serialization point every
        # termination already synchronizes with, so the clock lives here.
        # Strictly increasing across all cores: replay's
        # (timestamp, rthread) sort reproduces real termination order and
        # every cross-chunk dependency is respected by construction.
        self.order_clock = 0
        # Hoisted broadcast fan-out for the notify accounting.
        self._broadcast = num_cores - 1
        if filter_snoops is None:
            filter_snoops = SNOOP_FILTER_DEFAULT
        self.filter_snoops = filter_snoops
        # Conservative per-line presence summary: bit c set means core c
        # *may* hold the line. Lines with no transaction history default to
        # "anyone may hold it" (tests pre-fill caches directly, bypassing
        # the bus). A bit is cleared only by a remote-write transaction —
        # which invalidates that core's copy AND snoops its recorder in the
        # same transaction — and is never cleared on eviction, so the
        # summary is always a superset of the true holder set and of every
        # line in any recorder signature (pinned by the MESI invariant
        # suite). Always maintained, even with filtering off.
        self._all_mask = (1 << num_cores) - 1
        self._presence: dict[int, int] = {}

    def presence_mask(self, line: int) -> int:
        """The conservative holder bitmask for ``line``."""
        return self._presence.get(line, self._all_mask)

    def next_chunk_timestamp(self) -> int:
        self.order_clock += 1
        return self.order_clock

    def attach_cache(self, core_id: int, cache: MESICache) -> None:
        self._caches[core_id] = cache

    def attach_snooper(self, core_id: int, snooper: Snooper | None) -> None:
        self._snoopers[core_id] = snooper

    def transaction(self, requester: int, line: int, is_write: bool,
                    upgrade: bool = False) -> BusResult:
        """Run one transaction and notify caches and snoopers.

        ``upgrade`` marks a Shared-to-Modified upgrade (the requester already
        holds the line; no data transfer, but invalidations and snooping
        still occur).
        """
        self.stats.transactions += 1
        self.sequence += 1
        if upgrade:
            self.stats.upgrades += 1
        elif is_write:
            self.stats.read_exclusives += 1
        else:
            self.stats.reads += 1
        # A shared bus is architecturally a broadcast: every other agent
        # observes the transaction, whether or not the presence filter lets
        # the simulator skip the provable no-op callbacks.
        self.stats.notifies_sent += self._broadcast
        self.stats.broadcast_snoops += self._broadcast

        # Presence-filtered snooping: cores whose presence bit is clear can
        # hold neither the line (their copy was invalidated by the write
        # that cleared the bit) nor a signature entry for it (that same
        # transaction snooped their recorder, and a true member always
        # tests positive, terminating the chunk and clearing the
        # signatures). Skipping them is therefore a no-op — they would
        # mutate no cache state, no stats, and no recorder state. The
        # filtered mask is read once, before any update, so a transaction
        # never filters on its own effects.
        present = (self._presence.get(line, self._all_mask)
                   if self.filter_snoops else self._all_mask)

        # One pass per core: the cache snoop and the recorder snoop touch
        # disjoint state, so interleaving them per-core is observably
        # identical to two passes (victim order is still ascending core id).
        shared = False
        flushed = False
        victims: list[int] = []
        snoopers = self._snoopers
        for core_id, cache in enumerate(self._caches):
            if core_id == requester or not present & (1 << core_id):
                continue
            if cache is not None:
                if is_write:
                    flushed |= cache.snoop_remote_write(line)
                elif cache.snoop_remote_read(line):
                    shared = True
            snooper = snoopers[core_id]
            if snooper is not None:
                timestamp = snooper.snoop(line, is_write)
                if timestamp is not None:
                    victims.append(timestamp)
        if flushed:
            self.stats.flushes += 1

        if is_write:
            # Everyone else was just invalidated — and, crucially, also
            # snooped: any recorder whose signature held the line has just
            # terminated its chunk and cleared its signatures. Only now is
            # clearing their presence bits sound.
            self._presence[line] = 1 << requester
        else:
            # Reads only ADD the requester: a core that evicted the line
            # may still carry it in a chunk signature, and narrowing to the
            # caches that answered the BusRd would stop snooping that
            # recorder — missing a later WAR conflict. Bits are cleared by
            # writes alone.
            self._presence[line] = present | (1 << requester)

        if is_write:
            fill_state = MODIFIED
        else:
            fill_state = SHARED if shared else EXCLUSIVE
        return BusResult(fill_state=fill_state, victim_timestamps=victims,
                         flushed=flushed)


class DirectoryBus(SnoopBus):
    """Directory (home-node) coherence: notify exact sharers, not everyone.

    Alongside the conservative ``_presence`` summary the directory keeps
    the *exact* cache-holder set per line — ``_sharers`` — maintained at
    the three points a copy can appear or disappear: transaction fills
    (the requester gains the line), remote-write invalidation (everyone
    else loses it; folded into the write-path update), and eviction
    (:meth:`note_eviction`, wired to each cache's ``evict_listener``).
    Lines with no history default to "everyone", exactly like presence,
    because tests pre-fill caches without going through a bus transaction.
    The invariant ``sharers ⊆ presence`` (modulo the untracked default)
    and ``sharers ⊇ true holders`` is pinned by the lockstep suite.

    Who gets notified:

    - **Caches**: only cores in the exact sharer set. A cache snoop on a
      non-holder is a pure no-op (no state change, no stats), so skipping
      it is bit-identical — same argument as the presence filter, with a
      tight set instead of a superset.
    - **Recorders**: every core in the *presence* set, exactly as the
      snooping bus does. This set cannot be tightened further: a Bloom
      signature can false-positive on a line the recorder never truly
      touched, so a core that evicted the line (out of the sharer set,
      still in presence) may still terminate its chunk on this snoop.
      Skipping it would change which chunks get cut — not bit-identical.
      The directory models this as the home node forwarding the
      transaction to every core whose recorder may hold the line in a
      signature, which is precisely what presence summarizes.

    Per-transaction work is O(popcount(presence)) — set-bit iteration
    instead of the reference fabric's O(num_cores) scan — and the notify
    counters record the point-to-point messages actually sent versus the
    broadcast a shared bus would have cost.
    """

    def __init__(self, num_cores: int, filter_snoops: bool | None = None):
        super().__init__(num_cores, filter_snoops)
        # Exact per-line cache-holder set; same untracked default as
        # presence ("anyone may hold it").
        self._sharers: dict[int, int] = {}

    def sharer_mask(self, line: int) -> int:
        """The exact cache-holder bitmask for ``line``."""
        return self._sharers.get(line, self._all_mask)

    def attach_cache(self, core_id: int, cache: MESICache) -> None:
        super().attach_cache(core_id, cache)
        # Evictions are the one holder-set change the transaction stream
        # cannot see; the cache reports them so the sharer set stays exact.
        cache.evict_listener = (
            lambda line, _cid=core_id: self.note_eviction(_cid, line))

    def note_eviction(self, core_id: int, line: int) -> None:
        """``core_id`` dropped its copy of ``line`` (eviction/flush)."""
        self._sharers[line] = (self._sharers.get(line, self._all_mask)
                               & ~(1 << core_id))

    def transaction(self, requester: int, line: int, is_write: bool,
                    upgrade: bool = False) -> BusResult:
        stats = self.stats
        stats.transactions += 1
        self.sequence += 1
        if upgrade:
            stats.upgrades += 1
        elif is_write:
            stats.read_exclusives += 1
        else:
            stats.reads += 1

        # Same filtered-superset semantics (and the same read-before-update
        # ordering) as the snooping bus; filtering off degrades to
        # broadcast, preserving the ablation.
        all_mask = self._all_mask
        present = (self._presence.get(line, all_mask)
                   if self.filter_snoops else all_mask)
        req_bit = 1 << requester
        notify = present & ~req_bit
        sharers = self._sharers.get(line, all_mask)
        cache_mask = notify & sharers

        sent = notify.bit_count()
        broadcast = self._broadcast
        stats.notifies_sent += sent
        stats.broadcast_snoops += broadcast
        stats.notifies_saved += broadcast - sent
        hist = stats.sharer_hist
        holders = cache_mask.bit_count()
        hist[holders] = hist.get(holders, 0) + 1

        # Walk only the set bits, ascending core id (lowest bit first), so
        # victim order matches the reference fabric's ascending scan.
        shared = False
        flushed = False
        victims: list[int] = []
        caches = self._caches
        snoopers = self._snoopers
        mask = notify
        while mask:
            low = mask & -mask
            mask ^= low
            core_id = low.bit_length() - 1
            if low & cache_mask:
                cache = caches[core_id]
                if cache is not None:
                    if is_write:
                        flushed |= cache.snoop_remote_write(line)
                    elif cache.snoop_remote_read(line):
                        shared = True
            snooper = snoopers[core_id]
            if snooper is not None:
                timestamp = snooper.snoop(line, is_write)
                if timestamp is not None:
                    victims.append(timestamp)
        if flushed:
            stats.flushes += 1

        if is_write:
            # All other copies were invalidated (and their recorders
            # snooped) in this transaction; the requester is now the sole
            # holder for both summaries.
            self._presence[line] = req_bit
            self._sharers[line] = req_bit
        else:
            self._presence[line] = present | req_bit
            self._sharers[line] = sharers | req_bit

        if is_write:
            fill_state = MODIFIED
        else:
            fill_state = SHARED if shared else EXCLUSIVE
        return BusResult(fill_state=fill_state, victim_timestamps=victims,
                         flushed=flushed)
