"""The serializing snoop bus.

Every coherence transaction (read miss, write miss, upgrade) passes through
here, in a single global order — the simulator's equivalent of the QuickIA
front-side bus. Two kinds of agents observe transactions:

- the other cores' caches, which downgrade or invalidate their copies
  (MESI); and
- *snoopers* — the per-core Memory Race Recorders — which test the line
  against their signatures and may terminate their current chunk, returning
  the terminated chunk's timestamp so the requester can raise its Lamport
  clock above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from .cache import EXCLUSIVE, MESICache, MODIFIED, SHARED


class Snooper(Protocol):
    """A bus observer (the MRR). Returns the timestamp of a chunk it
    terminated because of this transaction, or None."""

    def snoop(self, line: int, is_write: bool) -> int | None: ...


@dataclass
class BusStats:
    transactions: int = 0
    reads: int = 0
    read_exclusives: int = 0
    upgrades: int = 0
    flushes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


@dataclass
class BusResult:
    """Outcome of one transaction."""

    fill_state: str
    victim_timestamps: list[int] = field(default_factory=list)
    flushed: bool = False


class SnoopBus:
    """Serializes coherence transactions across ``num_cores`` agents."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self._caches: list[MESICache | None] = [None] * num_cores
        self._snoopers: list[Snooper | None] = [None] * num_cores
        self.stats = BusStats()
        # Monotonic transaction sequence, usable as an idealized global clock
        # (the timestamp_piggyback=False ablation).
        self.sequence = 0

    def attach_cache(self, core_id: int, cache: MESICache) -> None:
        self._caches[core_id] = cache

    def attach_snooper(self, core_id: int, snooper: Snooper | None) -> None:
        self._snoopers[core_id] = snooper

    def transaction(self, requester: int, line: int, is_write: bool,
                    upgrade: bool = False) -> BusResult:
        """Run one transaction and notify caches and snoopers.

        ``upgrade`` marks a Shared-to-Modified upgrade (the requester already
        holds the line; no data transfer, but invalidations and snooping
        still occur).
        """
        self.stats.transactions += 1
        self.sequence += 1
        if upgrade:
            self.stats.upgrades += 1
        elif is_write:
            self.stats.read_exclusives += 1
        else:
            self.stats.reads += 1

        shared = False
        flushed = False
        for core_id, cache in enumerate(self._caches):
            if core_id == requester or cache is None:
                continue
            if is_write:
                flushed |= cache.snoop_remote_write(line)
            else:
                if cache.snoop_remote_read(line):
                    shared = True
        if flushed:
            self.stats.flushes += 1

        victims: list[int] = []
        for core_id, snooper in enumerate(self._snoopers):
            if core_id == requester or snooper is None:
                continue
            timestamp = snooper.snoop(line, is_write)
            if timestamp is not None:
                victims.append(timestamp)

        if is_write:
            fill_state = MODIFIED
        else:
            fill_state = SHARED if shared else EXCLUSIVE
        return BusResult(fill_state=fill_state, victim_timestamps=victims,
                         flushed=flushed)
