"""The multicore machine: cores, caches, store buffers, bus, memory.

The machine provides mechanism only — it steps whichever core it is told
to step and keeps coherence, store-buffer drains and cycle accounting
honest. Policy (which core runs which task, when to preempt) belongs to the
OS model in :mod:`repro.kernel`.

Determinism contract: the sequence of architectural state transitions is a
pure function of (program, machine config, sequence of step_core calls).
Recording hardware and cost accounting never influence it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import COHERENCE_DIRECTORY, MachineConfig
from ..errors import MachineFault
from ..isa.program import Program
from ..perf.costmodel import DEFAULT_COST_MODEL, CostModel
from ..telemetry import NULL_TELEMETRY, Telemetry
from .bus import DirectoryBus, SnoopBus
from .cache import MESICache, MISS as CACHE_MISS, MODIFIED, UPGRADE
from .core import OUTCOME_OK, Engine
from .memory import PhysicalMemory
from .store_buffer import (
    RESOLVE_CONFLICT,
    RESOLVE_HIT,
    StoreBuffer,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from ..mrr.recorder import MemoryRaceRecorder


class Core:
    """One core: engine + store buffer + cache + optional recorder."""

    def __init__(self, core_id: int, machine: "Machine"):
        self.core_id = core_id
        self.machine = machine
        self.engine: Engine | None = None
        self.store_buffer = StoreBuffer(machine.config.store_buffer.entries)
        self.cache = MESICache(machine.config.cache)
        self.recorder: "MemoryRaceRecorder | None" = None
        self.port = _RecordPort(self)
        self.cycles = 0
        # The kernel's bookkeeping slot: the task currently dispatched here.
        self.task = None
        # Hot-path hoists (all fixed for the machine's lifetime).
        self._line_mask = ~(machine.config.cache.line_bytes - 1)
        self._store_drain_cost = machine.cost.store_drain

    @property
    def idle(self) -> bool:
        return self.task is None

    def set_program(self, program: Program) -> None:
        self.engine = Engine(program)

    # -- store buffer drains -------------------------------------------------

    def drain_one(self) -> None:
        """Make the oldest buffered store globally visible."""
        machine = self.machine
        entry = self.store_buffer.pop_oldest()
        line = entry.addr & self._line_mask
        classification = self.cache.classify_write(line)
        if classification == CACHE_MISS:
            machine.bus_transaction(self, line, is_write=True)
        elif classification == UPGRADE:
            machine.bus_transaction(self, line, is_write=True, upgrade=True)
        memory = machine.memory
        if entry.size == 4:
            memory.write_word(entry.addr, entry.value)
        else:
            memory.write_byte(entry.addr, entry.value)
        self.cycles += self._store_drain_cost
        if machine._tm_enabled:
            machine._tm_drains.inc()
        if self.recorder is not None:
            self.recorder.on_store_drain(line)

    def drain_all(self) -> None:
        entries = self.store_buffer._entries
        while entries:
            self.drain_one()


class _RecordPort:
    """The engine's memory port during normal (recordable) execution:
    TSO store buffer in front of a MESI cache on the snoop bus."""

    def __init__(self, core: Core):
        self._core = core
        machine = core.machine
        self._machine = machine
        self._memory = machine.memory
        self._sb = core.store_buffer
        self._cache = core.cache
        self._line_mask = ~(machine.config.cache.line_bytes - 1)
        self._atomic_extra = machine.cost.atomic_extra

    def load(self, addr: int, size: int) -> int:
        core = self._core
        status, value = self._sb.resolve(addr, size)
        line = addr & self._line_mask
        recorder = core.recorder
        if status == RESOLVE_HIT:
            if recorder is not None:
                recorder.on_load(line)
            return value  # type: ignore[return-value]
        if status == RESOLVE_CONFLICT:
            core.drain_all()
        if self._cache.classify_read(line) == CACHE_MISS:
            self._machine.bus_transaction(core, line, is_write=False)
        if recorder is not None:
            recorder.on_load(line)
        if size == 4:
            return self._memory.read_word(addr)
        return self._memory.read_byte(addr)

    def store(self, addr: int, size: int, value: int) -> None:
        sb = self._sb
        if sb.full:
            self._core.drain_one()
        sb.push(addr, size, value)

    def fence(self) -> None:
        if self._sb._entries:
            self._core.drain_all()

    def atomic_load(self, addr: int, size: int) -> int:
        """First half of a bus-locked RMW: take exclusive ownership, read."""
        core = self._core
        line = addr & self._line_mask
        classification = self._cache.classify_write(line)
        if classification == CACHE_MISS:
            self._machine.bus_transaction(core, line, is_write=True)
        elif classification == UPGRADE:
            self._machine.bus_transaction(core, line, is_write=True, upgrade=True)
        core.cycles += self._atomic_extra
        if core.recorder is not None:
            core.recorder.on_atomic_read(line)
        if size == 4:
            return self._memory.read_word(addr)
        return self._memory.read_byte(addr)

    def atomic_store(self, addr: int, size: int, value: int) -> None:
        """Second half of a bus-locked RMW: line is already Modified."""
        core = self._core
        line = addr & self._line_mask
        if size == 4:
            self._memory.write_word(addr, value)
        else:
            self._memory.write_byte(addr, value)
        if core.recorder is not None:
            core.recorder.on_atomic_write(line)


class Machine:
    """The QuickIA box: ``num_cores`` cores over one snoop bus."""

    def __init__(self, config: MachineConfig | None = None,
                 cost: CostModel | None = None,
                 telemetry: Telemetry | None = None):
        self.config = config or MachineConfig()
        self.cost = cost or DEFAULT_COST_MODEL
        self.telemetry = telemetry or NULL_TELEMETRY
        self.memory = PhysicalMemory(self.config.memory_bytes)
        # Module-global class references so test fixtures can swap in
        # checked subclasses by monkeypatching this module's names.
        if self.config.coherence == COHERENCE_DIRECTORY:
            self.bus = DirectoryBus(self.config.num_cores)
        else:
            self.bus = SnoopBus(self.config.num_cores)
        self.cores = [Core(core_id, self) for core_id in range(self.config.num_cores)]
        for core in self.cores:
            self.bus.attach_cache(core.core_id, core.cache)
        self.global_step = 0
        self.program: Program | None = None
        # True while a bus transaction is being processed. Recorder
        # termination-time drains (DRAIN tso mode) are forbidden inside a
        # transaction: they would issue nested transactions and break the
        # outer one's atomicity (e.g. two Modified copies of a line).
        self.in_bus_transaction = False
        # Hot-path hoists: read once, fixed for the machine's lifetime. The
        # telemetry flag in particular keeps the disabled case zero-cost in
        # step_core/after_unit/drain paths (one attribute read, no
        # singleton-object chasing).
        self._tm_enabled = self.telemetry.enabled
        self._tm_sampling = self.telemetry.sampling
        self._unit_cost = self.cost.unit
        self._cost_l1_miss = self.cost.l1_miss
        self._cost_upgrade = self.cost.upgrade
        self._cost_writeback = self.cost.writeback
        self._drain_period = self.config.store_buffer.drain_period
        self._drain_burst = self.config.store_buffer.drain_burst
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            self._tm_bus_reads = metrics.counter("machine.bus_reads")
            self._tm_bus_writes = metrics.counter("machine.bus_writes")
            self._tm_bus_upgrades = metrics.counter("machine.bus_upgrades")
            self._tm_drains = metrics.counter("machine.store_drains")
            self._tm_copy_lines = metrics.counter("machine.coherent_copy_lines")

    def next_chunk_timestamp(self) -> int:
        """Next chunk timestamp, from the fabric's serialized order clock
        (see ``SnoopBus.order_clock``; the recorder inlines this bump)."""
        return self.bus.next_chunk_timestamp()

    def load_program(self, program: Program) -> None:
        """Load the data segment and point every core's engine at the code."""
        self.program = program
        self.memory.load_blob(program.data_base, program.data)
        for core in self.cores:
            core.set_program(program)

    def attach_recorder(self, core_id: int, recorder) -> None:
        self.cores[core_id].recorder = recorder
        self.bus.attach_snooper(core_id, recorder)

    def detach_recorders(self) -> None:
        for core in self.cores:
            core.recorder = None
            self.bus.attach_snooper(core.core_id, None)

    # -- transactions ---------------------------------------------------------

    def bus_transaction(self, core: Core, line: int, is_write: bool,
                        upgrade: bool = False) -> None:
        self.in_bus_transaction = True
        try:
            result = self.bus.transaction(core.core_id, line, is_write, upgrade)
        finally:
            self.in_bus_transaction = False
        core.cycles += self._cost_upgrade if upgrade else self._cost_l1_miss
        if result.flushed:
            core.cycles += self._cost_writeback
        if core.cache.fill(line, MODIFIED if is_write else result.fill_state):
            core.cycles += self._cost_writeback
        if core.recorder is not None and result.victim_timestamps:
            core.recorder.observe_victims(result.victim_timestamps)
        if self._tm_enabled:
            telemetry = self.telemetry
            if upgrade:
                self._tm_bus_upgrades.inc()
            elif is_write:
                self._tm_bus_writes.inc()
            else:
                self._tm_bus_reads.inc()
            transactions = (self._tm_bus_reads.value + self._tm_bus_writes.value
                            + self._tm_bus_upgrades.value)
            if transactions % telemetry.sampling == 0:
                telemetry.tracer.instant(
                    "bus.txn", cat="machine", tid=core.core_id,
                    args={"line": line, "write": is_write,
                          "upgrade": upgrade,
                          "victims": len(result.victim_timestamps)})

    def coherent_copy(self, core: Core, addr: int, data: bytes) -> None:
        """Kernel copy-to-user performed through ``core``'s cache.

        Each touched line is acquired exclusively (so racing user accesses
        on other cores are conflict-detected by their recorders) and the
        copy joins the current chunk's write set — ordering the data as if
        written at the start of the thread's next chunk, which is where the
        replayer injects it.
        """
        if not data:
            return
        line_bytes = self.config.cache.line_bytes
        first = self.config.cache.line_of(addr)
        last = self.config.cache.line_of(addr + len(data) - 1)
        for line in range(first, last + line_bytes, line_bytes):
            classification = core.cache.classify_write(line)
            if classification == CACHE_MISS:
                self.bus_transaction(core, line, is_write=True)
            elif classification == UPGRADE:
                self.bus_transaction(core, line, is_write=True, upgrade=True)
            if core.recorder is not None:
                core.recorder.on_copy_write(line)
            if self._tm_enabled:
                self._tm_copy_lines.inc()
        self.memory.write(addr, data)

    def coherent_read(self, core: Core, addr: int, size: int) -> bytes:
        """Kernel copy-from-user performed through ``core``'s cache.

        Symmetric to :meth:`coherent_copy`: each line joins the current
        chunk's *read* set, so a racing remote store is ordered against the
        kernel's read of the buffer — which is what lets the replayer
        reconstruct output data (e.g. write() payloads) exactly even when
        another thread races the buffer.
        """
        if size <= 0:
            return b""
        line_bytes = self.config.cache.line_bytes
        first = self.config.cache.line_of(addr)
        last = self.config.cache.line_of(addr + size - 1)
        for line in range(first, last + line_bytes, line_bytes):
            if core.cache.classify_read(line) == CACHE_MISS:
                self.bus_transaction(core, line, is_write=False)
            if core.recorder is not None:
                core.recorder.on_copy_read(line)
        return self.memory.read(addr, size)

    # -- stepping ---------------------------------------------------------------

    def step_core(self, core_id: int) -> str:
        """Execute one unit on ``core_id`` and run post-unit housekeeping.

        The compiled-dispatch indexing from ``Engine.step`` is inlined here
        (same bounds check, same fault) to drop one call layer from the
        per-unit path; engines without a decode cache go through
        ``Engine.step`` unchanged.
        """
        core = self.cores[core_id]
        engine = core.engine
        if engine is None:
            raise MachineFault("no program loaded", core_id=core_id)
        dispatch = engine._dispatch
        try:
            if dispatch is not None:
                pc = engine.pc
                if not 0 <= pc < len(dispatch):
                    raise MachineFault(f"pc {pc} outside code", pc=pc)
                outcome = dispatch[pc](engine, core.port)
                if outcome is None:
                    outcome = OUTCOME_OK
            else:
                outcome = engine.step(core.port)
        except MachineFault as fault:
            fault.core_id = core_id
            raise
        core.cycles += self._unit_cost
        # Inline of after_unit() — one less call on the per-unit path. The
        # recorder call is further gated on the (rare) fused condition under
        # which MemoryRaceRecorder.after_unit would do anything at all: size
        # cap reached or a signature past the saturation threshold. The
        # callee re-derives which applies, in its documented priority order.
        step = self.global_step + 1
        self.global_step = step
        recorder = core.recorder
        if (recorder is not None and recorder.rthread is not None
                and (engine.retired >= recorder._icnt_limit
                     or (recorder._sat_enabled
                         and (recorder.read_sig.bits_set
                              >= recorder._sat_min_bits
                              or recorder.write_sig.bits_set
                              >= recorder._sat_min_bits)))):
            recorder.after_unit()
        if step % self._drain_period == 0:
            self._drain_all_cores()
        if self._tm_enabled and step % self._tm_sampling == 0:
            self._sample_step_counters()
        return outcome

    def after_unit(self, core: Core) -> None:
        """Post-unit housekeeping (kept callable for engines stepped
        outside :meth:`step_core`; that method inlines this body)."""
        step = self.global_step + 1
        self.global_step = step
        recorder = core.recorder
        if recorder is not None:
            recorder.after_unit()
        if step % self._drain_period == 0:
            self._drain_all_cores()
        if self._tm_enabled and step % self._tm_sampling == 0:
            self._sample_step_counters()

    def _sample_step_counters(self) -> None:
        tracer = self.telemetry.tracer
        tracer.counter("machine.cycles",
                       {f"core{c.core_id}": c.cycles for c in self.cores},
                       cat="machine")
        tracer.counter("machine.retired",
                       {f"core{c.core_id}": c.engine.retired
                        for c in self.cores if c.engine is not None},
                       cat="machine")

    def idle_tick(self) -> None:
        """Advance time when no core is runnable (tasks blocked/sleeping)."""
        self.global_step += 1
        if self.global_step % self._drain_period == 0:
            self._drain_all_cores()

    def _drain_all_cores(self) -> None:
        """One background-drain tick: each core drains up to ``drain_burst``
        buffered stores (the TSO store buffers' passage of time).

        Reads the buffers' entry deque directly: this runs every
        ``drain_period`` units and the buffers are almost always empty, so
        the emptiness probe must not cost a property call per core.
        """
        burst = self._drain_burst
        for core in self.cores:
            entries = core.store_buffer._entries
            if not entries:
                continue
            drain_one = core.drain_one
            for _ in range(burst):
                if not entries:
                    break
                drain_one()

    # -- introspection --------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(core.cycles for core in self.cores)

    def stats_dict(self) -> dict:
        return {
            "global_steps": self.global_step,
            "total_cycles": self.total_cycles,
            "bus": self.bus.stats.as_dict(),
            "cores": [
                {
                    "cycles": core.cycles,
                    "retired": core.engine.retired if core.engine else 0,
                    "loads": core.engine.loads if core.engine else 0,
                    "stores": core.engine.stores if core.engine else 0,
                    "cache": core.cache.stats.as_dict(),
                }
                for core in self.cores
            ],
        }
