"""Deterministic interleaving policies.

The simulator advances one core at a time; the interleaver picks which.
Given the same seed, an interleaver reproduces the same choices, so a whole
recorded run is a pure function of (program, config, seeds) — which is what
lets the test suite demand that *replay from the logs alone* (no seeds)
reproduces the run.

Different policies stress the recorder differently: ``random`` maximizes
fine-grained races, ``bursty`` creates longer chunks with abrupt conflict
storms, ``rr`` is the most cache-friendly.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..errors import ConfigError


class Interleaver(Protocol):
    """Chooses the next core to step among those with runnable work."""

    def choose(self, candidates: Sequence[int]) -> int: ...


class RandomInterleaver:
    """Uniformly random choice each step."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._getrandbits = self._rng.getrandbits

    def choose(self, candidates: Sequence[int]) -> int:
        n = len(candidates)
        if n == 1:
            return candidates[0]
        # Inline of Random.randrange(n)'s rejection sampling (CPython's
        # _randbelow_with_getrandbits): consumes exactly the same random
        # bits, so recordings stay bit-identical to randrange-based runs,
        # without randrange's per-call argument processing.
        getrandbits = self._getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        return candidates[r]


class RoundRobinInterleaver:
    """Strict rotation over whichever cores are currently runnable."""

    def __init__(self, seed: int = 0):
        self._last = -1

    def choose(self, candidates: Sequence[int]) -> int:
        for candidate in candidates:
            if candidate > self._last:
                self._last = candidate
                return candidate
        self._last = candidates[0]
        return candidates[0]


class BurstyInterleaver:
    """Stays on one core for a random burst, then switches.

    Produces long conflict-free runs punctuated by communication bursts —
    the access pattern where chunking pays off most.
    """

    def __init__(self, seed: int = 0, min_burst: int = 20, max_burst: int = 400):
        if min_burst < 1 or max_burst < min_burst:
            raise ConfigError("need 1 <= min_burst <= max_burst")
        self._rng = random.Random(seed)
        self._min = min_burst
        self._max = max_burst
        self._current: int | None = None
        self._remaining = 0

    def choose(self, candidates: Sequence[int]) -> int:
        if self._current in candidates and self._remaining > 0:
            self._remaining -= 1
            return self._current
        self._current = candidates[self._rng.randrange(len(candidates))]
        self._remaining = self._rng.randint(self._min, self._max) - 1
        return self._current


_POLICIES = {
    "random": RandomInterleaver,
    "rr": RoundRobinInterleaver,
    "bursty": BurstyInterleaver,
}


def make_interleaver(policy: str = "random", seed: int = 0) -> Interleaver:
    """Build an interleaver by policy name (``random``, ``rr``, ``bursty``)."""
    if policy not in _POLICIES:
        raise ConfigError(f"unknown interleaving policy {policy!r}; "
                          f"choose from {sorted(_POLICIES)}")
    return _POLICIES[policy](seed)
