"""The IA-lite execution engine.

:class:`Engine` interprets instructions one *unit* at a time against a
:class:`MemoryPort`. A unit is a whole instruction, except for ``rep_*``
string instructions where a unit is one iteration — exactly like x86, the
architectural registers (``rcx``/``rsi``/``rdi``) advance per iteration and
the program counter stays put, so a partially executed string instruction
is resumable from architectural state alone. Chunks can therefore terminate
mid-instruction, which is the situation QuickRec's sub-instruction
memory-operation count exists for.

The engine is memory-system-agnostic: the recording machine plugs in a port
backed by a store buffer, cache and bus, while the replayer plugs in a port
backed by its withheld-store FIFO. Both see identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from ..errors import IllegalInstructionError, MachineFault
from ..isa.instructions import Instr
from ..isa.operands import Imm, Mem, Reg
from ..isa.program import Program
from ..isa.registers import NUM_REGS, RAX, RCX, RDI, RSI, SP

MASK32 = 0xFFFFFFFF
_HASH_MASK = (1 << 64) - 1
_FNV_PRIME = 0x100000001B3

OUTCOME_OK = "ok"
OUTCOME_SYSCALL = "syscall"
OUTCOME_NONDET = "nondet"

# Module-level default for the decode cache (see repro.machine.decode).
# The interpretive path is kept as a debug/reference implementation; the
# equivalence property suite flips this off to run both paths in lockstep.
DECODE_CACHE_DEFAULT = True


class MemoryPort(Protocol):
    """The engine's window onto memory. All addresses are byte addresses;
    ``size`` is 1 or 4 and word accesses are aligned (the engine checks)."""

    def load(self, addr: int, size: int) -> int: ...
    def store(self, addr: int, size: int, value: int) -> None: ...
    def fence(self) -> None: ...
    def atomic_load(self, addr: int, size: int) -> int: ...
    def atomic_store(self, addr: int, size: int, value: int) -> None: ...


@dataclass(frozen=True)
class EngineContext:
    """Per-thread architectural state saved across context switches."""

    regs: tuple[int, ...]
    pc: int
    zf: int
    sf: int
    cf: int
    of: int
    cur_memops: int

    def to_dict(self) -> dict:
        return {"regs": list(self.regs), "pc": self.pc, "zf": self.zf,
                "sf": self.sf, "cf": self.cf, "of": self.of,
                "cur_memops": self.cur_memops}

    @classmethod
    def from_dict(cls, data: dict) -> "EngineContext":
        return cls(regs=tuple(data["regs"]), pc=data["pc"], zf=data["zf"],
                   sf=data["sf"], cf=data["cf"], of=data["of"],
                   cur_memops=data["cur_memops"])


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


class Engine:
    """Architectural state plus the instruction interpreter."""

    def __init__(self, program: Program, decode_cache: bool | None = None):
        if decode_cache is None:
            decode_cache = DECODE_CACHE_DEFAULT
        self._decode_cache = decode_cache
        self.program = program  # property: also binds the dispatch table
        self.regs: list[int] = [0] * NUM_REGS
        self.pc = program.entry
        self.zf = 0
        self.sf = 0
        self.cf = 0
        self.of = 0
        # Monotonic count of completed (retired) instructions.
        self.retired = 0
        # Memory operations completed by the in-flight rep instruction;
        # zero whenever no instruction is partially executed.
        self.cur_memops = 0
        # Rolling hash over loaded values, reset per chunk by the recorder;
        # lets the replayer pinpoint divergence to a chunk.
        self.load_hash = 0
        self.loads = 0
        self.stores = 0

    @property
    def program(self) -> Program:
        return self._program

    @program.setter
    def program(self, program: Program) -> None:
        """Point the engine at ``program`` and rebind the dispatch table.

        The kernel reassigns this on every task dispatch, so the compiled
        table must follow the program; :func:`decoded_program` memoizes per
        program object, making the common same-program case a dict hit.
        """
        self._program = program
        if self._decode_cache:
            from .decode import decoded_program
            self._dispatch = decoded_program(program)
        else:
            self._dispatch = None

    # -- context save/restore ------------------------------------------------

    def snapshot_arch(self) -> dict:
        """Complete architectural state as a JSON-able dict.

        Unlike :meth:`save_context` (the signal-delivery subset), this is
        the *full* deterministic engine state: retirement and memop
        counters, the per-chunk load hash, and the load/store totals.
        ``restore_arch`` of this dict onto a fresh engine for the same
        program reproduces execution bit-for-bit — the per-core half of
        the checkpoint protocol.
        """
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "zf": self.zf, "sf": self.sf, "cf": self.cf, "of": self.of,
            "retired": self.retired,
            "cur_memops": self.cur_memops,
            "load_hash": self.load_hash,
            "loads": self.loads,
            "stores": self.stores,
        }

    def restore_arch(self, state: dict) -> None:
        self.regs = [value & MASK32 for value in state["regs"]]
        self.pc = state["pc"]
        self.zf, self.sf = state["zf"], state["sf"]
        self.cf, self.of = state["cf"], state["of"]
        self.retired = state["retired"]
        self.cur_memops = state["cur_memops"]
        self.load_hash = state["load_hash"]
        self.loads = state["loads"]
        self.stores = state["stores"]

    def save_context(self) -> EngineContext:
        return EngineContext(regs=tuple(self.regs), pc=self.pc, zf=self.zf,
                             sf=self.sf, cf=self.cf, of=self.of,
                             cur_memops=self.cur_memops)

    def restore_context(self, ctx: EngineContext) -> None:
        self.regs = list(ctx.regs)
        self.pc = ctx.pc
        self.zf, self.sf, self.cf, self.of = ctx.zf, ctx.sf, ctx.cf, ctx.of
        self.cur_memops = ctx.cur_memops

    # -- operand helpers -----------------------------------------------------

    def value_of(self, op) -> int:
        if isinstance(op, Reg):
            return self.regs[op.number]
        if isinstance(op, Imm):
            return op.value
        raise IllegalInstructionError(f"operand {op!r} is not a value")

    def ea(self, op: Mem) -> int:
        return op.effective_address(self.regs)

    def _set_reg(self, op: Reg, value: int) -> None:
        self.regs[op.number] = value & MASK32

    # -- memory helpers (route through the port, keep counters) ---------------

    def _load(self, port: MemoryPort, addr: int, size: int) -> int:
        if size == 4 and addr & 3:
            raise MachineFault(f"misaligned word load at {addr:#x}", pc=self.pc)
        value = port.load(addr, size)
        self.loads += 1
        self.load_hash = ((self.load_hash * _FNV_PRIME) + value + 1) & _HASH_MASK
        return value

    def _store(self, port: MemoryPort, addr: int, size: int, value: int) -> None:
        if size == 4 and addr & 3:
            raise MachineFault(f"misaligned word store at {addr:#x}", pc=self.pc)
        port.store(addr, size, value & MASK32)
        self.stores += 1

    # -- flag helpers ----------------------------------------------------------

    def _flags_logic(self, result: int) -> int:
        result &= MASK32
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> 31) & 1
        self.cf = 0
        self.of = 0
        return result

    def _flags_add(self, a: int, b: int) -> int:
        raw = a + b
        result = raw & MASK32
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> 31) & 1
        self.cf = 1 if raw > MASK32 else 0
        self.of = 1 if (_signed(a) + _signed(b)) != _signed(result) else 0
        return result

    def _flags_sub(self, a: int, b: int) -> int:
        result = (a - b) & MASK32
        self.zf = 1 if result == 0 else 0
        self.sf = (result >> 31) & 1
        self.cf = 1 if a < b else 0
        self.of = 1 if (_signed(a) - _signed(b)) != _signed(result) else 0
        return result

    # -- retirement -------------------------------------------------------------

    def _retire(self) -> None:
        self.pc += 1
        self.retired += 1
        self.cur_memops = 0

    def complete_trap(self, dest: Reg | None = None, value: int = 0) -> None:
        """Finish a trapped instruction (syscall/nondet) from outside.

        The kernel (or replayer) supplies the result; the instruction then
        retires into whatever chunk is current — which, because the trap
        terminated the previous chunk first, is always the *next* chunk.
        """
        if dest is not None:
            self._set_reg(dest, value)
        self._retire()

    # -- the interpreter ----------------------------------------------------------

    def step(self, port: MemoryPort) -> str:
        """Execute one unit. Returns an OUTCOME_* constant.

        Trap outcomes (syscall, nondet) leave all architectural state
        untouched; the caller processes the trap and calls
        :meth:`complete_trap`.
        """
        dispatch = self._dispatch
        if dispatch is not None:
            pc = self.pc
            if not 0 <= pc < len(dispatch):
                raise MachineFault(f"pc {pc} outside code", pc=pc)
            outcome = dispatch[pc](self, port)
            return OUTCOME_OK if outcome is None else outcome
        if not 0 <= self.pc < len(self.program.instructions):
            raise MachineFault(f"pc {self.pc} outside code", pc=self.pc)
        instr = self.program.instructions[self.pc]
        handler = _DISPATCH.get(instr.mnemonic)
        if handler is None:
            raise IllegalInstructionError(f"no handler for {instr.mnemonic}",
                                          pc=self.pc)
        outcome = handler(self, port, instr)
        return OUTCOME_OK if outcome is None else outcome

    def current_instr(self) -> Instr:
        return self.program.instructions[self.pc]


# -- instruction handlers ----------------------------------------------------
# Each handler takes (engine, port, instr); returning None means OUTCOME_OK.

def _h_mov(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e.value_of(i.ops[1]))
    e._retire()


def _h_lea(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e.ea(i.ops[1]))
    e._retire()


def _h_load(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e._load(port, e.ea(i.ops[1]), 4))
    e._retire()


def _h_loadb(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e._load(port, e.ea(i.ops[1]), 1))
    e._retire()


def _h_store(e: Engine, port, i: Instr):
    e._store(port, e.ea(i.ops[0]), 4, e.value_of(i.ops[1]))
    e._retire()


def _h_storeb(e: Engine, port, i: Instr):
    e._store(port, e.ea(i.ops[0]), 1, e.value_of(i.ops[1]) & 0xFF)
    e._retire()


def _h_push(e: Engine, port, i: Instr):
    sp = (e.regs[SP] - 4) & MASK32
    e._store(port, sp, 4, e.value_of(i.ops[0]))
    e.regs[SP] = sp
    e._retire()


def _h_pop(e: Engine, port, i: Instr):
    value = e._load(port, e.regs[SP], 4)
    e.regs[SP] = (e.regs[SP] + 4) & MASK32
    e._set_reg(i.ops[0], value)
    e._retire()


def _alu3(flag_fn_name: str, compute: Callable[[Engine, int, int], int]):
    def handler(e: Engine, port, i: Instr):
        a = e.value_of(i.ops[1])
        b = e.value_of(i.ops[2])
        result = compute(e, a, b)
        e._set_reg(i.ops[0], result)
        e._retire()
    return handler


def _c_add(e, a, b): return e._flags_add(a, b)
def _c_sub(e, a, b): return e._flags_sub(a, b)
def _c_and(e, a, b): return e._flags_logic(a & b)
def _c_or(e, a, b): return e._flags_logic(a | b)
def _c_xor(e, a, b): return e._flags_logic(a ^ b)
def _c_shl(e, a, b): return e._flags_logic(a << (b & 31))
def _c_shr(e, a, b): return e._flags_logic(a >> (b & 31))
def _c_sar(e, a, b): return e._flags_logic(_signed(a) >> (b & 31))
def _c_mul(e, a, b): return e._flags_logic(a * b)


def _c_div(e, a, b):
    if b == 0:
        raise MachineFault("division by zero", pc=e.pc)
    return e._flags_logic(a // b)


def _c_mod(e, a, b):
    if b == 0:
        raise MachineFault("division by zero", pc=e.pc)
    return e._flags_logic(a % b)


def _h_neg(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e._flags_sub(0, e.value_of(i.ops[1])))
    e._retire()


def _h_not(e: Engine, port, i: Instr):
    e._set_reg(i.ops[0], e._flags_logic(~e.value_of(i.ops[1])))
    e._retire()


def _h_cmp(e: Engine, port, i: Instr):
    e._flags_sub(e.value_of(i.ops[0]), e.value_of(i.ops[1]))
    e._retire()


def _h_test(e: Engine, port, i: Instr):
    e._flags_logic(e.value_of(i.ops[0]) & e.value_of(i.ops[1]))
    e._retire()


def _branch(predicate: Callable[[Engine], bool]):
    def handler(e: Engine, port, i: Instr):
        target = e.value_of(i.ops[0])
        if predicate(e):
            e.pc = target
            e.retired += 1
            e.cur_memops = 0
        else:
            e._retire()
    return handler


def _h_jmp(e: Engine, port, i: Instr):
    e.pc = e.value_of(i.ops[0])
    e.retired += 1
    e.cur_memops = 0


def _h_call(e: Engine, port, i: Instr):
    target = e.value_of(i.ops[0])
    sp = (e.regs[SP] - 4) & MASK32
    e._store(port, sp, 4, e.pc + 1)
    e.regs[SP] = sp
    e.pc = target
    e.retired += 1
    e.cur_memops = 0


def _h_ret(e: Engine, port, i: Instr):
    target = e._load(port, e.regs[SP], 4)
    e.regs[SP] = (e.regs[SP] + 4) & MASK32
    e.pc = target
    e.retired += 1
    e.cur_memops = 0


def _h_xadd(e: Engine, port, i: Instr):
    addr = e.ea(i.ops[0])
    if addr & 3:
        raise MachineFault(f"misaligned xadd at {addr:#x}", pc=e.pc)
    port.fence()
    old = port.atomic_load(addr, 4)
    e.loads += 1
    e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
    addend = e.regs[i.ops[1].number]
    port.atomic_store(addr, 4, e._flags_add(old, addend))
    e.stores += 1
    e._set_reg(i.ops[1], old)
    e._retire()


def _h_xchg(e: Engine, port, i: Instr):
    addr = e.ea(i.ops[0])
    if addr & 3:
        raise MachineFault(f"misaligned xchg at {addr:#x}", pc=e.pc)
    port.fence()
    old = port.atomic_load(addr, 4)
    e.loads += 1
    e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
    port.atomic_store(addr, 4, e.regs[i.ops[1].number])
    e.stores += 1
    e._set_reg(i.ops[1], old)
    e._retire()


def _h_cmpxchg(e: Engine, port, i: Instr):
    addr = e.ea(i.ops[0])
    if addr & 3:
        raise MachineFault(f"misaligned cmpxchg at {addr:#x}", pc=e.pc)
    port.fence()
    old = port.atomic_load(addr, 4)
    e.loads += 1
    e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
    if old == e.regs[RAX]:
        port.atomic_store(addr, 4, e.regs[i.ops[1].number])
        e.stores += 1
        e.zf = 1
    else:
        e.regs[RAX] = old
        e.zf = 0
    e._retire()


def _h_mfence(e: Engine, port, i: Instr):
    port.fence()
    e._retire()


def _h_nop(e: Engine, port, i: Instr):
    e._retire()


def _h_rep_movs(e: Engine, port, i: Instr):
    if e.regs[RCX] == 0:
        e._retire()
        return
    value = e._load(port, e.regs[RSI], 4)
    e._store(port, e.regs[RDI], 4, value)
    e.regs[RSI] = (e.regs[RSI] + 4) & MASK32
    e.regs[RDI] = (e.regs[RDI] + 4) & MASK32
    e.regs[RCX] = (e.regs[RCX] - 1) & MASK32
    e.cur_memops += 2
    if e.regs[RCX] == 0:
        e._retire()


def _h_rep_stos(e: Engine, port, i: Instr):
    if e.regs[RCX] == 0:
        e._retire()
        return
    e._store(port, e.regs[RDI], 4, e.regs[RAX])
    e.regs[RDI] = (e.regs[RDI] + 4) & MASK32
    e.regs[RCX] = (e.regs[RCX] - 1) & MASK32
    e.cur_memops += 1
    if e.regs[RCX] == 0:
        e._retire()


def _h_syscall(e: Engine, port, i: Instr):
    return OUTCOME_SYSCALL


def _h_nondet(e: Engine, port, i: Instr):
    return OUTCOME_NONDET


_DISPATCH: dict[str, Callable] = {
    "mov": _h_mov,
    "lea": _h_lea,
    "load": _h_load,
    "loadb": _h_loadb,
    "store": _h_store,
    "storeb": _h_storeb,
    "push": _h_push,
    "pop": _h_pop,
    "add": _alu3("add", _c_add),
    "sub": _alu3("sub", _c_sub),
    "and": _alu3("and", _c_and),
    "or": _alu3("or", _c_or),
    "xor": _alu3("xor", _c_xor),
    "shl": _alu3("shl", _c_shl),
    "shr": _alu3("shr", _c_shr),
    "sar": _alu3("sar", _c_sar),
    "mul": _alu3("mul", _c_mul),
    "div": _alu3("div", _c_div),
    "mod": _alu3("mod", _c_mod),
    "neg": _h_neg,
    "not": _h_not,
    "cmp": _h_cmp,
    "test": _h_test,
    "jmp": _h_jmp,
    "je": _branch(lambda e: e.zf == 1),
    "jne": _branch(lambda e: e.zf == 0),
    "jl": _branch(lambda e: e.sf != e.of),
    "jge": _branch(lambda e: e.sf == e.of),
    "jle": _branch(lambda e: e.zf == 1 or e.sf != e.of),
    "jg": _branch(lambda e: e.zf == 0 and e.sf == e.of),
    "jb": _branch(lambda e: e.cf == 1),
    "jae": _branch(lambda e: e.cf == 0),
    "jbe": _branch(lambda e: e.cf == 1 or e.zf == 1),
    "ja": _branch(lambda e: e.cf == 0 and e.zf == 0),
    "js": _branch(lambda e: e.sf == 1),
    "jns": _branch(lambda e: e.sf == 0),
    "call": _h_call,
    "ret": _h_ret,
    "xadd": _h_xadd,
    "xchg": _h_xchg,
    "cmpxchg": _h_cmpxchg,
    "mfence": _h_mfence,
    "pause": _h_nop,
    "nop": _h_nop,
    "rep_movs": _h_rep_movs,
    "rep_stos": _h_rep_stos,
    "rdtsc": _h_nondet,
    "rdrand": _h_nondet,
    "cpuid": _h_nondet,
    "syscall": _h_syscall,
}
