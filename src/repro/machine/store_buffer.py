"""Per-core TSO store buffer.

Stores retire into a FIFO and become globally visible only when drained.
Loads of the same core forward from the youngest covering entry; a partially
overlapping entry that cannot satisfy the load forces a full drain, the way
a real pipeline stalls on a failed store-to-load forward.

The buffer is the root cause of the RSW (reordered-store-window) machinery
in QuickRec: a chunk can terminate while some of its stores still sit here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

MASK32 = 0xFFFFFFFF

RESOLVE_MISS = "miss"
RESOLVE_HIT = "hit"
RESOLVE_CONFLICT = "conflict"

# Preallocated results for the allocation-heavy resolve() paths.
_RESOLVED_MISS = (RESOLVE_MISS, None)
_RESOLVED_CONFLICT = (RESOLVE_CONFLICT, None)


@dataclass(frozen=True)
class PendingStore:
    """One buffered store: ``size`` is 1 or 4 bytes."""

    addr: int
    size: int
    value: int

    def covers(self, addr: int, size: int) -> bool:
        return self.addr <= addr and addr + size <= self.addr + self.size

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size

    def extract(self, addr: int, size: int) -> int:
        """Extract the loaded bytes from this (covering) entry's value."""
        shift = 8 * (addr - self.addr)
        mask = (1 << (8 * size)) - 1
        return (self.value >> shift) & mask


class StoreBuffer:
    """A bounded FIFO of :class:`PendingStore` entries."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[PendingStore] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, addr: int, size: int, value: int) -> None:
        """Append a store. The caller must make room first if full."""
        if self.full:
            raise OverflowError("store buffer full; drain before pushing")
        self._entries.append(PendingStore(addr, size, value & MASK32))

    def pop_oldest(self) -> PendingStore:
        """Remove and return the entry next in drain order."""
        if not self._entries:
            raise IndexError("store buffer empty")
        return self._entries.popleft()

    def resolve(self, addr: int, size: int) -> tuple[str, int | None]:
        """Attempt store-to-load forwarding for a load of ``size`` bytes.

        Returns one of:
            (``"hit"``, value)     — youngest overlapping entry covers the load;
            (``"miss"``, None)     — no overlap, read memory;
            (``"conflict"``, None) — partial overlap, drain then read memory.
        """
        entries = self._entries
        if not entries:
            return _RESOLVED_MISS
        for entry in reversed(entries):
            if entry.covers(addr, size):
                return RESOLVE_HIT, entry.extract(addr, size)
            if entry.overlaps(addr, size):
                return _RESOLVED_CONFLICT
        return _RESOLVED_MISS

    def entries(self) -> tuple[PendingStore, ...]:
        """Snapshot of buffered stores, oldest first (for inspection/tests)."""
        return tuple(self._entries)

    def clear(self) -> None:
        self._entries.clear()
