"""The simulated QuickIA machine.

A functional multicore simulator: cores execute the IA-lite ISA one *unit*
at a time (a unit is a whole instruction, or a single iteration of a
``rep_*`` string instruction), interleaved by a deterministic seeded policy.
Each core owns a TSO store buffer and an L1 cache kept coherent with MESI
over a serializing snoop bus — the bus is the hook the Memory Race Recorder
snoops to detect cross-thread conflicts.

The execution engine (:class:`~repro.machine.core.Engine`) is deliberately
decoupled from the memory system through a small port interface so the
replayer can reuse the exact same instruction semantics against its own
withheld-store memory view.
"""

from .memory import PhysicalMemory
from .store_buffer import StoreBuffer
from .cache import MESICache
from .bus import DirectoryBus, SnoopBus
from .core import Engine, OUTCOME_OK, OUTCOME_SYSCALL, OUTCOME_NONDET
from .machine import Machine, Core
from .interleave import (
    Interleaver,
    RandomInterleaver,
    RoundRobinInterleaver,
    BurstyInterleaver,
    make_interleaver,
)

__all__ = [
    "PhysicalMemory",
    "StoreBuffer",
    "MESICache",
    "SnoopBus",
    "DirectoryBus",
    "Engine",
    "OUTCOME_OK",
    "OUTCOME_SYSCALL",
    "OUTCOME_NONDET",
    "Machine",
    "Core",
    "Interleaver",
    "RandomInterleaver",
    "RoundRobinInterleaver",
    "BurstyInterleaver",
    "make_interleaver",
]
