"""Flat byte-addressable physical memory.

The memory always holds the globally visible ("coherent") state: store
buffers hold stores that are not yet visible, and the caches track MESI
states only — data is never duplicated into them. That functional shortcut
keeps the simulator simple while preserving exactly the visibility semantics
TSO requires: a load sees its own core's store buffer first, then memory.
"""

from __future__ import annotations

import hashlib

from ..errors import MemoryAccessError

MASK32 = 0xFFFFFFFF


class PhysicalMemory:
    """``size`` bytes of zero-initialized RAM with aligned word access."""

    def __init__(self, size: int):
        if size <= 0:
            raise MemoryAccessError(f"memory size must be positive, got {size}")
        self._data = bytearray(size)
        self.size = size

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise MemoryAccessError(f"access [{addr:#x}, +{size}) outside memory "
                                    f"of {self.size:#x} bytes")

    def read_word(self, addr: int) -> int:
        """Read an aligned little-endian 32-bit word."""
        if addr & 3:
            raise MemoryAccessError(f"misaligned word read at {addr:#x}")
        self._check(addr, 4)
        return int.from_bytes(self._data[addr:addr + 4], "little")

    def write_word(self, addr: int, value: int) -> None:
        """Write an aligned little-endian 32-bit word."""
        if addr & 3:
            raise MemoryAccessError(f"misaligned word write at {addr:#x}")
        self._check(addr, 4)
        self._data[addr:addr + 4] = (value & MASK32).to_bytes(4, "little")

    def read_byte(self, addr: int) -> int:
        self._check(addr, 1)
        return self._data[addr]

    def write_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._data[addr] = value & 0xFF

    def read(self, addr: int, size: int) -> bytes:
        """Read an arbitrary byte range (used by the kernel, not cores)."""
        self._check(addr, size)
        return bytes(self._data[addr:addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write an arbitrary byte range (used by the kernel/loader)."""
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    def load_blob(self, base: int, blob: bytes) -> None:
        """Load a program data segment at ``base``."""
        self.write(base, blob)

    def digest(self) -> str:
        """SHA-256 over the full memory contents, for replay verification."""
        return hashlib.sha256(bytes(self._data)).hexdigest()

    def digest_range(self, addr: int, size: int) -> str:
        """SHA-256 over a byte range (e.g. just the data segment)."""
        return hashlib.sha256(self.read(addr, size)).hexdigest()

    def snapshot(self) -> bytes:
        return bytes(self._data)

    def restore(self, blob: bytes) -> None:
        """Replace the full memory contents with a prior :meth:`snapshot`."""
        if len(blob) != self.size:
            raise MemoryAccessError(
                f"snapshot is {len(blob)} bytes, memory is {self.size}")
        self._data[:] = blob
