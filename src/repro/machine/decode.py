"""The decode cache: pre-resolved dispatch closures for the engine.

The interpretive path in :mod:`repro.machine.core` re-inspects ``Instr``
metadata on every unit — isinstance checks on operands, a dict lookup on the
mnemonic, several helper-method calls. All of that is static per
instruction, so at :class:`~repro.isa.program.Program` load time this module
compiles each instruction once into a *dispatch closure*: a single callable
``fn(engine, port) -> outcome | None`` with the operand fields (register
numbers, immediate values, effective-address shapes, branch targets) already
extracted into its cells. ``Engine.step`` then executes one unit with one
list index and one call.

Equivalence contract (pinned by ``tests/property/test_property_decode.py``):
a compiled closure performs *bit-identical* state transitions to the
interpretive handler for the same instruction — registers, pc, flags,
``retired``/``cur_memops``, the load/store counters, the rolling
``load_hash``, fault messages, and trap outcomes all match, including
mid-``rep`` save/restore resumability.

Compiled programs are memoized per ``Program`` object (replay spawns one
engine per thread over the same program; they share one compiled table).
"""

from __future__ import annotations

import weakref
from typing import Callable

from ..errors import IllegalInstructionError, MachineFault
from ..isa.instructions import Instr
from ..isa.operands import Mem, Reg
from ..isa.program import Program
from ..isa.registers import RAX, RCX, RDI, RSI, SP

MASK32 = 0xFFFFFFFF
_HASH_MASK = (1 << 64) - 1
_FNV_PRIME = 0x100000001B3

# Outcome literals (values shared with repro.machine.core, which this module
# must not import at top level: core imports us).
_OUTCOME_SYSCALL = "syscall"
_OUTCOME_NONDET = "nondet"

#: A compiled unit: returns None for OK or an OUTCOME_* string for a trap.
DispatchFn = Callable[[object, object], str | None]


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


# -- operand pre-extraction ---------------------------------------------------

def _compile_ea(mem: Mem) -> Callable[[list[int]], int]:
    """Close over the addressing-mode fields; identical arithmetic to
    :meth:`repro.isa.operands.Mem.effective_address`."""
    base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
    if base is None and index is None:
        return lambda regs: disp
    if index is None:
        return lambda regs: (regs[base] + disp) & MASK32
    if base is None:
        return lambda regs: (regs[index] * scale + disp) & MASK32
    return lambda regs: (regs[base] + regs[index] * scale + disp) & MASK32


def _compile_val(op) -> Callable[[list[int]], int]:
    """A reader for a 'v' operand (register or immediate)."""
    if type(op) is Reg:
        number = op.number
        return lambda regs: regs[number]
    value = op.value
    return lambda regs: value


# -- per-mnemonic compilers ---------------------------------------------------
# Each mirrors the interpretive handler of the same mnemonic exactly,
# including side-effect ordering and fault messages.

def _c_mov(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    read = _compile_val(i.ops[1])

    def fn(e, port):
        e.regs[dest] = read(e.regs) & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_lea(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    ea = _compile_ea(i.ops[1])

    def fn(e, port):
        e.regs[dest] = ea(e.regs)
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_load(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    ea = _compile_ea(i.ops[1])

    def fn(e, port):
        addr = ea(e.regs)
        if addr & 3:
            raise MachineFault(f"misaligned word load at {addr:#x}", pc=e.pc)
        value = port.load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + value + 1) & _HASH_MASK
        e.regs[dest] = value & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_loadb(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    ea = _compile_ea(i.ops[1])

    def fn(e, port):
        value = port.load(ea(e.regs), 1)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + value + 1) & _HASH_MASK
        e.regs[dest] = value & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_store(i: Instr) -> DispatchFn:
    ea = _compile_ea(i.ops[0])
    read = _compile_val(i.ops[1])

    def fn(e, port):
        addr = ea(e.regs)
        if addr & 3:
            raise MachineFault(f"misaligned word store at {addr:#x}", pc=e.pc)
        port.store(addr, 4, read(e.regs) & MASK32)
        e.stores += 1
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_storeb(i: Instr) -> DispatchFn:
    ea = _compile_ea(i.ops[0])
    read = _compile_val(i.ops[1])

    def fn(e, port):
        port.store(ea(e.regs), 1, read(e.regs) & 0xFF)
        e.stores += 1
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_push(i: Instr) -> DispatchFn:
    read = _compile_val(i.ops[0])

    def fn(e, port):
        sp = (e.regs[SP] - 4) & MASK32
        if sp & 3:
            raise MachineFault(f"misaligned word store at {sp:#x}", pc=e.pc)
        port.store(sp, 4, read(e.regs) & MASK32)
        e.stores += 1
        e.regs[SP] = sp
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_pop(i: Instr) -> DispatchFn:
    dest = i.ops[0].number

    def fn(e, port):
        addr = e.regs[SP]
        if addr & 3:
            raise MachineFault(f"misaligned word load at {addr:#x}", pc=e.pc)
        value = port.load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + value + 1) & _HASH_MASK
        e.regs[SP] = (addr + 4) & MASK32
        e.regs[dest] = value & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _alu_compiler(compute: Callable) -> Callable[[Instr], DispatchFn]:
    def compiler(i: Instr) -> DispatchFn:
        dest = i.ops[0].number
        read_a = _compile_val(i.ops[1])
        read_b = _compile_val(i.ops[2])

        def fn(e, port):
            e.regs[dest] = compute(e, read_a(e.regs), read_b(e.regs))
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
        return fn
    return compiler


def _c_add(i: Instr) -> DispatchFn:
    """add with Engine._flags_add inlined (same arithmetic, flag for flag)."""
    dest = i.ops[0].number
    read_a = _compile_val(i.ops[1])
    read_b = _compile_val(i.ops[2])

    def fn(e, port):
        regs = e.regs
        a = read_a(regs)
        b = read_b(regs)
        raw = a + b
        result = raw & MASK32
        e.zf = 1 if result == 0 else 0
        e.sf = (result >> 31) & 1
        e.cf = 1 if raw > MASK32 else 0
        sa = a - 0x100000000 if a & 0x80000000 else a
        sb = b - 0x100000000 if b & 0x80000000 else b
        sr = result - 0x100000000 if result & 0x80000000 else result
        e.of = 1 if sa + sb != sr else 0
        regs[dest] = result
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_sub(i: Instr) -> DispatchFn:
    """sub with Engine._flags_sub inlined."""
    dest = i.ops[0].number
    read_a = _compile_val(i.ops[1])
    read_b = _compile_val(i.ops[2])

    def fn(e, port):
        regs = e.regs
        a = read_a(regs)
        b = read_b(regs)
        result = (a - b) & MASK32
        e.zf = 1 if result == 0 else 0
        e.sf = (result >> 31) & 1
        e.cf = 1 if a < b else 0
        sa = a - 0x100000000 if a & 0x80000000 else a
        sb = b - 0x100000000 if b & 0x80000000 else b
        sr = result - 0x100000000 if result & 0x80000000 else result
        e.of = 1 if sa - sb != sr else 0
        regs[dest] = result
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _logic_alu_compiler(compute: Callable) -> Callable[[Instr], DispatchFn]:
    """ALU ops with logic-style flags (zf/sf from result, cf=of=0):
    Engine._flags_logic inlined into the closure."""
    def compiler(i: Instr) -> DispatchFn:
        dest = i.ops[0].number
        read_a = _compile_val(i.ops[1])
        read_b = _compile_val(i.ops[2])

        def fn(e, port):
            regs = e.regs
            result = compute(read_a(regs), read_b(regs)) & MASK32
            e.zf = 1 if result == 0 else 0
            e.sf = (result >> 31) & 1
            e.cf = 0
            e.of = 0
            regs[dest] = result
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
        return fn
    return compiler


def _k_div(e, a, b):
    if b == 0:
        raise MachineFault("division by zero", pc=e.pc)
    return e._flags_logic(a // b)


def _k_mod(e, a, b):
    if b == 0:
        raise MachineFault("division by zero", pc=e.pc)
    return e._flags_logic(a % b)


def _c_neg(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    src = i.ops[1].number

    def fn(e, port):
        e.regs[dest] = e._flags_sub(0, e.regs[src])
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_not(i: Instr) -> DispatchFn:
    dest = i.ops[0].number
    src = i.ops[1].number

    def fn(e, port):
        e.regs[dest] = e._flags_logic(~e.regs[src])
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_cmp(i: Instr) -> DispatchFn:
    src = i.ops[0].number
    read = _compile_val(i.ops[1])

    def fn(e, port):
        regs = e.regs
        a = regs[src]
        b = read(regs)
        result = (a - b) & MASK32
        e.zf = 1 if result == 0 else 0
        e.sf = (result >> 31) & 1
        e.cf = 1 if a < b else 0
        sa = a - 0x100000000 if a & 0x80000000 else a
        sb = b - 0x100000000 if b & 0x80000000 else b
        sr = result - 0x100000000 if result & 0x80000000 else result
        e.of = 1 if sa - sb != sr else 0
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_test(i: Instr) -> DispatchFn:
    src = i.ops[0].number
    read = _compile_val(i.ops[1])

    def fn(e, port):
        regs = e.regs
        result = regs[src] & read(regs)
        e.zf = 1 if result == 0 else 0
        e.sf = (result >> 31) & 1
        e.cf = 0
        e.of = 0
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_jmp(i: Instr) -> DispatchFn:
    target = i.ops[0].value

    def fn(e, port):
        e.pc = target
        e.retired += 1
        e.cur_memops = 0
    return fn


def _branch_compiler(pred: Callable) -> Callable[[Instr], DispatchFn]:
    def compiler(i: Instr) -> DispatchFn:
        target = i.ops[0].value

        def fn(e, port):
            if pred(e):
                e.pc = target
            else:
                e.pc += 1
            e.retired += 1
            e.cur_memops = 0
        return fn
    return compiler


def _c_call(i: Instr) -> DispatchFn:
    target = i.ops[0].value

    def fn(e, port):
        sp = (e.regs[SP] - 4) & MASK32
        if sp & 3:
            raise MachineFault(f"misaligned word store at {sp:#x}", pc=e.pc)
        port.store(sp, 4, (e.pc + 1) & MASK32)
        e.stores += 1
        e.regs[SP] = sp
        e.pc = target
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_ret(i: Instr) -> DispatchFn:
    def fn(e, port):
        addr = e.regs[SP]
        if addr & 3:
            raise MachineFault(f"misaligned word load at {addr:#x}", pc=e.pc)
        target = port.load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + target + 1) & _HASH_MASK
        e.regs[SP] = (addr + 4) & MASK32
        e.pc = target
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_xadd(i: Instr) -> DispatchFn:
    ea = _compile_ea(i.ops[0])
    reg = i.ops[1].number

    def fn(e, port):
        addr = ea(e.regs)
        if addr & 3:
            raise MachineFault(f"misaligned xadd at {addr:#x}", pc=e.pc)
        port.fence()
        old = port.atomic_load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
        b = e.regs[reg]
        raw = old + b
        result = raw & MASK32
        e.zf = 1 if result == 0 else 0
        e.sf = (result >> 31) & 1
        e.cf = 1 if raw > MASK32 else 0
        sa = old - 0x100000000 if old & 0x80000000 else old
        sb = b - 0x100000000 if b & 0x80000000 else b
        sr = result - 0x100000000 if result & 0x80000000 else result
        e.of = 1 if sa + sb != sr else 0
        port.atomic_store(addr, 4, result)
        e.stores += 1
        e.regs[reg] = old & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_xchg(i: Instr) -> DispatchFn:
    ea = _compile_ea(i.ops[0])
    reg = i.ops[1].number

    def fn(e, port):
        addr = ea(e.regs)
        if addr & 3:
            raise MachineFault(f"misaligned xchg at {addr:#x}", pc=e.pc)
        port.fence()
        old = port.atomic_load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
        port.atomic_store(addr, 4, e.regs[reg])
        e.stores += 1
        e.regs[reg] = old & MASK32
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_cmpxchg(i: Instr) -> DispatchFn:
    ea = _compile_ea(i.ops[0])
    reg = i.ops[1].number

    def fn(e, port):
        addr = ea(e.regs)
        if addr & 3:
            raise MachineFault(f"misaligned cmpxchg at {addr:#x}", pc=e.pc)
        port.fence()
        old = port.atomic_load(addr, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + old + 1) & _HASH_MASK
        if old == e.regs[RAX]:
            port.atomic_store(addr, 4, e.regs[reg])
            e.stores += 1
            e.zf = 1
        else:
            e.regs[RAX] = old
            e.zf = 0
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_mfence(i: Instr) -> DispatchFn:
    def fn(e, port):
        port.fence()
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_nop(i: Instr) -> DispatchFn:
    def fn(e, port):
        e.pc += 1
        e.retired += 1
        e.cur_memops = 0
    return fn


def _c_rep_movs(i: Instr) -> DispatchFn:
    def fn(e, port):
        regs = e.regs
        if regs[RCX] == 0:
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
            return
        src = regs[RSI]
        if src & 3:
            raise MachineFault(f"misaligned word load at {src:#x}", pc=e.pc)
        value = port.load(src, 4)
        e.loads += 1
        e.load_hash = ((e.load_hash * _FNV_PRIME) + value + 1) & _HASH_MASK
        dst = regs[RDI]
        if dst & 3:
            raise MachineFault(f"misaligned word store at {dst:#x}", pc=e.pc)
        port.store(dst, 4, value & MASK32)
        e.stores += 1
        regs[RSI] = (src + 4) & MASK32
        regs[RDI] = (dst + 4) & MASK32
        regs[RCX] = (regs[RCX] - 1) & MASK32
        e.cur_memops += 2
        if regs[RCX] == 0:
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
    return fn


def _c_rep_stos(i: Instr) -> DispatchFn:
    def fn(e, port):
        regs = e.regs
        if regs[RCX] == 0:
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
            return
        dst = regs[RDI]
        if dst & 3:
            raise MachineFault(f"misaligned word store at {dst:#x}", pc=e.pc)
        port.store(dst, 4, regs[RAX] & MASK32)
        e.stores += 1
        regs[RDI] = (dst + 4) & MASK32
        regs[RCX] = (regs[RCX] - 1) & MASK32
        e.cur_memops += 1
        if regs[RCX] == 0:
            e.pc += 1
            e.retired += 1
            e.cur_memops = 0
    return fn


def _c_syscall(i: Instr) -> DispatchFn:
    def fn(e, port):
        return _OUTCOME_SYSCALL
    return fn


def _c_nondet(i: Instr) -> DispatchFn:
    def fn(e, port):
        return _OUTCOME_NONDET
    return fn


def _c_fallback(i: Instr) -> DispatchFn:
    """Uncompiled mnemonic: defer to the interpretive handler (safety net
    for mnemonics added to core without a fast compiler)."""
    def fn(e, port):
        from .core import _DISPATCH
        handler = _DISPATCH.get(i.mnemonic)
        if handler is None:
            raise IllegalInstructionError(f"no handler for {i.mnemonic}",
                                          pc=e.pc)
        return handler(e, port, i)
    return fn


_COMPILERS: dict[str, Callable[[Instr], DispatchFn]] = {
    "mov": _c_mov,
    "lea": _c_lea,
    "load": _c_load,
    "loadb": _c_loadb,
    "store": _c_store,
    "storeb": _c_storeb,
    "push": _c_push,
    "pop": _c_pop,
    "add": _c_add,
    "sub": _c_sub,
    "and": _logic_alu_compiler(lambda a, b: a & b),
    "or": _logic_alu_compiler(lambda a, b: a | b),
    "xor": _logic_alu_compiler(lambda a, b: a ^ b),
    "shl": _logic_alu_compiler(lambda a, b: a << (b & 31)),
    "shr": _logic_alu_compiler(lambda a, b: a >> (b & 31)),
    "sar": _logic_alu_compiler(lambda a, b: _signed(a) >> (b & 31)),
    "mul": _logic_alu_compiler(lambda a, b: a * b),
    "div": _alu_compiler(_k_div),
    "mod": _alu_compiler(_k_mod),
    "neg": _c_neg,
    "not": _c_not,
    "cmp": _c_cmp,
    "test": _c_test,
    "jmp": _c_jmp,
    "je": _branch_compiler(lambda e: e.zf == 1),
    "jne": _branch_compiler(lambda e: e.zf == 0),
    "jl": _branch_compiler(lambda e: e.sf != e.of),
    "jge": _branch_compiler(lambda e: e.sf == e.of),
    "jle": _branch_compiler(lambda e: e.zf == 1 or e.sf != e.of),
    "jg": _branch_compiler(lambda e: e.zf == 0 and e.sf == e.of),
    "jb": _branch_compiler(lambda e: e.cf == 1),
    "jae": _branch_compiler(lambda e: e.cf == 0),
    "jbe": _branch_compiler(lambda e: e.cf == 1 or e.zf == 1),
    "ja": _branch_compiler(lambda e: e.cf == 0 and e.zf == 0),
    "js": _branch_compiler(lambda e: e.sf == 1),
    "jns": _branch_compiler(lambda e: e.sf == 0),
    "call": _c_call,
    "ret": _c_ret,
    "xadd": _c_xadd,
    "xchg": _c_xchg,
    "cmpxchg": _c_cmpxchg,
    "mfence": _c_mfence,
    "pause": _c_nop,
    "nop": _c_nop,
    "rep_movs": _c_rep_movs,
    "rep_stos": _c_rep_stos,
    "rdtsc": _c_nondet,
    "rdrand": _c_nondet,
    "cpuid": _c_nondet,
    "syscall": _c_syscall,
}


def compile_instr(instr: Instr) -> DispatchFn:
    """Compile one instruction into its dispatch closure."""
    compiler = _COMPILERS.get(instr.mnemonic, _c_fallback)
    return compiler(instr)


# -- per-program memoization --------------------------------------------------

_COMPILED: dict[int, list[DispatchFn]] = {}


def decoded_program(program: Program) -> list[DispatchFn]:
    """The compiled dispatch table for ``program``, built once per program
    object (keyed by identity; evicted when the program is collected)."""
    key = id(program)
    table = _COMPILED.get(key)
    if table is None:
        table = [compile_instr(instr) for instr in program.instructions]
        _COMPILED[key] = table
        weakref.finalize(program, _COMPILED.pop, key, None)
    return table
