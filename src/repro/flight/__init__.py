"""Bounded-memory flight recording: the always-on black box.

QuickRec's recording hardware is cheap enough to leave on permanently;
the software story that matches it in production is iReplayer's in-situ
model — record into bounded memory, retain only the last epochs, replay
on demand when something goes wrong. This package provides:

- :class:`FlightRing` — an epoch ring attached to the RSM that keeps the
  last N checkpoint intervals of chunk/input state, discards older
  epochs in O(1), and materializes the retained window as a
  self-contained, replayable :class:`~repro.capo.recording.Recording`
  rebased to the window origin;
- :func:`write_crash_bundle` / :func:`detect_fault` — crash capture: the
  windowed recording, a forensics race report, a replay-to-fault
  verification and a reproducer, packaged into one directory.
"""

from .crash import (  # noqa: F401
    detect_fault,
    load_crash_manifest,
    write_crash_bundle,
)
from .ring import FLIGHT_META_KEY, FlightRing  # noqa: F401
