"""Crash capture: package a flight window into a triage bundle.

A crash bundle is one directory holding everything a human (or the soak
triage tooling) needs to act on a production fault after the fact::

    bundle/
      crash.json       trigger, window stats, replay-to-fault verdict,
                       repro command, optional ddmin-shrunk reproducer
      recording/       the materialized flight-window Recording
      forensics.json   `quickrec analyze` race report for the window
                       (best-effort: an analyzer crash never loses the
                       bundle)

Capture is triggered by a workload fault (:func:`detect_fault` — any
recorded thread exiting nonzero), a soak-oracle divergence (the soak
triage path), or an explicit request (``record --flight-capture``).
The bundle verifies itself at write time: the window is replayed and
checked against the recorded digests/outputs/exit codes, so
``crash.json`` states whether the bundle deterministically replays to
the recorded fault.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..capo.recording import FLIGHT_META_KEY, Recording

BUNDLE_FORMAT = "quickrec-crash-bundle"
BUNDLE_VERSION = 1
RECORDING_DIR = "recording"
MANIFEST_NAME = "crash.json"
FORENSICS_NAME = "forensics.json"


def detect_fault(outcome) -> str | None:
    """A human-readable fault trigger, or None when the run looks clean.

    A fault is any replay-sphere thread exiting nonzero (the outcome's
    sphere exit codes; all threads when there is no sphere scoping).
    """
    codes = outcome.sphere_exit_codes or outcome.exit_codes
    bad = {rthread: code for rthread, code in sorted(codes.items())
           if code != 0}
    if not bad:
        return None
    detail = ", ".join(f"rthread {rthread} exited {code}"
                       for rthread, code in bad.items())
    return f"workload fault: {detail}"


def _replay_to_fault(recording: Recording) -> dict[str, Any]:
    """Replay the window and compare against the recorded verdict."""
    from ..replay.checkpoint import base_replayer
    from ..replay.verify import verify_replay

    meta = recording.metadata
    result = base_replayer(recording).run()
    report = verify_replay(
        meta.get("final_memory_digest", ""),
        {name: bytes.fromhex(data)
         for name, data in meta.get("outputs_hex", {}).items()},
        {int(rthread): code
         for rthread, code in meta.get("exit_codes", {}).items()},
        result, use_region="sphere_region" in meta)
    return {
        "ok": report.ok,
        "mismatches": report.mismatches,
        "exit_codes": {str(rthread): code
                       for rthread, code in sorted(result.exit_codes.items())},
        "result_digest": result.digest(),
    }


def write_crash_bundle(directory: str | Path, recording: Recording, *,
                       trigger: str, forensics: bool = True,
                       repro: str | None = None,
                       reproducer: dict[str, Any] | None = None) -> Path:
    """Materialize a crash bundle at ``directory``; returns its path.

    ``repro`` is the copy-pasteable command that reproduces the original
    run; ``reproducer`` is an optional pre-shrunk case (the soak path
    attaches its ddmin result when the failure replays deterministically).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    recording.save(directory / RECORDING_DIR)
    manifest: dict[str, Any] = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "trigger": trigger,
        "program": recording.program.name,
        "flight": recording.metadata.get(FLIGHT_META_KEY),
        "window_chunks": len(recording.chunks),
        "window_events": len(recording.events),
        "repro": repro,
        "reproducer": reproducer,
    }
    try:
        manifest["replay"] = _replay_to_fault(recording)
    except Exception as exc:  # noqa: BLE001 -- report, don't lose the bundle
        manifest["replay"] = None
        manifest["replay_error"] = f"{type(exc).__name__}: {exc}"
    if forensics:
        # Best-effort, like soak triage: an analyzer failure is recorded
        # in the manifest but never loses the captured window.
        try:
            from ..forensics import analyze_recording
            report, _graph = analyze_recording(
                recording, directory=str(directory / RECORDING_DIR))
            (directory / FORENSICS_NAME).write_text(
                json.dumps(report.as_dict(), indent=2) + "\n")
            manifest["races"] = len(report.races)
        except Exception as exc:  # noqa: BLE001
            manifest["races"] = None
            manifest["forensics_error"] = f"{type(exc).__name__}: {exc}"
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2) + "\n")
    return directory


def load_crash_manifest(directory: str | Path) -> dict[str, Any]:
    """The bundle's ``crash.json`` (validated)."""
    from ..errors import LogFormatError
    directory = Path(directory)
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
    except FileNotFoundError as exc:
        raise LogFormatError(f"no crash manifest in {directory}") from exc
    except json.JSONDecodeError as exc:
        raise LogFormatError(
            f"{directory / MANIFEST_NAME} is not valid JSON: {exc}") from exc
    if manifest.get("format") != BUNDLE_FORMAT:
        raise LogFormatError(f"{directory} is not a crash bundle")
    return manifest
