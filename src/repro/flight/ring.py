"""The epoch ring: bounded retention with a replayable base state.

The ring observes the recording as it happens — chunks in global
schedule order (the RSM chunk sink runs at chunk termination, under the
fabric's serialized order clock) and input events in kernel sequence
order (tapped at ``RSM._log`` entry, before any batching). Retention is
epoch-granular: every ``epoch_chunks`` chunks seal one epoch, and once
more than ``window`` sealed epochs exist the oldest is evicted in O(1).

Evicting an epoch must not lose the ability to replay the *retained*
window, so the ring maintains a **shadow replayer**: a live
:class:`~repro.replay.replayer.Replayer` that consumes exactly the
evicted prefix of the schedule. Its state is, by the checkpoint
machinery's own guarantee, bit-for-bit the state a serial replay of the
dropped prefix would reach — i.e. a checkpoint standing at the ring
base, advanced incrementally (amortized O(1) chunks per recorded chunk,
O(window) memory: ring buckets + one machine image, independent of run
length). ``materialize()`` captures that state as a position-0
checkpoint record, rebases the window's chunk timestamps to the window
origin, and returns a self-contained recording; restoring the base
state and replaying the window reproduces the unbounded replay's final
digests exactly, because the base state carries the cumulative kernel
bookkeeping (outputs, exit codes, statistics) of the dropped prefix.

Input-event ``seq``/``chunk_seq`` values and per-thread chunk counters
stay *absolute* — rebasing them would desynchronize the window's events
from the base state's counters; only chunk timestamps (the schedule
order) are rebased to the origin.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Callable

from ..capo.events import InputEvent
from ..capo.recording import FLIGHT_META_KEY, Recording
from ..config import SimConfig
from ..isa.program import Program
from ..mrr.chunk import ChunkEntry
from ..mrr.logfmt import CheckpointRecord
from ..replay.replayer import Replayer
from ..telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["FLIGHT_META_KEY", "FlightRing"]


class FlightRing:
    """Bounded retention of the last ``window`` epochs of a recording.

    Strictly an observer: it never changes the execution, the recorded
    logs' content, or the cycle accounting — only what is *retained*.
    """

    def __init__(self, config: SimConfig, program: Program, *,
                 window: int | None = None, epoch_chunks: int | None = None,
                 metadata: dict[str, Any] | None = None,
                 telemetry: Telemetry | None = None,
                 on_evict: Callable[[int], None] | None = None):
        if window is None:
            window = config.capo.flight_window
        if epoch_chunks is None:
            epoch_chunks = config.capo.flight_epoch_chunks
        if window <= 0:
            raise ValueError("flight ring needs a positive window")
        if epoch_chunks <= 0:
            raise ValueError("flight ring needs a positive epoch size")
        self.config = config
        self.program = program
        self.window = window
        self.epoch_chunks = epoch_chunks
        #: Called after each eviction with the timestamp of the oldest
        #: retained chunk (the RSM trims per-core order logs below it).
        self.on_evict = on_evict
        # Pre-run metadata the shadow replayer needs at construction time
        # (main stack pointer / sphere region for multi-process runs);
        # final verification metadata merges in at materialize().
        self._view_metadata = dict(metadata or {})
        view = Recording(config=config, program=program, chunks=[],
                         events=[], metadata=self._view_metadata)
        # The shadow consumes the evicted schedule prefix; its event
        # deques are shared with push_event, so events arrive
        # incrementally and unconsumed ones are exactly the window's.
        self._shadow = Replayer(view, schedule=[])
        self._epochs: deque[list[ChunkEntry]] = deque()
        self._open: list[ChunkEntry] = []
        self.evictions = 0
        self.chunks_seen = 0
        self.events_seen = 0
        self.max_chunks_retained = 0
        self.max_events_retained = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        self._tm_on = self.telemetry.enabled
        if self._tm_on:
            metrics = self.telemetry.metrics
            metrics.gauge("capture.flight_window").set(window)
            metrics.gauge("capture.flight_epoch_chunks").set(epoch_chunks)
            self._tm_evictions = metrics.counter("capture.evictions")
            self._tm_chunks = metrics.gauge("capture.chunks_retained")
            self._tm_events = metrics.gauge("capture.events_retained")

    # -- observation ----------------------------------------------------------

    @property
    def chunks_retained(self) -> int:
        return sum(len(epoch) for epoch in self._epochs) + len(self._open)

    @property
    def events_retained(self) -> int:
        return sum(len(events) for events
                   in self._shadow._events_by_thread.values())

    @property
    def base_position(self) -> int:
        """Absolute schedule position of the ring base (chunks evicted)."""
        return self._shadow.position

    def push_chunk(self, entry: ChunkEntry) -> None:
        """A chunk terminated; arrivals are in global schedule order."""
        self.chunks_seen += 1
        self._open.append(entry)
        if len(self._open) >= self.epoch_chunks:
            self._epochs.append(self._open)
            self._open = []
            while len(self._epochs) > self.window:
                self._evict()
        retained = self.chunks_retained
        if retained > self.max_chunks_retained:
            self.max_chunks_retained = retained

    def push_event(self, event: InputEvent) -> None:
        """An input event was logged; arrivals are in kernel seq order."""
        self.events_seen += 1
        self._shadow._events_by_thread.setdefault(
            event.rthread, deque()).append(event)
        retained = self.events_retained
        if retained > self.max_events_retained:
            self.max_events_retained = retained

    def _evict(self) -> None:
        """Drop the oldest epoch: advance the shadow replayer over it."""
        epoch = self._epochs.popleft()
        shadow = self._shadow
        shadow.schedule.extend(epoch)
        for _ in epoch:
            shadow.step_chunk()
        self.evictions += 1
        if self._tm_on:
            self._tm_evictions.inc()
            self._tm_chunks.set(self.chunks_retained)
            self._tm_events.set(self.events_retained)
            self.telemetry.tracer.instant(
                "flight.evict", cat="flight",
                args={"base_position": shadow.position,
                      "chunks_retained": self.chunks_retained})
        if self.on_evict is not None:
            self.on_evict(self._epochs[0][0].timestamp)

    # -- materialization ------------------------------------------------------

    def _base_record(self) -> CheckpointRecord:
        """The ring base as a position-0 checkpoint of the *window*.

        ``capture_state`` snapshots the shadow at its absolute position;
        the header is rewritten so the state restores at window position
        0 with every window event still pending (the shadow's deques hold
        exactly the unconsumed events, which become the window's log).
        """
        from ..replay.checkpoint import ReplayState, capture_state, \
            encode_state
        state = capture_state(self._shadow)
        header = dict(state.header)
        header["position"] = 0
        header["threads"] = {
            key: {**data, "events_consumed": 0}
            for key, data in state.header["threads"].items()}
        base = ReplayState(position=0, header=header, memory=state.memory)
        return CheckpointRecord.for_payload(0, encode_state(base))

    def materialize(self, metadata: dict[str, Any] | None = None,
                    ) -> Recording:
        """The retained window as a self-contained recording.

        Call at the end of recording (after ``RSM.finalize``): every
        thread alive in the window has terminated, so the window schedule
        satisfies the replayer's end-with-EXIT invariant.
        """
        window_chunks = [chunk for epoch in self._epochs for chunk in epoch]
        window_chunks.extend(self._open)
        events = sorted(
            (event for events in self._shadow._events_by_thread.values()
             for event in events),
            key=lambda event: event.seq)
        meta = dict(self._view_metadata)
        if metadata:
            meta.update(metadata)
        info = {
            "window": self.window,
            "epoch_chunks": self.epoch_chunks,
            "evictions": self.evictions,
            "base_position": self.base_position,
            "chunks_seen": self.chunks_seen,
            "events_seen": self.events_seen,
            "max_chunks_retained": self.max_chunks_retained,
            "max_events_retained": self.max_events_retained,
        }
        meta[FLIGHT_META_KEY] = info
        if self._tm_on:
            metrics = self.telemetry.metrics
            metrics.gauge("capture.chunks_retained").set(len(window_chunks))
            metrics.gauge("capture.events_retained").set(len(events))
            metrics.gauge("capture.chunks_seen").set(self.chunks_seen)
            metrics.gauge("capture.events_seen").set(self.events_seen)
            metrics.gauge("capture.base_position").set(self.base_position)
        if self.evictions == 0 or not window_chunks:
            # Nothing was dropped: the window is the whole recording and
            # replays from a fresh replayer, no base state needed.
            return Recording(config=self.config, program=self.program,
                             chunks=window_chunks, events=events,
                             metadata=meta)
        # Rebase the schedule origin: the window's first chunk gets
        # timestamp 1 and relative order is preserved (arrival order is
        # timestamp order), so the rebased window passes schedule
        # validation on its own.
        origin = window_chunks[0].timestamp - 1
        info["timestamp_origin"] = origin
        rebased = [dataclasses.replace(chunk,
                                       timestamp=chunk.timestamp - origin)
                   for chunk in window_chunks]
        return Recording(config=self.config, program=self.program,
                         chunks=rebased, events=events, metadata=meta,
                         checkpoints=[self._base_record()])
