"""T1 — platform parameters (the paper's QuickIA configuration table).

Prints the simulated machine's configuration in the shape of the paper's
platform table and benchmarks machine construction.
"""

from repro.analysis.report import render_table
from repro.config import DEFAULT_CONFIG
from repro.machine.machine import Machine

from conftest import publish


def test_t1_platform_table(benchmark):
    machine = benchmark(Machine, DEFAULT_CONFIG.machine)
    config = DEFAULT_CONFIG
    rows = [
        ("cores", f"{config.machine.num_cores} (2 sockets x 2 Pentium-class)"),
        ("coherence", "MESI over a serializing snoop bus"),
        ("L1 data cache", f"{config.machine.cache.size_bytes // 1024} KB, "
                          f"{config.machine.cache.ways}-way, "
                          f"{config.machine.cache.line_bytes} B lines"),
        ("store buffer", f"{config.machine.store_buffer.entries} entries (TSO)"),
        ("memory", f"{config.machine.memory_bytes >> 20} MB"),
        ("MRR signatures", f"{config.mrr.signature_bits}-bit Bloom x2 "
                           f"(R/W), {config.mrr.signature_hashes} H3 hashes"),
        ("chunk size cap", f"{config.mrr.max_chunk_instructions:,} instructions"),
        ("CBUF", f"{config.mrr.cbuf_entries} entries x 16 B"),
        ("chunk timestamp", "globally synchronized counter (invariant TSC)"),
        ("TSO handling", f"{config.mrr.tso_mode} (reordered-store window)"),
        ("scheduler quantum", f"{config.kernel.quantum_instructions:,} instructions"),
    ]
    table = render_table(("parameter", "value"), rows,
                         title="T1: simulated QuickRec platform")
    publish("t1_platform", table)
    assert machine.config == config.machine
    assert len(machine.cores) == 4
