"""F4 — chunk size distribution.

Mean/median/p90 chunk sizes per workload plus a CDF over the whole suite.

Paper shape: communication-light workloads run chunks of thousands of
instructions; lock- and sharing-heavy workloads are cut far more often.
"""

from repro.analysis.chunks import chunk_size_stats, size_cdf
from repro.analysis.report import render_table

from conftest import MICROS, SPLASH, BenchSuite, publish


def test_f4_chunk_sizes(benchmark, suite: BenchSuite):
    def measure():
        return {name: suite.record(name).recording.chunks
                for name in SPLASH + MICROS}

    logs = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, chunks in logs.items():
        stats = chunk_size_stats(chunks)
        rows.append((name, stats.count, stats.mean, stats.median,
                     stats.p90, stats.maximum))
    table = render_table(
        ("workload", "chunks", "mean", "median", "p90", "max"),
        rows, title="F4: chunk sizes (instructions per chunk)")

    all_chunks = [chunk for chunks in logs.values() for chunk in chunks]
    cdf_rows = [(point, 100 * fraction)
                for point, fraction in size_cdf(all_chunks)]
    cdf_table = render_table(("size <=", "% of chunks"), cdf_rows,
                             title="F4b: suite-wide chunk size CDF")
    publish("f4_chunksizes", table + "\n\n" + cdf_table)

    barnes = chunk_size_stats(logs["barnes"])
    water = chunk_size_stats(logs["water"])
    counter = chunk_size_stats(logs["counter"])
    # sharing intensity orders mean chunk size
    assert barnes.mean > water.mean > counter.mean
