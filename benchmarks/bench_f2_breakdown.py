"""F2 — where the software overhead goes.

Per-workload split of full-stack recording cycles into syscall
interposition, input logging (copy-to-user data), CBUF drain interrupts,
and context-switch state flushes.

Paper shape: kernel-crossing work (interposition + input logging)
dominates for syscall-heavy workloads; chunking-related software costs
stay small.
"""

from repro.analysis.report import render_table

from conftest import SPLASH, BenchSuite, publish


def test_f2_software_breakdown(benchmark, suite: BenchSuite):
    def measure():
        return {name: suite.overhead(name) for name in SPLASH}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, result in results.items():
        breakdown = result.software_breakdown()
        rows.append((
            name,
            100 * result.full_overhead,
            100 * breakdown["syscall_interposition"],
            100 * breakdown["input_logging"],
            100 * breakdown["cbuf_drain"],
            100 * breakdown["ctx_switch_flush"],
        ))
    table = render_table(
        ("workload", "full %", "interpose %", "input log %", "cbuf drain %",
         "ctx flush %"),
        rows, title="F2: software recording overhead breakdown "
                    "(% of native cycles)")
    publish("f2_breakdown", table)

    for name, result in results.items():
        breakdown = result.software_breakdown()
        software = sum(breakdown.values())
        # software components must account for ~all of full-vs-hw delta
        delta = result.full_overhead - result.hw_overhead
        assert abs(software - delta) < 0.02, name
