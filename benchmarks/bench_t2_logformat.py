"""T2 — the packed chunk log entry format.

Prints the 128-bit entry layout (the paper's log-entry table) and
benchmarks encode/decode throughput of the packed format.
"""

from repro.analysis.report import render_table
from repro.mrr.chunk import ChunkEntry, Reason
from repro.mrr.logfmt import ENTRY_BYTES, decode_chunks, encode_chunks

from conftest import publish


def _sample_log(count=5000):
    return [ChunkEntry(rthread=1 + i % 4, timestamp=i + 1,
                       icount=200 + i % 97, memops=(i % 11) and 0,
                       rsw=i % 3, reason=Reason.ALL[i % len(Reason.ALL)])
            for i in range(count)]


def test_t2_entry_layout(benchmark):
    entries = _sample_log()

    def round_trip():
        return decode_chunks(encode_chunks(entries))

    decoded = benchmark(round_trip)
    assert decoded == entries

    rows = [
        ("rthread", "u8", "replay-sphere thread id"),
        ("reason", "u8", "termination cause (RAW/WAR/WAW/size/saturation/"
                         "syscall/nondet/preempt/exit)"),
        ("RSW", "u16", "stores pending in the store buffer at termination"),
        ("timestamp", "u32", "globally synchronized chunk timestamp"),
        ("icount", "u32", "instructions retired in the chunk"),
        ("memops", "u32", "memory ops completed by the in-flight rep_* "
                          "instruction"),
    ]
    table = render_table(("field", "width", "meaning"), rows,
                         title=f"T2: packed chunk entry "
                               f"({8 * ENTRY_BYTES} bits)")
    publish("t2_logformat", table)
    assert ENTRY_BYTES == 16
