#!/usr/bin/env python
"""Thin wrapper around ``quickrec fuzz`` for soak campaigns.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/soak.py --count 200 --jobs 4 --matrix

Equivalent to ``python -m repro fuzz``; see that command's ``--help`` for
the flag reference (``--shrink``, ``--artifacts``, ``--inject``, ...).
The CI ``soak-smoke`` job runs the same campaign bounded to 40 seeds.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["fuzz", *sys.argv[1:]]))
