"""A3 — TSO handling ablation: RSW logging vs drain-on-termination.

QuickRec logs the reordered-store window instead of stalling chunk
termination until the store buffer drains. This bench records the same
workloads in both modes and reports the measurable structural differences:

- RSW mode leaves stores in flight across boundaries (nonzero RSW field);
- DRAIN mode empties the buffer at every *self-initiated* termination —
  but a snoop-cut victim sits inside the requester's coherence
  transaction, where issuing its own drain transactions is not
  implementable, so conflict-cut chunks fall back to RSW logging anyway.
  That asymmetry IS the finding: on conflict-dominated workloads (water)
  the two modes converge, and a pure stall-until-drained design cannot
  exist — which is why QuickRec logs the window. On size-cut-dominated
  workloads (barnes with a small chunk cap) DRAIN visibly eliminates
  pending stores.

What the functional simulator additionally does not model is DRAIN's
latency cost: the terminating core stalls on the full drain. See
EXPERIMENTS.md.
"""

from repro import session
from repro.analysis.chunks import rsw_stats
from repro.analysis.report import render_table
from repro.config import (
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
    TsoMode,
)
from repro.mrr.chunk import Reason

from conftest import BenchSuite, publish

_SB = StoreBufferConfig(entries=12, drain_period=12)
# water: conflict-cut dominated; barnes (small chunk cap): size-cut
# dominated, where DRAIN actually gets to drain.
NAMES = ("barnes", "water")


def _config(mode: str) -> SimConfig:
    return SimConfig(machine=MachineConfig(store_buffer=_SB),
                     mrr=MRRConfig(tso_mode=mode,
                                   max_chunk_instructions=256))


def test_a3_tso_mode(benchmark, suite: BenchSuite):
    def measure():
        out = {}
        for name in NAMES:
            for mode in (TsoMode.RSW, TsoMode.DRAIN):
                out[(name, mode)] = suite.record(name, config=_config(mode))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for (name, mode), outcome in sorted(results.items()):
        chunks = outcome.recording.chunks
        stats = rsw_stats(chunks)
        rows.append((name, mode, len(chunks),
                     100 * stats.fraction_nonzero,
                     outcome.machine_stats["bus"]["transactions"],
                     outcome.recording.chunk_log_compressed_bytes()))
    table = render_table(
        ("workload", "tso mode", "chunks", "RSW>0 %", "bus txns",
         "log bytes (comp)"),
        rows, title="A3: RSW logging vs drain-on-termination")
    publish("a3_tso_mode", table)

    for name in NAMES:
        rsw_run = results[(name, TsoMode.RSW)]
        drain_run = results[(name, TsoMode.DRAIN)]
        # drain mode empties the SB at self-initiated cuts; only snoop-cut
        # (conflict) chunks may still carry pending stores
        for chunk in drain_run.recording.chunks:
            if chunk.rsw:
                assert chunk.reason in Reason.CONFLICTS
        assert any(chunk.rsw > 0 for chunk in rsw_run.recording.chunks)
        drain_nonzero = sum(1 for c in drain_run.recording.chunks if c.rsw)
        rsw_nonzero = sum(1 for c in rsw_run.recording.chunks if c.rsw)
        assert drain_nonzero <= rsw_nonzero
        # user-visible execution is identical in both modes
        assert rsw_run.outputs == drain_run.outputs
        assert rsw_run.exit_codes == drain_run.exit_codes
        # and both recordings replay faithfully
        for run in (rsw_run, drain_run):
            replayed = session.replay_recording(run.recording)
            assert session.verify(run, replayed).ok

    # where size cuts dominate (barnes + small cap), DRAIN visibly drains
    barnes_rsw = results[("barnes", TsoMode.RSW)].recording.chunks
    barnes_drain = results[("barnes", TsoMode.DRAIN)].recording.chunks
    assert (sum(1 for c in barnes_drain if c.rsw)
            < sum(1 for c in barnes_rsw if c.rsw))
