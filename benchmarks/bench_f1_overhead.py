"""F1 — recording overhead (the paper's central figure).

Normalized execution time of each SPLASH workload under three
configurations with identical interleavings: native, recording hardware
only, and the full Capo3 software stack.

Paper shape: hardware overhead is negligible (a few percent at most);
the full stack averages ~13%, dominated by software costs.
"""

import statistics

from repro.analysis.report import render_table

from conftest import BENCH_SEED, SPLASH, BenchSuite, publish


def test_f1_recording_overhead(benchmark, suite: BenchSuite):
    def measure_all():
        return [suite.overhead(name) for name in SPLASH]

    results = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    rows = []
    for result in results:
        rows.append((result.name, result.native.instructions,
                     result.native.total_cycles,
                     100 * result.hw_overhead, 100 * result.full_overhead))
    hw_avg = statistics.mean(result.hw_overhead for result in results)
    full_avg = statistics.mean(result.full_overhead for result in results)
    rows.append(("GEOMEAN-ish avg", "", "", 100 * hw_avg, 100 * full_avg))

    table = render_table(
        ("workload", "instructions", "native cycles", "hw ovh %",
         "full stack ovh %"),
        rows,
        title=f"F1: recording overhead, identical interleavings "
              f"(seed={BENCH_SEED})")
    publish("f1_overhead", table)

    # Paper-shape assertions: hardware ~free, software low-double-digit avg.
    assert hw_avg < 0.05, "recording hardware should be near-free"
    assert 0.03 < full_avg < 0.35, "full stack should cost low double digits"
    assert all(result.hw_overhead < result.full_overhead
               for result in results)
