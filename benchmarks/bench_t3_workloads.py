"""T3 — the workload suite (the paper's benchmarks-and-inputs table).

Per workload: category, threads, retired instructions, syscall count, and
input bytes read — the characteristics that drive recording behaviour.
"""

from repro import workloads
from repro.analysis.report import render_table

from conftest import BENCH_SCALE, MICROS, SPLASH, publish, BenchSuite


def test_t3_workload_characteristics(benchmark, suite: BenchSuite):
    def record_representative():
        return suite.record("fft")

    benchmark.pedantic(record_representative, rounds=1, iterations=1)

    rows = []
    for name in SPLASH + MICROS:
        outcome = suite.record(name)
        workload = workloads.get(name)
        stats = outcome.kernel_stats
        rows.append((
            name,
            workload.category,
            workload.default_threads,
            outcome.instructions,
            stats["syscalls"] + stats["nondet_traps"],
            stats["copy_to_user_bytes"],
            len(outcome.recording.chunks),
        ))
    table = render_table(
        ("workload", "kind", "thr", "instructions", "syscalls",
         "input B", "chunks"),
        rows, title=f"T3: workload suite (scale={BENCH_SCALE})")
    publish("t3_workloads", table)
    assert all(row[3] > 0 for row in rows)
