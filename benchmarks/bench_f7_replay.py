"""F7 — replay cost.

The paper replays with a Pin-based software tool, much slower than native
recording. Our replayer is also software: we report replay wall time
against record wall time and verify every replay.

Shape: replay is the same order of magnitude as recording in this
simulator (both are interpreters); the paper's hardware-vs-software gap
does not exist here, and EXPERIMENTS.md discusses the difference.
"""

import time

from repro import session
from repro.analysis.report import render_table

from conftest import BENCH_SEED, BenchSuite, publish

NAMES = ("fft", "lu", "water", "raytrace", "counter", "iobound")


def test_f7_replay_cost(benchmark, suite: BenchSuite):
    rows = []
    replays = {}

    def replay_all():
        for name in NAMES:
            outcome = suite.record(name)
            start = time.perf_counter()
            replays[name] = (session.replay_recording(outcome.recording),
                             time.perf_counter() - start)

    benchmark.pedantic(replay_all, rounds=1, iterations=1)

    for name in NAMES:
        outcome = suite.record(name)
        program, inputs = suite.build(name)
        start = time.perf_counter()
        session.record(program, seed=BENCH_SEED, input_files=inputs)
        record_seconds = time.perf_counter() - start
        replayed, replay_seconds = replays[name]
        report = session.verify(outcome, replayed)
        assert report.ok, f"{name}: {report.summary()}"
        rows.append((name, outcome.instructions, record_seconds * 1000,
                     replay_seconds * 1000,
                     replay_seconds / max(record_seconds, 1e-9)))

    table = render_table(
        ("workload", "instructions", "record ms", "replay ms",
         "replay/record"),
        rows, title="F7: replay vs record cost (all replays verified)")
    publish("f7_replay", table)

    # replay should not be catastrophically slower than recording here
    assert all(row[4] < 10 for row in rows)
