"""A1 — signature size ablation.

Sweeping Bloom signature width on a large-footprint, low-true-conflict
workload (ocean at doubled scale, with a generous chunk cap so chunks can
actually grow): narrow signatures saturate and alias, cutting chunks early
and inflating the log; wider signatures let chunks run to their true
communication boundaries.
"""

from repro.analysis.chunks import chunk_size_stats, termination_breakdown
from repro.analysis.report import render_table
from repro.config import KernelConfig, MRRConfig, SimConfig
from repro.mrr.chunk import Reason

from conftest import BenchSuite, publish

BITS = (32, 64, 128, 256, 512, 1024)


def _config(bits: int) -> SimConfig:
    return SimConfig(mrr=MRRConfig(signature_bits=bits),
                     kernel=KernelConfig(quantum_instructions=20_000))


def test_a1_signature_sweep(benchmark, suite: BenchSuite):
    def measure():
        return {bits: suite.record("ocean", scale=3,
                                   config=_config(bits)).recording.chunks
                for bits in BITS}

    logs = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for bits, chunks in sorted(logs.items()):
        stats = chunk_size_stats(chunks)
        breakdown = termination_breakdown(chunks)
        conflict_frac = sum(breakdown.get(reason, 0.0)
                            for reason in Reason.CONFLICTS)
        rows.append((bits, stats.count, stats.mean,
                     100 * conflict_frac,
                     100 * breakdown.get(Reason.SATURATION, 0.0)))
    table = render_table(
        ("sig bits", "chunks", "mean chunk", "conflict %", "saturation %"),
        rows, title="A1: Bloom signature width sweep (ocean, 20k quantum)")
    publish("a1_signature", table)

    # aliasing/saturation cuts chunks: the narrowest signature logs the
    # most chunks with the smallest mean size
    assert len(logs[32]) > len(logs[1024])
    assert chunk_size_stats(logs[32]).mean < chunk_size_stats(logs[1024]).mean
    # and the narrow configs show saturation terminations at all
    narrow = termination_breakdown(logs[32])
    assert narrow.get(Reason.SATURATION, 0.0) > 0.0
