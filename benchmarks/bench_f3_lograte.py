"""F3 — log generation rates.

Bytes per kilo-instruction for the chunk (memory) log — raw and
compressed — and the input log, plus aggregate MB/s at the QuickIA core
frequency.

Paper shape: memory-log generation is "insignificant" (a few bytes per
kilo-instruction, far below memory bandwidth); the input log dominates for
I/O-heavy workloads.
"""

from repro.analysis.logs import log_rates
from repro.analysis.report import render_table

from conftest import MICROS, SPLASH, BenchSuite, publish


def test_f3_log_rates(benchmark, suite: BenchSuite):
    def measure():
        return [log_rates(suite.record(name), name=name)
                for name in SPLASH + MICROS]

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for rate in rates:
        rows.append((
            rate.name,
            rate.chunk_entries,
            rate.chunk_bytes_per_kiloinstruction,
            rate.chunk_compressed_per_kiloinstruction,
            rate.input_bytes_per_kiloinstruction,
            rate.mbytes_per_second(),
        ))
    table = render_table(
        ("workload", "chunks", "chunk B/ki", "compressed B/ki",
         "input B/ki", "MB/s @60MHz"),
        rows, title="F3: log generation rate")
    publish("f3_lograte", table)

    for rate in rates:
        # compression must always win, by a wide margin
        assert rate.chunk_bytes_compressed < rate.chunk_bytes_raw / 3
    # compute-dominated workloads carry the paper's "insignificant" claim:
    # well under one byte of memory log per instruction
    for name in ("barnes", "ocean", "fft", "lu", "raytrace"):
        rate = next(r for r in rates if r.name == name)
        assert rate.chunk_bytes_per_kiloinstruction < 200, name
        assert rate.chunk_compressed_per_kiloinstruction < 30, name
    iobound = next(rate for rate in rates if rate.name == "iobound")
    barnes = next(rate for rate in rates if rate.name == "barnes")
    assert iobound.input_bytes_per_kiloinstruction > \
        barnes.input_bytes_per_kiloinstruction
