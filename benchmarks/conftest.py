"""Shared infrastructure for the evaluation benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index). Recordings and overhead
measurements are cached per session so the figure benches don't repeat
work; every bench writes its rendered table to ``benchmarks/results/`` and
prints it (visible with ``pytest -s`` or in the saved files).

Knobs:
    REPRO_BENCH_SCALE    problem-size multiplier (default 2)
    REPRO_BENCH_SEED     interleaving seed (default 2)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import session, workloads
from repro.perf.overhead import OverheadResult, measure_overhead

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2"))

RESULTS_DIR = Path(__file__).parent / "results"

SPLASH = tuple(workloads.splash_names())
MICROS = ("counter", "dekker", "iobound", "pingpong")


class BenchSuite:
    """Lazily records workloads and measures overheads, once per session."""

    def __init__(self):
        self._recordings: dict[tuple, session.RunOutcome] = {}
        self._overheads: dict[tuple, OverheadResult] = {}

    def build(self, name: str, threads: int | None = None,
              scale: int | None = None):
        return workloads.build(name, threads=threads,
                               scale=BENCH_SCALE if scale is None else scale)

    def record(self, name: str, threads: int | None = None,
               scale: int | None = None, config=None,
               seed: int = BENCH_SEED) -> session.RunOutcome:
        key = ("rec", name, threads, scale, config, seed)
        if key not in self._recordings:
            program, inputs = self.build(name, threads=threads, scale=scale)
            self._recordings[key] = session.record(
                program, seed=seed, input_files=inputs, config=config)
        return self._recordings[key]

    def overhead(self, name: str, threads: int | None = None,
                 scale: int | None = None, config=None,
                 seed: int = BENCH_SEED) -> OverheadResult:
        key = ("ovh", name, threads, scale, config, seed)
        if key not in self._overheads:
            program, inputs = self.build(name, threads=threads, scale=scale)
            self._overheads[key] = measure_overhead(
                program, seed=seed, input_files=inputs, name=name,
                config=config)
        return self._overheads[key]


@pytest.fixture(scope="session")
def suite() -> BenchSuite:
    return BenchSuite()


def publish(experiment_id: str, text: str) -> None:
    """Print a figure/table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
