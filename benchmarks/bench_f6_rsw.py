"""F6 — TSO reordered-store-window statistics.

How often chunks terminate with stores still in the store buffer (RSW > 0),
and how deep the window gets — the x86-specific phenomenon QuickRec's log
entry had to grow a field for.

Paper shape: a visible minority of chunks carry nonzero RSW; the window
stays shallow (a few entries).
"""

from repro.analysis.chunks import rsw_stats
from repro.analysis.report import render_table
from repro.config import MachineConfig, SimConfig, StoreBufferConfig

from conftest import MICROS, SPLASH, BenchSuite, publish

# Lazier drains than the default make the TSO window visible, the way a
# deeper store buffer would on real silicon.
LAZY_SB = SimConfig(machine=MachineConfig(
    store_buffer=StoreBufferConfig(entries=12, drain_period=12)))


def test_f6_rsw_statistics(benchmark, suite: BenchSuite):
    names = SPLASH + MICROS

    def measure():
        return {name: suite.record(name, config=LAZY_SB).recording.chunks
                for name in names}

    logs = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, chunks in logs.items():
        stats = rsw_stats(chunks)
        rows.append((name, stats.chunks, 100 * stats.fraction_nonzero,
                     stats.mean_nonzero, stats.maximum))
    table = render_table(
        ("workload", "chunks", "RSW>0 %", "mean RSW (nonzero)", "max RSW"),
        rows, title="F6: reordered-store-window occupancy "
                    "(12-entry SB, lazy drain)")
    publish("f6_rsw", table)

    total = rsw_stats([chunk for chunks in logs.values() for chunk in chunks])
    assert total.nonzero > 0, "TSO window never observed — SB too eager"
    assert total.maximum <= 12
    # kernel entries drain first, so RSW>0 only on hardware-cut chunks
    from repro.mrr.chunk import Reason

    for chunks in logs.values():
        for chunk in chunks:
            if chunk.rsw:
                assert chunk.reason in Reason.HARDWARE
