"""F8 — thread-count scaling.

Full-stack overhead and chunk production at 1/2/4/8 threads on an 8-core
machine, for one sharing-heavy and one compute-heavy workload.

Paper shape: recording overhead stays roughly flat with thread count,
while chunk (and thus log) production grows with communication.
"""

from repro.analysis.report import render_table
from repro.config import MachineConfig, SimConfig

from conftest import BenchSuite, publish

EIGHT_CORES = SimConfig(machine=MachineConfig(num_cores=8))
THREADS = (1, 2, 4, 8)
NAMES = ("water", "barnes")


def test_f8_thread_scaling(benchmark, suite: BenchSuite):
    def measure():
        out = {}
        for name in NAMES:
            for threads in THREADS:
                out[(name, threads)] = suite.overhead(
                    name, threads=threads, config=EIGHT_CORES)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for (name, threads), result in sorted(results.items()):
        recording = result.full.recording
        chunks_per_ki = (1000 * len(recording.chunks)
                         / result.full.instructions)
        rows.append((name, threads, result.native.instructions,
                     100 * result.full_overhead, len(recording.chunks),
                     chunks_per_ki))
    table = render_table(
        ("workload", "threads", "instructions", "full ovh %", "chunks",
         "chunks/ki"),
        rows, title="F8: scaling with thread count (8-core machine)")
    publish("f8_scaling", table)

    for name in NAMES:
        single = results[(name, 1)]
        eight = results[(name, 8)]
        chunk_rate = lambda r: (len(r.full.recording.chunks)
                                / r.full.instructions)
        # communication (chunk production) grows with threads
        assert chunk_rate(eight) > chunk_rate(single)
        # overhead stays in the same regime rather than exploding
        assert eight.full_overhead < 6 * max(single.full_overhead, 0.02)
