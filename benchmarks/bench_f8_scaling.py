"""F8 — thread-count scaling.

Full-stack overhead and chunk production across thread counts, for one
sharing-heavy and one compute-heavy workload, at every machine size named
by ``REPRO_BENCH_F8_CORES`` (default ``8,16,32,64`` — the many-core
scaling ladder; trim the list for a quick run).

Paper shape: recording overhead stays roughly flat with thread count,
while chunk (and thus log) production grows with communication.
"""

import os

from repro.analysis.report import render_table
from repro.config import MachineConfig, SimConfig
from repro.perf.bench import chunk_rate_per_kilo_instruction

from conftest import BenchSuite, publish

CORE_COUNTS = tuple(
    int(cores) for cores in
    os.environ.get("REPRO_BENCH_F8_CORES", "8,16,32,64").split(","))
NAMES = ("water", "barnes")


def machine_config(cores: int) -> SimConfig:
    return SimConfig(machine=MachineConfig(num_cores=cores))


def thread_points(cores: int) -> tuple[int, ...]:
    """Powers of two from 1 up to the core count."""
    points = []
    threads = 1
    while threads <= cores:
        points.append(threads)
        threads *= 2
    return tuple(points)


def test_f8_thread_scaling(benchmark, suite: BenchSuite):
    def measure():
        out = {}
        for cores in CORE_COUNTS:
            config = machine_config(cores)
            for name in NAMES:
                for threads in thread_points(cores):
                    out[(name, cores, threads)] = suite.overhead(
                        name, threads=threads, config=config)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for (name, cores, threads), result in sorted(results.items()):
        recording = result.full.recording
        rows.append((name, cores, threads, result.native.instructions,
                     100 * result.full_overhead, len(recording.chunks),
                     chunk_rate_per_kilo_instruction(
                         len(recording.chunks), result.full.instructions)))
    table = render_table(
        ("workload", "cores", "threads", "instructions", "full ovh %",
         "chunks", "chunks/ki"),
        rows, title="F8: scaling with thread count "
                    f"(cores: {', '.join(map(str, CORE_COUNTS))})")
    publish("f8_scaling", table)

    def chunk_rate(result):
        return chunk_rate_per_kilo_instruction(
            len(result.full.recording.chunks), result.full.instructions)

    for cores in CORE_COUNTS:
        top = thread_points(cores)[-1]
        for name in NAMES:
            single = results[(name, cores, 1)]
            most = results[(name, cores, top)]
            # communication (chunk production) grows with threads
            assert chunk_rate(most) > chunk_rate(single)
            # overhead stays in the same regime rather than exploding —
            # calibrated at the original 8-thread point; past it chunk
            # production (and with it recording cost) legitimately grows
            # with communication
            eight = results[(name, cores, min(8, top))]
            assert eight.full_overhead < 6 * max(single.full_overhead, 0.02)
