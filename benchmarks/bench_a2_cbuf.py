"""A2 — chunk buffer (CBUF) sizing ablation.

Smaller CBUFs interrupt the kernel more often to drain; the drain cost is
pure software overhead. Sweeping the entry count shows the
interrupt-frequency/overhead tradeoff that sized the prototype's buffer.
"""

from repro.analysis.report import render_table
from repro.config import MRRConfig, SimConfig

from conftest import BenchSuite, publish

ENTRIES = (4, 16, 64, 256, 1024)


def test_a2_cbuf_sweep(benchmark, suite: BenchSuite):
    def measure():
        out = {}
        for entries in ENTRIES:
            config = SimConfig(mrr=MRRConfig(cbuf_entries=entries))
            out[entries] = suite.overhead("radix", config=config)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for entries, result in sorted(results.items()):
        stats = result.full.rsm_stats
        rows.append((entries, stats["cbuf_drains"],
                     stats["cycles_cbuf_drain"],
                     100 * result.full_overhead))
    table = render_table(
        ("CBUF entries", "drain interrupts", "drain cycles", "full ovh %"),
        rows, title="A2: chunk buffer sizing sweep (radix)")
    publish("a2_cbuf", table)

    drains = {entries: result.full.rsm_stats["cbuf_drains"]
              for entries, result in results.items()}
    assert drains[4] > drains[1024]
    assert results[4].full_overhead > results[1024].full_overhead
