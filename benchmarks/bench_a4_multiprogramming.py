"""A4 — recording under multiprogramming (the Capo sphere scenario).

The replay sphere records one process while unrecorded background
processes compete for the machine. Sweeping background load shows:

- the sphere still records and replays byte-exact (verified per cell);
- context switching (and thus MRR virtualization work) scales with load;
- the sphere's *conflict* cuts actually drop under load — its threads run
  concurrently less often — while its retired work wobbles with lock/
  barrier spinning. Isolation is behavioural, not performance isolation.
"""

from repro import session, workloads
from repro.analysis.report import render_table
from repro.isa.builder import KernelBuilder

from conftest import BENCH_SEED, publish

BACKGROUND_COUNTS = (0, 1, 2, 3)


def _background(data_base: int):
    b = KernelBuilder(data_base=data_base)
    b.word("acc", 0)
    b.label("main")
    with b.for_range("r6", 0, 3000):
        b.ins("load", "r7", "[acc]")
        b.ins("add", "r7", "r7", "r6")
        b.ins("store", "[acc]", "r7")
    b.exit(0)
    return b.build(f"bg@{data_base:#x}")


def test_a4_multiprogramming(benchmark):
    program, inputs = workloads.build("water")

    def measure():
        out = {}
        for count in BACKGROUND_COUNTS:
            backgrounds = [_background(0x100000 + i * 0x40000)
                           for i in range(count)]
            outcome, replayed, report = session.record_and_replay(
                program, seed=BENCH_SEED, input_files=inputs,
                background_programs=backgrounds)
            assert report.ok, f"{count} bg: {report.summary()}"
            out[count] = outcome
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for count, outcome in sorted(results.items()):
        sphere_instr = sum(
            c.icount for c in outcome.recording.chunks)
        rows.append((count, outcome.instructions, sphere_instr,
                     len(outcome.recording.chunks),
                     outcome.kernel_stats["preemptions"],
                     outcome.kernel_stats["context_switches"]))
    table = render_table(
        ("bg procs", "machine instr", "sphere instr", "sphere chunks",
         "preemptions", "ctx switches"),
        rows, title="A4: recording one sphere under background load "
                    "(every cell replay-verified)")
    publish("a4_multiprogramming", table)

    # background load adds machine work and scheduling churn
    base = results[0]
    loaded = results[BACKGROUND_COUNTS[-1]]
    assert loaded.instructions > base.instructions
    assert loaded.kernel_stats["context_switches"] > \
        base.kernel_stats["context_switches"]
    # and the sphere's logs never contain background threads
    for outcome in results.values():
        recorded = set(outcome.sphere_exit_codes)
        assert {c.rthread for c in outcome.recording.chunks} <= recorded
