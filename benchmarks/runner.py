#!/usr/bin/env python
"""Thin wrapper around :mod:`repro.perf.bench`.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/runner.py [--quick] [--workers N] ...

Equivalent to ``python -m repro bench-all``; see that command's ``--help``
for the flag reference. Appends to ``BENCH_simrate.json`` in the current
directory unless ``--out`` says otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
