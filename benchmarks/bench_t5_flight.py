"""T5 — flight recorder: O(window) memory at bit-identical fidelity.

Sweeps problem scale with a fixed ring geometry and shows the two halves
of the flight contract together in one table: the unbounded chunk log
grows with the run while peak ring occupancy stays below the
``(window + 1) * epoch_chunks`` ceiling, and at every scale the flight
run's execution cycles and replay digest equal the unbounded run's.
"""

from repro.analysis.report import render_table
from repro.perf.flight import measure_flight

from conftest import BENCH_SEED, BenchSuite, publish

WINDOW = 2
EPOCH_CHUNKS = 32
SCALES = (1, 2, 4)
WORKLOADS = ("racer", "counter")


def test_t5_flight_bounded_memory(benchmark, suite: BenchSuite):
    def measure():
        rows = []
        for name in WORKLOADS:
            for scale in SCALES:
                program, inputs = suite.build(name, scale=scale)
                rows.append(measure_flight(
                    program, window=WINDOW, epoch_chunks=EPOCH_CHUNKS,
                    seed=BENCH_SEED, input_files=inputs,
                    name=f"{name} x{scale}"))
        return rows

    comparisons = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for cmp in comparisons:
        rows.append((
            cmp.name,
            cmp.chunks_total,
            cmp.max_chunks_retained,
            cmp.ring_bound,
            cmp.evictions,
            "yes" if cmp.bit_identical else "NO",
        ))
    table = render_table(
        ("workload", "log chunks", "peak ring", "bound",
         "evictions", "bit-identical"),
        rows,
        title=f"T5: flight ring (window={WINDOW} x {EPOCH_CHUNKS} chunks) "
              "vs unbounded log")
    publish("t5_flight", table)

    for cmp in comparisons:
        # fidelity: the ring never perturbs execution or replay outcome
        assert cmp.bit_identical, cmp.name
        # boundedness: peak occupancy is O(window), not O(run)
        assert cmp.bounded, (cmp.name, cmp.max_chunks_retained,
                             cmp.ring_bound)
    # the sweep's point: the log outgrows a ring that does not grow
    biggest = {name: max(c.chunks_total for c in comparisons
                         if c.name.startswith(name)) for name in WORKLOADS}
    for name in WORKLOADS:
        ceiling = (WINDOW + 1) * EPOCH_CHUNKS
        assert biggest[name] > ceiling, \
            f"{name} never outgrew the ring; raise SCALES"
