"""T4 — log bandwidth: v1 (row-packed) vs v2 (columnar) codecs.

The rr lineage of the v2 formats: columnar delta-varint fields, a
content-keyed pool for duplicate copy payloads, streaming zlib. This
bench measures the size of the *same* recording serialized both ways —
the compression ratio is the whole argument for the format — plus the
throughput of the chunked XOR used by the checkpoint delta encoder.
"""

import time

from repro.analysis.logs import log_rates
from repro.analysis.report import render_table
from repro.mrr.logfmt import _xor_bytes

from conftest import MICROS, SPLASH, BenchSuite, publish


def test_t4_log_bandwidth(benchmark, suite: BenchSuite):
    def measure():
        return [log_rates(suite.record(name), name=name)
                for name in SPLASH + MICROS]

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for rate in rates:
        rows.append((
            rate.name,
            rate.chunk_bytes_raw,
            rate.chunk_bytes_v2,
            f"{rate.chunk_compression_ratio:.1f}x",
            rate.input_bytes,
            rate.input_bytes_v2,
            f"{rate.input_compression_ratio:.1f}x",
        ))
    table = render_table(
        ("workload", "chunk v1 B", "chunk v2 B", "ratio",
         "input v1 B", "input v2 B", "ratio"),
        rows, title="T4: log bytes, v1 (row-packed) vs v2 (columnar)")
    publish("t4_logbandwidth", table)
    for rate in rates:
        assert rate.chunk_bytes_v2 <= rate.chunk_bytes_raw
        assert rate.input_bytes_v2 <= rate.input_bytes


def test_t4_xor_throughput(benchmark):
    # the checkpoint delta encoder XORs consecutive memory images; the
    # chunked memoryview implementation must sustain large inputs
    size = 1 << 22  # a full simulated memory image
    data = bytes(i & 0xFF for i in range(size))
    key = bytes((i * 7 + 3) & 0xFF for i in range(size))

    result = benchmark(lambda: _xor_bytes(data, key))
    assert len(result) == size
    assert result[:4] == bytes(a ^ b for a, b in zip(data[:4], key[:4]))

    start = time.perf_counter()
    _xor_bytes(data, key)
    elapsed = time.perf_counter() - start
    publish("t4_xor", f"T4: xor {size / 1e6:.1f} MB in {elapsed * 1e3:.1f} ms"
                      f" ({size / elapsed / 1e6:.0f} MB/s)")
