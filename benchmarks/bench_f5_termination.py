"""F5 — why chunks terminate.

Per-workload fraction of chunk terminations by cause: true/false sharing
conflicts (RAW/WAR/WAW), instruction-count cap, signature saturation, and
kernel entries (syscalls, nondet traps, preemptions, exit).

Paper shape: sharing-heavy workloads terminate mostly on conflicts;
compute-heavy ones on size caps and scheduler quanta.
"""

from repro.analysis.chunks import termination_breakdown
from repro.analysis.report import render_table
from repro.mrr.chunk import Reason

from conftest import MICROS, SPLASH, BenchSuite, publish

_COLUMNS = (Reason.RAW, Reason.WAR, Reason.WAW, Reason.SIZE,
            Reason.SATURATION, Reason.SYSCALL, Reason.NONDET,
            Reason.PREEMPT, Reason.EXIT)


def test_f5_termination_breakdown(benchmark, suite: BenchSuite):
    def measure():
        return {name: suite.record(name).recording.chunks
                for name in SPLASH + MICROS}

    logs = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, chunks in logs.items():
        breakdown = termination_breakdown(chunks)
        rows.append((name,) + tuple(100 * breakdown.get(reason, 0.0)
                                    for reason in _COLUMNS))
    table = render_table(("workload",) + _COLUMNS, rows,
                         title="F5: chunk termination causes (% of chunks)")
    publish("f5_termination", table)

    # shape: the atomic-contention micro is conflict-dominated
    counter = termination_breakdown(logs["counter"], group_conflicts=True)
    assert counter["conflict"] > 0.5
    # every workload's chunks sum to 1
    for name, chunks in logs.items():
        breakdown = termination_breakdown(chunks)
        assert abs(sum(breakdown.values()) - 1.0) < 1e-9, name
