import pytest

from repro.capo.events import (
    EV_NONDET,
    EV_SIGNAL,
    EV_SYSCALL,
    InputEvent,
    KIND_CODES,
    KIND_NAMES,
    KINDS,
)


def test_kind_tables_consistent():
    assert set(KIND_CODES) == set(KINDS)
    for kind, code in KIND_CODES.items():
        assert KIND_NAMES[code] == kind


def test_payload_bytes_sums_copies():
    event = InputEvent(1, 1, 0, EV_SYSCALL, sysno=3, value=8,
                       copies=((0x100, b"abcd"), (0x200, b"xy")))
    assert event.payload_bytes == 6


def test_payload_bytes_zero_without_copies():
    assert InputEvent(1, 1, 0, EV_SIGNAL, value=10).payload_bytes == 0


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        InputEvent(1, 1, 0, "teleport")


def test_unknown_nondet_kind_rejected():
    with pytest.raises(ValueError):
        InputEvent(1, 1, 0, EV_NONDET, nondet_kind="coinflip")


def test_valid_nondet_kinds():
    for kind in ("rdtsc", "rdrand", "cpuid"):
        event = InputEvent(1, 1, 0, EV_NONDET, nondet_kind=kind, value=5)
        assert event.nondet_kind == kind
