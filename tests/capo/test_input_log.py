import pytest

from repro.capo.events import (
    EV_EXIT,
    EV_NONDET,
    EV_SIGNAL,
    EV_SIGRETURN,
    EV_SYSCALL,
    InputEvent,
)
from repro.capo.input_log import decode_events, encode_events
from repro.errors import LogFormatError


def sample_events():
    return [
        InputEvent(1, 1, 0, EV_SYSCALL, sysno=3, value=128,
                   copies=((0x2000, b"hello world!"),)),
        InputEvent(2, 2, 1, EV_NONDET, nondet_kind="rdtsc", value=0xABCDEF),
        InputEvent(2, 3, 1, EV_SIGNAL, value=10),
        InputEvent(2, 4, 2, EV_SIGRETURN),
        InputEvent(1, 5, 3, EV_EXIT, value=0),
    ]


def test_round_trip():
    events = sample_events()
    assert decode_events(encode_events(events)) == events


def test_empty_log():
    assert decode_events(encode_events([])) == []


def test_multiple_copies_round_trip():
    event = InputEvent(1, 1, 0, EV_SYSCALL, sysno=3, value=8,
                       copies=((0, b"ab"), (100, b""), (200, b"c" * 300)))
    assert decode_events(encode_events([event])) == [event]


def test_large_values_round_trip():
    event = InputEvent(255, 2**40, 2**20, EV_SYSCALL, sysno=9,
                       value=0xFFFFFFFF)
    assert decode_events(encode_events([event])) == [event]


def test_bad_magic_rejected():
    blob = bytearray(encode_events(sample_events()))
    blob[0] = ord("Z")
    with pytest.raises(LogFormatError):
        decode_events(bytes(blob))


def test_truncated_rejected():
    blob = encode_events(sample_events())
    with pytest.raises(LogFormatError):
        decode_events(blob[:-3])


def test_trailing_garbage_rejected():
    blob = encode_events(sample_events())
    with pytest.raises(LogFormatError):
        decode_events(blob + b"\x00")


def test_header_too_short_rejected():
    with pytest.raises(LogFormatError):
        decode_events(b"QRIL")


# -- v2 (columnar) format ----------------------------------------------------

def test_v2_round_trip():
    events = sample_events()
    assert decode_events(encode_events(events, version=2)) == events


def test_v2_empty_log():
    assert decode_events(encode_events([], version=2)) == []


def test_v2_header_differs_from_v1_and_negotiates():
    events = sample_events()
    v1 = encode_events(events)
    v2 = encode_events(events, version=2)
    assert v1 != v2
    assert v1[4] == 1 and v2[4] == 2
    assert decode_events(v1) == decode_events(v2) == events


def test_v2_duplicate_payloads_pooled():
    payload = b"the same page of data" * 40
    events = [
        InputEvent(1, seq, seq, EV_SYSCALL, sysno=3, value=len(payload),
                   copies=((0x1000 * seq, payload),))
        for seq in range(1, 17)
    ]
    v1 = encode_events(events)
    v2 = encode_events(events, version=2)
    # 16 copies of the payload collapse to one pool entry
    assert len(v2) < len(v1) / 4
    assert decode_events(v2) == events


def test_v2_unknown_version_rejected():
    with pytest.raises(LogFormatError):
        encode_events([], version=3)
    blob = bytearray(encode_events([], version=2))
    blob[4] = 9
    with pytest.raises(LogFormatError):
        decode_events(bytes(blob))


def test_v2_truncation_rejected_at_every_offset():
    blob = encode_events(sample_events(), version=2)
    for cut in range(len(blob)):
        with pytest.raises(LogFormatError):
            decode_events(blob[:cut])


def test_v2_trailing_garbage_rejected():
    blob = encode_events(sample_events(), version=2)
    with pytest.raises(LogFormatError):
        decode_events(blob + b"\x00")


def test_unbounded_varint_rejected():
    # regression: a 0x80 run used to spin the decoder past any length
    # bound instead of failing fast at MAX_VARINT_BYTES
    blob = encode_events([], version=1)[:5] + b"\x80" * 64 + b"\x01"
    with pytest.raises(LogFormatError):
        decode_events(blob)
