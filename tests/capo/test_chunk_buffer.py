import pytest

from repro.capo.chunk_buffer import ChunkBuffer
from repro.mrr.chunk import ChunkEntry, Reason


def entry(ts):
    return ChunkEntry(1, ts, 1, 0, 0, Reason.SIZE)


def test_overflow_triggers_drain():
    drained = []
    cbuf = ChunkBuffer(3, drained.append)
    for ts in range(3):
        cbuf.append(entry(ts))
    assert len(drained) == 1
    assert [e.timestamp for e in drained[0]] == [0, 1, 2]
    assert len(cbuf) == 0
    assert cbuf.drains == 1


def test_manual_drain_flushes_partial():
    drained = []
    cbuf = ChunkBuffer(10, drained.append)
    cbuf.append(entry(1))
    assert cbuf.drain() == 1
    assert drained[0][0].timestamp == 1


def test_drain_empty_is_noop():
    drained = []
    cbuf = ChunkBuffer(4, drained.append)
    assert cbuf.drain() == 0
    assert drained == []
    assert cbuf.drains == 0


def test_appended_counter():
    cbuf = ChunkBuffer(2, lambda batch: None)
    for ts in range(5):
        cbuf.append(entry(ts))
    assert cbuf.appended == 5


def test_capacity_validated():
    with pytest.raises(ValueError):
        ChunkBuffer(0, lambda batch: None)
