import json

import pytest

from repro import session, workloads
from repro.capo.recording import Recording
from repro.errors import LogFormatError


@pytest.fixture(scope="module")
def recording():
    program, inputs = workloads.build("counter", threads=2)
    return session.record(program, seed=3, input_files=inputs).recording


def test_save_load_round_trip(recording, tmp_path):
    recording.save(tmp_path / "rec")
    loaded = Recording.load(tmp_path / "rec")
    assert loaded.chunks == recording.chunks
    assert loaded.events == recording.events
    assert loaded.config == recording.config
    assert loaded.program.instructions == recording.program.instructions
    assert loaded.metadata == json.loads(json.dumps(recording.metadata))


def test_saved_layout(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    names = {path.name for path in directory.iterdir()}
    assert {"manifest.json", "program.json", "input.bin", "chunks.bin"} <= names
    assert "chunks.qrz" in names  # compression enabled by default


def test_compressed_chunk_fallback(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    (directory / "chunks.bin").unlink()
    loaded = Recording.load(directory)
    assert sorted(loaded.chunks, key=lambda c: c.sort_key) == \
           sorted(recording.chunks, key=lambda c: c.sort_key)


def test_load_missing_directory(tmp_path):
    with pytest.raises(LogFormatError):
        Recording.load(tmp_path / "nope")


def test_load_rejects_foreign_manifest(tmp_path):
    directory = tmp_path / "rec"
    directory.mkdir()
    (directory / "manifest.json").write_text(json.dumps({"format": "other"}))
    with pytest.raises(LogFormatError):
        Recording.load(directory)


def test_manifest_count_mismatch_detected(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    manifest = json.loads((directory / "manifest.json").read_text())
    manifest["chunk_count"] += 1
    (directory / "manifest.json").write_text(json.dumps(manifest))
    # sections decode lazily, so the mismatch surfaces at first access
    loaded = Recording.load(directory)
    with pytest.raises(LogFormatError):
        _ = loaded.chunks


def test_event_count_mismatch_detected(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    manifest = json.loads((directory / "manifest.json").read_text())
    manifest["event_count"] += 1
    (directory / "manifest.json").write_text(json.dumps(manifest))
    loaded = Recording.load(directory)
    with pytest.raises(LogFormatError):
        _ = loaded.events


def test_sections_load_lazily(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    loaded = Recording.load(directory)
    assert loaded.sections_loaded == {"chunks": False, "events": False,
                                      "checkpoints": False}
    # metadata-only surfaces force nothing
    assert loaded.metadata == recording.metadata
    assert loaded.config == recording.config
    assert loaded.sections_loaded["chunks"] is False
    _ = loaded.events
    assert loaded.sections_loaded == {"chunks": False, "events": True,
                                      "checkpoints": False}
    _ = loaded.chunks
    assert loaded.sections_loaded["chunks"] is True


def test_metadata_access_needs_no_chunk_log(recording, tmp_path):
    """Regression: stats/inspect paths that only read the manifest must
    not decode (or even require) the chunk payloads."""
    directory = recording.save(tmp_path / "rec")
    (directory / "chunks.bin").unlink()
    (directory / "chunks.qrz").unlink()
    loaded = Recording.load(directory)
    assert loaded.metadata["final_memory_digest"]
    assert loaded.program.instructions == recording.program.instructions
    with pytest.raises(LogFormatError):
        _ = loaded.chunks  # the missing section errors only when forced


def test_in_memory_recording_sections_are_eager(recording):
    assert recording.sections_loaded == {"chunks": True, "events": True,
                                         "checkpoints": True}


def test_size_helpers(recording):
    assert recording.chunk_log_bytes() > 0
    assert recording.input_log_bytes() > 0
    assert recording.total_log_bytes() == (recording.chunk_log_bytes()
                                           + recording.input_log_bytes())
    assert recording.chunk_log_compressed_bytes() < recording.chunk_log_bytes()


def test_thread_slicing(recording):
    rthreads = recording.rthreads()
    assert rthreads == [1, 2]
    total = sum(len(recording.chunks_of(rt)) for rt in rthreads)
    assert total == len(recording.chunks)
    for rt in rthreads:
        assert all(event.rthread == rt for event in recording.events_of(rt))


def test_replay_of_loaded_recording(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    loaded = Recording.load(directory)
    result = session.replay_recording(loaded)
    assert result.final_memory_digest == recording.metadata["final_memory_digest"]


# -- versioned serialization -------------------------------------------------

@pytest.fixture(scope="module")
def recording_v2():
    import dataclasses

    from repro.config import CapoConfig, SimConfig

    program, inputs = workloads.build("counter", threads=2)
    config = dataclasses.replace(
        SimConfig(), capo=CapoConfig(input_log_version=2,
                                     chunk_log_version=2))
    return session.record(program, seed=3, input_files=inputs,
                          config=config).recording


def test_v2_save_load_round_trip(recording_v2, recording, tmp_path):
    recording_v2.save(tmp_path / "rec2")
    loaded = Recording.load(tmp_path / "rec2")
    assert loaded.chunks == recording_v2.chunks
    assert loaded.events == recording_v2.events
    # same run as the v1 fixture (same seed): decoding v2 must agree with
    # what the v1 bundle carries
    assert loaded.chunks == recording.chunks
    assert loaded.events == recording.events


def test_v2_manifest_records_versions(recording_v2, recording, tmp_path):
    import json

    recording.save(tmp_path / "m1")
    recording_v2.save(tmp_path / "m2")
    m1 = json.loads((tmp_path / "m1" / "manifest.json").read_text())
    m2 = json.loads((tmp_path / "m2" / "manifest.json").read_text())
    assert (m1["input_log_version"], m1["chunk_log_version"]) == (1, 1)
    assert (m2["input_log_version"], m2["chunk_log_version"]) == (2, 2)


def test_v2_bundle_is_smaller(recording_v2, recording, tmp_path):
    d1 = recording.save(tmp_path / "s1")
    d2 = recording_v2.save(tmp_path / "s2")
    v1_bytes = (d1 / "chunks.bin").stat().st_size \
        + (d1 / "input.bin").stat().st_size
    v2_bytes = (d2 / "chunks.bin").stat().st_size \
        + (d2 / "input.bin").stat().st_size
    assert v2_bytes < v1_bytes


def test_size_helpers_take_version_overrides(recording):
    assert recording.chunk_log_bytes(version=2) < \
        recording.chunk_log_bytes(version=1)
    assert recording.input_log_bytes(version=2) <= \
        recording.input_log_bytes(version=1)
    # no argument follows the bundle's config (v1 for this fixture)
    assert recording.chunk_log_bytes() == recording.chunk_log_bytes(version=1)


def test_v2_compressed_fallback_load(recording_v2, tmp_path):
    directory = tmp_path / "fb2"
    recording_v2.save(directory)
    (directory / "chunks.bin").unlink()
    loaded = Recording.load(directory)
    assert loaded.chunks == sorted(recording_v2.chunks,
                                   key=lambda c: c.sort_key)


# -- lifecycle regressions ----------------------------------------------------
# Pruned bundles must fail with the format error contract, and re-saving
# over an existing bundle must not leave stale section files behind.


def test_load_missing_program_image_is_log_format_error(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    (directory / "program.json").unlink()
    with pytest.raises(LogFormatError, match="no program image"):
        Recording.load(directory)


def test_load_missing_input_log_is_log_format_error(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    (directory / "input.bin").unlink()
    loaded = Recording.load(directory)  # sections are lazy: load succeeds
    with pytest.raises(LogFormatError, match="no input log"):
        loaded.events
    # the error names the bundle so the user knows *which* one is pruned
    with pytest.raises(LogFormatError, match=str(directory)):
        loaded.events


def test_resave_removes_stale_checkpoint_section(recording, tmp_path):
    import copy

    from repro.mrr.logfmt import CheckpointRecord

    rec = copy.copy(recording)
    rec.checkpoints = [CheckpointRecord.for_payload(0, b"state")]
    directory = rec.save(tmp_path / "rec")
    assert (directory / "checkpoints.bin").exists()

    rec.checkpoints = []
    rec.save(directory)
    assert not (directory / "checkpoints.bin").exists()
    loaded = Recording.load(directory)
    assert loaded.checkpoints == []


def test_resave_removes_stale_compressed_chunks(recording, tmp_path):
    import copy
    import dataclasses

    directory = recording.save(tmp_path / "rec")
    assert (directory / "chunks.qrz").exists()

    uncompressed = copy.copy(recording)
    uncompressed.config = dataclasses.replace(
        recording.config,
        capo=dataclasses.replace(recording.config.capo,
                                 compress_chunk_log=False))
    uncompressed.save(directory)
    assert not (directory / "chunks.qrz").exists()
    loaded = Recording.load(directory)
    assert loaded.chunks == recording.chunks
