"""RSM behaviour observed through full-system recordings."""

import pytest

from repro import session
from repro.capo.events import EV_EXIT, EV_SYSCALL
from repro.capo.rsm import MODE_FULL, MODE_HW, ReplaySphereManager
from repro.errors import RecordingError
from repro.isa.builder import KernelBuilder
from repro.machine.machine import Machine
from repro.config import SimConfig
from repro.mrr.chunk import Reason


def simple_program():
    b = KernelBuilder()
    b.asciz("msg", "out")
    b.label("main")
    with b.for_range("r6", 0, 50):
        b.ins("nop")
    b.write(1, "msg", 3)
    b.exit(5)
    return b.build("rsm-test")


def test_unknown_mode_rejected():
    machine = Machine()
    machine.load_program(simple_program())
    with pytest.raises(RecordingError):
        ReplaySphereManager(machine, SimConfig(), mode="half")


def test_full_mode_logs_events_and_chunks():
    outcome = session.simulate(simple_program(), mode=MODE_FULL)
    stats = outcome.rsm_stats
    assert stats["chunks"] > 0
    assert stats["input_events"] == 2  # write + exit
    assert outcome.recording is not None


def test_hw_mode_logs_chunks_but_no_events():
    outcome = session.simulate(simple_program(), mode=MODE_HW)
    stats = outcome.rsm_stats
    assert stats["chunks"] > 0
    assert stats["input_events"] == 0
    assert stats["cycles_software"] == 0
    assert outcome.recording is None


def test_event_order_and_kinds():
    outcome = session.record(simple_program())
    events = outcome.recording.events
    assert [event.kind for event in events] == [EV_SYSCALL, EV_EXIT]
    assert events[0].seq < events[1].seq
    assert events[1].value == 5  # exit code


def test_event_chunk_seq_anchors_to_thread_chunks():
    outcome = session.record(simple_program())
    recording = outcome.recording
    for event in recording.events:
        thread_chunks = recording.chunks_of(event.rthread)
        assert 0 < event.chunk_seq <= len(thread_chunks)


def test_every_thread_stream_ends_with_exit_chunk():
    outcome = session.record(simple_program())
    recording = outcome.recording
    for rthread in recording.rthreads():
        chunks = recording.chunks_of(rthread)
        assert chunks[-1].reason == Reason.EXIT
        assert all(chunk.reason != Reason.EXIT for chunk in chunks[:-1])


def test_chunk_timestamps_unique_and_thread_monotone():
    outcome = session.record(simple_program())
    chunks = outcome.recording.chunks
    timestamps = [chunk.timestamp for chunk in chunks]
    assert len(set(timestamps)) == len(timestamps)
    per_thread: dict[int, int] = {}
    for chunk in sorted(chunks, key=lambda c: c.sort_key):
        last = per_thread.get(chunk.rthread)
        assert last is None or chunk.timestamp > last
        per_thread[chunk.rthread] = chunk.timestamp


def test_cycle_breakdown_components_populate():
    outcome = session.record(simple_program())
    stats = outcome.rsm_stats
    assert stats["cycles_interpose"] > 0
    assert stats["cycles_input_log"] > 0
    assert stats["cycles_software"] >= (
        stats["cycles_interpose"] + stats["cycles_input_log"])


def test_input_payload_bytes_counted():
    b = KernelBuilder()
    b.asciz("path", "f")
    b.space("buf", 64)
    b.label("main")
    b.syscall(10, "path")            # open
    b.ins("mov", "r10", "rax")
    b.syscall(3, "r10", "buf", 64)   # read 64 bytes
    b.exit(0)
    outcome = session.record(b.build("io"), input_files={"f": b"z" * 64})
    assert outcome.rsm_stats["input_payload_bytes"] == 64


def test_finalize_flushes_all_cbufs():
    outcome = session.record(simple_program())
    # every chunk logged by the recorders must land in the chunk log
    assert len(outcome.recording.chunks) == outcome.rsm_stats["chunks"]


# -- batched input logging ---------------------------------------------------

def _record_counter(batch):
    import dataclasses

    from repro import workloads
    from repro.config import CapoConfig

    program, inputs = workloads.build("counter", threads=2)
    config = dataclasses.replace(
        SimConfig(), capo=CapoConfig(input_batch_events=batch))
    return session.record(program, seed=1, input_files=inputs, config=config)


def test_batched_logging_is_bit_identical_except_cycles():
    base = _record_counter(0)
    batched = _record_counter(64)
    assert batched.recording.events == base.recording.events
    assert batched.recording.chunks == base.recording.chunks
    assert batched.final_memory_digest == base.final_memory_digest
    assert batched.units == base.units
    # the whole point: batching only cheapens the accounting
    assert batched.total_cycles < base.total_cycles
    assert batched.rsm_stats["cycles_input_log"] < \
        base.rsm_stats["cycles_input_log"]
    assert batched.rsm_stats["input_batch_flushes"] > 0
    assert base.rsm_stats["input_batch_flushes"] == 0


def test_batched_recording_replays_and_verifies():
    outcome = _record_counter(8)
    replayed = session.replay_recording(outcome.recording)
    assert session.verify(outcome, replayed).ok


def test_batch_of_one_still_orders_events():
    base = _record_counter(0)
    batched = _record_counter(1)
    assert batched.recording.events == base.recording.events
    seqs = [event.seq for event in batched.recording.events]
    assert seqs == sorted(seqs)


def test_payload_dedup_counts_repeated_content():
    # two reads of the same file region copy in identical payloads; the
    # pool charges the duplicate at the dup rate and counts the bytes
    import dataclasses

    from repro import workloads
    from repro.config import CapoConfig

    program, inputs = workloads.build("fft", threads=2)
    config = dataclasses.replace(
        SimConfig(), capo=CapoConfig(input_batch_events=16))
    outcome = session.record(program, seed=1, input_files=inputs,
                             config=config)
    base = session.record(program, seed=1, input_files=inputs)
    assert outcome.recording.events == base.recording.events
    assert outcome.rsm_stats["input_payload_dedup_bytes"] >= 0
