"""The flagship property: ANY racy program, ANY interleaving — replay from
the logs alone reproduces the run exactly.

Hypothesis generates small multithreaded programs over a handful of shared
cache lines (plain stores/loads, atomics, fences, string copies, nondet
instructions, syscalls, asynchronous signals), a scheduler seed, and
machine knobs; we record, replay, and verify. Op emission and program
assembly live in :mod:`repro.workloads.fuzz` (also used by ``quickrec
fuzz`` soak campaigns); hypothesis supplies shrinkable op lists.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import session
from repro.config import (
    KernelConfig,
    MachineConfig,
    SimConfig,
    StoreBufferConfig,
)
from repro.workloads.fuzz import BUF_WORDS, NUM_SLOTS, build_program

op_strategy = st.one_of(
    st.tuples(st.just("store"), st.integers(0, NUM_SLOTS - 1),
              st.integers(0, 1000)),
    st.tuples(st.just("storeb"), st.integers(0, NUM_SLOTS - 1),
              st.integers(0, 255)),
    st.tuples(st.just("load"), st.integers(0, NUM_SLOTS - 1)),
    st.tuples(st.just("xadd"), st.integers(0, NUM_SLOTS - 1),
              st.integers(1, 9)),
    st.tuples(st.just("xchg"), st.integers(0, NUM_SLOTS - 1),
              st.integers(0, 1000)),
    st.tuples(st.just("cmpxchg"), st.integers(0, NUM_SLOTS - 1),
              st.integers(0, 3), st.integers(0, 1000)),
    st.tuples(st.just("mfence")),
    st.tuples(st.just("pause")),
    st.tuples(st.just("alu"), st.sampled_from(["add", "xor", "mul"]),
              st.integers(0, 99)),
    st.tuples(st.just("rep_movs"), st.integers(1, BUF_WORDS)),
    st.tuples(st.just("rep_stos"), st.integers(1, BUF_WORDS)),
    st.tuples(st.just("rdtsc")),
    st.tuples(st.just("rdrand")),
    st.tuples(st.just("time")),
    st.tuples(st.just("yield")),
    st.tuples(st.just("write"), st.integers(1, 8)),
    st.tuples(st.just("kill"), st.integers(1, 3)),
    st.tuples(st.just("gettid")),
    st.tuples(st.just("futex_wake")),
)

thread_strategy = st.lists(op_strategy, min_size=1, max_size=14)


@given(
    threads_ops=st.lists(thread_strategy, min_size=2, max_size=3),
    repeats=st.integers(1, 3),
    seed=st.integers(0, 2**16),
    policy=st.sampled_from(["random", "bursty"]),
    quantum=st.integers(80, 2000),
    drain_period=st.integers(1, 40),
    sb_entries=st.integers(1, 12),
)
@settings(max_examples=30, deadline=None)
def test_random_racy_programs_record_and_replay(threads_ops, repeats, seed,
                                                policy, quantum, drain_period,
                                                sb_entries):
    program = build_program(threads_ops, repeats)
    config = SimConfig(
        machine=MachineConfig(
            num_cores=2,
            memory_bytes=1 << 18,
            store_buffer=StoreBufferConfig(entries=sb_entries,
                                           drain_period=drain_period),
        ),
        kernel=KernelConfig(quantum_instructions=quantum),
    )
    outcome, _replayed, report = session.record_and_replay(
        program, seed=seed, policy=policy, config=config)
    assert report.ok, report.summary()
