"""Serialization round-trips for arbitrary well-formed logs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capo.events import InputEvent, KINDS, NONDET_KINDS
from repro.capo.input_log import decode_events, encode_events
from repro.mrr.chunk import ChunkEntry, Reason
from repro.mrr.compression import compress_chunks, decompress_chunks
from repro.mrr.logfmt import decode_chunks, encode_chunks

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u8 = st.integers(min_value=0, max_value=0xFF)

chunk_strategy = st.builds(
    ChunkEntry,
    rthread=u8,
    timestamp=u32,
    icount=u32,
    memops=u32,
    rsw=u16,
    reason=st.sampled_from(Reason.ALL),
)

copies_strategy = st.lists(
    st.tuples(u32, st.binary(max_size=64)), max_size=3).map(tuple)

event_strategy = st.builds(
    InputEvent,
    rthread=u8,
    seq=u32,
    chunk_seq=u32,
    kind=st.sampled_from(KINDS),
    sysno=st.integers(min_value=0, max_value=64),
    value=u32,
    nondet_kind=st.sampled_from(NONDET_KINDS),
    copies=copies_strategy,
)


@given(entries=st.lists(chunk_strategy, max_size=60))
@settings(max_examples=80, deadline=None)
def test_packed_chunk_round_trip(entries):
    assert decode_chunks(encode_chunks(entries)) == entries


@given(entries=st.lists(chunk_strategy, max_size=60),
       hashes=st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                       max_size=60))
@settings(max_examples=40, deadline=None)
def test_packed_chunk_round_trip_with_hashes(entries, hashes):
    import dataclasses

    entries = [dataclasses.replace(entry, load_hash=hashes[i % max(1, len(hashes))]
                                   if hashes else 0)
               for i, entry in enumerate(entries)]
    decoded = decode_chunks(encode_chunks(entries, with_load_hash=True))
    assert decoded == entries


def make_monotone(entries):
    """Rewrite timestamps so per-thread streams are strictly increasing
    (the recorder invariant compression relies on)."""
    import dataclasses

    counters: dict[int, int] = {}
    out = []
    for entry in entries:
        ts = counters.get(entry.rthread, 0) + 1 + entry.timestamp % 7
        counters[entry.rthread] = ts
        out.append(dataclasses.replace(entry, timestamp=ts))
    return out


@given(entries=st.lists(chunk_strategy, max_size=80))
@settings(max_examples=60, deadline=None)
def test_compressed_chunk_round_trip(entries):
    entries = make_monotone(entries)
    decoded = decompress_chunks(compress_chunks(entries))
    assert sorted(decoded, key=lambda e: (e.rthread, e.timestamp)) == \
           sorted(entries, key=lambda e: (e.rthread, e.timestamp))


@given(events=st.lists(event_strategy, max_size=40))
@settings(max_examples=80, deadline=None)
def test_input_log_round_trip(events):
    assert decode_events(encode_events(events)) == events


# -- v2 (columnar) codecs ----------------------------------------------------

from repro.errors import LogFormatError  # noqa: E402

shared_payloads = st.sampled_from(
    [b"", b"\x00", b"page" * 64, bytes(range(48))])

dup_copies_strategy = st.lists(
    st.tuples(u32, st.one_of(shared_payloads, st.binary(max_size=64))),
    max_size=3).map(tuple)

event_strategy_v2 = st.builds(
    InputEvent,
    rthread=u8,
    seq=st.integers(min_value=0, max_value=2**40),
    chunk_seq=st.integers(min_value=0, max_value=2**40),
    kind=st.sampled_from(KINDS),
    sysno=st.integers(min_value=0, max_value=64),
    value=st.integers(min_value=0, max_value=2**64 - 1),
    nondet_kind=st.sampled_from(NONDET_KINDS),
    copies=dup_copies_strategy,
)


@given(events=st.lists(event_strategy_v2, max_size=40))
@settings(max_examples=80, deadline=None)
def test_input_log_v2_round_trip(events):
    assert decode_events(encode_events(events, version=2)) == events


@given(events=st.lists(event_strategy_v2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_input_log_cross_version_agreement(events):
    # both formats decode to the same event list from the same source
    assert decode_events(encode_events(events, version=1)) == \
        decode_events(encode_events(events, version=2))


@given(entries=st.lists(chunk_strategy, max_size=60))
@settings(max_examples=60, deadline=None)
def test_packed_chunk_v2_round_trip(entries):
    assert decode_chunks(encode_chunks(entries, version=2)) == entries


@given(entries=st.lists(chunk_strategy, max_size=40))
@settings(max_examples=40, deadline=None)
def test_packed_chunk_cross_version_agreement(entries):
    assert decode_chunks(encode_chunks(entries, version=1)) == \
        decode_chunks(encode_chunks(entries, version=2))


@given(entries=st.lists(chunk_strategy, max_size=60))
@settings(max_examples=40, deadline=None)
def test_compressed_chunk_v2_round_trip(entries):
    entries = make_monotone(entries)
    decoded = decompress_chunks(compress_chunks(entries, version=2))
    assert sorted(decoded, key=lambda e: (e.rthread, e.timestamp)) == \
           sorted(entries, key=lambda e: (e.rthread, e.timestamp))


@given(events=st.lists(event_strategy_v2, max_size=12), data=st.data())
@settings(max_examples=80, deadline=None)
def test_input_log_v2_truncation_always_rejected(events, data):
    blob = encode_events(events, version=2)
    cut = data.draw(st.integers(0, len(blob) - 1))
    try:
        decode_events(blob[:cut])
    except LogFormatError:
        return
    raise AssertionError("truncated v2 input log decoded successfully")


@given(events=st.lists(event_strategy_v2, max_size=12), data=st.data())
@settings(max_examples=120, deadline=None)
def test_input_log_v2_corruption_never_escapes_logformat(events, data):
    # a flipped byte either still decodes (landed in a value) or raises
    # LogFormatError — never zlib.error / IndexError / ValueError
    blob = bytearray(encode_events(events, version=2))
    position = data.draw(st.integers(0, len(blob) - 1))
    replacement = data.draw(
        st.integers(0, 255).filter(lambda b: b != blob[position]))
    blob[position] = replacement
    try:
        decode_events(bytes(blob))
    except LogFormatError:
        pass


@given(entries=st.lists(chunk_strategy, max_size=12), data=st.data())
@settings(max_examples=120, deadline=None)
def test_packed_chunk_v2_corruption_never_escapes_logformat(entries, data):
    blob = bytearray(encode_chunks(entries, version=2))
    position = data.draw(st.integers(0, len(blob) - 1))
    replacement = data.draw(
        st.integers(0, 255).filter(lambda b: b != blob[position]))
    blob[position] = replacement
    try:
        decode_chunks(bytes(blob))
    except LogFormatError:
        pass
