"""Decode-cache equivalence: compiled dispatch vs the interpretive path.

The decode cache (``repro.machine.decode``) pre-resolves every instruction
into a closure at program-load time. These tests pin the contract that the
compiled path is *bit-identical* to the interpretive reference — same
architectural state after every unit, same faults with the same messages,
same trap behaviour, and resumability from an :class:`EngineContext` alone,
including mid-``rep_*``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import session, workloads
from repro.isa.assembler import assemble
from repro.isa.operands import Reg
from repro.machine.core import Engine, OUTCOME_OK, OUTCOME_SYSCALL
from repro.machine.memory import PhysicalMemory
from repro.perf.bench import digest_of

from tests.conftest import DirectPort

_MEMORY_BYTES = 1 << 16
_REGS = ("r1", "r2", "r3", "r4", "r5", "r6")
_ALU3 = ("add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul")
_BRANCHES = ("je", "jne", "jl", "jle", "jg", "jge",
             "jb", "jbe", "ja", "jae", "js", "jns")

_reg = st.sampled_from(_REGS)
_imm = st.integers(min_value=0, max_value=0xFFFFFFFF)
_word_off = st.sampled_from(range(0, 64, 4))
_byte_off = st.integers(min_value=0, max_value=63)


@st.composite
def _block(draw):
    """One small instruction block; ``{n}`` placeholders make labels unique
    once the program template numbers its blocks."""
    kind = draw(st.sampled_from([
        "mov_imm", "mov_reg", "alu", "divmod", "negnot", "branch",
        "load", "store", "bytes", "lea", "stack", "atomic", "rep",
    ]))
    rd, ra, rb = draw(_reg), draw(_reg), draw(_reg)
    if kind == "mov_imm":
        return [f"mov {rd}, {draw(_imm)}"]
    if kind == "mov_reg":
        return [f"mov {rd}, {ra}"]
    if kind == "alu":
        return [f"{draw(st.sampled_from(_ALU3))} {rd}, {ra}, {rb}"]
    if kind == "divmod":
        # Force the divisor odd so the (deterministic) fault path does not
        # cut the run short; faults get their own dedicated test below.
        return [f"or {rb}, {rb}, 1",
                f"{draw(st.sampled_from(('div', 'mod')))} {rd}, {ra}, {rb}"]
    if kind == "negnot":
        return [f"{draw(st.sampled_from(('neg', 'not')))} {rd}, {ra}"]
    if kind == "branch":
        flag_op = draw(st.sampled_from(("cmp", "test")))
        cond = draw(st.sampled_from(_BRANCHES))
        return [f"{flag_op} {ra}, {rb}", f"{cond} skip_{{n}}",
                f"mov {rd}, {draw(_imm)}", "skip_{n}:"]
    if kind == "load":
        return [f"load {rd}, [buf + {draw(_word_off)}]"]
    if kind == "store":
        return [f"store [buf + {draw(_word_off)}], {ra}"]
    if kind == "bytes":
        return [f"storeb [buf2 + {draw(_byte_off)}], {ra}",
                f"loadb {rd}, [buf2 + {draw(_byte_off)}]"]
    if kind == "lea":
        return [f"lea {rd}, [buf + {ra}*4 + {draw(_word_off)}]"]
    if kind == "stack":
        return [f"push {ra}", f"push {rb}", f"pop {rd}"]
    if kind == "atomic":
        atomic = draw(st.sampled_from(("xadd", "xchg", "cmpxchg")))
        off = draw(_word_off)
        if atomic == "cmpxchg":
            return [f"mov rax, {draw(_imm)}", f"cmpxchg [buf + {off}], {ra}"]
        return [f"{atomic} [buf + {off}], {ra}"]
    # rep: bounded string copy/fill between the two data regions.
    count = draw(st.integers(min_value=0, max_value=6))
    if draw(st.booleans()):
        return [f"mov rcx, {count}", "mov rsi, buf", "mov rdi, buf2",
                "rep_movs"]
    return [f"mov rcx, {count}", f"mov rax, {draw(_imm)}", "mov rdi, buf2",
            "rep_stos"]


@st.composite
def _programs(draw):
    blocks = draw(st.lists(_block(), min_size=1, max_size=25))
    lines = []
    for n, block in enumerate(blocks):
        lines.extend(line.format(n=n) for line in block)
    body = "\n".join(line if line.endswith(":") else "    " + line
                     for line in lines)
    source = (".data\nbuf:\n"
              + "".join(f"    .word {17 * (i + 1)}\n" for i in range(16))
              + "buf2: .space 64\n"
              + ".text\nmain:\n" + body + "\n    syscall\n")
    return assemble(source, name="fuzz")


def _make(program, decode_cache):
    memory = PhysicalMemory(_MEMORY_BYTES)
    memory.load_blob(program.data_base, program.data)
    engine = Engine(program, decode_cache=decode_cache)
    engine.regs[15] = _MEMORY_BYTES - 16
    return engine, DirectPort(memory)


def _state(engine):
    return (engine.pc, tuple(engine.regs), engine.zf, engine.sf, engine.cf,
            engine.of, engine.retired, engine.cur_memops, engine.loads,
            engine.stores, engine.load_hash)


def _lockstep(program, max_units=5000):
    """Step both paths side by side, asserting identical state per unit.

    Returns the (compiled, interpretive) engine/port pairs at the stop
    point for follow-on assertions.
    """
    fast, fast_port = _make(program, decode_cache=True)
    slow, slow_port = _make(program, decode_cache=False)
    for _ in range(max_units):
        fast_exc = slow_exc = fast_out = slow_out = None
        try:
            fast_out = fast.step(fast_port)
        except Exception as exc:  # noqa: BLE001 — fault identity is the point
            fast_exc = exc
        try:
            slow_out = slow.step(slow_port)
        except Exception as exc:  # noqa: BLE001
            slow_exc = exc
        assert type(fast_exc) is type(slow_exc), (fast_exc, slow_exc)
        if fast_exc is not None:
            assert str(fast_exc) == str(slow_exc)
            break
        assert fast_out == slow_out
        assert _state(fast) == _state(slow)
        if fast_out != OUTCOME_OK:
            break
    else:
        raise AssertionError("program did not stop within the unit budget")
    assert (fast_port.memory.read(0, _MEMORY_BYTES)
            == slow_port.memory.read(0, _MEMORY_BYTES))
    return (fast, fast_port), (slow, slow_port)


@given(program=_programs())
@settings(max_examples=50, deadline=None)
def test_compiled_and_interpretive_paths_agree(program):
    _lockstep(program)


def test_fault_messages_identical_across_paths():
    for body in ("    mov r1, 5\n    mov r2, 0\n    div r3, r1, r2\n",
                 "    lea r1, [buf + 2]\n    load r2, [r1]\n",
                 "    lea r1, [buf + 3]\n    store [r1], r2\n",
                 "    lea r1, [buf + 1]\n    xadd [r1], r2\n"):
        source = (".data\nbuf: .word 1\n.text\nmain:\n"
                  + body + "    syscall\n")
        _lockstep(assemble(source, name="faulty"))


def test_trap_leaves_state_untouched_and_complete_trap_agrees():
    source = (".data\nv: .word 9\n.text\nmain:\n"
              "    mov r1, 3\n    rdtsc r4\n    add r2, r1, r1\n"
              "    load r3, [v]\n    syscall\n")
    program = assemble(source, name="trap")
    fast, fast_port = _make(program, decode_cache=True)
    slow, slow_port = _make(program, decode_cache=False)
    for engine, port in ((fast, fast_port), (slow, slow_port)):
        assert engine.step(port) == OUTCOME_OK
        outcome = engine.step(port)
        assert outcome == "nondet"
        # The trap retires nothing: pc still points at the rdtsc.
        assert engine.pc == 1
        assert engine.retired == 1
        engine.complete_trap(Reg(4), 0xDEAD)
    assert _state(fast) == _state(slow)
    while fast.step(fast_port) == OUTCOME_OK:
        pass
    while slow.step(slow_port) == OUTCOME_OK:
        pass
    assert _state(fast) == _state(slow)
    assert fast.regs[4] == 0xDEAD


def test_mid_rep_context_roundtrip_resumes_identically():
    source = (".data\nsrc:\n"
              + "".join(f"    .word {100 + i}\n" for i in range(8))
              + "dst: .space 32\n"
              ".text\nmain:\n"
              "    mov rcx, 8\n    mov rsi, src\n    mov rdi, dst\n"
              "    rep_movs\n    syscall\n")
    program = assemble(source, name="midrep")
    reference, ref_port = _make(program, decode_cache=False)
    while reference.step(ref_port) == OUTCOME_OK:
        pass

    fast, fast_port = _make(program, decode_cache=True)
    for _ in range(6):  # 3 movs + 3 rep iterations: parked mid-instruction
        assert fast.step(fast_port) == OUTCOME_OK
    assert fast.cur_memops == 6  # one load + one store per iteration
    context = fast.save_context()

    # A fresh engine resumes the string instruction from architectural
    # state alone — the QuickRec resumability requirement.
    resumed = Engine(program, decode_cache=True)
    resumed.restore_context(context)
    assert resumed.cur_memops == 6
    while resumed.step(fast_port) == OUTCOME_OK:
        pass
    assert resumed.pc == reference.pc
    assert resumed.regs == reference.regs
    assert (resumed.zf, resumed.sf, resumed.cf, resumed.of) == (
        reference.zf, reference.sf, reference.cf, reference.of)
    assert (fast_port.memory.read(0, _MEMORY_BYTES)
            == ref_port.memory.read(0, _MEMORY_BYTES))


def test_full_session_digest_identical_without_decode_cache(monkeypatch):
    """End to end: a recorded run with the interpretive debug path produces
    the same determinism digest as the compiled default."""
    program, inputs = workloads.build("counter", scale=1)
    compiled = session.record(program, seed=3, input_files=inputs)
    monkeypatch.setattr("repro.machine.core.DECODE_CACHE_DEFAULT", False)
    interpreted = session.record(program, seed=3, input_files=inputs)
    assert digest_of(compiled) == digest_of(interpreted)
    assert compiled.total_cycles == interpreted.total_cycles
    assert compiled.units == interpreted.units
