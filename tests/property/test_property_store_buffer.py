"""Store-buffer forwarding vs a brute-force byte-level reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.store_buffer import StoreBuffer

store_strategy = st.tuples(
    st.integers(min_value=0, max_value=12),        # addr
    st.sampled_from([1, 4]),                       # size
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
load_strategy = st.tuples(
    st.integers(min_value=0, max_value=12),
    st.sampled_from([1, 4]),
)


def reference_resolve(entries, addr, size):
    """Byte-accurate reference: forwarding succeeds iff every loaded byte's
    youngest writer is one single entry that covers the whole load."""
    for entry_addr, entry_size, value in reversed(entries):
        covers = entry_addr <= addr and addr + size <= entry_addr + entry_size
        overlaps = entry_addr < addr + size and addr < entry_addr + entry_size
        if covers:
            shift = 8 * (addr - entry_addr)
            mask = (1 << (8 * size)) - 1
            return "hit", (value >> shift) & mask
        if overlaps:
            return "conflict", None
    return "miss", None


@given(stores=st.lists(store_strategy, max_size=8), load=load_strategy)
@settings(max_examples=300, deadline=None)
def test_resolve_matches_reference(stores, load):
    sb = StoreBuffer(capacity=8)
    kept = []
    for addr, size, value in stores:
        sb.push(addr, size, value)
        kept.append((addr, size, value & 0xFFFFFFFF))
    addr, size = load
    assert sb.resolve(addr, size) == reference_resolve(kept, addr, size)


@given(stores=st.lists(store_strategy, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_drain_preserves_fifo_order(stores):
    sb = StoreBuffer(capacity=8)
    for addr, size, value in stores:
        sb.push(addr, size, value)
    drained = []
    while not sb.empty:
        drained.append(sb.pop_oldest())
    assert [(e.addr, e.size, e.value) for e in drained] == \
        [(a, s, v & 0xFFFFFFFF) for a, s, v in stores]


@given(stores=st.lists(store_strategy, max_size=8))
@settings(max_examples=100, deadline=None)
def test_len_tracks_pushes(stores):
    sb = StoreBuffer(capacity=8)
    for index, (addr, size, value) in enumerate(stores):
        sb.push(addr, size, value)
        assert len(sb) == index + 1
    assert sb.full == (len(stores) == 8)
