"""Property: a materialized flight window replays bit-identically to the
unbounded recording of the same seed, at ANY ring geometry.

The ring's shadow replayer must hand ``materialize()`` a base state that
carries the dropped prefix's cumulative effects exactly, wherever the
epoch boundaries and eviction points land — including geometries where
the window covers the whole run (zero evictions) and tiny epochs that
evict dozens of times.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import session, workloads
from repro.capo.recording import FLIGHT_META_KEY
from repro.config import DEFAULT_CONFIG

_FULL_DIGESTS: dict[int, str] = {}


def _full_digest(seed: int) -> str:
    if seed not in _FULL_DIGESTS:
        program, inputs = workloads.build("racer")
        outcome = session.record(program, seed=seed, input_files=inputs)
        _FULL_DIGESTS[seed] = session.replay_recording(
            outcome.recording).digest()
    return _FULL_DIGESTS[seed]


@given(
    seed=st.integers(0, 3),
    window=st.integers(1, 4),
    epoch=st.sampled_from((4, 8, 16, 32, 64, 1024)),
)
@settings(max_examples=25, deadline=None)
def test_flight_window_replays_bit_identically(seed, window, epoch):
    program, inputs = workloads.build("racer")
    config = dataclasses.replace(
        DEFAULT_CONFIG,
        capo=dataclasses.replace(DEFAULT_CONFIG.capo, flight_window=window,
                                 flight_epoch_chunks=epoch))
    outcome = session.record(program, seed=seed, input_files=inputs,
                             config=config)
    recording = outcome.recording
    info = recording.metadata[FLIGHT_META_KEY]
    assert info["max_chunks_retained"] <= (window + 1) * epoch
    assert len(recording.chunks) <= (window + 1) * epoch
    result = session.replay_recording(recording)
    assert result.digest() == _full_digest(seed), (seed, window, epoch)
