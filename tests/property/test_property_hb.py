"""HB graph properties over randomized chunk logs.

The load-bearing claims: every edge points forward in the replay
schedule (the graph is acyclic by construction, so `ordered` is a strict
partial order consistent with ``validate_schedule``'s total order), and
the vector-clock layer answers exactly transitive reachability over
program + sync edges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forensics import build_hb_graph
from repro.forensics.hb import EDGE_FUTEX, HBEdge, HBGraph
from repro.analysis.chunks import iter_schedule
from repro.mrr.chunk import ChunkEntry, Reason
from repro.replay.schedule import build_schedule, validate_schedule


@st.composite
def chunk_logs(draw):
    """A recorder-shaped chunk log: 1-4 threads, strictly increasing
    per-thread timestamps (global timestamps strictly increase and are
    dealt to threads in order), each thread ending with an EXIT chunk."""
    threads = draw(st.integers(min_value=1, max_value=4))
    owners = draw(st.lists(st.integers(min_value=1, max_value=threads),
                           min_size=threads, max_size=16))
    owners.extend(range(1, threads + 1))  # every thread gets >= 1 chunk
    gaps = draw(st.lists(st.integers(min_value=1, max_value=5),
                         min_size=len(owners), max_size=len(owners)))
    chunks, ts, seen_last = [], 0, {}
    for owner, gap in zip(owners, gaps):
        ts += gap
        chunks.append(ChunkEntry(owner, ts, 1, 0, 0, Reason.RAW))
        seen_last[owner] = len(chunks) - 1
    # Rewrite each thread's final chunk as its EXIT.
    for index in seen_last.values():
        chunk = chunks[index]
        chunks[index] = ChunkEntry(chunk.rthread, chunk.timestamp,
                                   chunk.icount, chunk.memops, 0,
                                   Reason.EXIT)
    return chunks


@st.composite
def graphs_with_random_sync(draw):
    chunks = draw(chunk_logs())
    schedule = iter_schedule(chunks)
    n = len(schedule)
    edges = []
    if n >= 2:
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            src = draw(st.integers(min_value=0, max_value=n - 2))
            dst = draw(st.integers(min_value=src + 1, max_value=n - 1))
            edges.append(HBEdge(src, dst, EDGE_FUTEX))
    return chunks, HBGraph(schedule, edges)


@settings(max_examples=60, deadline=None)
@given(chunk_logs())
def test_generated_logs_satisfy_recorder_invariants(chunks):
    validate_schedule(build_schedule(chunks))


@settings(max_examples=60, deadline=None)
@given(graphs_with_random_sync())
def test_every_edge_points_forward_in_the_schedule(case):
    _chunks, graph = case
    for edge in graph.edges():
        assert edge.src < edge.dst  # schedule order is a topological order


@settings(max_examples=60, deadline=None)
@given(graphs_with_random_sync())
def test_ordered_is_consistent_with_schedule_order(case):
    _chunks, graph = case
    n = len(graph)
    for a in range(n):
        assert not graph.ordered(a, a)
        for b in range(a + 1, n):
            # HB never contradicts replay's total order: b before a is
            # impossible, so at most one direction holds.
            assert not graph.ordered(b, a)


@settings(max_examples=40, deadline=None)
@given(graphs_with_random_sync())
def test_vector_clocks_equal_transitive_reachability(case):
    _chunks, graph = case
    n = len(graph)
    successors = {index: set() for index in range(n)}
    for edge in graph.edges():
        successors[edge.src].add(edge.dst)
    reach = [set() for _ in range(n)]
    for src in reversed(range(n)):  # edges only go forward
        for mid in successors[src]:
            reach[src].add(mid)
            reach[src] |= reach[mid]
    for a in range(n):
        for b in range(n):
            assert graph.ordered(a, b) == (b in reach[a])


@settings(max_examples=40, deadline=None)
@given(chunk_logs())
def test_program_order_alone_orders_exactly_same_thread_pairs(chunks):
    graph = build_hb_graph(chunks)
    schedule = graph.schedule
    for a in range(len(schedule)):
        for b in range(a + 1, len(schedule)):
            same_thread = (schedule[a].chunk.rthread
                           == schedule[b].chunk.rthread)
            assert graph.ordered(a, b) == same_thread
