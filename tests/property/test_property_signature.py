"""Bloom signatures must never produce false negatives — the property
replay soundness rests on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mrr.signature import BloomSignature

lines = st.integers(min_value=0, max_value=1 << 20).map(lambda x: x * 64)


@given(inserted=st.sets(lines, max_size=200),
       bits=st.sampled_from([64, 256, 1024]),
       hashes=st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_no_false_negatives(inserted, bits, hashes):
    sig = BloomSignature(bits, hashes)
    for line in inserted:
        sig.insert(line)
    assert all(sig.test(line) for line in inserted)


@given(inserted=st.sets(lines, min_size=1, max_size=50))
@settings(max_examples=40, deadline=None)
def test_clear_forgets_everything(inserted):
    sig = BloomSignature(256, 2)
    for line in inserted:
        sig.insert(line)
    sig.clear()
    assert sig.empty
    assert sig.bits_set == 0


@given(inserted=st.lists(lines, max_size=100))
@settings(max_examples=40, deadline=None)
def test_bits_set_matches_popcount(inserted):
    sig = BloomSignature(512, 2)
    for line in inserted:
        sig.insert(line)
    assert sig.bits_set == bin(sig._word).count("1")
    assert 0.0 <= sig.saturation <= 1.0


@given(first=st.sets(lines, max_size=60), second=st.sets(lines, max_size=60))
@settings(max_examples=40, deadline=None)
def test_insertion_monotone(first, second):
    """Adding more keys never removes a positive."""
    sig = BloomSignature(256, 2)
    for line in first:
        sig.insert(line)
    positives = {line for line in first | second if sig.test(line)}
    for line in second:
        sig.insert(line)
    assert all(sig.test(line) for line in positives)
