"""Differential testing of ALU/flag semantics against Python references."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import run_fragment

MASK = 0xFFFFFFFF
U32 = st.integers(min_value=0, max_value=MASK)


def signed(x):
    return x - (1 << 32) if x & 0x80000000 else x


_REFERENCE = {
    "add": lambda a, b: (a + b) & MASK,
    "sub": lambda a, b: (a - b) & MASK,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 31)) & MASK,
    "shr": lambda a, b: a >> (b & 31),
    "sar": lambda a, b: (signed(a) >> (b & 31)) & MASK,
    "mul": lambda a, b: (a * b) & MASK,
}


@given(op=st.sampled_from(sorted(_REFERENCE)), a=U32, b=U32)
@settings(max_examples=150, deadline=None)
def test_alu_matches_reference(op, a, b):
    fragment = run_fragment(
        f"    mov r1, {a}\n    mov r2, {b}\n    {op} r3, r1, r2\n")
    assert fragment.reg(3) == _REFERENCE[op](a, b)


@given(a=U32, b=st.integers(min_value=1, max_value=MASK))
@settings(max_examples=60, deadline=None)
def test_div_mod_unsigned(a, b):
    fragment = run_fragment(
        f"    mov r1, {a}\n    mov r2, {b}\n"
        "    div r3, r1, r2\n    mod r4, r1, r2\n")
    assert fragment.reg(3) == a // b
    assert fragment.reg(4) == a % b


_BRANCH_REFERENCE = {
    "je": lambda a, b: a == b,
    "jne": lambda a, b: a != b,
    "jl": lambda a, b: signed(a) < signed(b),
    "jle": lambda a, b: signed(a) <= signed(b),
    "jg": lambda a, b: signed(a) > signed(b),
    "jge": lambda a, b: signed(a) >= signed(b),
    "jb": lambda a, b: a < b,
    "jbe": lambda a, b: a <= b,
    "ja": lambda a, b: a > b,
    "jae": lambda a, b: a >= b,
}


@given(cond=st.sampled_from(sorted(_BRANCH_REFERENCE)), a=U32, b=U32)
@settings(max_examples=200, deadline=None)
def test_conditional_branches_match_comparison_semantics(cond, a, b):
    fragment = run_fragment(f"""
    mov r1, {a}
    mov r2, {b}
    mov r3, 0
    cmp r1, r2
    {cond} yes
    jmp out
yes:
    mov r3, 1
out:
""")
    assert bool(fragment.reg(3)) == _BRANCH_REFERENCE[cond](a, b)


@given(value=U32, addend=U32)
@settings(max_examples=60, deadline=None)
def test_xadd_semantics(value, addend):
    fragment = run_fragment(
        f"    mov r1, {addend}\n    xadd [v], r1\n",
        data=f"v: .word {value}\n")
    assert fragment.reg(1) == value
    assert fragment.word("v") == (value + addend) & MASK


@given(current=U32, expected=U32, new=U32)
@settings(max_examples=80, deadline=None)
def test_cmpxchg_semantics(current, expected, new):
    fragment = run_fragment(
        f"    mov rax, {expected}\n    mov r1, {new}\n    cmpxchg [v], r1\n",
        data=f"v: .word {current}\n")
    if current == expected:
        assert fragment.word("v") == new
        assert fragment.engine.zf == 1
    else:
        assert fragment.word("v") == current
        assert fragment.reg(0) == current
        assert fragment.engine.zf == 0


@given(words=st.lists(U32, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_rep_movs_copies_arbitrary_blocks(words):
    data = "src:\n" + "".join(f"    .word {w}\n" for w in words)
    data += f"dst: .space {4 * len(words)}\n"
    fragment = run_fragment(f"""
    mov rcx, {len(words)}
    mov rsi, src
    mov rdi, dst
    rep_movs
""", data=data)
    assert [fragment.word("dst", i) for i in range(len(words))] == words
