import pytest

from repro import session
from repro.config import SimConfig, MachineConfig
from repro.errors import ConfigError
from repro.isa.builder import KernelBuilder


def tiny_program():
    b = KernelBuilder()
    b.word("v", 0)
    b.label("main")
    with b.for_range("r6", 0, 20):
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[v]", "r7")
    b.exit(3)
    return b.build("tiny")


def test_simulate_default_mode_off():
    outcome = session.simulate(tiny_program())
    assert outcome.mode == session.MODE_OFF
    assert outcome.recording is None
    assert outcome.rsm_stats is None
    assert outcome.exit_codes == {1: 3}


def test_unknown_mode_rejected():
    with pytest.raises(ConfigError):
        session.simulate(tiny_program(), mode="turbo")


def test_record_produces_recording():
    outcome = session.record(tiny_program())
    assert outcome.mode == session.MODE_FULL
    assert outcome.recording is not None
    assert outcome.recording.metadata["final_memory_digest"] == \
        outcome.final_memory_digest


def test_record_ignores_mode_kwarg():
    outcome = session.record(tiny_program(), mode="off")
    assert outcome.mode == session.MODE_FULL


def test_record_and_replay_round_trip():
    outcome, replayed, report = session.record_and_replay(tiny_program(),
                                                          seed=5)
    assert report.ok
    assert replayed.exit_codes == outcome.exit_codes


def test_same_seed_reproduces_execution():
    program = tiny_program()
    a = session.simulate(program, seed=9)
    b = session.simulate(program, seed=9)
    assert a.final_memory_digest == b.final_memory_digest
    assert a.total_cycles == b.total_cycles


def test_modes_execute_identically_with_different_cycles():
    program = tiny_program()
    off = session.simulate(program, seed=7, mode=session.MODE_OFF)
    hw = session.simulate(program, seed=7, mode=session.MODE_HW)
    full = session.simulate(program, seed=7, mode=session.MODE_FULL)
    assert off.final_memory_digest == hw.final_memory_digest
    assert off.final_memory_digest == full.final_memory_digest
    assert off.units == hw.units == full.units
    assert off.total_cycles < hw.total_cycles < full.total_cycles


def test_instructions_property_counts_retirements():
    outcome = session.simulate(tiny_program())
    # 20 iterations x (mov/xadd + loop overhead) + prologue + exit path
    assert outcome.instructions > 80


def test_custom_config_respected():
    config = SimConfig(machine=MachineConfig(num_cores=1,
                                             memory_bytes=1 << 16))
    outcome = session.simulate(tiny_program(), config=config)
    assert len(outcome.machine_stats["cores"]) == 1


def test_kernel_seed_defaults_derived_from_seed():
    program = tiny_program()
    a = session.simulate(program, seed=3)
    b = session.simulate(program, seed=3, kernel_seed=(3 ^ 0x5EED_C0DE))
    assert a.final_memory_digest == b.final_memory_digest
