"""Crash capture: fault detection, bundle writing, manifest contract."""

import json

import pytest

from repro import session
from repro.errors import LogFormatError
from repro.flight import detect_fault, load_crash_manifest, write_crash_bundle
from repro.flight.crash import FORENSICS_NAME, MANIFEST_NAME, RECORDING_DIR

from .test_ring import _flight_config, _record


def test_detect_fault_clean_run():
    outcome = _record(name="counter", threads=2, seed=3)
    assert detect_fault(outcome) is None


def test_detect_fault_nonzero_exit():
    # the crasher workload self-checks for lost updates and exits 1
    outcome = _record(name="crasher", seed=3)
    trigger = detect_fault(outcome)
    assert trigger is not None
    assert "exited 1" in trigger


def test_crash_bundle_roundtrip(tmp_path):
    outcome = _record(name="crasher", seed=3, config=_flight_config())
    trigger = detect_fault(outcome)
    bundle = write_crash_bundle(tmp_path / "bundle", outcome.recording,
                                trigger=trigger, repro="quickrec record ...")
    assert (bundle / MANIFEST_NAME).exists()
    assert (bundle / RECORDING_DIR / "manifest.json").exists()
    assert (bundle / FORENSICS_NAME).exists()

    manifest = load_crash_manifest(bundle)
    assert manifest["trigger"] == trigger
    assert manifest["flight"]["evictions"] >= 1
    # the bundle verified itself: the window replays to the recorded fault
    assert manifest["replay"]["ok"] is True
    assert any(code == 1
               for code in manifest["replay"]["exit_codes"].values())
    assert manifest["races"] is not None

    # the captured window replays on its own from the saved bundle
    from repro.capo.recording import Recording
    loaded = Recording.load(bundle / RECORDING_DIR)
    replayed = session.replay_recording(loaded)
    assert any(code == 1 for code in replayed.exit_codes.values())


def test_crash_bundle_carries_reproducer(tmp_path):
    outcome = _record(name="crasher", seed=3, config=_flight_config())
    shrunk = {"ops_before": 40, "ops_after": 4, "evals": 17}
    bundle = write_crash_bundle(tmp_path / "bundle", outcome.recording,
                                trigger="explicit", reproducer=shrunk,
                                forensics=False)
    manifest = load_crash_manifest(bundle)
    assert manifest["reproducer"] == shrunk
    assert not (bundle / FORENSICS_NAME).exists()


def test_load_crash_manifest_rejects_garbage(tmp_path):
    with pytest.raises(LogFormatError, match="no crash manifest"):
        load_crash_manifest(tmp_path / "nope")
    directory = tmp_path / "bad"
    directory.mkdir()
    (directory / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(LogFormatError, match="not valid JSON"):
        load_crash_manifest(directory)
    (directory / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
    with pytest.raises(LogFormatError, match="not a crash bundle"):
        load_crash_manifest(directory)


def test_soak_triage_attaches_flight_bundle(tmp_path):
    # a failing soak verdict with flight_window set writes a crash bundle
    # beside the triage artifact (soak-oracle divergence trigger)
    from repro.soak import SoakOptions, write_artifact
    from repro.soak.campaign import run_seed

    options = SoakOptions(matrix=True, inject="decode-cache",
                          flight_window=2)
    verdict = run_seed(0, options)
    assert not verdict.ok
    path = write_artifact(tmp_path, verdict, options, forensics=False)
    artifact = json.loads(path.read_text())
    assert artifact["flight_bundle"] == "seed-0-flight"
    manifest = load_crash_manifest(tmp_path / "seed-0-flight")
    assert manifest["trigger"].startswith("soak-oracle divergence")
    assert manifest["replay"]["ok"] is True
