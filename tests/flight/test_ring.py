"""FlightRing unit behaviour: retention, eviction, materialization."""

import dataclasses

import pytest

from repro import session, workloads
from repro.capo.recording import FLIGHT_META_KEY
from repro.config import DEFAULT_CONFIG
from repro.flight import FlightRing
from repro.replay.schedule import build_schedule, validate_schedule
from repro.telemetry import Telemetry

WINDOW = 2
EPOCH = 16


def _flight_config(window=WINDOW, epoch=EPOCH):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        capo=dataclasses.replace(DEFAULT_CONFIG.capo, flight_window=window,
                                 flight_epoch_chunks=epoch))


def _record(name="racer", seed=11, config=None, **kwargs):
    program, inputs = workloads.build(name, **kwargs)
    return session.record(program, seed=seed, input_files=inputs,
                          config=config or DEFAULT_CONFIG)


def test_ring_rejects_bad_geometry():
    program, _ = workloads.build("counter", threads=2)
    with pytest.raises(ValueError):
        FlightRing(DEFAULT_CONFIG, program, window=0)
    with pytest.raises(ValueError):
        FlightRing(DEFAULT_CONFIG, program, window=1, epoch_chunks=0)


def test_retention_is_bounded_by_window():
    outcome = _record(config=_flight_config())
    info = outcome.recording.metadata[FLIGHT_META_KEY]
    assert info["evictions"] >= 2
    assert info["max_chunks_retained"] <= (WINDOW + 1) * EPOCH
    assert info["chunks_seen"] > info["max_chunks_retained"]
    assert len(outcome.recording.chunks) <= (WINDOW + 1) * EPOCH


def test_zero_eviction_window_is_plain_recording():
    # a window larger than the run: nothing evicted, no base checkpoint
    outcome = _record(name="counter", threads=2, seed=3,
                      config=_flight_config(window=10_000))
    recording = outcome.recording
    info = recording.metadata[FLIGHT_META_KEY]
    assert info["evictions"] == 0
    assert info["base_position"] == 0
    assert recording.checkpoints == []
    assert "timestamp_origin" not in info
    unbounded = _record(name="counter", threads=2, seed=3)
    # the ring retains chunks in schedule order; the unbounded log is in
    # CBUF drain order — same chunks, same schedule
    assert build_schedule(recording.chunks) == \
        build_schedule(unbounded.recording.chunks)
    assert recording.events == unbounded.recording.events


def test_materialized_window_is_rebased_and_valid():
    outcome = _record(config=_flight_config())
    recording = outcome.recording
    info = recording.metadata[FLIGHT_META_KEY]
    assert info["evictions"] >= 1
    assert info["timestamp_origin"] > 0
    schedule = build_schedule(recording.chunks)
    validate_schedule(schedule)  # rebased window stands on its own
    assert schedule[0].timestamp == 1
    # the base state is embedded as a position-0 checkpoint
    assert [record.position for record in recording.checkpoints] == [0]
    # event sequence numbers stay absolute (aligned with the base state)
    assert all(event.seq >= 0 for event in recording.events)


def test_ring_telemetry_gauges():
    telemetry = Telemetry(enabled=True)
    config = _flight_config()
    program, inputs = workloads.build("racer")
    session.record(program, seed=11, input_files=inputs, config=config,
                   telemetry=telemetry)
    snapshot = telemetry.snapshot()
    assert snapshot["capture.flight_window"] == WINDOW
    assert snapshot["capture.flight_epoch_chunks"] == EPOCH
    assert snapshot["capture.evictions"] >= 2
    assert snapshot["capture.chunks_retained"] <= (WINDOW + 1) * EPOCH
    assert snapshot["capture.chunks_seen"] > \
        snapshot["capture.chunks_retained"]


def test_ring_is_pure_observer():
    # flight on/off: identical execution (cycles, instructions, digests)
    unbounded = _record()
    flight = _record(config=_flight_config())
    assert flight.total_cycles == unbounded.total_cycles
    assert flight.instructions == unbounded.instructions
    assert flight.exit_codes == unbounded.exit_codes
    meta_f = dict(flight.recording.metadata)
    meta_f.pop(FLIGHT_META_KEY)
    assert meta_f == unbounded.recording.metadata
