"""End-to-end flight recording through the session layer.

The acceptance property: after at least two evictions, the materialized
window replays to exactly the digests, outputs and exit codes of
replaying the unbounded recording of the same seed — the base state
carries the dropped prefix's cumulative effects bit-for-bit.
"""

import pytest

from repro import session, workloads
from repro.capo.recording import FLIGHT_META_KEY, Recording
from repro.replay.verify import verify_replay

from .test_ring import _flight_config, _record


@pytest.fixture(scope="module")
def pair():
    """(unbounded outcome, flight outcome) of the same racer seed."""
    return _record(seed=11), _record(seed=11, config=_flight_config())


def test_flight_replay_matches_unbounded(pair):
    unbounded, flight = pair
    assert flight.recording.metadata[FLIGHT_META_KEY]["evictions"] >= 2
    full = session.replay_recording(unbounded.recording)
    window = session.replay_recording(flight.recording)
    assert window.digest() == full.digest()
    assert window.exit_codes == full.exit_codes
    assert window.outputs == full.outputs


def test_flight_recording_verifies_against_metadata(pair):
    _, flight = pair
    meta = flight.recording.metadata
    result = session.replay_recording(flight.recording)
    report = verify_replay(
        meta["final_memory_digest"],
        {name: bytes.fromhex(data)
         for name, data in meta.get("outputs_hex", {}).items()},
        {int(tid): code for tid, code in meta["exit_codes"].items()},
        result, use_region="sphere_region" in meta)
    assert report.ok, report.mismatches


def test_flight_bundle_save_load_replay(pair, tmp_path):
    unbounded, flight = pair
    directory = flight.recording.save(tmp_path / "flight")
    loaded = Recording.load(directory)
    assert loaded.metadata[FLIGHT_META_KEY] == \
        flight.recording.metadata[FLIGHT_META_KEY]
    replayed = session.replay_recording(loaded)
    assert replayed.digest() == \
        session.replay_recording(unbounded.recording).digest()


def test_flight_checkpoints_and_seek(pair, tmp_path):
    _, flight = pair
    recording = Recording.load(flight.recording.save(tmp_path / "rec"))
    session.add_checkpoints(recording, 8)
    # the ring base survives a checkpoint (re)build at position 0
    positions = [record.position for record in recording.checkpoints]
    assert positions[0] == 0
    assert positions[1:] == list(range(8, positions[-1] + 1, 8))
    from repro.replay.checkpoint import replayer_at
    target = min(10, len(recording.chunks))
    replayer = replayer_at(recording, target)
    assert replayer.position == target


def test_flight_parallel_replay(pair, tmp_path):
    unbounded, flight = pair
    recording = Recording.load(flight.recording.save(tmp_path / "rec"))
    session.add_checkpoints(recording, 8)
    directory = recording.save(tmp_path / "rec")
    from repro.replay.parallel import replay_parallel
    result, report = replay_parallel(recording=recording,
                                     directory=directory, jobs=3)
    assert result.digest() == \
        session.replay_recording(unbounded.recording).digest()
    assert report.seams_verified


def test_flight_forensics_analyze(pair):
    _, flight = pair
    from repro.forensics import analyze_recording
    report, _graph = analyze_recording(flight.recording)
    assert report.total_chunks == len(flight.recording.chunks)
    assert report.as_dict()  # serializes cleanly


def test_order_logs_trimmed_behind_ring(pair):
    unbounded, flight = pair
    trimmed = sum(log.trimmed for log in flight.order_logs)
    total = sum(log.trimmed + len(log.records)
                for log in flight.order_logs)
    full_total = sum(len(log.records) for log in unbounded.order_logs)
    # the RSM trims per-core order logs behind the ring base: retained
    # records shrink, but trimmed + retained still covers the full run
    assert trimmed > 0
    assert total == full_total
    assert sum(len(log.records) for log in flight.order_logs) < full_total


def test_crasher_fault_captured_end_to_end(tmp_path):
    # the black-box story: a faulting workload under a flight ring yields
    # a crash bundle whose window replays to the recorded fault
    from repro.flight import detect_fault, load_crash_manifest, \
        write_crash_bundle
    outcome = _record(name="crasher", seed=3, config=_flight_config())
    trigger = detect_fault(outcome)
    assert trigger is not None
    bundle = write_crash_bundle(tmp_path / "bundle", outcome.recording,
                                trigger=trigger)
    manifest = load_crash_manifest(bundle)
    assert manifest["replay"]["ok"] is True
    assert any(code != 0
               for code in manifest["replay"]["exit_codes"].values())


def test_flight_window_sizes_sweep():
    # several ring geometries, one truth: every window replays to the
    # unbounded digest
    program, inputs = workloads.build("racer")
    full = session.record(program, seed=7, input_files=inputs)
    want = session.replay_recording(full.recording).digest()
    for window, epoch in ((1, 8), (2, 16), (3, 32), (5, 64)):
        flight = session.record(
            program, seed=7, input_files=inputs,
            config=_flight_config(window=window, epoch=epoch))
        got = session.replay_recording(flight.recording).digest()
        assert got == want, (window, epoch)
