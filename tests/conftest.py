"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    KernelConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
)
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.machine.core import (
    Engine,
    OUTCOME_OK,
    OUTCOME_SYSCALL,
)
from repro.machine.memory import PhysicalMemory


class DirectPort:
    """A memory port with no store buffer, cache or recording — sequential
    consistency. Used to test instruction semantics in isolation."""

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.fences = 0

    def load(self, addr: int, size: int) -> int:
        if size == 4:
            return self.memory.read_word(addr)
        return self.memory.read_byte(addr)

    def store(self, addr: int, size: int, value: int) -> None:
        if size == 4:
            self.memory.write_word(addr, value)
        else:
            self.memory.write_byte(addr, value)

    def fence(self) -> None:
        self.fences += 1

    def atomic_load(self, addr: int, size: int) -> int:
        return self.load(addr, size)

    def atomic_store(self, addr: int, size: int, value: int) -> None:
        self.store(addr, size, value)


class Fragment:
    """An assembled code fragment running on a bare engine."""

    def __init__(self, source: str | Program, memory_bytes: int = 1 << 16):
        if isinstance(source, Program):
            self.program = source
        else:
            self.program = assemble(source, name="fragment")
        self.memory = PhysicalMemory(memory_bytes)
        self.memory.load_blob(self.program.data_base, self.program.data)
        self.engine = Engine(self.program)
        self.engine.regs[15] = memory_bytes - 16  # a usable stack
        self.port = DirectPort(self.memory)

    def run(self, max_units: int = 100_000) -> str:
        """Step until a trap (syscall/nondet) or the unit budget runs out.

        Returns the outcome that stopped execution.
        """
        for _ in range(max_units):
            outcome = self.engine.step(self.port)
            if outcome != OUTCOME_OK:
                return outcome
        raise AssertionError("fragment did not trap within the unit budget")

    def reg(self, number: int) -> int:
        return self.engine.regs[number]

    def word(self, symbol: str, index: int = 0) -> int:
        return self.memory.read_word(self.program.symbol(symbol) + 4 * index)


def run_fragment(body: str, data: str = "", max_units: int = 100_000) -> Fragment:
    """Assemble ``body`` (with an implicit trailing ``syscall`` halt) plus an
    optional ``.data`` section, run it, and return the Fragment."""
    source = ".data\n" + data + "\n.text\nmain:\n" + body + "\n    syscall\n"
    fragment = Fragment(source)
    outcome = fragment.run(max_units=max_units)
    assert outcome == OUTCOME_SYSCALL
    return fragment


@pytest.fixture
def small_config() -> SimConfig:
    """A small, fast configuration for full-system tests."""
    return SimConfig(
        machine=MachineConfig(
            num_cores=2,
            memory_bytes=1 << 18,
            cache=CacheConfig(sets=16, ways=2),
            store_buffer=StoreBufferConfig(entries=4, drain_period=4),
        ),
        mrr=MRRConfig(signature_bits=256, cbuf_entries=16,
                      max_chunk_instructions=4096),
        kernel=KernelConfig(quantum_instructions=500),
    )


@pytest.fixture
def four_core_config() -> SimConfig:
    return SimConfig(
        machine=MachineConfig(num_cores=4, memory_bytes=1 << 19),
        kernel=KernelConfig(quantum_instructions=1000),
    )
