from repro.replay.replayer import ReplayResult, ReplayStats
from repro.replay.verify import verify_replay


def make_result(digest="d1", outputs=None, exit_codes=None):
    return ReplayResult(
        final_memory_digest=digest,
        outputs=outputs if outputs is not None else {"stdout": b"ok"},
        exit_codes=exit_codes if exit_codes is not None else {1: 0},
        stats=ReplayStats(),
    )


def test_all_match():
    report = verify_replay("d1", {"stdout": b"ok"}, {1: 0}, make_result())
    assert report.ok
    assert "verified" in report.summary()
    assert report.mismatches == []


def test_memory_mismatch():
    report = verify_replay("other", {"stdout": b"ok"}, {1: 0}, make_result())
    assert not report.ok
    assert not report.memory_match
    assert any("memory" in m for m in report.mismatches)


def test_output_content_mismatch_reports_offset():
    report = verify_replay("d1", {"stdout": b"oak"}, {1: 0}, make_result())
    assert not report.output_match
    assert any("content differs at offset 1" in m for m in report.mismatches)


def test_output_missing_file():
    report = verify_replay("d1", {"stdout": b"ok", "log": b"x"}, {1: 0},
                           make_result())
    assert not report.output_match


def test_extra_replay_output_detected():
    report = verify_replay("d1", {}, {1: 0}, make_result())
    assert not report.output_match


def test_exit_code_mismatch():
    report = verify_replay("d1", {"stdout": b"ok"}, {1: 1}, make_result())
    assert not report.exit_code_match
    assert "DIVERGED" in report.summary()


def test_prefix_mismatch_reports_truncation_not_offset():
    # Replay produced a strict prefix of the recorded output: every
    # compared byte matches, so "first difference at offset 2" was a lie.
    report = verify_replay("d1", {"stdout": b"okmore"}, {1: 0}, make_result())
    assert any("replay output truncated at length 2" in m
               for m in report.mismatches)
    assert not any("differs" in m for m in report.mismatches)


def test_prefix_mismatch_reports_extension():
    report = verify_replay("d1", {"stdout": b"o"}, {1: 0}, make_result())
    assert any("replay output extended at length 1" in m
               for m in report.mismatches)


def test_equal_length_content_mismatch_still_reports_offset():
    report = verify_replay("d1", {"stdout": b"ox"}, {1: 0}, make_result())
    assert any("content differs at offset 1" in m for m in report.mismatches)
