"""Time-travel inspector behaviour."""

import pytest

from repro import session
from repro.errors import ReproError
from repro.isa.builder import KernelBuilder
from repro.mrr.chunk import Reason
from repro.replay.inspect import ReplayInspector


def make_recording():
    b = KernelBuilder()
    b.word("shared", 0)
    b.space("stack", 2048)
    b.label("main")
    b.ins("mov", "r9", "stack")
    b.ins("add", "r9", "r9", 2032)
    b.spawn("worker", "r9", 0)
    with b.for_range("r6", 0, 40):
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[shared]", "r7")
    spin = b.label("spin")
    b.ins("pause")
    b.ins("load", "r7", "[shared]")
    b.ins("cmp", "r7", 80)
    b.ins("jne", spin)
    b.exit(0)
    b.label("worker")
    with b.for_range("r6", 0, 40):
        b.ins("mov", "r7", 1)
        b.ins("xadd", "[shared]", "r7")
    b.exit(0)
    return session.record(b.build("inspectme"), seed=6)


@pytest.fixture(scope="module")
def recorded():
    return make_recording()


def test_stepping_moves_position(recorded):
    inspector = ReplayInspector(recorded.recording)
    assert inspector.position == 0
    chunks = inspector.step(5)
    assert len(chunks) == 5
    assert inspector.position == 5
    assert not inspector.finished


def test_step_past_end_is_graceful(recorded):
    inspector = ReplayInspector(recorded.recording)
    replayed = inspector.step(10_000_000)
    assert len(replayed) == inspector.total_chunks
    assert inspector.finished
    assert inspector.step(1) == []
    assert inspector.next_chunk() is None


def test_negative_step_rejected(recorded):
    with pytest.raises(ReproError):
        ReplayInspector(recorded.recording).step(-1)


def test_run_to_end_matches_direct_replay(recorded):
    inspector = ReplayInspector(recorded.recording)
    result = inspector.run_to_end()
    assert session.verify(recorded, result).ok


def test_next_chunk_is_schedule_head(recorded):
    inspector = ReplayInspector(recorded.recording)
    first = inspector.next_chunk()
    assert inspector.step(1) == [first]


def test_run_until_predicate(recorded):
    inspector = ReplayInspector(recorded.recording)
    chunk = inspector.run_until(lambda c: c.reason == Reason.EXIT)
    assert chunk is not None and chunk.reason == Reason.EXIT


def test_run_to_timestamp(recorded):
    inspector = ReplayInspector(recorded.recording)
    chunk = inspector.run_to_timestamp(20)
    assert chunk.timestamp >= 20
    # nothing before it was skipped
    assert inspector.position <= inspector.total_chunks


def test_run_to_index(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.run_to_index(7)
    assert inspector.position == 7
    inspector.run_to_index(3)  # already past: no-op
    assert inspector.position == 7


def test_watch_word_finds_first_change(recorded):
    inspector = ReplayInspector(recorded.recording)
    hit = inspector.watch_word(inspector.resolve("shared"))
    assert hit is not None
    assert hit.old_value == 0
    assert hit.new_value > 0
    # re-running a fresh inspector to the same index reproduces the hit
    again = ReplayInspector(recorded.recording)
    again.run_to_index(hit.chunk_index)
    assert again.read_word("shared") == hit.old_value
    again.step(1)
    assert again.read_word("shared") == hit.new_value


def test_watch_word_none_when_stable(recorded):
    inspector = ReplayInspector(recorded.recording)
    # a word in the thread stack area that nobody writes... use the last
    # word of the (zero) data segment padding: watch an address past all
    # writes: the symbol region start of stack (never written at word 0)
    addr = recorded.recording.program.symbol("stack")
    hit = inspector.watch_word(addr)
    assert hit is None
    assert inspector.finished


def test_thread_views_and_words(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.run_to_index(inspector.total_chunks // 2)
    for rthread in inspector.threads():
        view = inspector.thread_view(rthread)
        assert view.rthread == rthread
        assert len(view.regs) == 16
        assert view.completed_chunks >= 0
    value = inspector.thread_word(1, "shared")
    assert 0 <= value <= 80


def test_unknown_thread_rejected(recorded):
    inspector = ReplayInspector(recorded.recording)
    with pytest.raises(ReproError):
        inspector.thread_view(99)


def test_resolve_symbol_and_address(recorded):
    inspector = ReplayInspector(recorded.recording)
    base = recorded.recording.program.symbol("shared")
    assert inspector.resolve("shared") == base
    assert inspector.resolve("shared", 2) == base + 8
    assert inspector.resolve(base, 1) == base + 4


def test_disassemble_at_marks_pc(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.step(3)
    text = inspector.disassemble_at(1)
    assert "->" in text


def test_final_word_value(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.run_to_end()
    assert inspector.read_word("shared") == 80


def test_outputs_accumulate(recorded):
    inspector = ReplayInspector(recorded.recording)
    assert inspector.outputs_so_far() == {}
    inspector.run_to_end()
    assert inspector.outputs_so_far() == recorded.outputs
