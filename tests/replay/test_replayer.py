"""Replayer behaviour: fidelity on crafted programs and divergence
detection on corrupted logs."""

import dataclasses

import pytest

from repro import session
from repro.capo.events import EV_SYSCALL
from repro.errors import ReplayDivergenceError
from repro.isa.builder import KernelBuilder, SYS_SIGACTION, SYS_KILL, SYS_GETTID, SYS_SIGRETURN
from repro.mrr.chunk import Reason
from repro.replay.replayer import Replayer


def racy_program():
    b = KernelBuilder()
    b.word("shared", 0)
    b.word("out", 0)
    b.space("stack", 2048)
    b.label("main")
    b.ins("mov", "r9", "stack")
    b.ins("add", "r9", "r9", 2032)
    b.spawn("worker", "r9", 0)
    with b.for_range("r6", 0, 60):
        b.ins("load", "r7", "[shared]")
        b.ins("add", "r7", "r7", 1)
        b.ins("store", "[shared]", "r7")
    w = b.label("join")
    b.ins("pause")
    b.ins("load", "r7", "[out]")
    b.ins("test", "r7", "r7")
    b.ins("je", w)
    b.exit(0)
    b.label("worker")
    with b.for_range("r6", 0, 60):
        b.ins("load", "r7", "[shared]")
        b.ins("add", "r7", "r7", 2)
        b.ins("store", "[shared]", "r7")
    b.ins("store", "[out]", 1)
    b.exit(0)
    return b.build("racy")


@pytest.fixture(scope="module")
def recorded():
    return session.record(racy_program(), seed=11)


def test_replay_matches_recording(recorded):
    result = session.replay_recording(recorded.recording)
    assert session.verify(recorded, result).ok


def test_replay_stats_populated(recorded):
    result = session.replay_recording(recorded.recording)
    assert result.stats.chunks == len(recorded.recording.chunks)
    assert result.stats.events == len(recorded.recording.events)
    assert result.stats.units > 0


def test_replay_is_idempotent(recorded):
    first = session.replay_recording(recorded.recording)
    second = session.replay_recording(recorded.recording)
    assert first.final_memory_digest == second.final_memory_digest


def _mutate(recording, **changes):
    return recording.replace(**changes)


def test_dropped_chunk_detected(recorded):
    recording = recorded.recording
    broken = _mutate(recording, chunks=recording.chunks[:-1])
    with pytest.raises(ReplayDivergenceError):
        Replayer(broken).run()


def test_corrupted_icount_detected(recorded):
    recording = recorded.recording
    chunks = list(recording.chunks)
    victim = max(range(len(chunks)), key=lambda i: chunks[i].icount)
    chunks[victim] = dataclasses.replace(chunks[victim],
                                         icount=chunks[victim].icount + 1)
    with pytest.raises(ReplayDivergenceError):
        Replayer(_mutate(recording, chunks=chunks)).run()


def test_corrupted_rsw_detected(recorded):
    recording = recorded.recording
    chunks = list(recording.chunks)
    index = next(i for i, c in enumerate(chunks)
                 if c.reason in Reason.CONFLICTS)
    chunks[index] = dataclasses.replace(chunks[index], rsw=60_000 & 0xFFFF)
    with pytest.raises(ReplayDivergenceError):
        Replayer(_mutate(recording, chunks=chunks)).run()


def test_dropped_event_detected(recorded):
    recording = recorded.recording
    broken = _mutate(recording, events=recording.events[:-1])
    with pytest.raises(ReplayDivergenceError):
        Replayer(broken).run()


def test_event_kind_mismatch_detected(recorded):
    recording = recorded.recording
    events = list(recording.events)
    index = next(i for i, e in enumerate(events) if e.kind == EV_SYSCALL)
    events[index] = dataclasses.replace(events[index], kind="signal", sysno=0,
                                        copies=())
    with pytest.raises(ReplayDivergenceError):
        Replayer(_mutate(recording, events=events)).run()


def test_wrong_syscall_retval_changes_behaviour_or_state(recorded):
    """Retval corruption must never silently verify."""
    recording = recorded.recording
    events = list(recording.events)
    index = next(i for i, e in enumerate(events)
                 if e.kind == EV_SYSCALL and e.sysno == 4)  # spawn retval
    events[index] = dataclasses.replace(events[index], value=55)
    broken = _mutate(recording, events=events)
    with pytest.raises(ReplayDivergenceError):
        Replayer(broken).run()


def test_swapped_thread_chunks_detected(recorded):
    recording = recorded.recording
    chunks = list(recording.chunks)
    # give one of thread 2's chunks to thread 1
    index = next(i for i, c in enumerate(chunks)
                 if c.rthread == 2 and c.reason in Reason.CONFLICTS)
    chunks[index] = dataclasses.replace(chunks[index], rthread=1)
    with pytest.raises(ReplayDivergenceError):
        Replayer(_mutate(recording, chunks=chunks)).run()


def test_load_hash_divergence_pinpoints_chunk():
    from repro.config import MRRConfig, SimConfig

    config = SimConfig(mrr=MRRConfig(log_load_hash=True))
    outcome = session.record(racy_program(), seed=4, config=config)
    recording = outcome.recording
    assert any(chunk.load_hash for chunk in recording.chunks)
    result = session.replay_recording(recording)
    assert session.verify(outcome, result).ok
    # now flip one recorded hash: replay must stop at that exact chunk
    chunks = list(recording.chunks)
    victim = max(range(len(chunks)), key=lambda i: chunks[i].icount)
    chunks[victim] = dataclasses.replace(
        chunks[victim], load_hash=(chunks[victim].load_hash or 0) ^ 1)
    broken = _mutate(recording, chunks=chunks)
    with pytest.raises(ReplayDivergenceError) as err:
        Replayer(broken).run()
    assert "hash" in str(err.value)


def test_signal_replay_with_handlers():
    b = KernelBuilder()
    b.word("hits", 0)
    b.label("main")
    b.syscall(SYS_SIGACTION, 10, "handler")
    b.syscall(SYS_GETTID)
    b.ins("mov", "r11", "rax")
    with b.for_range("r6", 0, 5):
        b.ins("push", "r6")
        b.syscall(SYS_KILL, "r11", 10)
        b.ins("pop", "r6")
    b.exit(0)
    b.label("handler")
    b.ins("load", "r7", "[hits]")
    b.ins("add", "r7", "r7", 1)
    b.ins("store", "[hits]", "r7")
    b.syscall(SYS_SIGRETURN)
    outcome, result, report = session.record_and_replay(b.build("sig"), seed=2)
    assert report.ok
    assert result.stats.signals == 5


def test_exit_codes_collected(recorded):
    result = session.replay_recording(recorded.recording)
    assert result.exit_codes == recorded.exit_codes
