"""Checkpointed backward seeks (reverse time travel)."""

import pytest

from repro import session, workloads
from repro.errors import ReproError
from repro.replay.inspect import ReplayInspector


@pytest.fixture(scope="module")
def recorded():
    program, inputs = workloads.build("counter", threads=2)
    return session.record(program, seed=4, input_files=inputs)


def test_checkpoints_created_at_interval(recorded):
    inspector = ReplayInspector(recorded.recording, checkpoint_every=40)
    inspector.run_to_index(130)
    assert inspector.checkpoints == [40, 80, 120]


def test_no_checkpoints_by_default(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.run_to_index(100)
    assert inspector.checkpoints == []


def test_backward_seek_restores_identical_state(recorded):
    inspector = ReplayInspector(recorded.recording, checkpoint_every=25)
    values = {}
    for target in (10, 60, 140, 200):
        inspector.seek(target)
        values[target] = (inspector.read_word("counter"),
                          inspector.thread_view(1).regs)
    # travel backwards and forwards; every revisit must agree
    for target in (140, 10, 200, 60, 10):
        inspector.seek(target)
        assert (inspector.read_word("counter"),
                inspector.thread_view(1).regs) == values[target]
        assert inspector.position == target


def test_seek_backwards_without_checkpoints_replays_from_scratch(recorded):
    inspector = ReplayInspector(recorded.recording)
    inspector.run_to_index(150)
    value = inspector.read_word("counter")
    inspector.seek(80)
    assert inspector.position == 80
    inspector.seek(150)
    assert inspector.read_word("counter") == value


def test_seek_to_zero(recorded):
    inspector = ReplayInspector(recorded.recording, checkpoint_every=30)
    inspector.run_to_index(90)
    inspector.seek(0)
    assert inspector.position == 0
    assert inspector.read_word("counter") == 0


def test_seek_bounds_checked(recorded):
    inspector = ReplayInspector(recorded.recording)
    with pytest.raises(ReproError):
        inspector.seek(-1)
    with pytest.raises(ReproError):
        inspector.seek(inspector.total_chunks + 1)


def test_negative_checkpoint_interval_rejected(recorded):
    with pytest.raises(ReproError):
        ReplayInspector(recorded.recording, checkpoint_every=-5)


def test_full_run_after_seeking_still_verifies(recorded):
    inspector = ReplayInspector(recorded.recording, checkpoint_every=50)
    inspector.run_to_index(inspector.total_chunks // 2)
    inspector.seek(10)
    result = inspector.run_to_end()
    assert session.verify(recorded, result).ok


def test_checkpoint_isolation(recorded):
    """Mutating state after a checkpoint must not corrupt the snapshot."""
    inspector = ReplayInspector(recorded.recording, checkpoint_every=50)
    inspector.run_to_index(50)
    at_50 = inspector.read_word("counter")
    inspector.run_to_index(400)   # plenty of mutation past the checkpoint
    inspector.seek(50)
    assert inspector.read_word("counter") == at_50
