import pytest

from repro.errors import ReplayDivergenceError
from repro.machine.memory import PhysicalMemory
from repro.replay.pending import ReplayPort, WithheldStores


@pytest.fixture
def memory():
    return PhysicalMemory(256)


def test_stores_withheld_until_commit(memory):
    withheld = WithheldStores(memory)
    withheld.push(0, 4, 7)
    assert memory.read_word(0) == 0
    withheld.commit_all()
    assert memory.read_word(0) == 7
    assert len(withheld) == 0


def test_commit_keep_last_commits_oldest(memory):
    withheld = WithheldStores(memory)
    withheld.push(0, 4, 1)
    withheld.push(4, 4, 2)
    withheld.push(8, 4, 3)
    withheld.commit_keep_last(1)
    assert memory.read_word(0) == 1
    assert memory.read_word(4) == 2
    assert memory.read_word(8) == 0  # youngest still withheld
    assert len(withheld) == 1


def test_commit_keep_last_overflow_is_divergence(memory):
    withheld = WithheldStores(memory)
    with pytest.raises(ReplayDivergenceError):
        withheld.commit_keep_last(1)


def test_forwarding_matches_store_buffer_semantics(memory):
    withheld = WithheldStores(memory)
    withheld.push(0, 4, 0x11223344)
    assert withheld.resolve(0, 4) == ("hit", 0x11223344)
    assert withheld.resolve(2, 1) == ("hit", 0x22)
    assert withheld.resolve(8, 4) == ("miss", None)
    withheld.push(1, 1, 0xFF)
    assert withheld.resolve(0, 4) == ("conflict", None)


def test_port_load_forwards(memory):
    withheld = WithheldStores(memory)
    port = ReplayPort(memory, withheld)
    port.store(0, 4, 42)
    assert port.load(0, 4) == 42
    assert memory.read_word(0) == 0  # still not visible


def test_port_load_conflict_commits_all(memory):
    withheld = WithheldStores(memory)
    port = ReplayPort(memory, withheld)
    port.store(1, 1, 0xAB)
    assert port.load(0, 4) == 0xAB00
    assert len(withheld) == 0


def test_port_fence_commits(memory):
    withheld = WithheldStores(memory)
    port = ReplayPort(memory, withheld)
    port.store(0, 4, 5)
    port.fence()
    assert memory.read_word(0) == 5


def test_port_atomics_direct(memory):
    withheld = WithheldStores(memory)
    port = ReplayPort(memory, withheld)
    port.atomic_store(0, 4, 9)
    assert port.atomic_load(0, 4) == 9
    assert memory.read_word(0) == 9


def test_port_byte_paths(memory):
    withheld = WithheldStores(memory)
    port = ReplayPort(memory, withheld)
    port.store(3, 1, 0x7F)
    assert port.load(3, 1) == 0x7F
    withheld.commit_all()
    assert memory.read_byte(3) == 0x7F
