"""Parallel interval replay: partitioning, seam verification, identity."""

import dataclasses

import pytest

from repro import session, workloads
from repro.capo.recording import Recording
from repro.errors import ReplayDivergenceError, ReproError
from repro.mrr.logfmt import CheckpointRecord
from repro.replay.checkpoint import build_checkpoints
from repro.replay.parallel import plan_intervals, replay_parallel
from repro.replay.replayer import Replayer


@pytest.fixture(scope="module")
def recording():
    program, inputs = workloads.build("fft", scale=1)
    rec = session.record(program, seed=7, input_files=inputs).recording
    rec.checkpoints = build_checkpoints(rec, every=20)
    return rec


@pytest.fixture(scope="module")
def serial_digest(recording):
    return Replayer(recording).run().digest()


def test_plan_intervals_covers_schedule_exactly(recording):
    intervals = plan_intervals(recording)
    assert intervals[0].start == 0
    assert intervals[-1].end == len(recording.chunks)
    assert intervals[-1].expected_digest is None
    for left, right in zip(intervals, intervals[1:]):
        assert left.end == right.start
        assert left.expected_digest is not None


def test_plan_intervals_without_checkpoints_is_one_interval():
    program, inputs = workloads.build("counter", threads=2)
    rec = session.record(program, seed=3, input_files=inputs).recording
    intervals = plan_intervals(rec)
    assert len(intervals) == 1
    assert (intervals[0].start, intervals[0].end) == (0, len(rec.chunks))


def test_serial_interval_path_matches_plain_replay(recording, serial_digest):
    result, report = replay_parallel(recording=recording, jobs=1)
    assert result.digest() == serial_digest
    assert report.jobs == 1
    assert report.seams_verified == len(report.intervals) - 1
    assert sum(o.units for o in report.intervals) == result.stats.units


def test_pool_replay_matches_serial(recording, serial_digest):
    result, report = replay_parallel(recording=recording, jobs=4)
    assert result.digest() == serial_digest
    assert report.jobs > 1
    assert report.seams_verified == len(report.intervals) - 1


def test_jobs_capped_to_interval_count(recording):
    _result, report = replay_parallel(recording=recording, jobs=64)
    assert report.jobs <= len(report.intervals)


def test_no_checkpoints_degrades_to_serial(serial_digest):
    program, inputs = workloads.build("fft", scale=1)
    rec = session.record(program, seed=7, input_files=inputs).recording
    result, report = replay_parallel(recording=rec, jobs=4)
    assert result.digest() == serial_digest
    assert len(report.intervals) == 1
    assert report.seams_verified == 0


def test_replay_from_saved_bundle(recording, serial_digest, tmp_path):
    directory = recording.save(tmp_path / "rec")
    result, _report = replay_parallel(directory=directory, jobs=2)
    assert result.digest() == serial_digest


def test_session_replay_recording_jobs(recording, serial_digest):
    result = session.replay_recording(recording, jobs=3)
    assert result.digest() == serial_digest


def test_tampered_seam_digest_detected(recording):
    """Corrupting a checkpoint's recorded digest must fail the seam check,
    not silently stitch a wrong result."""
    tampered = [
        dataclasses.replace(record, digest="0" * 64)
        if index == 1 else record
        for index, record in enumerate(recording.checkpoints)]
    broken = Recording(config=recording.config, program=recording.program,
                       chunks=recording.chunks, events=recording.events,
                       metadata=recording.metadata, checkpoints=tampered)
    with pytest.raises(ReplayDivergenceError, match="seam"):
        replay_parallel(recording=broken, jobs=1)


def test_tampered_checkpoint_payload_detected(recording):
    """Corrupting a checkpoint's memory image (with a recomputed digest,
    so the log layer accepts it) must be caught at the next seam, never
    stitched into a wrong result."""
    import struct
    victim = recording.checkpoints[1]
    # flip the byte at physical address 0: no program touches it, so the
    # corruption survives to the next seam where the digest must differ
    (header_len,) = struct.unpack_from("<I", victim.payload, 0)
    memory_start = 4 + header_len
    corrupt = bytearray(victim.payload)
    corrupt[memory_start] ^= 0xFF
    tampered = [
        CheckpointRecord.for_payload(victim.position, bytes(corrupt))
        if index == 1 else record
        for index, record in enumerate(recording.checkpoints)]
    broken = Recording(config=recording.config, program=recording.program,
                       chunks=recording.chunks, events=recording.events,
                       metadata=recording.metadata, checkpoints=tampered)
    with pytest.raises(ReplayDivergenceError, match="seam"):
        replay_parallel(recording=broken, jobs=1)


def test_missing_source_rejected():
    with pytest.raises(ReproError):
        replay_parallel()


def test_report_speedup_bound(recording):
    _result, report = replay_parallel(recording=recording, jobs=1)
    assert report.speedup_bound >= 1.0
    largest = max(o.units for o in report.intervals)
    total = sum(o.units for o in report.intervals)
    assert report.speedup_bound == pytest.approx(total / largest)
