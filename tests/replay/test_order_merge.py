"""Per-core order streams merge to exactly the v1 global schedule.

The recorder emits two equivalent order representations: the shared chunk
log (sorted by ``build_schedule``) and per-core streams — each core's
chunks in emission order plus a :class:`CoreOrderLog` of
(seq, rthread, timestamp, pred_ts) records. This suite pins

- the merge identity, end-to-end on real recordings and on
  hypothesis-generated synthetic streams (merge == global sort);
- the per-core invariants the merge relies on: strict timestamp
  monotonicity (violations raise), dense ``seq``, ``pred_ts < timestamp``;
- that a replayer driven by the merged schedule reproduces the recording.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import session, workloads
from repro.config import MachineConfig, SimConfig
from repro.errors import ReplayDivergenceError
from repro.mrr.orderlog import CoreOrderLog, OrderRecord
from repro.replay.replayer import Replayer
from repro.replay.schedule import build_schedule, merge_core_streams


def _record(workload="pingpong", num_cores=4, seed=3, coherence="snoop"):
    program, inputs = workloads.build(workload, threads=num_cores, scale=1)
    config = SimConfig(machine=MachineConfig(num_cores=num_cores,
                                             coherence=coherence))
    return session.record(program, seed=seed, input_files=inputs,
                          config=config)


# -- end-to-end ---------------------------------------------------------------

@pytest.mark.parametrize("coherence", ["snoop", "directory"])
@pytest.mark.parametrize("workload", ["counter", "pingpong"])
def test_core_streams_merge_to_the_global_schedule(workload, coherence):
    out = _record(workload, coherence=coherence)
    assert (merge_core_streams(out.core_chunk_logs)
            == build_schedule(out.recording.chunks))


def test_merge_at_many_cores():
    out = _record("barnes", num_cores=16, coherence="directory")
    merged = merge_core_streams(out.core_chunk_logs)
    assert merged == build_schedule(out.recording.chunks)
    # Real work landed on many streams, not one.
    populated = sum(1 for stream in out.core_chunk_logs if stream)
    assert populated > 1


def test_order_logs_mirror_core_chunk_streams():
    out = _record()
    for core_log, chunks in zip(out.order_logs, out.core_chunk_logs):
        assert [r.timestamp for r in core_log.records] \
            == [c.timestamp for c in chunks]
        assert [r.rthread for r in core_log.records] \
            == [c.rthread for c in chunks]
        assert [r.seq for r in core_log.records] \
            == list(range(len(chunks)))
        for record in core_log.records:
            assert record.pred_ts < record.timestamp


def test_order_records_merge_like_their_chunks():
    out = _record()
    merged = merge_core_streams(
        [log.records for log in out.order_logs])
    schedule = build_schedule(out.recording.chunks)
    assert [r.sort_key for r in merged] == [c.sort_key for c in schedule]


def test_replayer_accepts_a_merged_schedule():
    out = _record()
    schedule = merge_core_streams(out.core_chunk_logs)
    replayed = Replayer(out.recording, schedule=schedule).run()
    report = session.verify(out, replayed)
    assert report.ok


# -- order-log bookkeeping ----------------------------------------------------

def test_pred_ts_tracks_local_then_remote_observations():
    log = CoreOrderLog(0)
    first = log.append(rthread=1, timestamp=5)
    assert first.pred_ts == 0
    log.observe_remote(9)
    log.observe_remote(7)  # high-water mark only moves up
    second = log.append(rthread=1, timestamp=12)
    assert second.pred_ts == 9
    third = log.append(rthread=1, timestamp=13)
    assert third.pred_ts == 12  # own previous chunk beats the stale remote


# -- synthetic streams --------------------------------------------------------

def _streams_strategy():
    """Partition strictly-increasing unique timestamps across k streams."""
    return st.integers(min_value=1, max_value=6).flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.lists(st.integers(min_value=1, max_value=10_000),
                     unique=True, max_size=120),
            st.lists(st.integers(min_value=0, max_value=k - 1),
                     min_size=120, max_size=120),
        ))


@given(data=_streams_strategy())
@settings(max_examples=120, deadline=None)
def test_merge_equals_global_sort(data):
    k, timestamps, owners = data
    streams = [[] for _ in range(k)]
    for timestamp, owner in zip(sorted(timestamps), owners):
        streams[owner].append(
            OrderRecord(seq=len(streams[owner]), rthread=owner,
                        timestamp=timestamp, pred_ts=0))
    merged = merge_core_streams(streams)
    flat = [record for stream in streams for record in stream]
    assert merged == sorted(flat, key=lambda r: r.sort_key)
    assert [r.timestamp for r in merged] == sorted(timestamps)


def test_non_monotonic_stream_raises():
    stream = [
        OrderRecord(seq=0, rthread=0, timestamp=5, pred_ts=0),
        OrderRecord(seq=1, rthread=0, timestamp=5, pred_ts=0),
    ]
    with pytest.raises(ReplayDivergenceError, match="not monotonic"):
        merge_core_streams([stream])
