"""Replay-state checkpoints: capture/restore fidelity, embedding, seek."""

import pytest

from repro import session, workloads
from repro.capo.recording import Recording
from repro.errors import LogFormatError, ReproError
from repro.replay.checkpoint import (
    build_checkpoints,
    capture_state,
    decode_state,
    encode_state,
    replayer_at,
    restore_replayer,
    state_digest,
)
from repro.replay.replayer import Replayer


@pytest.fixture(scope="module")
def recording():
    # fft spawns threads, writes an output file and has syscalls and
    # pending stores in flight — the richest state to checkpoint.
    program, inputs = workloads.build("fft", scale=1)
    rec = session.record(program, seed=7, input_files=inputs).recording
    rec.checkpoints = build_checkpoints(rec, every=20)
    return rec


@pytest.fixture(scope="module")
def serial_result(recording):
    return Replayer(recording).run()


def test_build_positions_are_interior_multiples(recording):
    positions = [r.position for r in recording.checkpoints]
    assert positions == sorted(positions)
    assert all(p % 20 == 0 for p in positions)
    assert 0 not in positions
    assert len(recording.chunks) not in positions


def test_state_encoding_round_trips(recording):
    record = recording.checkpoints[0]
    state = decode_state(record.payload)
    assert encode_state(state) == record.payload
    assert state_digest(state) == record.digest
    assert state.position == record.position


def test_restore_then_capture_is_identity(recording):
    """The core fidelity property: restoring a checkpoint and immediately
    re-capturing must reproduce the exact payload bytes."""
    for record in recording.checkpoints:
        replayer = restore_replayer(recording, decode_state(record.payload))
        assert replayer.position == record.position
        assert state_digest(capture_state(replayer)) == record.digest


def test_capture_matches_serial_replay_state(recording):
    """A serially-stepped replayer and a restored one digest identically."""
    target = recording.checkpoints[1].position
    stepped = Replayer(recording)
    while stepped.position < target:
        stepped.step_chunk()
    assert state_digest(capture_state(stepped)) == \
        recording.checkpoints[1].digest


def test_resume_from_checkpoint_matches_serial(recording, serial_result):
    record = recording.checkpoints[-1]
    replayer = restore_replayer(recording, decode_state(record.payload))
    result = replayer.run()
    assert result.final_memory_digest == serial_result.final_memory_digest
    assert result.outputs == serial_result.outputs
    assert result.exit_codes == serial_result.exit_codes
    assert result.stats.as_dict() == serial_result.stats.as_dict()
    assert result.digest() == serial_result.digest()


def test_replayer_at_seeks_to_any_position(recording):
    total = len(recording.chunks)
    for position in (0, 1, 19, 20, 21, total // 2, total):
        replayer = replayer_at(recording, position)
        assert replayer.position == position


def test_replayer_at_uses_nearest_checkpoint(recording):
    # seeking to 45 should restore the checkpoint at 40 and step 5 chunks,
    # so the replayer's thread states match a 45-chunk serial replay
    seeked = replayer_at(recording, 45)
    stepped = Replayer(recording)
    while stepped.position < 45:
        stepped.step_chunk()
    assert state_digest(capture_state(seeked)) == \
        state_digest(capture_state(stepped))


def test_replayer_at_bounds(recording):
    with pytest.raises(ReproError):
        replayer_at(recording, -1)
    with pytest.raises(ReproError):
        replayer_at(recording, len(recording.chunks) + 1)


def test_build_rejects_nonpositive_interval(recording):
    with pytest.raises(ReproError):
        build_checkpoints(recording, 0)


def test_decode_state_rejects_garbage():
    with pytest.raises(LogFormatError):
        decode_state(b"")
    with pytest.raises(LogFormatError):
        decode_state(b"\xff\xff\xff\xff")


def test_checkpoints_survive_save_load(recording, tmp_path):
    directory = recording.save(tmp_path / "rec")
    assert (directory / "checkpoints.bin").exists()
    loaded = Recording.load(directory)
    assert loaded.checkpoints == recording.checkpoints


def test_checkpoint_count_mismatch_detected(recording, tmp_path):
    import json
    directory = recording.save(tmp_path / "rec")
    manifest = json.loads((directory / "manifest.json").read_text())
    manifest["checkpoint_count"] += 1
    (directory / "manifest.json").write_text(json.dumps(manifest))
    loaded = Recording.load(directory)
    with pytest.raises(LogFormatError):
        _ = loaded.checkpoints


def test_recordings_without_checkpoints_still_load(tmp_path):
    """Backward compatibility: pre-checkpoint bundles have no
    checkpoints.bin and no manifest key; both must read as empty."""
    program, inputs = workloads.build("counter", threads=2)
    rec = session.record(program, seed=3, input_files=inputs).recording
    directory = rec.save(tmp_path / "rec")
    assert not (directory / "checkpoints.bin").exists()
    import json
    manifest = json.loads((directory / "manifest.json").read_text())
    del manifest["checkpoint_count"]
    (directory / "manifest.json").write_text(json.dumps(manifest))
    loaded = Recording.load(directory)
    assert loaded.checkpoints == []
    result = session.replay_recording(loaded)
    assert result.final_memory_digest == rec.metadata["final_memory_digest"]


def test_checkpointed_replay_with_signals_and_multiproc():
    """Checkpoint/restore across the trickiest state: signal contexts and
    a background (unrecorded) process sharing the machine."""
    program, inputs = workloads.build("prodcons", scale=1)
    outcome = session.record(program, seed=11, input_files=inputs)
    rec = outcome.recording
    rec.checkpoints = build_checkpoints(rec, every=15)
    serial = Replayer(rec).run()
    for record in rec.checkpoints:
        replayer = restore_replayer(rec, decode_state(record.payload))
        assert state_digest(capture_state(replayer)) == record.digest
    resumed = restore_replayer(
        rec, decode_state(rec.checkpoints[0].payload)).run()
    assert resumed.digest() == serial.digest()
