import pytest

from repro.errors import ReplayDivergenceError
from repro.mrr.chunk import ChunkEntry, Reason
from repro.replay.schedule import build_schedule, validate_schedule


def chunk(rthread, ts, reason=Reason.RAW, rsw=0):
    return ChunkEntry(rthread, ts, 1, 0, rsw, reason)


def good_log():
    return [
        chunk(1, 1),
        chunk(2, 2),
        chunk(1, 3, Reason.SYSCALL),
        chunk(2, 4, Reason.EXIT),
        chunk(1, 5, Reason.EXIT),
    ]


def test_build_schedule_sorts_by_timestamp():
    schedule = build_schedule(list(reversed(good_log())))
    assert [c.timestamp for c in schedule] == [1, 2, 3, 4, 5]


def test_validate_accepts_good_log():
    validate_schedule(build_schedule(good_log()))


def test_non_monotone_thread_timestamps_rejected():
    log = [chunk(1, 5), chunk(1, 5, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_kernel_entry_with_rsw_rejected():
    log = [chunk(1, 1, Reason.SYSCALL, rsw=2), chunk(1, 2, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_conflict_chunk_with_rsw_accepted():
    log = [chunk(1, 1, Reason.WAW, rsw=3), chunk(1, 2, Reason.EXIT)]
    validate_schedule(log)


def test_chunk_after_exit_rejected():
    log = [chunk(1, 1, Reason.EXIT), chunk(1, 2, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_stream_not_ending_in_exit_rejected():
    log = [chunk(1, 1, Reason.SYSCALL)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_empty_log_valid():
    validate_schedule([])


def test_equal_timestamp_same_thread_rejected():
    """Strictly increasing means equality is a violation too."""
    log = [chunk(1, 7), chunk(1, 7, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError, match="non-monotonic"):
        validate_schedule(log)


def test_decreasing_timestamp_other_thread_unconstrained():
    """Monotonicity is per-thread: cross-thread order comes from the
    global sort, not from validation."""
    log = [
        chunk(1, 10),
        chunk(2, 3),
        chunk(2, 4, Reason.EXIT),
        chunk(1, 11, Reason.EXIT),
    ]
    validate_schedule(log)


@pytest.mark.parametrize("reason", sorted(Reason.KERNEL_ENTRY))
def test_every_kernel_entry_reason_rejects_rsw(reason):
    log = [chunk(1, 1, reason, rsw=1)]
    if reason != Reason.EXIT:
        log.append(chunk(1, 2, Reason.EXIT))
    with pytest.raises(ReplayDivergenceError, match="RSW"):
        validate_schedule(log)


@pytest.mark.parametrize("reason", sorted(Reason.KERNEL_ENTRY))
def test_every_kernel_entry_reason_accepts_rsw_zero(reason):
    log = [chunk(1, 1, reason, rsw=0)]
    if reason != Reason.EXIT:
        log.append(chunk(1, 2, Reason.EXIT))
    validate_schedule(log)


def test_chunk_after_exit_rejected_even_for_other_reasons():
    log = [chunk(1, 1, Reason.EXIT), chunk(1, 2)]
    with pytest.raises(ReplayDivergenceError, match="after EXIT"):
        validate_schedule(log)


def test_one_thread_missing_exit_among_many_rejected():
    """The offending thread is named even when other threads are fine."""
    log = [
        chunk(1, 1),
        chunk(2, 2),
        chunk(2, 3, Reason.EXIT),
        chunk(1, 4, Reason.SYSCALL),
    ]
    with pytest.raises(ReplayDivergenceError) as excinfo:
        validate_schedule(log)
    assert "exit" in str(excinfo.value)


def test_violation_after_many_good_chunks_detected():
    log = [chunk(1, ts) for ts in range(1, 50)]
    log.append(chunk(1, 49, Reason.EXIT))  # duplicate timestamp at the end
    with pytest.raises(ReplayDivergenceError, match="non-monotonic"):
        validate_schedule(log)


def test_interleaved_multi_thread_log_valid():
    log = [
        chunk(1, 1), chunk(2, 1), chunk(3, 1),
        chunk(2, 5, Reason.SYSCALL),
        chunk(1, 6, Reason.WAR, rsw=2),
        chunk(3, 7, Reason.NONDET),
        chunk(3, 8, Reason.EXIT),
        chunk(2, 9, Reason.EXIT),
        chunk(1, 10, Reason.EXIT),
    ]
    validate_schedule(build_schedule(log))
