import pytest

from repro.errors import ReplayDivergenceError
from repro.mrr.chunk import ChunkEntry, Reason
from repro.replay.schedule import build_schedule, validate_schedule


def chunk(rthread, ts, reason=Reason.RAW, rsw=0):
    return ChunkEntry(rthread, ts, 1, 0, rsw, reason)


def good_log():
    return [
        chunk(1, 1),
        chunk(2, 2),
        chunk(1, 3, Reason.SYSCALL),
        chunk(2, 4, Reason.EXIT),
        chunk(1, 5, Reason.EXIT),
    ]


def test_build_schedule_sorts_by_timestamp():
    schedule = build_schedule(list(reversed(good_log())))
    assert [c.timestamp for c in schedule] == [1, 2, 3, 4, 5]


def test_validate_accepts_good_log():
    validate_schedule(build_schedule(good_log()))


def test_non_monotone_thread_timestamps_rejected():
    log = [chunk(1, 5), chunk(1, 5, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_kernel_entry_with_rsw_rejected():
    log = [chunk(1, 1, Reason.SYSCALL, rsw=2), chunk(1, 2, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_conflict_chunk_with_rsw_accepted():
    log = [chunk(1, 1, Reason.WAW, rsw=3), chunk(1, 2, Reason.EXIT)]
    validate_schedule(log)


def test_chunk_after_exit_rejected():
    log = [chunk(1, 1, Reason.EXIT), chunk(1, 2, Reason.EXIT)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_stream_not_ending_in_exit_rejected():
    log = [chunk(1, 1, Reason.SYSCALL)]
    with pytest.raises(ReplayDivergenceError):
        validate_schedule(log)


def test_empty_log_valid():
    validate_schedule([])
