import pytest

from repro.config import (
    CacheConfig,
    CapoConfig,
    KernelConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
    TsoMode,
)
from repro.errors import ConfigError


def test_defaults_model_quickia():
    config = SimConfig()
    assert config.machine.num_cores == 4
    assert config.machine.cache.line_bytes == 64
    assert config.mrr.signature_bits == 512
    assert config.mrr.tso_mode == TsoMode.RSW


def test_cache_geometry_helpers():
    cache = CacheConfig(line_bytes=64, sets=64, ways=4)
    assert cache.size_bytes == 16 * 1024
    assert cache.line_of(0x12345) == 0x12340
    assert cache.set_index(64) == 1
    assert cache.set_index(64 * 64) == 0  # wraps around the sets


def test_cache_validation():
    with pytest.raises(ConfigError):
        CacheConfig(line_bytes=48)
    with pytest.raises(ConfigError):
        CacheConfig(sets=3)
    with pytest.raises(ConfigError):
        CacheConfig(ways=0)


def test_store_buffer_validation():
    with pytest.raises(ConfigError):
        StoreBufferConfig(entries=0)
    with pytest.raises(ConfigError):
        StoreBufferConfig(drain_period=0)


def test_machine_validation():
    with pytest.raises(ConfigError):
        MachineConfig(num_cores=0)
    with pytest.raises(ConfigError):
        MachineConfig(num_cores=100)
    with pytest.raises(ConfigError):
        MachineConfig(memory_bytes=100)  # not line aligned
    with pytest.raises(ConfigError):
        MachineConfig(word_bytes=3)


def test_coherence_validation():
    assert MachineConfig().coherence == "snoop"
    assert MachineConfig(coherence="directory").coherence == "directory"
    with pytest.raises(ConfigError):
        MachineConfig(coherence="token")


def test_old_bundle_dicts_get_snoop_coherence():
    # a config dict saved before the coherence knob existed must still load
    data = SimConfig(machine=MachineConfig(coherence="directory")).to_dict()
    del data["machine"]["coherence"]
    assert SimConfig.from_dict(data).machine.coherence == "snoop"


def test_coherence_round_trips_through_dict():
    config = SimConfig(machine=MachineConfig(coherence="directory"))
    assert SimConfig.from_dict(config.to_dict()) == config


def test_mrr_validation():
    with pytest.raises(ConfigError):
        MRRConfig(signature_bits=100)
    with pytest.raises(ConfigError):
        MRRConfig(signature_hashes=0)
    with pytest.raises(ConfigError):
        MRRConfig(cbuf_entries=1)
    with pytest.raises(ConfigError):
        MRRConfig(tso_mode="lazy")
    with pytest.raises(ConfigError):
        MRRConfig(saturation_threshold=0.0)
    with pytest.raises(ConfigError):
        MRRConfig(saturation_threshold=1.5)


def test_kernel_validation():
    with pytest.raises(ConfigError):
        KernelConfig(quantum_instructions=5)
    with pytest.raises(ConfigError):
        KernelConfig(max_threads=0)
    with pytest.raises(ConfigError):
        KernelConfig(timeslice_jitter=-1)


def test_sim_config_round_trips_through_dict():
    config = SimConfig(
        machine=MachineConfig(num_cores=2, memory_bytes=1 << 20),
        mrr=MRRConfig(signature_bits=256, log_load_hash=True),
        kernel=KernelConfig(quantum_instructions=100),
        capo=CapoConfig(compress_chunk_log=False),
    )
    assert SimConfig.from_dict(config.to_dict()) == config


def test_dict_form_is_json_compatible():
    import json

    config = SimConfig()
    assert SimConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config


def test_configs_hashable_values():
    assert SimConfig() == SimConfig()
    assert MRRConfig(signature_bits=256) != MRRConfig(signature_bits=512)


def test_capo_log_knobs_validated():
    from repro.config import CapoConfig

    assert CapoConfig().input_batch_events == 0
    assert CapoConfig().input_log_version == 1
    with pytest.raises(ConfigError):
        CapoConfig(input_batch_events=-1)
    with pytest.raises(ConfigError):
        CapoConfig(input_log_version=3)
    with pytest.raises(ConfigError):
        CapoConfig(chunk_log_version=0)


def test_old_bundle_dicts_get_log_knob_defaults():
    # a config dict saved before the log knobs existed must still load
    data = SimConfig().to_dict()
    for key in ("input_batch_events", "input_log_version",
                "chunk_log_version"):
        del data["capo"][key]
    config = SimConfig.from_dict(data)
    assert config.capo.input_batch_events == 0
    assert config.capo.input_log_version == 1
    assert config.capo.chunk_log_version == 1
