import pytest

from repro import session, workloads
from repro.analysis.logs import input_bytes_by_kind, log_rates


@pytest.fixture(scope="module")
def outcome():
    program, inputs = workloads.build("iobound", threads=2)
    return session.record(program, seed=1, input_files=inputs)


def test_log_rates_fields(outcome):
    rates = log_rates(outcome)
    assert rates.instructions == outcome.instructions
    assert rates.chunk_entries == len(outcome.recording.chunks)
    assert rates.chunk_bytes_raw > rates.chunk_bytes_compressed
    assert rates.total_bytes == rates.chunk_bytes_raw + rates.input_bytes


def test_per_kiloinstruction_rates_consistent(outcome):
    rates = log_rates(outcome)
    expected = 1000 * rates.chunk_bytes_raw / rates.instructions
    assert rates.chunk_bytes_per_kiloinstruction == pytest.approx(expected)
    assert rates.input_bytes_per_kiloinstruction > 0  # iobound is read-heavy


def test_mbytes_per_second_positive(outcome):
    rates = log_rates(outcome)
    assert rates.mbytes_per_second() > 0
    # doubling frequency doubles bandwidth
    assert rates.mbytes_per_second(core_hz=120_000_000) == pytest.approx(
        2 * rates.mbytes_per_second(core_hz=60_000_000))


def test_log_rates_requires_recording():
    program, _ = workloads.build("counter", threads=2)
    native = session.simulate(program)
    with pytest.raises(ValueError):
        log_rates(native)


def test_input_bytes_by_kind_dominated_by_syscalls(outcome):
    by_kind = input_bytes_by_kind(outcome.recording)
    assert by_kind["syscall"] > by_kind.get("exit", 0)


def test_as_dict(outcome):
    row = log_rates(outcome).as_dict()
    assert row["name"] == "iobound"
    assert row["chunk_entries"] > 0
