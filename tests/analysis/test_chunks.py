from repro.analysis.chunks import (
    bucket_index,
    chunk_size_stats,
    iter_schedule,
    per_thread_chunks,
    rsw_stats,
    size_cdf,
    termination_breakdown,
    timestamp_bounds,
)
from repro.mrr.chunk import ChunkEntry, Reason


def chunk(icount, reason=Reason.RAW, rsw=0, rthread=1, ts=None):
    chunk._ts = getattr(chunk, "_ts", 0) + 1
    return ChunkEntry(rthread, ts if ts is not None else chunk._ts,
                      icount, 0, rsw, reason)


def test_size_stats_basic():
    chunks = [chunk(i) for i in (1, 2, 3, 4, 100)]
    stats = chunk_size_stats(chunks)
    assert stats.count == 5
    assert stats.total_instructions == 110
    assert stats.mean == 22.0
    assert stats.median == 3
    assert stats.maximum == 100


def test_size_stats_percentiles_monotone():
    chunks = [chunk(i) for i in range(100)]
    stats = chunk_size_stats(chunks)
    assert stats.median <= stats.p90 <= stats.p99 <= stats.maximum


def test_size_stats_empty():
    stats = chunk_size_stats([])
    assert stats.count == 0
    assert stats.mean == 0.0


def test_size_cdf_reaches_one():
    chunks = [chunk(i) for i in (5, 50, 500)]
    cdf = size_cdf(chunks, points=(1, 10, 100, 1000))
    assert cdf[0] == (1, 0.0)
    assert cdf[-1] == (1000, 1.0)
    fractions = [frac for _point, frac in cdf]
    assert fractions == sorted(fractions)


def test_size_cdf_empty():
    assert size_cdf([], points=(1, 10)) == [(1, 0.0), (10, 0.0)]


def test_termination_breakdown_sums_to_one():
    chunks = [chunk(1, Reason.RAW), chunk(1, Reason.WAW),
              chunk(1, Reason.SYSCALL), chunk(1, Reason.EXIT)]
    breakdown = termination_breakdown(chunks)
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    assert breakdown[Reason.RAW] == 0.25


def test_termination_breakdown_groups_conflicts():
    chunks = [chunk(1, Reason.RAW), chunk(1, Reason.WAW),
              chunk(1, Reason.SYSCALL)]
    breakdown = termination_breakdown(chunks, group_conflicts=True)
    assert breakdown["conflict"] == 2 / 3
    assert Reason.RAW not in breakdown


def test_termination_breakdown_empty():
    assert termination_breakdown([]) == {}


def test_rsw_stats():
    chunks = [chunk(1, rsw=0), chunk(1, rsw=2), chunk(1, rsw=2),
              chunk(1, rsw=5)]
    stats = rsw_stats(chunks)
    assert stats.chunks == 4
    assert stats.nonzero == 3
    assert stats.fraction_nonzero == 0.75
    assert stats.mean_nonzero == 3.0
    assert stats.maximum == 5
    assert stats.histogram == {0: 1, 2: 2, 5: 1}


def test_rsw_stats_empty():
    stats = rsw_stats([])
    assert stats.fraction_nonzero == 0.0
    assert stats.maximum == 0


def test_per_thread_chunks():
    chunks = [chunk(1, rthread=1), chunk(1, rthread=2), chunk(1, rthread=1)]
    assert per_thread_chunks(chunks) == {1: 2, 2: 1}


def test_iter_schedule_orders_and_numbers_chunks():
    chunks = [chunk(1, rthread=2, ts=5), chunk(1, rthread=1, ts=3),
              chunk(1, rthread=2, ts=9), chunk(1, rthread=1, ts=7)]
    schedule = iter_schedule(chunks)
    assert [s.index for s in schedule] == [0, 1, 2, 3]
    assert [s.chunk.timestamp for s in schedule] == [3, 5, 7, 9]
    # thread_index counts per-thread chunk ordinals in schedule order
    assert [(s.chunk.rthread, s.thread_index) for s in schedule] == [
        (1, 0), (2, 0), (1, 1), (2, 1)]


def test_iter_schedule_breaks_timestamp_ties_by_rthread():
    chunks = [chunk(1, rthread=3, ts=5), chunk(1, rthread=1, ts=5)]
    assert [s.chunk.rthread for s in iter_schedule(chunks)] == [1, 3]


def test_timestamp_bounds():
    chunks = [chunk(1, ts=7), chunk(1, ts=3), chunk(1, ts=11)]
    assert timestamp_bounds(chunks) == (3, 11)


def test_bucket_index_clamps_to_width():
    first, span, width = 0, 100, 10
    assert bucket_index(0, first, span, width) == 0
    assert bucket_index(50, first, span, width) == 5
    assert bucket_index(99, first, span, width) == 9
    assert bucket_index(10**6, first, span, width) == 9  # clamped
