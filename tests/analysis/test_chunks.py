from repro.analysis.chunks import (
    chunk_size_stats,
    per_thread_chunks,
    rsw_stats,
    size_cdf,
    termination_breakdown,
)
from repro.mrr.chunk import ChunkEntry, Reason


def chunk(icount, reason=Reason.RAW, rsw=0, rthread=1, ts=None):
    chunk._ts = getattr(chunk, "_ts", 0) + 1
    return ChunkEntry(rthread, ts if ts is not None else chunk._ts,
                      icount, 0, rsw, reason)


def test_size_stats_basic():
    chunks = [chunk(i) for i in (1, 2, 3, 4, 100)]
    stats = chunk_size_stats(chunks)
    assert stats.count == 5
    assert stats.total_instructions == 110
    assert stats.mean == 22.0
    assert stats.median == 3
    assert stats.maximum == 100


def test_size_stats_percentiles_monotone():
    chunks = [chunk(i) for i in range(100)]
    stats = chunk_size_stats(chunks)
    assert stats.median <= stats.p90 <= stats.p99 <= stats.maximum


def test_size_stats_empty():
    stats = chunk_size_stats([])
    assert stats.count == 0
    assert stats.mean == 0.0


def test_size_cdf_reaches_one():
    chunks = [chunk(i) for i in (5, 50, 500)]
    cdf = size_cdf(chunks, points=(1, 10, 100, 1000))
    assert cdf[0] == (1, 0.0)
    assert cdf[-1] == (1000, 1.0)
    fractions = [frac for _point, frac in cdf]
    assert fractions == sorted(fractions)


def test_size_cdf_empty():
    assert size_cdf([], points=(1, 10)) == [(1, 0.0), (10, 0.0)]


def test_termination_breakdown_sums_to_one():
    chunks = [chunk(1, Reason.RAW), chunk(1, Reason.WAW),
              chunk(1, Reason.SYSCALL), chunk(1, Reason.EXIT)]
    breakdown = termination_breakdown(chunks)
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    assert breakdown[Reason.RAW] == 0.25


def test_termination_breakdown_groups_conflicts():
    chunks = [chunk(1, Reason.RAW), chunk(1, Reason.WAW),
              chunk(1, Reason.SYSCALL)]
    breakdown = termination_breakdown(chunks, group_conflicts=True)
    assert breakdown["conflict"] == 2 / 3
    assert Reason.RAW not in breakdown


def test_termination_breakdown_empty():
    assert termination_breakdown([]) == {}


def test_rsw_stats():
    chunks = [chunk(1, rsw=0), chunk(1, rsw=2), chunk(1, rsw=2),
              chunk(1, rsw=5)]
    stats = rsw_stats(chunks)
    assert stats.chunks == 4
    assert stats.nonzero == 3
    assert stats.fraction_nonzero == 0.75
    assert stats.mean_nonzero == 3.0
    assert stats.maximum == 5
    assert stats.histogram == {0: 1, 2: 2, 5: 1}


def test_rsw_stats_empty():
    stats = rsw_stats([])
    assert stats.fraction_nonzero == 0.0
    assert stats.maximum == 0


def test_per_thread_chunks():
    chunks = [chunk(1, rthread=1), chunk(1, rthread=2), chunk(1, rthread=1)]
    assert per_thread_chunks(chunks) == {1: 2, 2: 1}
