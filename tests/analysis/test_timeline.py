import pytest

from repro import session, workloads
from repro.analysis.timeline import (
    interleaving_window,
    render_recording_timeline,
    render_timeline,
)
from repro.mrr.chunk import ChunkEntry, Reason


def chunk(rthread, ts, reason=Reason.RAW):
    return ChunkEntry(rthread, ts, 1, 0, 0, reason)


def test_empty_log():
    assert "empty" in render_timeline([])


def test_one_row_per_thread():
    chunks = [chunk(1, 1), chunk(2, 2), chunk(1, 3, Reason.EXIT),
              chunk(2, 4, Reason.EXIT)]
    text = render_timeline(chunks, width=10)
    lines = text.splitlines()
    assert any(line.strip().startswith("t1") for line in lines)
    assert any(line.strip().startswith("t2") for line in lines)
    assert "key:" in lines[-1]


def test_glyph_priorities():
    # exit should win over a conflict in the same bucket
    chunks = [chunk(1, 1, Reason.RAW), chunk(1, 1 + 0, Reason.EXIT)]
    text = render_timeline([chunk(1, 1, Reason.RAW),
                            chunk(1, 2, Reason.EXIT)], width=8)
    # tiny span: both land near the left; exit glyph must appear
    assert "x" in text


def test_row_width_fixed():
    chunks = [chunk(1, ts) for ts in range(1, 500, 7)]
    chunks.append(chunk(1, 500, Reason.EXIT))
    text = render_timeline(chunks, width=40)
    row = next(line for line in text.splitlines() if "|" in line)
    body = row.split("|")[1]
    assert len(body) == 40


def test_width_validation():
    with pytest.raises(ValueError):
        render_timeline([chunk(1, 1)], width=4)


def test_recording_timeline_smoke():
    program, inputs = workloads.build("counter", threads=2)
    outcome = session.record(program, seed=1, input_files=inputs)
    text = render_recording_timeline(outcome.recording, width=60)
    assert "chunks" in text
    assert "t1" in text and "t2" in text


def test_interleaving_window_marks_center():
    chunks = [chunk(1 + i % 2, i + 1) for i in range(20)]
    text = interleaving_window(chunks, center_index=10, radius=3)
    lines = text.splitlines()
    assert len(lines) == 7
    assert lines[3].startswith("->")
    assert "ts=11" in lines[3]


def test_interleaving_window_clamps_at_edges():
    chunks = [chunk(1, i + 1) for i in range(5)]
    text = interleaving_window(chunks, center_index=0, radius=3)
    assert len(text.splitlines()) == 4
