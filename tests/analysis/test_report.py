from repro.analysis.report import render_kv, render_table


def test_table_alignment():
    text = render_table(("name", "value"), [("a", 1), ("long-name", 22)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # all same width


def test_table_title():
    text = render_table(("x",), [(1,)], title="numbers")
    assert text.splitlines()[0] == "numbers"


def test_float_formatting():
    text = render_table(("v",), [(3.14159,), (12345.678,)])
    assert "3.14" in text
    assert "12,346" in text


def test_int_thousands_separator():
    assert "1,000,000" in render_table(("v",), [(1_000_000,)])


def test_kv_block():
    text = render_kv({"alpha": 1, "beta-longer": "x"}, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].startswith("  alpha")


def test_empty_rows():
    text = render_table(("a", "b"), [])
    assert len(text.splitlines()) == 2


def test_empty_kv():
    assert render_kv({}) == ""
