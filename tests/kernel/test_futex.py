from repro.kernel.futex import FutexTable


def test_wake_fifo_order():
    table = FutexTable()
    table.add_waiter(0x100, 1)
    table.add_waiter(0x100, 2)
    table.add_waiter(0x100, 3)
    assert table.wake(0x100, 2) == [1, 2]
    assert table.wake(0x100, 2) == [3]
    assert table.wake(0x100, 2) == []


def test_addresses_independent():
    table = FutexTable()
    table.add_waiter(0x100, 1)
    table.add_waiter(0x200, 2)
    assert table.wake(0x100, 8) == [1]
    assert table.wake(0x200, 8) == [2]


def test_waiter_count():
    table = FutexTable()
    assert table.waiter_count() == 0
    table.add_waiter(0x100, 1)
    table.add_waiter(0x200, 2)
    assert table.waiter_count() == 2


def test_remove_from_all_queues():
    table = FutexTable()
    table.add_waiter(0x100, 1)
    table.add_waiter(0x100, 2)
    table.remove(1)
    assert table.wake(0x100, 8) == [2]
    table.remove(99)  # absent tid is fine


def test_wake_empty_address():
    assert FutexTable().wake(0x500, 4) == []
