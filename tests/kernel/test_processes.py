"""Multi-process kernel behaviour (the substrate of replay spheres)."""

import pytest

from repro.config import MachineConfig
from repro.errors import KernelError
from repro.isa.builder import KernelBuilder
from repro.kernel.kernel import Kernel
from repro.machine.interleave import make_interleaver
from repro.machine.machine import Machine


def counting_program(data_base: int, iters: int, exit_code: int):
    b = KernelBuilder(data_base=data_base)
    b.word("acc", 0)
    b.label("main")
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[acc]")
        b.ins("add", "r7", "r7", 1)
        b.ins("store", "[acc]", "r7")
    b.exit(exit_code)
    return b.build(f"proc@{data_base:#x}")


def make_kernel(primary):
    machine = Machine(MachineConfig(num_cores=2, memory_bytes=1 << 20))
    machine.load_program(primary)
    return machine, Kernel(machine)


def test_two_processes_run_to_completion():
    p1 = counting_program(0x1000, 50, 11)
    p2 = counting_program(0x80000, 80, 22)
    machine, kernel = make_kernel(p1)
    machine.memory.load_blob(p2.data_base, p2.data)
    kernel.add_process(p1, stack_top=0x40000 - 16)
    kernel.add_process(p2, stack_top=0xC0000 - 16)
    kernel.run(make_interleaver("random", 1))
    assert kernel.tasks[1].exit_code == 11
    assert kernel.tasks[2].exit_code == 22
    assert machine.memory.read_word(p1.symbol("acc")) == 50
    assert machine.memory.read_word(p2.symbol("acc")) == 80


def test_processes_get_distinct_pids():
    p1 = counting_program(0x1000, 5, 0)
    p2 = counting_program(0x80000, 5, 0)
    machine, kernel = make_kernel(p1)
    machine.memory.load_blob(p2.data_base, p2.data)
    t1 = kernel.add_process(p1, stack_top=0x40000 - 16)
    t2 = kernel.add_process(p2, stack_top=0xC0000 - 16)
    assert t1.pid != t2.pid


def test_children_inherit_process_identity():
    b = KernelBuilder(data_base=0x1000)
    b.word("done", 0)
    b.space("stack", 2048)
    b.label("main")
    b.ins("mov", "r9", "stack")
    b.ins("add", "r9", "r9", 2032)
    b.spawn("child", "r9", 0)
    wait = b.label("wait")
    b.ins("pause")
    b.ins("load", "r7", "[done]")
    b.ins("test", "r7", "r7")
    b.ins("je", wait)
    b.exit(0)
    b.label("child")
    b.ins("store", "[done]", 1)
    b.exit(0)
    program = b.build("spawned")
    machine, kernel = make_kernel(program)
    parent = kernel.add_process(program, stack_top=0x40000 - 16)
    kernel.run(make_interleaver("random", 3))
    child = kernel.tasks[2]
    assert child.pid == parent.pid
    assert child.recorded == parent.recorded
    assert child.program is parent.program


def test_recorded_without_rsm_rejected():
    program = counting_program(0x1000, 5, 0)
    _machine, kernel = make_kernel(program)
    with pytest.raises(KernelError):
        kernel.add_process(program, stack_top=0x40000 - 16, recorded=True)


def test_recorded_tids_tracks_sphere():
    program = counting_program(0x1000, 5, 0)
    _machine, kernel = make_kernel(program)
    kernel.add_process(program, stack_top=0x40000 - 16)
    assert kernel.recorded_tids() == []
