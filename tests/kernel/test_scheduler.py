from repro.kernel.scheduler import Scheduler


def test_run_queue_fifo():
    sched = Scheduler()
    sched.enqueue(1)
    sched.enqueue(2)
    assert sched.pop_next() == 1
    assert sched.pop_next() == 2
    assert sched.pop_next() is None


def test_len_counts_queue():
    sched = Scheduler()
    sched.enqueue(1)
    assert len(sched) == 1


def test_sleepers_wake_in_deadline_order():
    sched = Scheduler()
    sched.add_sleeper(30, 3)
    sched.add_sleeper(10, 1)
    sched.add_sleeper(20, 2)
    assert sched.due_sleepers(5) == []
    assert sched.due_sleepers(20) == [1, 2]
    assert sched.due_sleepers(100) == [3]
    assert sched.sleeping == 0


def test_next_wake():
    sched = Scheduler()
    assert sched.next_wake is None
    sched.add_sleeper(42, 1)
    assert sched.next_wake == 42
