"""The builder's syscall constants must match the kernel's table."""

from repro.isa import builder
from repro.kernel import syscalls


def test_builder_constants_match_kernel_numbers():
    pairs = {
        builder.SYS_EXIT: "exit",
        builder.SYS_WRITE: "write",
        builder.SYS_READ: "read",
        builder.SYS_SPAWN: "spawn",
        builder.SYS_GETTID: "gettid",
        builder.SYS_YIELD: "yield",
        builder.SYS_FUTEX_WAIT: "futex_wait",
        builder.SYS_FUTEX_WAKE: "futex_wake",
        builder.SYS_TIME: "time",
        builder.SYS_KILL: "kill",
        builder.SYS_SIGACTION: "sigaction",
        builder.SYS_SIGRETURN: "sigreturn",
        builder.SYS_RANDOM: "random",
        builder.SYS_NANOSLEEP: "nanosleep",
    }
    for number, name in pairs.items():
        assert syscalls.SYSCALL_NAMES[number] == name


def test_builder_open_close_constants():
    # builder names these 10/11 via SYS_OPEN/SYS_CLOSE
    assert syscalls.SYS_OPEN == builder.SYS_OPEN == 10
    assert syscalls.SYS_CLOSE == builder.SYS_CLOSE == 11


def test_every_kernel_syscall_has_unique_number():
    numbers = list(syscalls.SYSCALL_NAMES)
    assert len(numbers) == len(set(numbers))
    assert syscalls.SYSCALL_NUMBERS == {
        name: number for number, name in syscalls.SYSCALL_NAMES.items()}
