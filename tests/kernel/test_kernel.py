"""Full OS-model behaviour through the public session API (recording off)."""

import pytest

from repro import session
from repro.errors import KernelError
from repro.isa.builder import (
    KernelBuilder,
    SYS_CLOSE,
    SYS_FUTEX_WAIT,
    SYS_FUTEX_WAKE,
    SYS_GETTID,
    SYS_KILL,
    SYS_NANOSLEEP,
    SYS_OPEN,
    SYS_RANDOM,
    SYS_READ,
    SYS_SIGACTION,
    SYS_SIGRETURN,
    SYS_TIME,
    SYS_YIELD,
)
from repro.kernel.syscalls import EAGAIN, ENOSYS, ESRCH


def run(builder: KernelBuilder, **kwargs):
    return session.simulate(builder.build("ktest"), **kwargs)


def word(outcome, program, symbol):
    # reconstruct data values via the memory digest? No — use outputs instead.
    raise NotImplementedError


def test_exit_code_captured():
    b = KernelBuilder()
    b.label("main")
    b.exit(17)
    outcome = run(b)
    assert outcome.exit_codes == {1: 17}


def test_write_to_stdout():
    b = KernelBuilder()
    b.asciz("msg", "hello")
    b.label("main")
    b.write(1, "msg", 5)
    b.exit(0)
    outcome = run(b)
    assert outcome.outputs["stdout"] == b"hello"


def test_write_bad_fd_returns_error():
    b = KernelBuilder()
    b.word("out", 0)
    b.asciz("msg", "x")
    b.label("main")
    b.syscall(2, 77, "msg", 1)  # SYS_WRITE to a bad fd
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    outcome = run(b)
    assert outcome.outputs["stdout"] == (0xFFFFFFFE).to_bytes(4, "little")


def test_read_file_and_eof():
    b = KernelBuilder()
    b.asciz("path", "data")
    b.space("buf", 16)
    b.word("lens", 0, 0)
    b.label("main")
    b.syscall(SYS_OPEN, "path")
    b.ins("mov", "r10", "rax")
    b.syscall(SYS_READ, "r10", "buf", 16)
    b.ins("store", "[lens]", "rax")
    b.syscall(SYS_READ, "r10", "buf", 16)
    b.ins("store", "[lens + 4]", "rax")
    b.write(1, "lens", 8)
    b.write(1, "buf", 6)
    b.exit(0)
    outcome = run(b, input_files={"data": b"abcdef"})
    out = outcome.outputs["stdout"]
    assert int.from_bytes(out[0:4], "little") == 6
    assert int.from_bytes(out[4:8], "little") == 0  # EOF
    assert out[8:14] == b"abcdef"


def test_close_then_read_fails():
    b = KernelBuilder()
    b.asciz("path", "data")
    b.space("buf", 8)
    b.word("out", 0)
    b.label("main")
    b.syscall(SYS_OPEN, "path")
    b.ins("mov", "r10", "rax")
    b.syscall(SYS_CLOSE, "r10")
    b.syscall(SYS_READ, "r10", "buf", 8)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    outcome = run(b, input_files={"data": b"abc"})
    assert int.from_bytes(outcome.outputs["stdout"], "little") == 0xFFFFFFFE


def test_spawn_runs_child_and_returns_tid():
    b = KernelBuilder()
    b.space("stack", 2048)
    b.word("out", 0, 0)
    b.word("childdone", 0)
    b.label("main")
    b.ins("mov", "r9", "stack")
    b.ins("add", "r9", "r9", 2032)
    b.spawn("child", "r9", 123)
    b.ins("store", "[out]", "rax")      # child tid
    wait = b.label("wait")
    b.ins("pause")
    b.ins("load", "r7", "[childdone]")
    b.ins("test", "r7", "r7")
    b.ins("je", wait)
    b.write(1, "out", 8)
    b.exit(0)
    b.label("child")
    b.ins("store", "[out + 4]", "rdi")  # child arg
    b.ins("store", "[childdone]", 1)
    b.exit(0)
    outcome = run(b)
    out = outcome.outputs["stdout"]
    assert int.from_bytes(out[0:4], "little") == 2   # child tid
    assert int.from_bytes(out[4:8], "little") == 123  # arg delivered
    assert outcome.exit_codes == {1: 0, 2: 0}


def test_gettid():
    b = KernelBuilder()
    b.word("out", 0)
    b.label("main")
    b.syscall(SYS_GETTID)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    outcome = run(b)
    assert int.from_bytes(outcome.outputs["stdout"], "little") == 1


def test_futex_wait_mismatch_returns_eagain():
    b = KernelBuilder()
    b.word("f", 5)
    b.word("out", 0)
    b.label("main")
    b.syscall(SYS_FUTEX_WAIT, "f", 4)  # value is 5, expected 4
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    outcome = run(b)
    assert int.from_bytes(outcome.outputs["stdout"], "little") == EAGAIN


def test_futex_wait_wake_round_trip():
    b = KernelBuilder()
    b.word("f", 0)
    b.space("stack", 2048)
    b.word("out", 0)
    b.label("main")
    b.ins("mov", "r9", "stack")
    b.ins("add", "r9", "r9", 2032)
    b.spawn("waker", "r9", 0)
    b.syscall(SYS_FUTEX_WAIT, "f", 0)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    b.label("waker")
    b.ins("store", "[f]", 1)
    b.syscall(SYS_FUTEX_WAKE, "f", 4)
    b.exit(0)
    outcome = run(b)
    retval = int.from_bytes(outcome.outputs["stdout"], "little")
    # 0 if we blocked and got woken, EAGAIN if the waker's store won the race
    assert retval in (0, EAGAIN)
    assert outcome.exit_codes == {1: 0, 2: 0}


def test_nanosleep_blocks_and_resumes():
    b = KernelBuilder()
    b.label("main")
    b.syscall(SYS_NANOSLEEP, 500)
    b.exit(0)
    outcome = run(b)
    assert outcome.exit_codes == {1: 0}
    assert outcome.kernel_stats["idle_ticks"] > 0


def test_time_monotone():
    b = KernelBuilder()
    b.word("out", 0, 0)
    b.label("main")
    b.syscall(SYS_TIME)
    b.ins("store", "[out]", "rax")
    b.syscall(SYS_TIME)
    b.ins("store", "[out + 4]", "rax")
    b.write(1, "out", 8)
    b.exit(0)
    out = run(b).outputs["stdout"]
    first = int.from_bytes(out[0:4], "little")
    second = int.from_bytes(out[4:8], "little")
    assert second > first


def test_random_deterministic_per_kernel_seed():
    b = KernelBuilder()
    b.word("out", 0)
    b.label("main")
    b.syscall(SYS_RANDOM)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    program = b.build("rng")
    a = session.simulate(program, kernel_seed=9).outputs["stdout"]
    b2 = session.simulate(program, kernel_seed=9).outputs["stdout"]
    c = session.simulate(program, kernel_seed=10).outputs["stdout"]
    assert a == b2
    assert a != c


def test_nondet_instructions_supply_values():
    b = KernelBuilder()
    b.word("out", 0, 0, 0)
    b.label("main")
    b.ins("rdtsc", "r5")
    b.ins("store", "[out]", "r5")
    b.ins("rdrand", "r6")
    b.ins("store", "[out + 4]", "r6")
    b.ins("cpuid", "r7")
    b.ins("store", "[out + 8]", "r7")
    b.write(1, "out", 12)
    b.exit(0)
    outcome = run(b)
    out = outcome.outputs["stdout"]
    assert outcome.kernel_stats["nondet_traps"] == 3
    cpuid = int.from_bytes(out[8:12], "little")
    assert cpuid == 0x0051C0DE ^ 4


def test_signal_handler_runs_and_context_restored():
    b = KernelBuilder()
    b.word("out", 0, 0)
    b.label("main")
    b.syscall(SYS_SIGACTION, 10, "handler")
    b.syscall(SYS_GETTID)
    b.ins("mov", "r11", "rax")
    b.ins("mov", "r5", 777)           # must survive the handler
    b.syscall(SYS_KILL, "r11", 10)    # delivered at this kernel exit
    b.ins("store", "[out + 4]", "r5")
    b.write(1, "out", 8)
    b.exit(0)
    b.label("handler")
    b.ins("store", "[out]", 42)
    b.ins("mov", "r5", 0)             # clobber; sigreturn must undo
    b.syscall(SYS_SIGRETURN)
    outcome = run(b)
    out = outcome.outputs["stdout"]
    assert int.from_bytes(out[0:4], "little") == 42
    assert int.from_bytes(out[4:8], "little") == 777
    assert outcome.kernel_stats["signals_delivered"] == 1


def test_signal_without_handler_ignored():
    b = KernelBuilder()
    b.label("main")
    b.syscall(SYS_GETTID)
    b.ins("mov", "r11", "rax")
    b.syscall(SYS_KILL, "r11", 10)
    b.exit(0)
    outcome = run(b)
    assert outcome.kernel_stats["signals_delivered"] == 0
    assert outcome.exit_codes == {1: 0}


def test_kill_unknown_tid_returns_esrch():
    b = KernelBuilder()
    b.word("out", 0)
    b.label("main")
    b.syscall(SYS_KILL, 42, 10)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    assert int.from_bytes(run(b).outputs["stdout"], "little") == ESRCH


def test_unknown_syscall_returns_enosys():
    b = KernelBuilder()
    b.word("out", 0)
    b.label("main")
    b.syscall(99)
    b.ins("store", "[out]", "rax")
    b.write(1, "out", 4)
    b.exit(0)
    assert int.from_bytes(run(b).outputs["stdout"], "little") == ENOSYS


def test_deadlock_detected():
    b = KernelBuilder()
    b.word("f", 0)
    b.label("main")
    b.syscall(SYS_FUTEX_WAIT, "f", 0)  # nobody will ever wake us
    b.exit(0)
    with pytest.raises(KernelError):
        run(b)


def test_unit_budget_enforced():
    b = KernelBuilder()
    b.label("main")
    loop = b.label("loop")
    b.ins("jmp", loop)
    with pytest.raises(KernelError):
        run(b, max_units=1000)


def test_yield_reschedules(small_config):
    b = KernelBuilder()
    b.label("main")
    with b.for_range("r6", 0, 5):
        b.ins("push", "r6")
        b.syscall(SYS_YIELD)
        b.ins("pop", "r6")
    b.exit(0)
    outcome = run(b, config=small_config)
    assert outcome.kernel_stats["preemptions"] >= 5


def test_preemption_under_small_quantum(small_config):
    b = KernelBuilder()
    b.label("main")
    with b.for_range("r6", 0, 3000):
        b.ins("nop")
    b.exit(0)
    outcome = run(b, config=small_config)  # quantum 500
    assert outcome.kernel_stats["preemptions"] >= 5
