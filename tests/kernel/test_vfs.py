from repro.kernel.vfs import STDOUT_FD, VFS


def test_stdout_preopened():
    vfs = VFS()
    assert vfs.write(STDOUT_FD, b"hi") == 2
    assert vfs.contents("stdout") == b"hi"


def test_written_excludes_input_data():
    vfs = VFS()
    vfs.add_file("in", b"abc")
    fd = vfs.open("in")
    vfs.write(fd, b"xyz")
    assert vfs.contents("in") == b"abcxyz"
    assert vfs.written() == {"in": b"xyz"}


def test_read_advances_cursor():
    vfs = VFS()
    vfs.add_file("f", b"abcdef")
    fd = vfs.open("f")
    assert vfs.read(fd, 4) == b"abcd"
    assert vfs.read(fd, 4) == b"ef"
    assert vfs.read(fd, 4) == b""


def test_independent_cursors_per_fd():
    vfs = VFS()
    vfs.add_file("f", b"abcdef")
    fd1 = vfs.open("f")
    fd2 = vfs.open("f")
    assert vfs.read(fd1, 3) == b"abc"
    assert vfs.read(fd2, 3) == b"abc"


def test_bad_fd_returns_none():
    vfs = VFS()
    assert vfs.read(99, 4) is None
    assert vfs.write(99, b"x") is None


def test_close_invalidates_fd():
    vfs = VFS()
    fd = vfs.open("f")
    assert vfs.close(fd) == 0
    assert vfs.read(fd, 1) is None
    assert vfs.close(fd) == 0xFFFFFFFF


def test_open_creates_missing_file():
    vfs = VFS()
    fd = vfs.open("new")
    assert vfs.read(fd, 10) == b""
    assert "new" in vfs.file_names()


def test_add_file_replaces():
    vfs = VFS()
    vfs.add_file("f", b"one")
    vfs.add_file("f", b"two")
    assert vfs.contents("f") == b"two"


def test_fd_name():
    vfs = VFS()
    fd = vfs.open("data")
    assert vfs.fd_name(fd) == "data"
