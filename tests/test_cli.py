from repro.cli import main


def test_list_shows_workloads(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "counter" in out
    assert "fft" in out
    assert "splash" in out and "micro" in out


def test_record_and_info_and_replay(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "counter", "--threads", "2", "--seed", "3",
                 "-o", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "chunks" in out and "saved to" in out

    assert main(["info", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "chunk terminations" in out

    assert main(["replay", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "replay verified" in out


def test_record_without_output_dir(capsys):
    assert main(["record", "counter", "--threads", "2"]) == 0
    assert "saved to" not in capsys.readouterr().out


def test_record_directory_coherence_roundtrips(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "pingpong", "--threads", "4", "--seed", "3",
                 "--coherence", "directory", "--cores", "8",
                 "-o", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "notifies saved vs broadcast" in out
    assert "sharer set sizes" in out
    assert main(["replay", rec_dir]) == 0
    assert "replay verified" in capsys.readouterr().out


def test_record_snoop_fabric_hides_directory_rows(capsys):
    assert main(["record", "counter", "--threads", "2"]) == 0
    assert "notifies" not in capsys.readouterr().out


def test_stats_accepts_coherence_override(capsys):
    assert main(["stats", "pingpong", "--threads", "2",
                 "--coherence", "directory", "--no-replay"]) == 0
    out = capsys.readouterr().out
    assert "machine.bus.notifies_saved" in out


def test_roundtrip_command(capsys):
    assert main(["roundtrip", "counter", "dekker", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert out.count(" ok") == 2


def test_overhead_command(capsys):
    assert main(["overhead", "counter", "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "hw ovh %" in out
    assert "counter" in out


def test_unknown_workload_is_clean_error(capsys):
    assert main(["record", "nosuch"]) == 1
    assert "error:" in capsys.readouterr().err


def test_replay_missing_directory_is_clean_error(tmp_path, capsys):
    assert main(["replay", str(tmp_path / "missing")]) == 1
    assert "error:" in capsys.readouterr().err


def test_usage_error_exits_2(capsys):
    assert main(["record"]) == 2  # missing workload operand
    assert main(["nosuchcommand"]) == 2
    capsys.readouterr()


def test_version_flag(capsys):
    from repro import __version__

    assert main(["--version"]) == 0
    assert __version__ in capsys.readouterr().out


def test_replay_detects_tampered_log(tmp_path, capsys):
    rec_dir = tmp_path / "rec"
    assert main(["record", "counter", "--threads", "2",
                 "-o", str(rec_dir)]) == 0
    capsys.readouterr()
    # truncate the chunk log: decode fails -> clean error exit
    chunks = rec_dir / "chunks.bin"
    chunks.write_bytes(chunks.read_bytes()[:-16])
    assert main(["replay", str(rec_dir)]) == 1


def test_timeline_command(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "pingpong", "--threads", "2",
                 "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["timeline", rec_dir, "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "t1" in out and "t2" in out and "key:" in out


def test_debug_watch_command(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "counter", "--threads", "2",
                 "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["debug", rec_dir, "--watch", "counter"]) == 0
    out = capsys.readouterr().out
    assert "changed" in out
    assert "thread states" in out


def test_debug_until_chunk_command(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "counter", "--threads", "2",
                 "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["debug", rec_dir, "--until-chunk", "25"]) == 0
    out = capsys.readouterr().out
    assert "stopped at chunk 25" in out


def test_debug_full_run_command(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "dekker", "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["debug", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "replayed all" in out


def test_fuzz_command(capsys):
    assert main(["fuzz", "--count", "3", "--base-seed", "7"]) == 0
    assert "3/3 seeds verified" in capsys.readouterr().out


def test_fuzz_matrix_command(capsys):
    assert main(["fuzz", "--count", "2", "--base-seed", "1",
                 "--matrix"]) == 0
    assert "matrix differential" in capsys.readouterr().out


def test_fuzz_parallel_command(capsys):
    assert main(["fuzz", "--count", "4", "--jobs", "2"]) == 0
    assert "4/4 seeds verified" in capsys.readouterr().out


def test_fuzz_injected_failure_exits_nonzero_with_repro(tmp_path, capsys):
    artifacts = tmp_path / "triage"
    assert main(["fuzz", "--count", "1", "--base-seed", "42", "--matrix",
                 "--shrink", "--inject", "decode-cache",
                 "--artifacts", str(artifacts)]) == 1
    out = capsys.readouterr().out
    assert "0/1 seeds verified" in out
    assert "[divergence] variant decode-off" in out
    assert ("repro: quickrec fuzz --count 1 --base-seed 42 --jobs 1 "
            "--matrix --shrink --inject decode-cache") in out
    assert "shrunk:" in out
    [artifact] = list(artifacts.glob("seed-*.json"))

    capsys.readouterr()
    assert main(["fuzz", "--from-artifact", str(artifact)]) == 1
    assert "still fails" in capsys.readouterr().out


def test_fuzz_inject_without_matrix_is_usage_error(capsys):
    assert main(["fuzz", "--count", "1", "--inject", "decode-cache"]) == 2


def test_record_trace_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    from repro.telemetry import validate_trace

    trace_path = tmp_path / "t.json"
    assert main(["record", "counter", "--threads", "2",
                 "--trace", str(trace_path)]) == 0
    assert "trace written to" in capsys.readouterr().out
    document = json.loads(trace_path.read_text())
    assert validate_trace(document) == []
    cats = {e["cat"] for e in document["traceEvents"] if e.get("cat")}
    assert {"machine", "mrr", "capo", "kernel"} <= cats


def test_stats_command_renders_metrics_tables(capsys):
    assert main(["stats", "counter", "--threads", "2"]) == 0
    out = capsys.readouterr().out
    assert "counters and gauges" in out
    assert "distributions" in out
    assert "mrr.chunks_total" in out
    assert "replay.chunks" in out


def test_stats_no_replay_skips_replay_metrics(capsys):
    assert main(["stats", "counter", "--threads", "2", "--no-replay"]) == 0
    out = capsys.readouterr().out
    assert "mrr.chunks_total" in out
    assert "replay.chunks" not in out


def test_stats_json_outputs_parseable_snapshot(capsys):
    import json

    assert main(["stats", "counter", "--threads", "2", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert "mrr.chunks_total" in snapshot
    assert "replay.chunks" in snapshot


def test_info_json_outputs_summary_and_terminations(tmp_path, capsys):
    import json

    rec_dir = str(tmp_path / "rec")
    assert main(["record", "counter", "--threads", "2", "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["info", rec_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["program"] == "counter"
    assert payload["summary"]["chunks"] > 0
    assert abs(sum(payload["terminations"].values()) - 1.0) < 1e-9


def test_analyze_reports_seeded_race_with_artifacts(tmp_path, capsys):
    import json

    from repro.telemetry import validate_trace

    rec_dir = str(tmp_path / "rec")
    report_path = tmp_path / "report.json"
    trace_path = tmp_path / "trace.json"
    assert main(["record", "racer", "--seed", "11", "-o", rec_dir,
                 "--checkpoint-every", "8"]) == 0
    capsys.readouterr()
    assert main(["analyze", rec_dir, "--json", str(report_path),
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "race forensics" in out
    assert "race #1: racy" in out
    assert f"quickrec inspect {rec_dir} --at" in out
    assert "happens-before graph" in out
    assert "timestamps" in out  # the shared timeline rendering

    payload = json.loads(report_path.read_text())
    assert payload["format"] == "quickrec-race-report"
    assert payload["races"]
    assert {payload["races"][0]["first"]["rthread"],
            payload["races"][0]["second"]["rthread"]} == {1, 2}
    document = json.loads(trace_path.read_text())
    assert validate_trace(document) == []

    # The inspect command the report prints actually runs.
    at = payload["races"][0]["first"]["chunk_index"]
    assert main(["inspect", rec_dir, "--at", str(at)]) == 0
    assert "thread states" in capsys.readouterr().out


def test_analyze_window_flags(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "racer", "--seed", "11", "-o", rec_dir,
                 "--checkpoint-every", "8"]) == 0
    capsys.readouterr()
    assert main(["analyze", rec_dir, "--at", "40", "--until", "120"]) == 0
    out = capsys.readouterr().out
    assert "[40, 120)" in out


def test_analyze_race_free_recording(tmp_path, capsys):
    rec_dir = str(tmp_path / "rec")
    assert main(["record", "locks", "--threads", "2", "-o", rec_dir]) == 0
    capsys.readouterr()
    assert main(["analyze", rec_dir]) == 0
    out = capsys.readouterr().out
    assert "no data races detected" in out


def test_record_flight_window_captures_crash(tmp_path, capsys):
    out_dir = tmp_path / "rec"
    assert main(["record", "crasher", "--seed", "3", "-o", str(out_dir),
                 "--flight-window", "2", "--flight-epoch", "16"]) == 0
    out = capsys.readouterr().out
    assert "flight window" in out
    assert "crash capture" in out
    assert "replays to fault" in out
    # the bundle landed beside the recording and replays clean
    bundle = tmp_path / "rec-crash"
    assert (bundle / "crash.json").exists()
    assert main(["replay", str(bundle / "recording")]) == 0
    assert "replay verified" in capsys.readouterr().out


def test_record_flight_capture_explicit_trigger(tmp_path, capsys):
    out_dir = tmp_path / "rec"
    assert main(["record", "counter", "--threads", "2", "-o", str(out_dir),
                 "--flight-window", "2", "--flight-capture"]) == 0
    out = capsys.readouterr().out
    assert "explicit capture" in out
    assert (tmp_path / "rec-crash" / "crash.json").exists()


def test_record_fault_without_flight_hints(capsys):
    assert main(["record", "crasher", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "rerun with --flight-window" in out


def test_stats_renders_capture_rows(capsys):
    assert main(["stats", "racer", "--flight-window", "2",
                 "--flight-epoch", "16"]) == 0
    out = capsys.readouterr().out
    assert "capture.evictions" in out
    assert "capture.chunks_retained" in out


def test_fuzz_flight_requires_artifacts(capsys):
    assert main(["fuzz", "--count", "1", "--flight", "2"]) == 2
    assert "--flight needs --artifacts" in capsys.readouterr().err
