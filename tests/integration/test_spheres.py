"""Replay spheres under multiprogramming: record one process while
unrecorded background processes share the machine (the Capo scenario)."""

import pytest

from repro import session, workloads
from repro.errors import ConfigError
from repro.isa.builder import KernelBuilder


def background_program(data_base: int, iters: int = 400,
                       noisy_stdout: bool = False):
    """An unrecorded busy process at its own data region."""
    b = KernelBuilder(data_base=data_base)
    b.word("bg_acc", 0)
    b.asciz("bg_msg", "bg!")
    b.label("main")
    with b.for_range("r6", 0, iters):
        b.ins("load", "r7", "[bg_acc]")
        b.ins("add", "r7", "r7", "r6")
        b.ins("store", "[bg_acc]", "r7")
        if noisy_stdout:
            with b.if_equal("r6", iters // 2):
                b.ins("push", "r6")
                b.write(1, "bg_msg", 3)
                b.ins("pop", "r6")
    b.exit(0)
    return b.build(f"background@{data_base:#x}")


def sphere_program():
    program, _inputs = workloads.build("counter", threads=2)
    return program


def test_record_and_replay_with_background():
    outcome, replayed, report = session.record_and_replay(
        sphere_program(), seed=5,
        background_programs=[background_program(0x100000)])
    assert report.ok, report.summary()
    assert outcome.sphere_region is not None
    assert replayed.region_digest == outcome.sphere_digest


def test_two_background_processes():
    backgrounds = [background_program(0x100000),
                   background_program(0x200000, noisy_stdout=True)]
    outcome, replayed, report = session.record_and_replay(
        sphere_program(), seed=9, background_programs=backgrounds)
    assert report.ok, report.summary()


def test_sphere_outputs_exclude_background_writes():
    outcome = session.record(
        sphere_program(), seed=3,
        background_programs=[background_program(0x100000,
                                                noisy_stdout=True)])
    assert b"bg!" in outcome.outputs["stdout"]
    assert b"bg!" not in outcome.sphere_outputs.get("stdout", b"")
    replayed = session.replay_recording(outcome.recording)
    assert replayed.outputs == outcome.sphere_outputs


def test_background_exit_codes_excluded_from_sphere():
    outcome = session.record(
        sphere_program(), seed=3,
        background_programs=[background_program(0x100000)])
    assert set(outcome.sphere_exit_codes) < set(outcome.exit_codes)
    replayed = session.replay_recording(outcome.recording)
    assert replayed.exit_codes == outcome.sphere_exit_codes


def test_background_load_perturbs_schedule_but_not_replay():
    program = sphere_program()
    alone = session.record(program, seed=7)
    with_bg = session.record(
        program, seed=7,
        background_programs=[background_program(0x100000, iters=2000)])
    # the sphere's own digest covers only its region; it may or may not
    # coincide with the standalone run, but the recordings certainly
    # differ in shape (preemptions caused by the competing process)
    assert with_bg.kernel_stats["preemptions"] >= alone.kernel_stats["preemptions"]
    replayed = session.replay_recording(with_bg.recording)
    assert session.verify(with_bg, replayed).ok


def test_modes_identical_with_background():
    program = sphere_program()
    backgrounds = [background_program(0x100000)]
    runs = {mode: session.simulate(program, seed=2, mode=mode,
                                   background_programs=backgrounds)
            for mode in (session.MODE_OFF, session.MODE_HW,
                         session.MODE_FULL)}
    digests = {run.final_memory_digest for run in runs.values()}
    assert len(digests) == 1
    assert len({run.units for run in runs.values()}) == 1


def test_no_chunks_or_events_from_background_threads():
    outcome = session.record(
        sphere_program(), seed=4,
        background_programs=[background_program(0x100000)])
    recorded = set(outcome.sphere_exit_codes)
    assert {chunk.rthread for chunk in outcome.recording.chunks} <= recorded
    assert {event.rthread for event in outcome.recording.events} <= recorded


def test_overlapping_regions_rejected():
    with pytest.raises(ConfigError):
        session.record(sphere_program(), seed=1,
                       background_programs=[background_program(0x1000)])


def test_region_past_memory_rejected():
    with pytest.raises(ConfigError):
        session.record(
            sphere_program(), seed=1,
            background_programs=[background_program((1 << 22) - 64)])


def test_saved_multiprocess_recording_round_trips(tmp_path):
    from repro.capo.recording import Recording

    outcome = session.record(
        sphere_program(), seed=8,
        background_programs=[background_program(0x100000)])
    outcome.recording.save(tmp_path / "rec")
    loaded = Recording.load(tmp_path / "rec")
    replayed = session.replay_recording(loaded)
    assert session.verify(outcome, replayed).ok
