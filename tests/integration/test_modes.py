"""Recording must never change what executes — the invariant the overhead
methodology stands on."""

import pytest

from repro import session, workloads


@pytest.mark.parametrize("name", ["counter", "water", "iobound", "sigping"])
def test_all_modes_execute_identically(name):
    program, inputs = workloads.build(name)
    runs = {
        mode: session.simulate(program, seed=4, mode=mode, input_files=inputs)
        for mode in (session.MODE_OFF, session.MODE_HW, session.MODE_FULL)
    }
    off, hw, full = (runs[m] for m in (session.MODE_OFF, session.MODE_HW,
                                       session.MODE_FULL))
    assert off.final_memory_digest == hw.final_memory_digest
    assert off.final_memory_digest == full.final_memory_digest
    assert off.outputs == hw.outputs == full.outputs
    assert off.units == hw.units == full.units
    assert off.exit_codes == hw.exit_codes == full.exit_codes
    assert off.kernel_stats == hw.kernel_stats == full.kernel_stats


def test_cycle_ordering_off_le_hw_le_full():
    program, inputs = workloads.build("lu")
    off = session.simulate(program, seed=2, input_files=inputs)
    hw = session.simulate(program, seed=2, mode=session.MODE_HW,
                          input_files=inputs)
    full = session.simulate(program, seed=2, mode=session.MODE_FULL,
                            input_files=inputs)
    assert off.total_cycles <= hw.total_cycles <= full.total_cycles


def test_different_seeds_change_interleaving_dependent_state():
    program, inputs = workloads.build("prodcons")
    a = session.simulate(program, seed=1, input_files=inputs)
    b = session.simulate(program, seed=2, input_files=inputs)
    assert a.final_memory_digest != b.final_memory_digest


def test_recording_unaffected_by_repeated_runs():
    program, inputs = workloads.build("dekker")
    first = session.record(program, seed=8, input_files=inputs)
    second = session.record(program, seed=8, input_files=inputs)
    assert first.recording.chunks == second.recording.chunks
    assert first.recording.events == second.recording.events
