"""The central claim (V1): replay from the logs alone reproduces every
recorded run — all workloads, several seeds and interleaving policies,
several machine configurations."""

import pytest

from repro import session, workloads
from repro.config import (
    KernelConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
    TsoMode,
)


def roundtrip(name, threads=None, scale=1, seed=0, policy="random",
              config=None):
    program, inputs = workloads.build(name, threads=threads, scale=scale)
    outcome, replayed, report = session.record_and_replay(
        program, seed=seed, policy=policy, config=config, input_files=inputs)
    assert report.ok, f"{name} seed={seed} policy={policy}: {report.summary()}"
    return outcome, replayed


@pytest.mark.parametrize("name", workloads.all_names())
def test_every_workload_replays(name):
    roundtrip(name, seed=1)


@pytest.mark.parametrize("seed", [0, 2, 3, 7])
def test_racy_workloads_replay_across_seeds(seed):
    roundtrip("pingpong", seed=seed)
    roundtrip("prodcons", seed=seed)


@pytest.mark.parametrize("policy", ["random", "rr", "bursty"])
def test_policies(policy):
    roundtrip("water", seed=5, policy=policy)


def test_single_core_machine():
    config = SimConfig(machine=MachineConfig(num_cores=1))
    roundtrip("counter", seed=1, config=config)


def test_eight_core_machine():
    config = SimConfig(machine=MachineConfig(num_cores=8))
    roundtrip("radix", threads=8, seed=1, config=config)


def test_more_threads_than_cores():
    config = SimConfig(machine=MachineConfig(num_cores=2),
                       kernel=KernelConfig(quantum_instructions=300))
    roundtrip("counter", threads=6, seed=3, config=config)


def test_tiny_quantum_heavy_context_switching():
    config = SimConfig(kernel=KernelConfig(quantum_instructions=60))
    roundtrip("locks", seed=2, config=config)


def test_deep_store_buffer_long_rsw():
    config = SimConfig(machine=MachineConfig(
        store_buffer=StoreBufferConfig(entries=16, drain_period=50)))
    outcome, _ = roundtrip("pingpong", seed=4, config=config)
    assert any(chunk.rsw > 0 for chunk in outcome.recording.chunks)


def test_eager_drain_rsw_free():
    config = SimConfig(machine=MachineConfig(
        store_buffer=StoreBufferConfig(entries=2, drain_period=1,
                                       drain_burst=4)))
    outcome, _ = roundtrip("pingpong", seed=4, config=config)
    assert all(chunk.rsw == 0 for chunk in outcome.recording.chunks)


def test_drain_tso_mode():
    from repro.mrr.chunk import Reason

    config = SimConfig(machine=MachineConfig(
        store_buffer=StoreBufferConfig(entries=12, drain_period=12)),
        mrr=MRRConfig(tso_mode=TsoMode.DRAIN))
    outcome, _ = roundtrip("pingpong", seed=4, config=config)
    # DRAIN mode empties the store buffer at self-initiated cuts; only
    # snoop-cut (conflict) chunks may still carry pending stores
    for chunk in outcome.recording.chunks:
        if chunk.rsw:
            assert chunk.reason in Reason.CONFLICTS


def test_tiny_signature_many_false_conflicts():
    config = SimConfig(mrr=MRRConfig(signature_bits=32, signature_hashes=1))
    roundtrip("barnes", seed=1, config=config)


def test_small_chunk_cap():
    config = SimConfig(mrr=MRRConfig(max_chunk_instructions=64))
    outcome, _ = roundtrip("fft", seed=1, config=config)
    assert all(chunk.icount <= 64 for chunk in outcome.recording.chunks)


def test_tiny_cbuf_many_drains():
    config = SimConfig(mrr=MRRConfig(cbuf_entries=2))
    outcome, _ = roundtrip("counter", seed=1, config=config)
    assert outcome.rsm_stats["cbuf_drains"] > 10


def test_load_hash_mode_verifies():
    config = SimConfig(mrr=MRRConfig(log_load_hash=True))
    roundtrip("water", seed=6, config=config)


def test_jittered_timeslices():
    config = SimConfig(kernel=KernelConfig(quantum_instructions=400,
                                           timeslice_jitter=200))
    roundtrip("radix", seed=9, config=config)


def test_scale_two_workload():
    roundtrip("ocean", scale=2, seed=1)
