"""MESI invariants under recording, checked after every transaction.

Regression for a real bug: a DRAIN-mode victim draining *inside* another
core's bus transaction issued nested transactions and left two caches in
Modified for the same line — silently breaking conflict detection.
"""

import pytest

from repro import session, workloads
from repro.config import (
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
    TsoMode,
)
from repro.machine.bus import DirectoryBus, SnoopBus
from repro.machine.cache import EXCLUSIVE, MODIFIED


def _mesi_checked(bus_cls):
    """A fabric subclass asserting MESI ownership invariants per
    transaction — plus, on the directory, exact-sharer containment."""

    class Checked(bus_cls):
        def transaction(self, requester, line, is_write, upgrade=False):
            result = super().transaction(requester, line, is_write, upgrade)
            lines = set()
            for cache in self._caches:
                if cache is not None:
                    lines.update(cache.cached_lines())
            for check_line in lines:
                states = [cache.state(check_line) for cache in self._caches
                          if cache is not None]
                owners = [s for s in states if s in (MODIFIED, EXCLUSIVE)]
                sharers = [s for s in states if s is not None]
                assert len(owners) <= 1, \
                    f"line {check_line:#x}: multiple owners {states}"
                if owners:
                    assert len(sharers) == 1, (f"line {check_line:#x}: "
                                               f"owner coexists with sharers "
                                               f"{states}")
                if issubclass(bus_cls, DirectoryBus):
                    sharer_mask = self.sharer_mask(check_line)
                    assert sharer_mask & ~self.presence_mask(check_line) == 0
                    holders = sum(
                        1 << cid for cid, cache in enumerate(self._caches)
                        if cache is not None
                        and cache.state(check_line) is not None)
                    assert holders & ~sharer_mask == 0, \
                        f"line {check_line:#x}: sharer set misses a holder"
            return result

    return Checked


@pytest.fixture(autouse=True)
def checked_bus(monkeypatch):
    monkeypatch.setattr("repro.machine.machine.SnoopBus",
                        _mesi_checked(SnoopBus))
    monkeypatch.setattr("repro.machine.machine.DirectoryBus",
                        _mesi_checked(DirectoryBus))


@pytest.mark.parametrize("coherence", ["snoop", "directory"])
@pytest.mark.parametrize("mode", [TsoMode.RSW, TsoMode.DRAIN])
def test_mesi_invariants_hold_under_recording(mode, coherence):
    config = SimConfig(
        machine=MachineConfig(
            store_buffer=StoreBufferConfig(entries=12, drain_period=12),
            coherence=coherence),
        mrr=MRRConfig(tso_mode=mode),
    )
    program, inputs = workloads.build("water")
    outcome, _replayed, report = session.record_and_replay(
        program, seed=3, config=config, input_files=inputs)
    assert report.ok


def test_mesi_invariants_hold_without_recording():
    program, inputs = workloads.build("locks")
    outcome = session.simulate(program, seed=5, input_files=inputs)
    assert outcome.exit_codes[1] == 0
