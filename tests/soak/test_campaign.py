"""The differential campaign: lattice checks, parallel determinism,
fault injection end-to-end."""

import dataclasses

import pytest

from repro.config import DEFAULT_CONFIG
from repro.soak import (
    BASELINE,
    SoakOptions,
    matrix_variants,
    outcome_digest,
    run_campaign,
    run_seed,
)
from repro.soak.differential import outcome_fingerprint, run_variant
from repro.telemetry import Telemetry
from repro.workloads.fuzz import generate_case


def test_variant_apply_overrides_and_keeps_the_rest():
    variant = [v for v in matrix_variants() if v.name == "sb-deep"][0]
    config = variant.apply(DEFAULT_CONFIG)
    assert config.machine.store_buffer.entries == 16
    assert config.machine.store_buffer.drain_period == 33
    assert config.kernel == DEFAULT_CONFIG.kernel
    assert config.mrr == DEFAULT_CONFIG.mrr


def test_directory_variants_in_the_lattice():
    from repro.soak.variants import variant_by_name

    directory = variant_by_name("directory")
    assert directory.bit_identical
    assert directory.apply(DEFAULT_CONFIG).machine.coherence == "directory"
    checkpointed = variant_by_name("directory-checkpointed")
    assert checkpointed.bit_identical
    assert checkpointed.checkpoint_every > 0
    assert checkpointed.apply(DEFAULT_CONFIG).machine.coherence == "directory"
    # None override keeps the case's fabric
    assert BASELINE.apply(DEFAULT_CONFIG).machine.coherence == "snoop"
    with pytest.raises(KeyError):
        variant_by_name("token-coherence")


def test_variant_apply_is_pure():
    for variant in matrix_variants():
        variant.apply(DEFAULT_CONFIG)
    assert DEFAULT_CONFIG == dataclasses.replace(DEFAULT_CONFIG)


def test_bit_identical_variants_share_the_baseline_digest():
    shape_variant_diverged = False
    for seed in (11, 12, 13):
        case = generate_case(seed)
        base, report = run_variant(case, BASELINE)
        assert report.ok
        expected = outcome_digest(base)
        base_fingerprint = outcome_fingerprint(base)
        for variant in matrix_variants():
            outcome, report = run_variant(case, variant)
            assert report.ok, f"{variant.name}: {report.summary()}"
            if variant.bit_identical:
                fingerprint = outcome_fingerprint(outcome)
                differing = [key for key in fingerprint
                             if fingerprint[key] != base_fingerprint[key]
                             and key not in variant.identical_except]
                assert not differing, \
                    f"seed {seed}: {variant.name} differs in {differing}"
            elif outcome_digest(outcome) != expected:
                shape_variant_diverged = True
    # Shape-changing variants only self-verify; a tiny program may happen
    # to execute identically, but across seeds they must not be vacuous.
    assert shape_variant_diverged


def test_run_seed_passes_clean_seeds():
    verdict = run_seed(3, SoakOptions(matrix=True))
    assert verdict.ok
    assert verdict.failures == []
    assert verdict.shrunk is None


def test_campaign_serial_and_parallel_verdicts_identical():
    options = SoakOptions(matrix=True)
    serial = run_campaign(6, base_seed=60, jobs=1, options=options)
    parallel = run_campaign(6, base_seed=60, jobs=2, options=options)
    assert serial.ok and parallel.ok
    assert ([(v.seed, v.ok, v.failures) for v in serial.verdicts]
            == [(v.seed, v.ok, v.failures) for v in parallel.verdicts])


def test_campaign_counts_and_order():
    report = run_campaign(4, base_seed=20, jobs=1)
    assert report.runs == 4
    assert [v.seed for v in report.verdicts] == [20, 21, 22, 23]


def test_injected_divergence_is_caught_and_shrunk_small():
    options = SoakOptions(matrix=True, shrink=True, inject="decode-cache")
    verdict = run_seed(42, options)
    assert not verdict.ok
    kinds = {f.kind for f in verdict.failures}
    assert "divergence" in kinds
    [failure] = [f for f in verdict.failures if f.kind == "divergence"]
    assert failure.variant == "decode-off"
    assert verdict.shrunk is not None
    assert verdict.shrunk.ops_after <= 6
    # the minimized case must still fail under the same options
    from repro.soak import run_case
    assert run_case(verdict.shrunk.case, options)


def test_injection_requires_known_fault():
    with pytest.raises(ValueError):
        SoakOptions(inject="warp-drive")


def test_campaign_telemetry_counters():
    telemetry = Telemetry(enabled=True)
    report = run_campaign(2, base_seed=5, jobs=1,
                          options=SoakOptions(matrix=False),
                          telemetry=telemetry)
    assert report.ok
    snapshot = telemetry.snapshot()
    assert snapshot["soak.seeds"] == 2
    assert "soak.failed_seeds" not in snapshot


def test_log_variants_fold_into_capo_config():
    log_v2 = [v for v in matrix_variants() if v.name == "log-v2"][0]
    batched = [v for v in matrix_variants() if v.name == "log-batched"][0]
    cfg = log_v2.apply(DEFAULT_CONFIG)
    assert cfg.capo.input_log_version == 2
    assert cfg.capo.chunk_log_version == 2
    assert cfg.capo.input_batch_events == 0
    cfg = batched.apply(DEFAULT_CONFIG)
    assert cfg.capo.input_batch_events == 64
    assert cfg.capo.input_log_version == 1
    assert batched.identical_except == ("cycles",)
    assert batched.bit_identical and log_v2.bit_identical
