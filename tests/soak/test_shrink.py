"""The delta-debugging minimizer, mostly against synthetic predicates
(no simulation) so the reduction logic is tested in isolation."""

from dataclasses import replace

from repro.soak.shrink import ShrinkResult, ddmin, shrink_case
from repro.workloads.fuzz import FuzzCase, random_config
import random

BAD = ("alu", "xor", 7)


def make_case(threads_ops, repeats=3, policy="random", run_seed=99):
    return FuzzCase(seed=0, threads_ops=threads_ops, repeats=repeats,
                    config=random_config(random.Random(0)),
                    run_seed=run_seed, policy=policy)


def contains_bad(case: FuzzCase) -> bool:
    return any(BAD in ops for ops in case.threads_ops)


def test_ddmin_reduces_to_single_culprit():
    items = [("load", i) for i in range(20)] + [BAD] + \
            [("store", i, 0) for i in range(20)]
    assert ddmin(items, lambda ops: BAD in ops) == [BAD]


def test_ddmin_keeps_interacting_pair():
    a, b = ("load", 1), ("store", 2, 0)
    items = [("pause",)] * 10 + [a] + [("pause",)] * 10 + [b]
    result = ddmin(items, lambda ops: a in ops and b in ops)
    assert result == [a, b]


def test_ddmin_handles_empty_failing():
    assert ddmin([1, 2, 3], lambda ops: True) == []


def test_shrink_case_minimizes_ops_threads_and_config():
    case = make_case([[("load", 0)] * 8, [("load", 1)] * 6 + [BAD],
                      [("pause",)] * 5])
    result = shrink_case(case, contains_bad)
    assert isinstance(result, ShrinkResult)
    assert result.case.threads_ops == [[BAD]]
    assert result.case.repeats == 1
    assert result.case.policy == "rr"
    assert result.case.run_seed == 0
    assert result.case.config.machine.num_cores == 1
    assert result.ops_before == 20
    assert result.ops_after == 1
    assert not result.exhausted
    assert contains_bad(result.case)


def test_shrink_respects_evaluation_budget():
    case = make_case([[("load", i) for i in range(30)] + [BAD]])
    result = shrink_case(case, contains_bad, max_evals=3)
    assert result.exhausted
    assert result.evals <= 3
    # the returned case still fails even when the budget ran out
    assert contains_bad(result.case)


def test_shrink_memoizes_repeat_candidates():
    seen = []

    def fails(case: FuzzCase) -> bool:
        seen.append(1)
        return contains_bad(case)

    case = make_case([[BAD], [("pause",)]], repeats=1)
    result = shrink_case(case, fails)
    assert result.case.threads_ops == [[BAD]]
    # every distinct candidate is evaluated at most once
    assert result.evals == len(seen)


def test_shrink_preserves_failure_when_config_is_load_bearing():
    # The failure depends on a 4-core config: the shrinker must not
    # "simplify" it away.
    def fails(case: FuzzCase) -> bool:
        return contains_bad(case) and case.config.machine.num_cores == 4

    case = make_case([[BAD, ("pause",)]])
    case = replace(case, config=replace(
        case.config, machine=replace(case.config.machine, num_cores=4)))
    result = shrink_case(case, fails)
    assert result.case.config.machine.num_cores == 4
    assert result.case.threads_ops == [[BAD]]
