"""Triage artifacts: serialization, repro commands, local re-runs."""

import json

import pytest

from repro.errors import LogFormatError
from repro.soak import (
    SoakOptions,
    load_artifact,
    repro_command,
    rerun_artifact,
    run_seed,
    write_artifact,
)
from repro.soak.triage import _case_from_dict, _case_to_dict
from repro.workloads.fuzz import generate_case


def test_case_serialization_round_trips():
    case = generate_case(123)
    back = _case_from_dict(json.loads(json.dumps(_case_to_dict(case))))
    assert back == case


def test_repro_command_reflects_options():
    options = SoakOptions(matrix=True, shrink=True, inject="decode-cache")
    command = repro_command(7, options)
    assert command.startswith("quickrec fuzz --count 1 --base-seed 7")
    assert "--matrix" in command and "--shrink" in command
    assert "--inject decode-cache" in command


def test_artifact_write_load_rerun(tmp_path):
    options = SoakOptions(matrix=True, shrink=True, inject="decode-cache",
                          max_shrink_evals=60)
    verdict = run_seed(42, options)
    assert not verdict.ok
    path = write_artifact(tmp_path, verdict, options)
    artifact = load_artifact(path)
    assert artifact["seed"] == 42
    assert artifact["failures"]
    assert artifact["shrink"]["ops_after"] <= 6
    assert artifact["minimized"] is not None

    failures, which = rerun_artifact(path)
    assert which == "minimized"
    assert failures, "the minimized case must still reproduce the failure"
    assert any(f.kind == "divergence" for f in failures)

    # Every failure artifact ships with a race-forensics report for the
    # (minimized) failing case.
    forensics = artifact["forensics"]
    assert forensics is not None and "forensics_error" not in artifact
    assert forensics["format"] == "quickrec-race-report"
    assert forensics["total_chunks"] > 0
    assert forensics["hb"]["nodes"] == forensics["total_chunks"]


def test_artifact_forensics_can_be_disabled(tmp_path):
    options = SoakOptions(matrix=True, inject="decode-cache")
    verdict = run_seed(42, options)
    path = write_artifact(tmp_path, verdict, options, forensics=False)
    artifact = load_artifact(path)
    assert "forensics" not in artifact


def test_rerun_falls_back_to_original_case(tmp_path):
    options = SoakOptions(matrix=True, inject="decode-cache")
    verdict = run_seed(42, options)  # no shrinking
    path = write_artifact(tmp_path, verdict, options)
    failures, which = rerun_artifact(path)
    assert which == "original"
    assert failures


def test_load_artifact_rejects_garbage(tmp_path):
    path = tmp_path / "not-an-artifact.json"
    path.write_text("{\"format\": \"something-else\"}")
    with pytest.raises(LogFormatError):
        load_artifact(path)
    with pytest.raises(LogFormatError):
        load_artifact(tmp_path / "missing.json")
