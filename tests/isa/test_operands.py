import pytest

from repro.isa.operands import Imm, Mem, Reg


def test_imm_masks_to_32_bits():
    assert Imm(-1).value == 0xFFFFFFFF
    assert Imm(1 << 35).value == 0
    assert Imm(5).value == 5


def test_reg_str_uses_alias():
    assert str(Reg(0)) == "rax"
    assert str(Reg(8)) == "r8"


def test_mem_effective_address_base_only():
    regs = [0] * 16
    regs[4] = 0x100
    assert Mem(base=4).effective_address(regs) == 0x100


def test_mem_effective_address_full_form():
    regs = [0] * 16
    regs[4] = 0x100
    regs[5] = 3
    mem = Mem(base=4, index=5, scale=4, disp=8)
    assert mem.effective_address(regs) == 0x100 + 12 + 8


def test_mem_effective_address_wraps_32_bits():
    regs = [0] * 16
    regs[4] = 0xFFFFFFFF
    assert Mem(base=4, disp=2).effective_address(regs) == 1


def test_mem_rejects_bad_scale():
    with pytest.raises(ValueError):
        Mem(base=1, index=2, scale=3)


def test_mem_disp_masked():
    assert Mem(disp=-4).disp == 0xFFFFFFFC


def test_mem_str_renders_terms():
    text = str(Mem(base=4, index=5, scale=4, disp=8))
    assert "r4" in text and "r5*4" in text and "8" in text


def test_mem_str_symbol_preferred_over_disp():
    text = str(Mem(disp=0x1234, symbol="counter"))
    assert "counter" in text
