import pytest

from repro.errors import LogFormatError
from repro.isa.assembler import assemble
from repro.isa.program import Program


SOURCE = """
.data
counter: .word 42
msg: .asciz "hello"
.text
main:
    mov r1, counter
    load r2, [r1]
    add r2, r2, 1
    store [counter + r3*4], r2
    jmp main
"""


def test_serialization_round_trip():
    program = assemble(SOURCE, name="roundtrip")
    clone = Program.from_dict(program.to_dict())
    assert clone.name == program.name
    assert clone.entry == program.entry
    assert clone.data == program.data
    assert clone.symbols == program.symbols
    assert clone.code_symbols == program.code_symbols
    assert clone.instructions == program.instructions


def test_serialization_is_json_compatible():
    import json

    program = assemble(SOURCE)
    payload = json.loads(json.dumps(program.to_dict()))
    clone = Program.from_dict(payload)
    assert clone.instructions == program.instructions


def test_symbol_lookup_both_namespaces():
    program = assemble(SOURCE, data_base=0x1000)
    assert program.symbol("counter") == 0x1000
    assert program.symbol("main") == 0
    with pytest.raises(KeyError):
        program.symbol("nope")


def test_data_end():
    program = assemble(SOURCE, data_base=0x1000)
    assert program.data_end == 0x1000 + len(program.data)


def test_malformed_payload_raises_log_format_error():
    with pytest.raises(LogFormatError):
        Program.from_dict({"instructions": [{"m": "mov"}]})


def test_entry_out_of_range_rejected():
    with pytest.raises(ValueError):
        Program(instructions=(), entry=5)


def test_len_counts_instructions():
    program = assemble(SOURCE)
    assert len(program) == 5
