import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.operands import Imm, Mem, Reg


def test_minimal_program():
    program = assemble(".text\nmain:\n    nop\n    syscall\n")
    assert len(program) == 2
    assert program.entry == 0
    assert program.instructions[0].mnemonic == "nop"


def test_entry_defaults_to_main_label():
    program = assemble(".text\nhelper:\n    nop\nmain:\n    nop\n")
    assert program.entry == 1


def test_explicit_entry_label():
    program = assemble(".text\na:\n    nop\nb:\n    nop\n", entry="b")
    assert program.entry == 1


def test_unknown_entry_label_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    nop\n", entry="nowhere")


def test_data_word_layout_little_endian():
    program = assemble(".data\nv: .word 1, 0x1234\n.text\n    nop\n")
    assert program.data[:4] == (1).to_bytes(4, "little")
    assert program.data[4:8] == (0x1234).to_bytes(4, "little")


def test_data_symbols_get_absolute_addresses():
    program = assemble(".data\na: .word 0\nb: .word 0\n.text\n    nop\n",
                       data_base=0x2000)
    assert program.symbols["a"] == 0x2000
    assert program.symbols["b"] == 0x2004


def test_space_and_fill():
    program = assemble(".data\nbuf: .space 5, 7\n.text\n    nop\n")
    assert program.data == bytes([7] * 5)


def test_asciz_appends_nul_and_handles_escapes():
    program = assemble('.data\ns: .asciz "hi\\n"\n.text\n    nop\n')
    assert program.data == b"hi\n\x00"


def test_align_pads_with_zeros():
    program = assemble(".data\na: .byte 1\n.align 4\nb: .word 2\n.text\n nop\n")
    assert program.symbols["b"] - program.symbols["a"] == 4


def test_word_symbol_fixup():
    source = """
.data
ptr: .word target
target: .word 99
.text
    nop
"""
    program = assemble(source, data_base=0x1000)
    assert program.data[:4] == (0x1004).to_bytes(4, "little")


def test_code_labels_resolve_to_indices():
    source = """
.text
start:
    nop
loop:
    jmp loop
"""
    program = assemble(source)
    assert program.code_symbols["loop"] == 1
    assert program.instructions[1].ops[0] == Imm(1)


def test_memory_operand_parsing_full_form():
    program = assemble(".data\narr: .word 0\n.text\n    load r1, [arr + r2*4 + 8]\n",
                       data_base=0x100)
    mem = program.instructions[0].ops[1]
    assert isinstance(mem, Mem)
    assert mem.base is None
    assert mem.index == 2
    assert mem.scale == 4
    assert mem.disp == 0x108


def test_memory_operand_base_and_index():
    program = assemble(".text\n    load r1, [r4 + r5]\n")
    mem = program.instructions[0].ops[1]
    assert mem.base == 4 and mem.index == 5 and mem.scale == 1


def test_memory_operand_negative_disp():
    program = assemble(".text\n    load r1, [r4 - 8]\n")
    mem = program.instructions[0].ops[1]
    assert mem.disp == 0xFFFFFFF8


def test_bare_symbol_as_value_operand():
    program = assemble(".data\nv: .word 0\n.text\n    mov r1, v\n",
                       data_base=0x400)
    assert program.instructions[0].ops[1] == Imm(0x400)


def test_value_operand_register():
    program = assemble(".text\n    mov r1, r2\n")
    assert program.instructions[0].ops[1] == Reg(2)


def test_comments_stripped():
    program = assemble(".text\n    nop ; trailing\n    # whole line\n    nop\n")
    assert len(program) == 2


def test_comment_chars_inside_strings_kept():
    program = assemble('.data\ns: .asciz "a;b#c"\n.text\n    nop\n')
    assert program.data == b"a;b#c\x00"


def test_label_and_instruction_same_line():
    program = assemble(".text\nmain: nop\n")
    assert program.code_symbols["main"] == 0


def test_jz_alias_normalized():
    program = assemble(".text\nx:\n    jz x\n")
    assert program.instructions[0].mnemonic == "je"


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError) as err:
        assemble(".text\na:\n    nop\na:\n    nop\n")
    assert "duplicate" in str(err.value)


def test_undefined_symbol_rejected_with_line():
    with pytest.raises(AssemblerError) as err:
        assemble(".text\n    jmp nowhere\n")
    assert "nowhere" in str(err.value)
    assert "line 2" in str(err.value)


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    frobnicate r1\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    add r1, r2\n")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\n    nop\n")


def test_directive_in_text_section_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    .word 5\n")


def test_bad_scale_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    load r1, [r2*3]\n")


def test_two_index_registers_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    load r1, [r2*2 + r3*4]\n")


def test_label_in_both_segments_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\nx: .word 0\n.text\nx:\n    nop\n")


def test_listing_contains_labels_and_indices():
    program = assemble(".text\nmain:\n    nop\n")
    listing = program.listing()
    assert "main:" in listing
    assert "nop" in listing
