import json

import pytest

from repro import workloads
from repro.errors import LogFormatError
from repro.isa.assembler import assemble
from repro.isa.encoding import (
    decode_instr,
    decode_program,
    encode_instr,
    encode_program,
)
from repro.isa.instructions import Instr
from repro.isa.operands import Imm, Mem, Reg


SOURCE = """
.data
v: .word 1, 2, 3
s: .asciz "hello"
.text
main:
    mov r1, v
    load r2, [r1 + r3*4 + 8]
    add r2, r2, 0xFFFF
    cmp r2, r4
    jne main
    xadd [v], r2
    mov rcx, 3
    rep_movs
    syscall
"""


def test_instr_round_trip_every_shape():
    cases = [
        Instr("nop", ()),
        Instr("mov", (Reg(1), Imm(0xFFFFFFFF))),
        Instr("mov", (Reg(1), Reg(2))),
        Instr("load", (Reg(3), Mem(base=4, index=5, scale=8, disp=12))),
        Instr("store", (Mem(disp=0x1234), Imm(7))),
        Instr("jmp", (Imm(99999),)),
        Instr("xadd", (Mem(base=1), Reg(2))),
        Instr("rep_movs", ()),
        Instr("syscall", ()),
    ]
    for instr in cases:
        decoded, consumed = decode_instr(encode_instr(instr))
        assert decoded == instr
        assert consumed == len(encode_instr(instr))


def test_program_round_trip():
    program = assemble(SOURCE, name="enc-test")
    clone = decode_program(encode_program(program))
    assert clone.instructions == tuple(
        # Mem.symbol display hints are not carried by the binary form
        _strip_symbols(instr) for instr in program.instructions)
    assert clone.data == program.data
    assert clone.symbols == program.symbols
    assert clone.code_symbols == program.code_symbols
    assert clone.entry == program.entry
    assert clone.name == program.name


def _strip_symbols(instr: Instr) -> Instr:
    ops = tuple(
        Mem(base=op.base, index=op.index, scale=op.scale, disp=op.disp)
        if isinstance(op, Mem) else op
        for op in instr.ops)
    return Instr(instr.mnemonic, ops)


def test_decoded_program_executes_identically():
    from repro import session

    program, inputs = workloads.build("counter", threads=2)
    clone = decode_program(encode_program(program))
    original = session.simulate(program, seed=3, input_files=inputs)
    replayed = session.simulate(clone, seed=3, input_files=inputs)
    assert original.final_memory_digest == replayed.final_memory_digest


def test_binary_is_denser_than_json():
    program, _ = workloads.build("radix")
    binary = len(encode_program(program))
    as_json = len(json.dumps(program.to_dict()))
    # data segments dominate radix (raw bytes vs hex text = 2x); code is
    # far denser still
    assert binary < as_json / 2


def test_bad_magic_rejected():
    with pytest.raises(LogFormatError):
        decode_program(b"XXXX\x01")


def test_bad_version_rejected():
    program = assemble(".text\nmain:\n    nop\n")
    blob = bytearray(encode_program(program))
    blob[4] = 99
    with pytest.raises(LogFormatError):
        decode_program(bytes(blob))


def test_truncation_rejected():
    program = assemble(SOURCE)
    blob = encode_program(program)
    for cut in (6, len(blob) // 2, len(blob) - 1):
        with pytest.raises(LogFormatError):
            decode_program(blob[:cut])


def test_trailing_garbage_rejected():
    program = assemble(".text\nmain:\n    nop\n")
    with pytest.raises(LogFormatError):
        decode_program(encode_program(program) + b"\x00")


def test_unknown_opcode_rejected():
    with pytest.raises(LogFormatError):
        decode_instr(bytes([250]))


def test_bad_value_tag_rejected():
    instr = Instr("mov", (Reg(1), Imm(5)))
    blob = bytearray(encode_instr(instr))
    blob[2] = 9  # value-operand tag
    with pytest.raises(LogFormatError):
        decode_instr(bytes(blob))


def test_all_workload_programs_round_trip():
    for name in workloads.all_names():
        program, _ = workloads.build(name, threads=2)
        clone = decode_program(encode_program(program))
        assert len(clone) == len(program)
        assert clone.data == program.data
